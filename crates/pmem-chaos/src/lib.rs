//! # pmem-chaos — exhaustive crash- and stall-point sweep testing
//!
//! The pool's fault plan ([`pmem::ChaosConfig::crash_at_event`]) can freeze
//! the durable image at any single persistence event. This crate turns that
//! into a *sweep*: run a workload once to count its persistence events, then
//! run it again with a crash injected at every event boundary (or a seeded
//! sample of them, for long workloads), recover each durable image, and
//! check a caller-supplied invariant.
//!
//! The same machinery drives *stall* sweeps ([`stall_sweep`], built on
//! [`pmem::ChaosConfig::stall_at_event`]): instead of killing the machine at
//! event `n`, park one thread there mid-instruction and prove that (a) a
//! concurrent workload still completes — liveness under a straggler — and
//! (b) a crash taken while the victim is parked, after helpers completed its
//! write-backs, still recovers a consistent prefix.
//!
//! The point of sweeping *every* event is that crash-consistency bugs live
//! at specific instruction boundaries — between a payload flush and its
//! fence, between the epoch-clock store and the boundary drain. A test that
//! crashes at one hand-picked moment misses them; a sweep cannot.
//!
//! ```
//! use pmem::{PmemConfig, PmemPool, POff};
//! use pmem_chaos::{crash_sweep, SweepConfig};
//!
//! const OFF: POff = POff::new(4096);
//! let report = crash_sweep(
//!     &SweepConfig::default(),
//!     PmemConfig::strict_for_test(1 << 20),
//!     |pool| {
//!         // Workload: must tolerate the pool crashing under it (use the
//!         // checked try_* operations and unwind-free error paths).
//!         let _ = pool.try_write_bytes(OFF, b"hello");
//!         let _ = pool.try_persist_range(OFF, 5);
//!     },
//!     |durable, _crash_at| {
//!         // Invariant over the recovered durable image: the value is
//!         // either fully there or absent — never torn.
//!         let mut buf = [0u8; 5];
//!         durable.read_bytes(OFF, &mut buf);
//!         match &buf {
//!             b"hello" | [0, 0, 0, 0, 0] => Ok(()),
//!             other => Err(format!("torn write survived: {other:?}")),
//!         }
//!     },
//! );
//! report.assert_ok();
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use pmem::{PmemConfig, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Extracts a printable message from a captured panic payload.
fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// How a sweep chooses its crash points.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Workloads with at most this many persistence events are swept
    /// exhaustively: one run per event boundary, `0..=total`.
    pub exhaustive_limit: u64,
    /// Above the limit, this many interior points are sampled (the
    /// boundaries 0 and `total` are always included).
    pub samples: usize,
    /// Seed for the sampling RNG — same seed, same points, so CI failures
    /// replay locally.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            exhaustive_limit: 512,
            samples: 48,
            seed: 0x5EED_CA5E,
        }
    }
}

/// One crash point whose recovered image violated the invariant (or whose
/// workload panicked instead of degrading).
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// The armed `crash_at_event`.
    pub crash_at: u64,
    pub message: String,
}

/// Outcome of a [`crash_sweep`].
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Persistence events the unfaulted workload performs.
    pub total_events: u64,
    /// Every crash point that was actually swept, in order.
    pub crash_points: Vec<u64>,
    pub failures: Vec<SweepFailure>,
}

impl SweepReport {
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Panics with every failing crash point if the sweep found violations.
    pub fn assert_ok(&self) {
        assert!(
            self.is_ok(),
            "crash sweep failed at {}/{} points (of {} events):\n{}",
            self.failures.len(),
            self.crash_points.len(),
            self.total_events,
            self.failures
                .iter()
                .map(|f| format!("  crash_at={}: {}", f.crash_at, f.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// Runs `workload` on a fresh pool with the event counter armed but no
/// crash point (`Some(u64::MAX)`), returning how many persistence events it
/// performs. This is the sweep's counting pass; it is also useful on its
/// own for asserting a workload is "big enough" for a meaningful sweep.
pub fn count_events(mut base: PmemConfig, workload: impl FnOnce(&PmemPool)) -> u64 {
    base.chaos.crash_at_event = Some(u64::MAX);
    let pool = PmemPool::new(base);
    workload(&pool);
    pool.persistence_events()
}

/// The crash points a sweep of `total_events` visits under `cfg`:
/// exhaustive `0..=total` below the limit, otherwise both boundaries plus
/// `cfg.samples` seeded interior points (sorted, deduplicated).
pub fn crash_points(total_events: u64, cfg: &SweepConfig) -> Vec<u64> {
    if total_events <= cfg.exhaustive_limit {
        return (0..=total_events).collect();
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut points = vec![0, total_events];
    for _ in 0..cfg.samples {
        points.push(rng.gen_range(1..total_events));
    }
    points.sort_unstable();
    points.dedup();
    points
}

/// Sweeps `workload` over crash points.
///
/// For each point `n`, a fresh pool is built from `base` with
/// `crash_at_event = Some(n)`, the workload runs on it (the fault plan
/// trips partway through; checked operations start failing), the pool is
/// crashed to its durable-image-as-of-event-`n`, and `verify` is called on
/// that image. `verify` returns `Err(reason)` to report an invariant
/// violation; a panic inside `workload` or `verify` is likewise captured as
/// a failure (crash-time degradation must be unwind-free).
///
/// Everything is deterministic: two runs with the same config, workload,
/// and seed sweep the same points in the same order.
pub fn crash_sweep(
    cfg: &SweepConfig,
    base: PmemConfig,
    mut workload: impl FnMut(&PmemPool),
    mut verify: impl FnMut(PmemPool, u64) -> Result<(), String>,
) -> SweepReport {
    let total_events = count_events(base, &mut workload);
    let points = crash_points(total_events, cfg);
    let mut failures = Vec::new();
    for &crash_at in &points {
        let mut armed = base;
        armed.chaos.crash_at_event = Some(crash_at);
        let pool = PmemPool::new(armed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            workload(&pool);
            verify(pool.crash(), crash_at)
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(message)) => failures.push(SweepFailure { crash_at, message }),
            Err(panic) => {
                failures.push(SweepFailure {
                    crash_at,
                    message: format!("panicked instead of degrading: {}", panic_message(panic)),
                });
            }
        }
    }
    SweepReport {
        total_events,
        crash_points: points,
        failures,
    }
}

/// Counting pass for a multi-pool (sharded) workload: builds `n_shards`
/// fresh pools from `base`, arms only `victim`'s event counter, runs the
/// workload once, and returns how many persistence events the victim shard
/// performs. Non-victim pools are left unarmed — a sharded sweep injects a
/// crash into exactly one shard's durable image per run.
pub fn shard_count_events(
    mut base: PmemConfig,
    n_shards: usize,
    victim: usize,
    workload: impl FnOnce(&[PmemPool]),
) -> u64 {
    assert!(victim < n_shards, "victim shard out of range");
    base.chaos.crash_at_event = None;
    let pools: Vec<PmemPool> = (0..n_shards)
        .map(|i| {
            let mut cfg = base;
            if i == victim {
                cfg.chaos.crash_at_event = Some(u64::MAX);
            }
            PmemPool::new(cfg)
        })
        .collect();
    workload(&pools);
    pools[victim].persistence_events()
}

/// Sweeps a multi-pool workload over the *victim* shard's crash points.
///
/// Per point `n`, `n_shards` fresh pools are built from `base`; the victim's
/// fault plan is armed with `crash_at_event = Some(n)` and the others run
/// unfaulted. The workload drives all pools (and must degrade, not panic,
/// once the victim trips); then every pool is crashed and `verify` receives
/// all durable images, victim's frozen at event `n`, in shard order. The
/// invariant a sharded store wants here: the victim recovers a consistent
/// prefix while the other shards lose nothing past their last fence —
/// crash containment, the property a single-pool sweep cannot express.
pub fn shard_crash_sweep(
    cfg: &SweepConfig,
    base: PmemConfig,
    n_shards: usize,
    victim: usize,
    mut workload: impl FnMut(&[PmemPool]),
    mut verify: impl FnMut(Vec<PmemPool>, u64) -> Result<(), String>,
) -> SweepReport {
    let total_events = shard_count_events(base, n_shards, victim, &mut workload);
    let points = crash_points(total_events, cfg);
    let mut failures = Vec::new();
    for &crash_at in &points {
        let pools: Vec<PmemPool> = (0..n_shards)
            .map(|i| {
                let mut armed = base;
                armed.chaos.crash_at_event = (i == victim).then_some(crash_at);
                PmemPool::new(armed)
            })
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            workload(&pools);
            verify(pools.iter().map(|p| p.crash()).collect(), crash_at)
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(message)) => failures.push(SweepFailure { crash_at, message }),
            Err(panic) => {
                failures.push(SweepFailure {
                    crash_at,
                    message: format!("panicked instead of degrading: {}", panic_message(panic)),
                });
            }
        }
    }
    SweepReport {
        total_events,
        crash_points: points,
        failures,
    }
}

/// One stall point that violated liveness, panicked, or whose mid-helping
/// crash cut failed verification.
#[derive(Clone, Debug)]
pub struct StallSweepFailure {
    /// The armed `stall_at_event`.
    pub stall_at: u64,
    pub message: String,
}

/// Outcome of a [`stall_sweep`].
#[derive(Clone, Debug)]
pub struct StallSweepReport {
    /// Persistence events the victim workload performs when run alone.
    pub total_events: u64,
    /// Every stall point that was actually swept, in order.
    pub stall_points: Vec<u64>,
    /// How many points actually parked the victim (point 0 — and any point
    /// past the victim's own event count — cannot).
    pub parked_points: usize,
    pub failures: Vec<StallSweepFailure>,
}

impl StallSweepReport {
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Panics with every failing stall point if the sweep found violations.
    pub fn assert_ok(&self) {
        assert!(
            self.is_ok(),
            "stall sweep failed at {}/{} points (of {} events, {} parked):\n{}",
            self.failures.len(),
            self.stall_points.len(),
            self.total_events,
            self.parked_points,
            self.failures
                .iter()
                .map(|f| format!("  stall_at={}: {}", f.stall_at, f.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// Sweeps a two-thread schedule over *stall* points: at every persistence
/// event of the `victim` workload, park the victim mid-instruction and prove
/// two properties at once.
///
/// 1. **Liveness** — `concurrent` (run on a second thread while the victim
///    is parked) completes within `liveness_deadline`. With nonblocking
///    epoch advance this holds even when the victim is parked inside an
///    open operation with unwritten buffered lines: helpers complete its
///    write-backs instead of waiting. A deadline miss is recorded as a
///    failure and the victim is released so the sweep itself can continue.
/// 2. **Crash consistency under helping** — the pool is then crashed *while
///    the victim is still parked* (releasing it), and `verify` checks the
///    recovered durable image. This is precisely the "cut during helping"
///    schedule: whatever peers flushed on the victim's behalf must recover
///    as a consistent prefix, never a torn mix.
///
/// Stall points are chosen like [`crash_points`]: exhaustive up to the
/// config's limit, seeded samples beyond it. The counting pass runs the
/// victim alone, so every point in `1..=total` deterministically parks the
/// victim (the live pass also starts `concurrent` only after the victim has
/// parked or finished).
pub fn stall_sweep<V, C, F>(
    cfg: &SweepConfig,
    base: PmemConfig,
    liveness_deadline: Duration,
    victim: V,
    concurrent: C,
    mut verify: F,
) -> StallSweepReport
where
    V: Fn(&PmemPool) + Send + Sync,
    C: Fn(&PmemPool) + Send + Sync,
    F: FnMut(PmemPool, u64) -> Result<(), String>,
{
    let total_events = count_events(base, |p| victim(p));
    let points = crash_points(total_events, cfg);
    let mut failures = Vec::new();
    let mut parked_points = 0;
    for &stall_at in &points {
        let mut armed = base;
        armed.chaos.stall_at_event = Some(stall_at);
        let pool = PmemPool::new(armed);
        let mut point_failures: Vec<String> = Vec::new();
        let durable = std::thread::scope(|s| {
            let vt = s.spawn(|| catch_unwind(AssertUnwindSafe(|| victim(&pool))));
            // Wait until the victim either parks at the stall point or runs
            // to completion (point 0 never parks: no event precedes it).
            while !vt.is_finished() && !pool.await_stalled(Duration::from_millis(20)) {}
            let parked = pool.stalled_count() == 1;

            let ct = s.spawn(|| catch_unwind(AssertUnwindSafe(|| concurrent(&pool))));
            let deadline = Instant::now() + liveness_deadline;
            while !ct.is_finished() {
                if Instant::now() >= deadline {
                    point_failures.push(format!(
                        "liveness: concurrent workload still blocked after \
                         {liveness_deadline:?} (victim parked={parked})"
                    ));
                    // Unwedge so the sweep (and this point's join) terminates.
                    pool.release_stalled();
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            if let Err(p) = ct.join().expect("scoped join") {
                point_failures.push(format!("concurrent panicked: {}", panic_message(p)));
            }

            // Cut the power while the victim is still parked mid-operation;
            // `crash` releases it, and its post-release activity only lands
            // in the dead pool's images.
            let durable = pool.crash();
            if let Err(p) = vt.join().expect("scoped join") {
                point_failures.push(format!("victim panicked: {}", panic_message(p)));
            }
            (durable, parked)
        });
        let (durable, parked) = durable;
        parked_points += usize::from(parked);
        if point_failures.is_empty() {
            match catch_unwind(AssertUnwindSafe(|| verify(durable, stall_at))) {
                Ok(Ok(())) => {}
                Ok(Err(message)) => point_failures.push(message),
                Err(p) => point_failures.push(format!("verify panicked: {}", panic_message(p))),
            }
        }
        failures.extend(
            point_failures
                .into_iter()
                .map(|message| StallSweepFailure { stall_at, message }),
        );
    }
    StallSweepReport {
        total_events,
        stall_points: points,
        parked_points,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::POff;

    const OFF: POff = POff::new(4096);

    /// Workload: write a value, flush it, fence. 3 lines written +
    /// 1 flush-range (3 lines) + 1 fence.
    fn workload(pool: &PmemPool) {
        let _ = pool.try_write_bytes(OFF, &[7u8; 128]);
        let _ = pool.try_persist_range(OFF, 128);
    }

    #[test]
    fn counting_pass_is_stable() {
        let base = PmemConfig::strict_for_test(1 << 20);
        let a = count_events(base, workload);
        let b = count_events(base, workload);
        assert_eq!(a, b);
        assert!(a > 0);
    }

    #[test]
    fn exhaustive_points_cover_every_boundary() {
        let pts = crash_points(10, &SweepConfig::default());
        assert_eq!(pts, (0..=10).collect::<Vec<_>>());
    }

    #[test]
    fn sampled_points_are_deterministic_and_bounded() {
        let cfg = SweepConfig {
            exhaustive_limit: 100,
            samples: 16,
            seed: 42,
        };
        let a = crash_points(10_000, &cfg);
        let b = crash_points(10_000, &cfg);
        assert_eq!(a, b, "same seed must sample the same points");
        assert!(a.len() <= 18);
        assert_eq!(*a.first().unwrap(), 0);
        assert_eq!(*a.last().unwrap(), 10_000);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
    }

    #[test]
    fn sweep_passes_for_an_atomic_write() {
        let report = crash_sweep(
            &SweepConfig::default(),
            PmemConfig::strict_for_test(1 << 20),
            workload,
            |durable, _| {
                let mut buf = [0u8; 128];
                durable.read_bytes(OFF, &mut buf);
                // Each 64-byte line is all-or-nothing without tearing, but
                // the three lines need not persist together; crash points
                // inside the flush make any per-line subset legal.
                for line in buf.chunks(64) {
                    if !(line.iter().all(|&b| b == 7) || line.iter().all(|&b| b == 0)) {
                        return Err(format!("torn line: {line:?}"));
                    }
                }
                Ok(())
            },
        );
        assert_eq!(
            report.crash_points.len() as u64,
            report.total_events + 1,
            "small workload must sweep exhaustively"
        );
        report.assert_ok();
    }

    #[test]
    fn sweep_catches_a_broken_invariant() {
        // Deliberately wrong invariant: demands the value always be fully
        // durable, which early crash points violate.
        let report = crash_sweep(
            &SweepConfig::default(),
            PmemConfig::strict_for_test(1 << 20),
            workload,
            |durable, _| {
                let mut buf = [0u8; 128];
                durable.read_bytes(OFF, &mut buf);
                if buf.iter().all(|&b| b == 7) {
                    Ok(())
                } else {
                    Err("value not durable".into())
                }
            },
        );
        assert!(!report.is_ok(), "crash at event 0 must fail this invariant");
        assert!(report.failures.iter().any(|f| f.crash_at == 0));
    }

    #[test]
    fn workload_panics_are_reported_not_propagated() {
        let cfg = SweepConfig::default();
        let report = crash_sweep(
            &cfg,
            PmemConfig::strict_for_test(1 << 20),
            |pool| {
                pool.try_write_bytes(OFF, &[1u8; 8])
                    .expect("workload that refuses to degrade");
                let _ = pool.try_persist_range(OFF, 8);
            },
            |_, _| Ok(()),
        );
        assert!(report
            .failures
            .iter()
            .any(|f| f.message.contains("panicked instead of degrading")));
    }

    /// Multi-pool workload: the same atomic write on every shard. Only the
    /// victim's image may come back partial; the others must be complete.
    fn shard_workload(pools: &[PmemPool]) {
        for pool in pools {
            let _ = pool.try_write_bytes(OFF, &[7u8; 64]);
            let _ = pool.try_persist_range(OFF, 64);
        }
    }

    #[test]
    fn shard_counting_pass_counts_only_the_victim() {
        let base = PmemConfig::strict_for_test(1 << 20);
        let single = count_events(base, |p| shard_workload(std::slice::from_ref(p)));
        for victim in 0..3 {
            let n = shard_count_events(base, 3, victim, shard_workload);
            assert_eq!(n, single, "each shard sees the same per-shard events");
        }
    }

    #[test]
    fn stall_sweep_parks_every_interior_point_and_passes() {
        use std::time::Duration;

        let c_off = POff::new(64 * 1024);
        let report = stall_sweep(
            &SweepConfig::default(),
            PmemConfig::strict_for_test(1 << 20),
            Duration::from_secs(30),
            workload, // victim: write 128 B, flush, fence
            move |pool| {
                // Raw-pool peers never wait on anyone: a parked victim must
                // not stop this from persisting.
                let _ = pool.try_write_bytes(c_off, &[9u8; 64]);
                let _ = pool.try_persist_range(c_off, 64);
            },
            |durable, _| {
                // Per-line all-or-nothing for the victim's value, exactly as
                // in the crash sweep: a park is never an excuse to tear.
                let mut buf = [0u8; 128];
                durable.read_bytes(OFF, &mut buf);
                for line in buf.chunks(64) {
                    if !(line.iter().all(|&b| b == 7) || line.iter().all(|&b| b == 0)) {
                        return Err(format!("torn line: {line:?}"));
                    }
                }
                Ok(())
            },
        );
        assert_eq!(
            report.stall_points.len() as u64,
            report.total_events + 1,
            "small workload must sweep exhaustively"
        );
        assert_eq!(
            report.parked_points as u64, report.total_events,
            "every interior point (1..=total) must actually park the victim"
        );
        report.assert_ok();
    }

    #[test]
    fn stall_sweep_reports_liveness_violations_without_hanging() {
        use std::sync::Mutex;
        use std::time::Duration;

        // An artificial blocking dependency: the victim parks while holding
        // a lock the concurrent workload needs. Every parked point must be
        // flagged as a liveness failure — and the sweep must terminate (the
        // deadline path releases the victim).
        let lock = Mutex::new(());
        let report = stall_sweep(
            &SweepConfig::default(),
            PmemConfig::strict_for_test(1 << 20),
            Duration::from_millis(100),
            |pool| {
                let _held = lock.lock().unwrap();
                workload(pool); // parks here, lock held
            },
            |_pool| {
                let _blocked = lock.lock().unwrap();
            },
            |_, _| Ok(()),
        );
        assert!(!report.is_ok());
        let liveness = report
            .failures
            .iter()
            .filter(|f| f.message.contains("liveness"))
            .count();
        assert_eq!(
            liveness, report.parked_points,
            "each parked point blocks the peer and must be flagged"
        );
    }

    #[test]
    fn shard_sweep_contains_the_crash_to_the_victim() {
        let report = shard_crash_sweep(
            &SweepConfig::default(),
            PmemConfig::strict_for_test(1 << 20),
            3,
            1,
            shard_workload,
            |durables, _| {
                for (i, durable) in durables.iter().enumerate() {
                    let mut buf = [0u8; 64];
                    durable.read_bytes(OFF, &mut buf);
                    let full = buf.iter().all(|&b| b == 7);
                    let empty = buf.iter().all(|&b| b == 0);
                    if i == 1 {
                        if !(full || empty) {
                            return Err(format!("victim line torn: {buf:?}"));
                        }
                    } else if !full {
                        return Err(format!("non-victim shard {i} lost its write"));
                    }
                }
                Ok(())
            },
        );
        assert!(report.total_events > 0);
        report.assert_ok();
    }
}
