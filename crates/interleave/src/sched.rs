//! Search strategies over the schedule tree.
//!
//! * [`Dfs`] — exhaustive bounded-preemption DFS (CHESS-style budget) with
//!   sleep-set pruning and persistent-set-style reduction (only locations
//!   observed shared are scheduling points at all — see `lib.rs`).
//! * [`Random`] — seeded random walk, for the sampled bound-3 CI tier.
//! * [`Replay`] — follows a recorded `tid.variant` choice list verbatim, for
//!   reproducing a printed counterexample.
//! * [`RunToCompletion`] — always picks choice 0 (used by the discovery
//!   pass that learns which locations are shared).

use std::collections::HashSet;

use crate::exec::{Choice, Op, Strategy};

pub struct RunToCompletion;

impl Strategy for RunToCompletion {
    fn next(&mut self, cands: &[Choice], _pending: &[(usize, Op)]) -> Option<Choice> {
        cands.first().copied()
    }
}

struct Frame {
    /// Budget- and sleep-filtered choices at frame creation time.
    choices: Vec<Choice>,
    /// Index of the choice currently being explored.
    cur: usize,
    /// Sleep set: tids whose subtrees are already covered here.
    sleep: HashSet<usize>,
    /// Pending op per enabled tid when the frame was created (for sleep-set
    /// wakeup on the edge into each child).
    pending: Vec<(usize, Op)>,
}

impl Frame {
    fn chosen(&self) -> Choice {
        self.choices[self.cur]
    }
    fn chosen_op(&self) -> &Op {
        let tid = self.chosen().tid;
        &self
            .pending
            .iter()
            .find(|(t, _)| *t == tid)
            .expect("chosen tid was enabled")
            .1
    }
}

/// Exhaustive bounded-preemption DFS with sleep sets. The frame stack
/// persists across executions; each execution replays the stack prefix and
/// extends it with fresh frames, then [`Dfs::backtrack`] advances the
/// deepest frame with an unexplored choice.
pub struct Dfs {
    stack: Vec<Frame>,
    depth: usize,
    bound: usize,
    /// Executions abandoned because every enabled thread was asleep
    /// (redundant interleavings — pure pruning wins, not lost coverage).
    pub sleep_prunes: u64,
    pub max_depth: usize,
}

impl Dfs {
    pub fn new(bound: usize) -> Dfs {
        Dfs {
            stack: Vec::new(),
            depth: 0,
            bound,
            sleep_prunes: 0,
            max_depth: 0,
        }
    }

    pub fn begin_execution(&mut self) {
        self.depth = 0;
    }

    /// Advances to the next unexplored path. Returns false when the tree is
    /// exhausted.
    pub fn backtrack(&mut self) -> bool {
        // Unvisited frames below the divergence point (from a pruned
        // execution that ended early) were never created, so the stack is
        // exactly the executed path.
        self.stack.truncate(self.depth);
        while let Some(f) = self.stack.last_mut() {
            let done_tid = f.chosen().tid;
            let more_variants = f.choices[f.cur + 1..].iter().any(|c| c.tid == done_tid);
            if !more_variants {
                f.sleep.insert(done_tid);
            }
            f.cur += 1;
            while f.cur < f.choices.len() && f.sleep.contains(&f.choices[f.cur].tid) {
                f.cur += 1;
            }
            if f.cur < f.choices.len() {
                return true;
            }
            self.stack.pop();
        }
        false
    }
}

impl Strategy for Dfs {
    fn next(&mut self, cands: &[Choice], pending: &[(usize, Op)]) -> Option<Choice> {
        if self.depth < self.stack.len() {
            let c = self.stack[self.depth].chosen();
            self.depth += 1;
            return Some(c);
        }
        let used: usize = self.stack.iter().map(|f| f.chosen().cost).sum();
        // Sleep inheritance: a thread asleep at the parent stays asleep iff
        // its pending op is independent of the op executed on this edge.
        let sleep: HashSet<usize> = match self.stack.last() {
            Some(parent) => {
                let edge_op = parent.chosen_op().clone();
                parent
                    .sleep
                    .iter()
                    .copied()
                    .filter(|s| {
                        parent
                            .pending
                            .iter()
                            .find(|(t, _)| t == s)
                            .is_some_and(|(_, op)| !op.dependent(&edge_op))
                    })
                    .collect()
            }
            None => HashSet::new(),
        };
        let choices: Vec<Choice> = cands
            .iter()
            .copied()
            .filter(|c| used + c.cost <= self.bound && !sleep.contains(&c.tid))
            .collect();
        if choices.is_empty() {
            // Every enabled thread is asleep: this path is redundant.
            self.sleep_prunes += 1;
            return None;
        }
        self.stack.push(Frame {
            choices,
            cur: 0,
            sleep,
            pending: pending.to_vec(),
        });
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        Some(self.stack.last().unwrap().chosen())
    }
}

/// Seeded random walk (xorshift64*). Respects the preemption bound.
pub struct Random {
    state: u64,
    bound: usize,
    used: usize,
}

impl Random {
    pub fn new(seed: u64, bound: usize) -> Random {
        Random {
            state: seed.max(1),
            bound,
            used: 0,
        }
    }
    pub fn begin_execution(&mut self) {
        self.used = 0;
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl Strategy for Random {
    fn next(&mut self, cands: &[Choice], _pending: &[(usize, Op)]) -> Option<Choice> {
        let affordable: Vec<Choice> = cands
            .iter()
            .copied()
            .filter(|c| self.used + c.cost <= self.bound)
            .collect();
        let pool = if affordable.is_empty() {
            cands
        } else {
            &affordable
        };
        let c = pool[(self.next_u64() % pool.len() as u64) as usize];
        self.used += c.cost;
        Some(c)
    }
}

/// Follows a recorded `tid.variant` list; past its end (or on divergence)
/// falls back to choice 0.
pub struct Replay {
    script: Vec<(usize, usize)>,
    pos: usize,
}

impl Replay {
    /// Parses the `INTERLEAVE_REPLAY` format: `"0.0,1.2,0.0"`.
    pub fn parse(s: &str) -> Replay {
        let script = s
            .split(',')
            .filter(|p| !p.is_empty())
            .filter_map(|p| {
                let (t, v) = p.split_once('.')?;
                Some((t.trim().parse().ok()?, v.trim().parse().ok()?))
            })
            .collect();
        Replay { script, pos: 0 }
    }
}

impl Strategy for Replay {
    fn next(&mut self, cands: &[Choice], _pending: &[(usize, Op)]) -> Option<Choice> {
        let want = self.script.get(self.pos).copied();
        self.pos += 1;
        want.and_then(|(t, v)| {
            cands
                .iter()
                .find(|c| c.tid == t && c.variant == v)
                .or_else(|| cands.iter().find(|c| c.tid == t))
                .copied()
        })
        .or_else(|| cands.first().copied())
    }
}
