//! # interleave — deterministic concurrency model checker
//!
//! A loom-style stateless model checker with no dependencies outside std.
//! Code under test swaps its atomics/mutexes/thread-spawns for the
//! instrumented facade in [`sync`]; [`check`] then runs the closure under
//! every schedule reachable within a preemption budget, with every atomic
//! access a scheduling point and weakly-ordered loads additionally fanning
//! out over the stale values the memory model permits.
//!
//! ## How a check runs
//!
//! 1. **Search.** Exhaustive DFS over the schedule tree (default), with
//!    CHESS-style bounded preemption (switching away from a runnable,
//!    non-yielding thread costs 1 from [`Config::preemption_bound`]),
//!    sleep-set pruning (threads whose pending op is independent of
//!    everything explored at a node are not re-branched — the
//!    persistent-set-style reduction that keeps commuting operations from
//!    exploding the tree), and a bounded-staleness memory model
//!    ([`model`]) that branches weak loads over permitted stale values.
//!    Locations are identified by *first-touch order* along the schedule,
//!    not by address — heap addresses are not stable across executions,
//!    first-touch order along a replayed prefix is.
//! 2. **Verdict.** Any panic in any thread, a deadlock, or a step-limit
//!    overrun aborts the execution into passthrough mode (so unwinding
//!    `Drop`s run on real primitives) and is reported as a [`Violation`]
//!    carrying the full step trace and a `tid.variant` choice string that
//!    [`Config::replay`] / `INTERLEAVE_REPLAY` re-executes verbatim.
//!
//! ## Environment knobs (read by [`Config::from_env`])
//!
//! * `INTERLEAVE_BOUND` — preemption bound (default 2).
//! * `INTERLEAVE_SAMPLES` — if set, random sampling with this many
//!   executions instead of exhaustive DFS (the bound-3 CI tier).
//! * `INTERLEAVE_SEED` — seed for sampling.
//! * `INTERLEAVE_REPLAY` — `tid.variant` comma list: run that one schedule.

pub mod exec;
pub mod model;
pub mod sched;
pub mod sync;

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use exec::{Ctx, Execution, Outcome, Strategy};
use sched::{Dfs, Random, Replay};
use sync::panic_msg;

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Bounded-exhaustive DFS.
    Exhaustive,
    /// Random schedule sampling (for bounds where exhaustion is too big).
    Sample { executions: u64, seed: u64 },
}

#[derive(Clone, Debug)]
pub struct Config {
    /// CHESS preemption budget per execution.
    pub preemption_bound: usize,
    /// Max stale-load variants taken per execution path.
    pub stale_budget: usize,
    /// Scheduling points per execution before the path is abandoned.
    pub max_steps: usize,
    /// Total executions before the search gives up (reported, not an error).
    pub max_executions: u64,
    pub mode: Mode,
    /// Weaken this `sync::weaken` site to Relaxed (seeded fixtures).
    pub weaken_site: Option<String>,
    /// Replay a recorded counterexample instead of searching.
    pub replay: Option<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            stale_budget: 2,
            max_steps: 20_000,
            max_executions: 200_000,
            mode: Mode::Exhaustive,
            weaken_site: None,
            replay: None,
        }
    }
}

impl Config {
    /// Default config overridden by `INTERLEAVE_*` env vars (see crate
    /// docs) — what the CI tiers drive.
    pub fn from_env() -> Config {
        let mut cfg = Config::default();
        if let Ok(b) = std::env::var("INTERLEAVE_BOUND") {
            if let Ok(b) = b.trim().parse() {
                cfg.preemption_bound = b;
            }
        }
        if let Ok(s) = std::env::var("INTERLEAVE_SAMPLES") {
            if let Ok(n) = s.trim().parse() {
                let seed = std::env::var("INTERLEAVE_SEED")
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(0x9E37_79B9_7F4A_7C15);
                cfg.mode = Mode::Sample {
                    executions: n,
                    seed,
                };
            }
        }
        if let Ok(r) = std::env::var("INTERLEAVE_REPLAY") {
            if !r.trim().is_empty() {
                cfg.replay = Some(r.trim().to_string());
            }
        }
        cfg
    }

    pub fn with_bound(mut self, b: usize) -> Config {
        self.preemption_bound = b;
        self
    }

    pub fn with_weaken(mut self, site: &str) -> Config {
        self.weaken_site = Some(site.to_string());
        self
    }
}

#[derive(Debug, Default, Clone)]
pub struct Report {
    pub executions: u64,
    /// Paths abandoned at the step limit (possible lost coverage).
    pub limit_pruned: u64,
    /// Paths pruned as redundant by sleep sets (no lost coverage).
    pub sleep_pruned: u64,
    pub max_depth: usize,
    /// True if the search stopped at `max_executions` before exhausting
    /// the tree.
    pub truncated: bool,
}

#[derive(Debug, Clone)]
pub struct Violation {
    pub message: String,
    /// One line per granted schedule point.
    pub trace: Vec<String>,
    /// `tid.variant` choice string for `INTERLEAVE_REPLAY`.
    pub replay: String,
    pub executions: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "interleave: violation after {} execution(s)",
            self.executions
        )?;
        writeln!(f, "  {}", self.message)?;
        writeln!(f, "  reproduce with: INTERLEAVE_REPLAY=\"{}\"", self.replay)?;
        writeln!(f, "  schedule:")?;
        for l in &self.trace {
            writeln!(f, "    {l}")?;
        }
        Ok(())
    }
}

fn run_one(
    exec: &Arc<Execution>,
    f: Arc<dyn Fn() + Send + Sync>,
    strat: &mut dyn Strategy,
) -> Outcome {
    let root = exec.register_root();
    let e2 = exec.clone();
    let h = std::thread::spawn(move || {
        exec::set_ctx(Some(Ctx {
            exec: e2.clone(),
            tid: root,
        }));
        e2.op_begin(root);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| f()));
        if let Err(p) = r {
            e2.record_panic(root, panic_msg(p.as_ref()));
        }
        e2.op_finish(root);
        exec::set_ctx(None);
    });
    let out = exec.drive(strat);
    if exec.leaked.load(std::sync::atomic::Ordering::Acquire) {
        // Deadlocked execution: threads stay parked forever; detach.
        drop(h);
    } else {
        let _ = h.join();
    }
    out
}

fn violation_of(exec: &Arc<Execution>, message: String, executions: u64) -> Violation {
    let (trace, replay) = exec.trace();
    Violation {
        message,
        trace,
        replay,
        executions,
    }
}

/// Runs `f` under the checker; returns the exploration report, or the first
/// violation found.
pub fn try_check<F>(cfg: Config, f: F) -> Result<Report, Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut report = Report::default();
    let new_exec =
        |cfg: &Config| Execution::new(cfg.max_steps, cfg.stale_budget, cfg.weaken_site.clone());

    if let Some(script) = &cfg.replay {
        let exec = new_exec(&cfg);
        let mut strat = Replay::parse(script);
        let out = run_one(&exec, f.clone(), &mut strat);
        report.executions += 1;
        return match out {
            Outcome::Violation { message } => Err(violation_of(&exec, message, report.executions)),
            _ => Ok(report),
        };
    }

    match cfg.mode {
        Mode::Exhaustive => {
            let mut dfs = Dfs::new(cfg.preemption_bound);
            loop {
                if report.executions >= cfg.max_executions {
                    report.truncated = true;
                    report.sleep_pruned = dfs.sleep_prunes;
                    report.max_depth = dfs.max_depth;
                    return Ok(report);
                }
                let exec = new_exec(&cfg);
                dfs.begin_execution();
                let out = run_one(&exec, f.clone(), &mut dfs);
                report.executions += 1;
                match out {
                    Outcome::Violation { message } => {
                        return Err(violation_of(&exec, message, report.executions));
                    }
                    Outcome::Pruned { limit: true } => report.limit_pruned += 1,
                    Outcome::Pruned { limit: false } | Outcome::Complete => {}
                }
                if !dfs.backtrack() {
                    report.sleep_pruned = dfs.sleep_prunes;
                    report.max_depth = dfs.max_depth;
                    return Ok(report);
                }
            }
        }
        Mode::Sample { executions, seed } => {
            let mut rng = Random::new(seed, cfg.preemption_bound);
            for _ in 0..executions {
                let exec = new_exec(&cfg);
                rng.begin_execution();
                let out = run_one(&exec, f.clone(), &mut rng);
                report.executions += 1;
                match out {
                    Outcome::Violation { message } => {
                        return Err(violation_of(&exec, message, report.executions));
                    }
                    Outcome::Pruned { limit: true } => report.limit_pruned += 1,
                    _ => {}
                }
            }
            Ok(report)
        }
    }
}

/// Like [`try_check`] but panics with the formatted counterexample — the
/// form harness tests use.
pub fn check<F>(cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match try_check(cfg, f) {
        Ok(r) => r,
        Err(v) => panic!("{v}"),
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{thread, AtomicU64, Mutex};
    use super::*;
    use std::sync::atomic::Ordering::*;
    use std::sync::Arc as StdArc;

    /// Message passing with proper Release/Acquire must verify.
    #[test]
    fn message_passing_release_acquire_passes() {
        let r = check(Config::default(), || {
            let data = StdArc::new(AtomicU64::new(0));
            let flag = StdArc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Relaxed);
                f2.store(1, Release);
            });
            if flag.load(Acquire) == 1 {
                assert_eq!(data.load(Relaxed), 42, "acquire must see the payload");
            }
            t.join().unwrap();
        });
        assert!(!r.truncated);
        assert!(r.executions > 2, "expected a real exploration, got {r:?}");
    }

    /// The same protocol with a Relaxed publish must produce a
    /// counterexample: the reader sees flag=1 but stale data=0.
    #[test]
    fn message_passing_relaxed_publish_caught() {
        let v = try_check(Config::default(), || {
            let data = StdArc::new(AtomicU64::new(0));
            let flag = StdArc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Relaxed);
                f2.store(1, Relaxed); // BUG: should be Release
            });
            if flag.load(Acquire) == 1 {
                assert_eq!(data.load(Relaxed), 42, "lost publish");
            }
            t.join().unwrap();
        })
        .expect_err("relaxed publish must be caught");
        assert!(
            v.message.contains("lost publish"),
            "wrong violation: {}",
            v.message
        );
        assert!(!v.replay.is_empty());
        assert!(!v.trace.is_empty());
    }

    /// Two racing unsynchronized increments lose an update under some
    /// schedule (load; add; store — not an RMW).
    #[test]
    fn racy_increment_caught() {
        let v = try_check(Config::default(), || {
            let n = StdArc::new(AtomicU64::new(0));
            let n2 = n.clone();
            let t = thread::spawn(move || {
                let v = n2.load(SeqCst);
                n2.store(v + 1, SeqCst);
            });
            let v = n.load(SeqCst);
            n.store(v + 1, SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(SeqCst), 2, "lost increment");
        })
        .expect_err("lost update must be found");
        assert!(v.message.contains("lost increment"));
    }

    /// RMW increments never lose updates, under any schedule.
    #[test]
    fn rmw_increment_passes() {
        let r = check(Config::default(), || {
            let n = StdArc::new(AtomicU64::new(0));
            let n2 = n.clone();
            let t = thread::spawn(move || {
                n2.fetch_add(1, Relaxed);
            });
            n.fetch_add(1, Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(SeqCst), 2);
        });
        assert!(!r.truncated);
    }

    /// Classic ABBA deadlock is detected and reported, not hung.
    #[test]
    fn mutex_deadlock_detected() {
        let v = try_check(Config::default(), || {
            let a = StdArc::new(Mutex::new(0u32));
            let b = StdArc::new(Mutex::new(0u32));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop(_ga);
            drop(_gb);
            t.join().unwrap();
        })
        .expect_err("ABBA must deadlock under some schedule");
        assert!(v.message.contains("deadlock"), "got: {}", v.message);
    }

    /// Mutual exclusion actually excludes: a mutex-protected read-modify-
    /// write never loses updates.
    #[test]
    fn mutex_protects_counter() {
        let r = check(Config::default(), || {
            let n = StdArc::new(Mutex::new(0u64));
            let n2 = n.clone();
            let t = thread::spawn(move || {
                *n2.lock() += 1;
            });
            *n.lock() += 1;
            t.join().unwrap();
            assert_eq!(*n.lock(), 2);
        });
        assert!(!r.truncated);
    }

    /// Exploration is deterministic: same closure, same execution count.
    #[test]
    fn deterministic_execution_counts() {
        let run = || {
            check(Config::default(), || {
                let n = StdArc::new(AtomicU64::new(0));
                let n2 = n.clone();
                let t = thread::spawn(move || {
                    n2.fetch_add(2, AcqRel);
                });
                n.fetch_add(3, AcqRel);
                t.join().unwrap();
                assert_eq!(n.load(SeqCst), 5);
            })
            .executions
        };
        assert_eq!(run(), run());
    }

    /// A recorded counterexample replays to the same violation.
    #[test]
    fn replay_reproduces_counterexample() {
        let body = || {
            let data = StdArc::new(AtomicU64::new(0));
            let flag = StdArc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(7, Relaxed);
                f2.store(1, Relaxed);
            });
            if flag.load(Acquire) == 1 {
                assert_eq!(data.load(Relaxed), 7, "lost publish");
            }
            t.join().unwrap();
        };
        let v = try_check(Config::default(), body).expect_err("must fail");
        let cfg = Config {
            replay: Some(v.replay.clone()),
            ..Default::default()
        };
        let v2 = try_check(cfg, body).expect_err("replay must reproduce");
        assert!(v2.message.contains("lost publish"));
    }

    /// The weaken() hook downgrades exactly the named site.
    #[test]
    fn weaken_hook_selects_site() {
        let body = || {
            let data = StdArc::new(AtomicU64::new(0));
            let flag = StdArc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(9, Relaxed);
                f2.store(1, sync::weaken("test.flag", Release));
            });
            if flag.load(Acquire) == 1 {
                assert_eq!(data.load(Relaxed), 9, "lost publish");
            }
            t.join().unwrap();
        };
        // Faithful orderings: passes.
        check(Config::default(), body);
        // Weakened at the tagged site: caught.
        let v = try_check(Config::default().with_weaken("test.flag"), body)
            .expect_err("weakened site must be caught");
        assert!(v.message.contains("lost publish"));
    }

    /// Spin loops against another thread's store terminate under the
    /// yield-fairness rule rather than hitting the step limit.
    #[test]
    fn spin_loop_with_yield_terminates() {
        let r = check(Config::default(), || {
            let flag = StdArc::new(AtomicU64::new(0));
            let f2 = flag.clone();
            let t = thread::spawn(move || {
                f2.store(1, Release);
            });
            while flag.load(Acquire) == 0 {
                sync::spin_loop();
            }
            t.join().unwrap();
        });
        assert_eq!(r.limit_pruned, 0, "spin must not exhaust steps: {r:?}");
    }
}
