//! The memory model: a bounded-staleness approximation of the C11 subset the
//! workspace actually uses (Relaxed / Acquire / Release / AcqRel / SeqCst on
//! word-sized atomics, plus mutexes).
//!
//! Every shared atomic location keeps a short history of recent stores. Each
//! thread keeps a *floor view*: for every location, the oldest store sequence
//! number it is still allowed to read. The asymmetry that makes ordering bugs
//! observable:
//!
//! * a **Release** store snapshots the writer's whole floor view into the
//!   store record;
//! * an **Acquire** load that reads a Release store *joins* that snapshot
//!   into the reader's floor — everything the writer had seen becomes
//!   mandatory for the reader;
//! * a **Relaxed** load (or a load of a Relaxed store) only bumps the floor
//!   of the one location it read (coherence), so the reader may go on to
//!   read arbitrarily stale values of *other* locations the writer had
//!   already published.
//!
//! Downgrading a Release publish (or an Acquire read) to Relaxed therefore
//! widens the set of values later loads may return, and the DFS scheduler
//! branches over those extra values — which is exactly how the seeded
//! weakening fixtures produce counterexamples.
//!
//! RMWs always read the coherence-latest store (C11 atomic-RMW guarantee),
//! so single-winner CAS properties hold under any ordering — those are
//! checked by the schedule search, not by staleness.
//!
//! SeqCst is approximated by a single global view that every SeqCst access
//! joins with bidirectionally (a total order of SC events where each SC op
//! is also a global synchronization point). This is stronger than C11 SC —
//! it can hide exotic SC-vs-non-SC mixings — but it is faithful for the
//! StoreLoad edges the protocol code uses SeqCst for, and weakening *from*
//! SeqCst to anything below drops the thread out of the global view, which
//! the model does observe.

use std::collections::HashMap;

/// Location identity: the address of the atomic (or mutex) cell.
pub type Loc = usize;

/// Floor view: location -> smallest store sequence number still readable.
pub type View = HashMap<Loc, u64>;

/// Stores kept per location. Older stores fall off the front; a bounded
/// history keeps the branching factor of stale loads small while still
/// exposing one-publish-behind bugs (the kind ordering mistakes cause).
pub const HIST_CAP: usize = 4;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MOrd {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl MOrd {
    pub fn from_std(o: std::sync::atomic::Ordering) -> MOrd {
        use std::sync::atomic::Ordering::*;
        match o {
            Relaxed => MOrd::Relaxed,
            Acquire => MOrd::Acquire,
            Release => MOrd::Release,
            AcqRel => MOrd::AcqRel,
            SeqCst => MOrd::SeqCst,
            _ => MOrd::SeqCst,
        }
    }
    pub fn acq(self) -> bool {
        matches!(self, MOrd::Acquire | MOrd::AcqRel | MOrd::SeqCst)
    }
    pub fn rel(self) -> bool {
        matches!(self, MOrd::Release | MOrd::AcqRel | MOrd::SeqCst)
    }
    pub fn name(self) -> &'static str {
        match self {
            MOrd::Relaxed => "Relaxed",
            MOrd::Acquire => "Acquire",
            MOrd::Release => "Release",
            MOrd::AcqRel => "AcqRel",
            MOrd::SeqCst => "SeqCst",
        }
    }
}

pub struct StoreRec {
    pub seq: u64,
    pub val: u64,
    /// Writer's floor snapshot iff the store had release semantics.
    pub view: Option<View>,
}

#[derive(Default)]
pub struct LocState {
    /// Oldest..latest, at most [`HIST_CAP`] entries.
    pub stores: Vec<StoreRec>,
}

impl LocState {
    fn latest(&self) -> &StoreRec {
        self.stores
            .last()
            .expect("location has at least its init store")
    }
}

#[derive(Default)]
pub struct MutexState {
    pub held_by: Option<usize>,
    /// Floor view left behind by the last unlocker (lock = acquire it).
    pub view: View,
}

/// Whole-execution model state. Reset for every execution.
#[derive(Default)]
pub struct Model {
    pub locs: HashMap<Loc, LocState>,
    /// Per-thread floor views, indexed by tid.
    pub views: Vec<View>,
    /// Global SeqCst view (see module docs).
    pub sc: View,
    pub mutexes: HashMap<Loc, MutexState>,
}

fn join(dst: &mut View, src: &View) {
    for (&l, &s) in src {
        let e = dst.entry(l).or_insert(0);
        if s > *e {
            *e = s;
        }
    }
}

impl Model {
    pub fn add_thread(&mut self) -> usize {
        self.views.push(View::new());
        self.views.len() - 1
    }

    /// Program-order edge from spawner to spawnee.
    pub fn fork_edge(&mut self, parent: usize, child: usize) {
        let v = self.views[parent].clone();
        join(&mut self.views[child], &v);
    }

    /// Program-order edge from a finished thread to its joiner.
    pub fn join_edge(&mut self, joiner: usize, target: usize) {
        let v = self.views[target].clone();
        join(&mut self.views[joiner], &v);
    }

    fn sc_sync(&mut self, tid: usize) {
        join(&mut self.views[tid], &self.sc.clone());
        self.sc = self.views[tid].clone();
    }

    /// Registers `loc` with its current (real) value as the initial store.
    pub fn ensure_loc(&mut self, loc: Loc, init: u64) {
        self.locs.entry(loc).or_insert_with(|| LocState {
            stores: vec![StoreRec {
                seq: 1,
                val: init,
                view: None,
            }],
        });
    }

    /// How many distinct stores a load by `tid` could observe right now.
    /// Variant `v` in a scheduling choice means "read the v-th most recent
    /// readable store" (variant 0 = coherence-latest).
    pub fn readable_count(&self, tid: usize, loc: Loc) -> usize {
        let Some(ls) = self.locs.get(&loc) else {
            return 1;
        };
        let floor = self.views[tid].get(&loc).copied().unwrap_or(0);
        ls.stores.iter().filter(|s| s.seq >= floor).count().max(1)
    }

    pub fn load(&mut self, tid: usize, loc: Loc, ord: MOrd, variant: usize) -> u64 {
        if ord == MOrd::SeqCst {
            self.sc_sync(tid);
        }
        let floor = self.views[tid].get(&loc).copied().unwrap_or(0);
        let ls = self.locs.get(&loc).expect("loc registered");
        let cands: Vec<usize> = (0..ls.stores.len())
            .filter(|&i| ls.stores[i].seq >= floor)
            .collect();
        let idx = if cands.is_empty() {
            ls.stores.len() - 1
        } else {
            cands[cands.len() - 1 - variant.min(cands.len() - 1)]
        };
        let seq = ls.stores[idx].seq;
        let val = ls.stores[idx].val;
        let sview = ls.stores[idx].view.clone();
        let e = self.views[tid].entry(loc).or_insert(0);
        if seq > *e {
            *e = seq;
        }
        if ord.acq() {
            if let Some(v) = sview {
                join(&mut self.views[tid], &v);
            }
        }
        val
    }

    pub fn store(&mut self, tid: usize, loc: Loc, ord: MOrd, val: u64) {
        if ord == MOrd::SeqCst {
            self.sc_sync(tid);
        }
        let seq = self.locs.get(&loc).expect("loc registered").latest().seq + 1;
        let view = if ord.rel() {
            let mut v = self.views[tid].clone();
            v.insert(loc, seq);
            Some(v)
        } else {
            None
        };
        let ls = self.locs.get_mut(&loc).unwrap();
        ls.stores.push(StoreRec { seq, val, view });
        if ls.stores.len() > HIST_CAP {
            ls.stores.remove(0);
        }
        self.views[tid].insert(loc, seq);
        if ord == MOrd::SeqCst {
            self.sc.insert(loc, seq);
        }
    }

    /// Atomic read-modify-write. Always reads the coherence-latest store;
    /// `f` returns `Some(new)` to commit (fetch_add, successful CAS) or
    /// `None` to leave the location unchanged (failed CAS). Returns the
    /// value read.
    pub fn rmw(
        &mut self,
        tid: usize,
        loc: Loc,
        ord: MOrd,
        ord_fail: MOrd,
        f: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> (u64, Option<u64>) {
        let (old, oseq, oview) = {
            let s = self.locs.get(&loc).expect("loc registered").latest();
            (s.val, s.seq, s.view.clone())
        };
        let new = f(old);
        // C11 §7.17.7.4: the success ordering governs a committed RMW; a
        // failed compare-exchange is just a load with the failure ordering.
        // (Unconditional RMWs pass the same ordering for both.)
        let eff = if new.is_some() { ord } else { ord_fail };
        if eff == MOrd::SeqCst {
            self.sc_sync(tid);
        }
        // Coherence: even a Relaxed RMW reads the latest store, so the
        // thread can never again observe anything older at this location.
        let e = self.views[tid].entry(loc).or_insert(0);
        if oseq > *e {
            *e = oseq;
        }
        if eff.acq() {
            if let Some(v) = oview {
                join(&mut self.views[tid], &v);
            }
        }
        if let Some(nv) = new {
            let seq = oseq + 1;
            let view = if ord.rel() {
                let mut v = self.views[tid].clone();
                v.insert(loc, seq);
                Some(v)
            } else {
                None
            };
            let ls = self.locs.get_mut(&loc).unwrap();
            ls.stores.push(StoreRec { seq, val: nv, view });
            if ls.stores.len() > HIST_CAP {
                ls.stores.remove(0);
            }
            self.views[tid].insert(loc, seq);
            if ord == MOrd::SeqCst {
                self.sc.insert(loc, seq);
            }
        }
        (old, new)
    }

    pub fn mutex_free(&self, loc: Loc) -> bool {
        self.mutexes.get(&loc).is_none_or(|m| m.held_by.is_none())
    }

    pub fn mutex_lock(&mut self, tid: usize, loc: Loc) {
        let m = self.mutexes.entry(loc).or_default();
        debug_assert!(m.held_by.is_none(), "model granted a held mutex");
        m.held_by = Some(tid);
        let v = m.view.clone();
        join(&mut self.views[tid], &v);
    }

    pub fn mutex_unlock(&mut self, tid: usize, loc: Loc) {
        let v = self.views[tid].clone();
        let m = self.mutexes.entry(loc).or_default();
        m.held_by = None;
        m.view = v;
    }
}
