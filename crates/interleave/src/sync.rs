//! Instrumented drop-in replacements for the std/parking_lot primitives the
//! protocol code uses. Outside a checker run (or in abort mode) every type
//! falls straight through to the real primitive with the caller's ordering,
//! so a binary compiled with the facade but not under `interleave::check`
//! behaves identically to one compiled without it.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;

use crate::exec::{current_ctx, set_ctx, Ctx};
use crate::model::MOrd;

pub(crate) fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Seeded-weakening hook: returns `ord` unless the current checker run was
/// configured to weaken `site`, in which case it returns `Relaxed`. The
/// protocol code tags its interesting publishes with this so CI fixtures
/// can prove the checker would catch a mis-ordering there.
///
/// The configured site may be a comma-separated list: the lock-free core
/// double-publishes some facts (e.g. the ring's slot `seq` and `tail`),
/// and a fixture for such a site has to weaken every delivering edge at
/// once to make the loss observable.
#[inline]
pub fn weaken(site: &str, ord: Ordering) -> Ordering {
    if let Some(c) = current_ctx() {
        if let Some(w) = &c.exec.weaken_site {
            if w.split(',').any(|s| s.trim() == site) {
                return Ordering::Relaxed;
            }
        }
    }
    ord
}

/// Voluntary yield point: under the checker this is a zero-cost context
/// switch the scheduler *must* take if another thread can run (livelock
/// fairness for spin loops); outside it is `std::hint::spin_loop`.
#[inline]
pub fn spin_loop() {
    if let Some(c) = current_ctx() {
        c.exec.yield_point(c.tid);
    } else {
        std::hint::spin_loop();
    }
}

/// Like [`spin_loop`] but maps to `std::thread::yield_now` outside a run.
#[inline]
pub fn yield_now() {
    if let Some(c) = current_ctx() {
        c.exec.yield_point(c.tid);
    } else {
        std::thread::yield_now();
    }
}

macro_rules! atomic_int {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Instrumented atomic; `repr(transparent)` over the std type.
        #[repr(transparent)]
        #[derive(Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                Self {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            #[inline]
            fn loc(&self) -> usize {
                self as *const _ as usize
            }

            #[inline]
            fn cur(&self) -> u64 {
                self.inner.load(Ordering::Relaxed) as u64
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                if let Some(c) = current_ctx() {
                    if let Some(v) = c
                        .exec
                        .load(c.tid, self.loc(), MOrd::from_std(ord), self.cur())
                    {
                        return v as $ty;
                    }
                }
                self.inner.load(ord)
            }

            pub fn store(&self, val: $ty, ord: Ordering) {
                if let Some(c) = current_ctx() {
                    if c.exec.store(
                        c.tid,
                        self.loc(),
                        MOrd::from_std(ord),
                        val as u64,
                        self.cur(),
                    ) {
                        self.inner.store(val, Ordering::SeqCst);
                        return;
                    }
                }
                self.inner.store(val, ord)
            }

            fn rmw_op(
                &self,
                ord: Ordering,
                f: &mut dyn FnMut(u64) -> Option<u64>,
                real: impl FnOnce() -> $ty,
            ) -> $ty {
                if let Some(c) = current_ctx() {
                    let m = MOrd::from_std(ord);
                    if let Some((old, new)) = c.exec.rmw(c.tid, self.loc(), m, m, self.cur(), f) {
                        if let Some(n) = new {
                            self.inner.store(n as $ty, Ordering::SeqCst);
                        }
                        return old as $ty;
                    }
                }
                real()
            }

            pub fn swap(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw_op(ord, &mut |_| Some(val as u64), || self.inner.swap(val, ord))
            }

            pub fn fetch_add(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw_op(
                    ord,
                    &mut |o| Some((o as $ty).wrapping_add(val) as u64),
                    || self.inner.fetch_add(val, ord),
                )
            }

            pub fn fetch_sub(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw_op(
                    ord,
                    &mut |o| Some((o as $ty).wrapping_sub(val) as u64),
                    || self.inner.fetch_sub(val, ord),
                )
            }

            pub fn fetch_max(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw_op(ord, &mut |o| Some((o as $ty).max(val) as u64), || {
                    self.inner.fetch_max(val, ord)
                })
            }

            pub fn fetch_min(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw_op(ord, &mut |o| Some((o as $ty).min(val) as u64), || {
                    self.inner.fetch_min(val, ord)
                })
            }

            pub fn fetch_or(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw_op(ord, &mut |o| Some(((o as $ty) | val) as u64), || {
                    self.inner.fetch_or(val, ord)
                })
            }

            pub fn fetch_and(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw_op(ord, &mut |o| Some(((o as $ty) & val) as u64), || {
                    self.inner.fetch_and(val, ord)
                })
            }

            /// Strong CAS. (`compare_exchange_weak` maps here too: spurious
            /// failure only adds retry paths the search covers anyway.)
            pub fn compare_exchange(
                &self,
                expected: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                if let Some(c) = current_ctx() {
                    let mut f = |o: u64| {
                        if o as $ty == expected {
                            Some(new as u64)
                        } else {
                            None
                        }
                    };
                    if let Some((old, wrote)) = c.exec.rmw(
                        c.tid,
                        self.loc(),
                        MOrd::from_std(success),
                        MOrd::from_std(failure),
                        self.cur(),
                        &mut f,
                    ) {
                        return if wrote.is_some() {
                            self.inner.store(new, Ordering::SeqCst);
                            Ok(old as $ty)
                        } else {
                            Err(old as $ty)
                        };
                    }
                }
                self.inner.compare_exchange(expected, new, success, failure)
            }

            pub fn compare_exchange_weak(
                &self,
                expected: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(expected, new, success, failure)
            }

            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.inner.load(Ordering::Relaxed))
                    .finish()
            }
        }
    };
}

atomic_int!(AtomicU64, AtomicU64, u64);
atomic_int!(AtomicUsize, AtomicUsize, usize);
atomic_int!(AtomicU32, AtomicU32, u32);

impl AtomicU64 {
    /// Reinterprets a foreign `std` atomic (e.g. a word inside a
    /// memory-mapped pool) as an instrumented one. Sound because the type
    /// is `repr(transparent)`.
    pub fn from_std(a: &std::sync::atomic::AtomicU64) -> &AtomicU64 {
        // SAFETY: repr(transparent) over std::sync::atomic::AtomicU64.
        unsafe { &*(a as *const std::sync::atomic::AtomicU64 as *const AtomicU64) }
    }
}

/// Free-function alias for [`AtomicU64::from_std`] so downstream facades can
/// re-export one name for both the real and instrumented builds.
pub fn from_std(a: &std::sync::atomic::AtomicU64) -> &AtomicU64 {
    AtomicU64::from_std(a)
}

/// Instrumented atomic bool (modeled as 0/1 in the value history).
#[repr(transparent)]
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }
    fn loc(&self) -> usize {
        self as *const _ as usize
    }
    pub fn load(&self, ord: Ordering) -> bool {
        if let Some(c) = current_ctx() {
            let cur = self.inner.load(Ordering::Relaxed) as u64;
            if let Some(v) = c.exec.load(c.tid, self.loc(), MOrd::from_std(ord), cur) {
                return v != 0;
            }
        }
        self.inner.load(ord)
    }
    pub fn store(&self, val: bool, ord: Ordering) {
        if let Some(c) = current_ctx() {
            let cur = self.inner.load(Ordering::Relaxed) as u64;
            if c.exec
                .store(c.tid, self.loc(), MOrd::from_std(ord), val as u64, cur)
            {
                self.inner.store(val, Ordering::SeqCst);
                return;
            }
        }
        self.inner.store(val, ord)
    }
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        if let Some(c) = current_ctx() {
            let cur = self.inner.load(Ordering::Relaxed) as u64;
            let mut f = |_| Some(val as u64);
            let m = MOrd::from_std(ord);
            if let Some((old, _)) = c.exec.rmw(c.tid, self.loc(), m, m, cur, &mut f) {
                self.inner.store(val, Ordering::SeqCst);
                return old != 0;
            }
        }
        self.inner.swap(val, ord)
    }
    pub fn compare_exchange(
        &self,
        expected: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        if let Some(c) = current_ctx() {
            let cur = self.inner.load(Ordering::Relaxed) as u64;
            let mut f = |o: u64| {
                if (o != 0) == expected {
                    Some(new as u64)
                } else {
                    None
                }
            };
            if let Some((old, wrote)) = c.exec.rmw(
                c.tid,
                self.loc(),
                MOrd::from_std(success),
                MOrd::from_std(failure),
                cur,
                &mut f,
            ) {
                return if wrote.is_some() {
                    self.inner.store(new, Ordering::SeqCst);
                    Ok(old != 0)
                } else {
                    Err(old != 0)
                };
            }
        }
        self.inner.compare_exchange(expected, new, success, failure)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.inner.load(Ordering::Relaxed))
            .finish()
    }
}

/// Instrumented atomic pointer (modeled as the address value).
#[repr(transparent)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }
    fn loc(&self) -> usize {
        self as *const _ as usize
    }
    pub fn load(&self, ord: Ordering) -> *mut T {
        if let Some(c) = current_ctx() {
            let cur = self.inner.load(Ordering::Relaxed) as usize as u64;
            if let Some(v) = c.exec.load(c.tid, self.loc(), MOrd::from_std(ord), cur) {
                return v as usize as *mut T;
            }
        }
        self.inner.load(ord)
    }
    pub fn store(&self, p: *mut T, ord: Ordering) {
        if let Some(c) = current_ctx() {
            let cur = self.inner.load(Ordering::Relaxed) as usize as u64;
            if c.exec.store(
                c.tid,
                self.loc(),
                MOrd::from_std(ord),
                p as usize as u64,
                cur,
            ) {
                self.inner.store(p, Ordering::SeqCst);
                return;
            }
        }
        self.inner.store(p, ord)
    }
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        if let Some(c) = current_ctx() {
            let cur = self.inner.load(Ordering::Relaxed) as usize as u64;
            let mut f = |_| Some(p as usize as u64);
            let m = MOrd::from_std(ord);
            if let Some((old, _)) = c.exec.rmw(c.tid, self.loc(), m, m, cur, &mut f) {
                self.inner.store(p, Ordering::SeqCst);
                return old as usize as *mut T;
            }
        }
        self.inner.swap(p, ord)
    }
    pub fn compare_exchange(
        &self,
        expected: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        if let Some(c) = current_ctx() {
            let cur = self.inner.load(Ordering::Relaxed) as usize as u64;
            let mut f = |o: u64| {
                if o == expected as usize as u64 {
                    Some(new as usize as u64)
                } else {
                    None
                }
            };
            if let Some((old, wrote)) = c.exec.rmw(
                c.tid,
                self.loc(),
                MOrd::from_std(success),
                MOrd::from_std(failure),
                cur,
                &mut f,
            ) {
                return if wrote.is_some() {
                    self.inner.store(new, Ordering::SeqCst);
                    Ok(old as usize as *mut T)
                } else {
                    Err(old as usize as *mut T)
                };
            }
        }
        self.inner.compare_exchange(expected, new, success, failure)
    }
    pub fn compare_exchange_weak(
        &self,
        expected: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(expected, new, success, failure)
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

/// Instrumented mutex with a parking_lot-style infallible `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Declared before `release` so the model unlock in `release`'s Drop
    // runs while... see Drop impl: we implement Drop manually to order the
    // model unlock before the real unlock.
    guard: Option<std::sync::MutexGuard<'a, T>>,
    ctx: Option<(Ctx, usize)>,
}

impl<T> Mutex<T> {
    pub const fn new(v: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(v),
        }
    }
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn loc(&self) -> usize {
        self as *const _ as *const () as usize
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let loc = self.loc();
        if let Some(c) = current_ctx() {
            if c.exec.mutex_lock(c.tid, loc) {
                // The model serializes lock grants, so the real lock below
                // is uncontended (every other in-run thread is parked).
                let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                return MutexGuard {
                    guard: Some(guard),
                    ctx: Some((c, loc)),
                };
            }
        }
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            ctx: None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard live")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard live")
    }
}

impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        // Model unlock first (a schedule point), then the real unlock. No
        // other in-run thread is granted until this thread parks again, so
        // the window where model-free ≠ real-free is unobservable.
        if let Some((c, loc)) = self.ctx.take() {
            c.exec.mutex_unlock(c.tid, loc);
        }
        self.guard = None;
    }
}

/// Cooperative thread handles: spawns a real OS thread registered with the
/// current execution (plain `std::thread::spawn` outside a run).
pub mod thread {
    use super::*;

    pub struct JoinHandle<T> {
        inner: Option<std::thread::JoinHandle<T>>,
        tid: Option<usize>,
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some(c) = current_ctx() {
            if let Some(child) = c.exec.op_spawn(c.tid) {
                let exec = c.exec.clone();
                let h = std::thread::spawn(move || {
                    set_ctx(Some(Ctx {
                        exec: exec.clone(),
                        tid: child,
                    }));
                    exec.op_begin(child);
                    let r = std::panic::catch_unwind(AssertUnwindSafe(f));
                    match r {
                        Ok(v) => {
                            exec.op_finish(child);
                            v
                        }
                        Err(p) => {
                            exec.record_panic(child, panic_msg(p.as_ref()));
                            exec.op_finish(child);
                            std::panic::resume_unwind(p)
                        }
                    }
                });
                return JoinHandle {
                    inner: Some(h),
                    tid: Some(child),
                };
            }
        }
        JoinHandle {
            inner: Some(std::thread::spawn(f)),
            tid: None,
        }
    }

    impl<T> JoinHandle<T> {
        pub fn join(mut self) -> std::thread::Result<T> {
            if let Some(tid) = self.tid {
                if let Some(c) = current_ctx() {
                    c.exec.op_join(c.tid, tid);
                }
            }
            self.inner.take().expect("handle not yet joined").join()
        }
    }
}
