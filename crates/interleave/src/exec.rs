//! Execution runtime: runs one closure-under-test with every thread mapped
//! to a real OS thread, but cooperatively scheduled so that exactly one
//! thread executes user code at a time. Each instrumented operation is a
//! *schedule point*: the thread parks, the controller (the caller's thread)
//! consults the strategy for who runs next and with which load variant,
//! and the granted thread applies the operation against the [`Model`].
//!
//! On a violation (assertion panic in any thread, deadlock, or step-limit
//! overrun) the execution flips into **abort mode**: every parked thread is
//! released and all subsequent facade operations fall straight through to
//! the real std primitives, so unwinding `Drop` impls can never deadlock or
//! double-panic inside the checker.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering as RealOrd};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::model::{Loc, MOrd, Model};

/// A pending operation, declared when a thread parks — before it executes.
/// The strategy sees these to compute enabledness, dependency (sleep-set
/// wakeups) and load-variant fan-out.
#[derive(Clone, Debug)]
pub enum Op {
    /// First schedule point of a freshly spawned thread.
    Begin,
    Load {
        loc: Loc,
        ord: MOrd,
    },
    Store {
        loc: Loc,
        ord: MOrd,
    },
    Rmw {
        loc: Loc,
        ord: MOrd,
    },
    Lock {
        loc: Loc,
    },
    Unlock {
        loc: Loc,
    },
    /// Voluntary yield / spin hint: switching away is free, and the
    /// scheduler must switch if anyone else can run (livelock fairness).
    Yield,
    Spawn,
    Join {
        target: usize,
    },
}

impl Op {
    pub fn loc(&self) -> Option<Loc> {
        match self {
            Op::Load { loc, .. }
            | Op::Store { loc, .. }
            | Op::Rmw { loc, .. }
            | Op::Lock { loc }
            | Op::Unlock { loc } => Some(*loc),
            _ => None,
        }
    }
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Op::Store { .. } | Op::Rmw { .. } | Op::Lock { .. } | Op::Unlock { .. }
        )
    }
    /// Two ops are *dependent* if reordering them could change the outcome.
    pub fn dependent(&self, other: &Op) -> bool {
        match (self.loc(), other.loc()) {
            (Some(a), Some(b)) if a == b => self.is_write() || other.is_write(),
            _ => false,
        }
    }
    pub fn describe(&self) -> String {
        match self {
            Op::Begin => "begin".into(),
            Op::Load { loc, ord } => format!("load({:#x}, {})", loc, ord.name()),
            Op::Store { loc, ord } => format!("store({:#x}, {})", loc, ord.name()),
            Op::Rmw { loc, ord } => format!("rmw({:#x}, {})", loc, ord.name()),
            Op::Lock { loc } => format!("lock({:#x})", loc),
            Op::Unlock { loc } => format!("unlock({:#x})", loc),
            Op::Yield => "yield".into(),
            Op::Spawn => "spawn".into(),
            Op::Join { target } => format!("join(t{target})"),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TState {
    Running,
    Parked,
    Finished,
}

pub struct ThreadSlot {
    pub state: TState,
    pub pending: Option<Op>,
    /// Set while the thread's latest op was a voluntary yield.
    pub yielded: bool,
}

/// One record per *granted* schedule point — the counterexample trace.
#[derive(Clone)]
pub struct StepRec {
    pub tid: usize,
    pub op: Op,
    pub variant: usize,
    /// Value observed / written, when meaningful.
    pub val: Option<u64>,
}

/// A scheduling candidate offered to the strategy.
#[derive(Clone, Copy, Debug)]
pub struct Choice {
    pub tid: usize,
    pub variant: usize,
    /// 1 if picking this choice preempts an enabled, non-yielding thread.
    pub cost: usize,
    /// 1 if this is a stale-load variant (variant > 0).
    pub stale: usize,
}

/// Strategy = the search (DFS, random sampling, or fixed replay).
pub trait Strategy {
    /// Pick one of `cands` (never empty), or `None` to prune this path as
    /// redundant (sleep-set blocked). `pending` maps enabled tids to their
    /// pending ops, for dependency bookkeeping.
    fn next(&mut self, cands: &[Choice], pending: &[(usize, Op)]) -> Option<Choice>;
}

pub struct Core {
    pub threads: Vec<ThreadSlot>,
    pub model: Model,
    /// Addresses known to be touched by ≥ 2 threads (copied from the
    /// checker; may grow during the execution → restart requested).
    /// Address -> logical location id, assigned in first-touch order.
    /// Heap addresses are NOT stable across executions (the allocator
    /// interleaves checker allocations with the closure's), but first-touch
    /// order along a replayed schedule prefix is — so logical ids are what
    /// the model, the trace, and the sleep sets key on.
    pub loc_ids: HashMap<usize, Loc>,
    /// (tid, variant) grant slot.
    pub granted: Option<(usize, usize)>,
    /// Threads spawned whose OS thread has not parked at Begin yet.
    pub starting: usize,
    pub steps: Vec<StepRec>,
    pub choices: Vec<(usize, usize)>,
    pub violation: Option<String>,
    pub step_limit: usize,
    pub stale_budget: usize,
    /// tid that was granted most recently (for preemption accounting).
    pub last_tid: Option<usize>,
    pub step_limit_hit: bool,
    pub strategy_pruned: bool,
}

pub struct Execution {
    pub core: Mutex<Core>,
    pub cv: Condvar,
    pub abort: AtomicBool,
    /// Deadlock verdict: the execution's threads are left parked forever
    /// and leaked (waking them onto real mutexes could deadlock the whole
    /// process). Checks return immediately after a deadlock, so at most one
    /// execution's threads leak.
    pub leaked: AtomicBool,
    /// Weakening site selected for this check run (None = faithful).
    pub weaken_site: Option<String>,
}

/// Per-OS-thread handle back into the execution.
#[derive(Clone)]
pub struct Ctx {
    pub exec: Arc<Execution>,
    pub tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

pub enum Outcome {
    Complete,
    Violation {
        message: String,
    },
    /// Path abandoned. `limit = true` means the step limit fired (lost
    /// coverage, reported); `false` means a sleep-set redundancy prune.
    Pruned {
        limit: bool,
    },
}

impl Execution {
    pub fn new(
        step_limit: usize,
        stale_budget: usize,
        weaken_site: Option<String>,
    ) -> Arc<Execution> {
        Arc::new(Execution {
            core: Mutex::new(Core {
                threads: Vec::new(),
                model: Model::default(),
                loc_ids: HashMap::new(),
                granted: None,
                starting: 0,
                steps: Vec::new(),
                choices: Vec::new(),
                violation: None,
                step_limit,
                stale_budget,
                last_tid: None,
                step_limit_hit: false,
                strategy_pruned: false,
            }),
            cv: Condvar::new(),
            abort: AtomicBool::new(false),
            leaked: AtomicBool::new(false),
            weaken_site,
        })
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn aborted(&self) -> bool {
        self.abort.load(RealOrd::Acquire)
    }

    fn enter_abort(&self, g: &mut MutexGuard<'_, Core>, msg: Option<String>) {
        if let Some(m) = msg {
            if g.violation.is_none() {
                g.violation = Some(m);
            }
        }
        self.abort.store(true, RealOrd::Release);
        self.cv.notify_all();
    }

    /// Records a violation from a panicking thread (called by the spawn
    /// wrapper's catch_unwind).
    pub fn record_panic(&self, tid: usize, msg: String) {
        let mut g = self.lock();
        self.enter_abort(&mut g, Some(format!("thread t{tid} panicked: {msg}")));
    }

    /// Parks the calling thread at a schedule point with pending `op`.
    /// Returns the granted load variant, or `None` in abort mode (caller
    /// must fall through to the real primitive).
    fn park(&self, tid: usize, op: Op) -> Option<usize> {
        let mut g = self.lock();
        if self.aborted() {
            return None;
        }
        g.threads[tid].pending = Some(op);
        g.threads[tid].state = TState::Parked;
        self.cv.notify_all();
        loop {
            if self.aborted() {
                g.threads[tid].state = TState::Running;
                g.threads[tid].pending = None;
                return None;
            }
            if let Some((t, v)) = g.granted {
                if t == tid {
                    g.granted = None;
                    g.threads[tid].state = TState::Running;
                    let op = g.threads[tid].pending.take().expect("pending op");
                    g.threads[tid].yielded = matches!(op, Op::Yield);
                    let variant = v;
                    g.steps.push(StepRec {
                        tid,
                        op,
                        variant,
                        val: None,
                    });
                    return Some(variant);
                }
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn set_step_val(g: &mut Core, val: u64) {
        if let Some(s) = g.steps.last_mut() {
            s.val = Some(val);
        }
    }

    /// Maps an address to its stable logical location id, registering the
    /// location's initial (real) value in the model on first touch.
    fn loc_of(&self, addr: usize, init: u64) -> Loc {
        let mut g = self.lock();
        let next = g.loc_ids.len();
        let loc = *g.loc_ids.entry(addr).or_insert(next);
        g.model.ensure_loc(loc, init);
        loc
    }

    // ---- facade-facing operations -------------------------------------

    /// Returns `None` when the caller should perform the real load instead.
    pub fn load(&self, tid: usize, addr: usize, ord: MOrd, real_cur: u64) -> Option<u64> {
        if self.aborted() {
            return None;
        }
        let loc = self.loc_of(addr, real_cur);
        let variant = self.park(tid, Op::Load { loc, ord })?;
        let mut g = self.lock();
        let v = g.model.load(tid, loc, ord, variant);
        Self::set_step_val(&mut g, v);
        Some(v)
    }

    /// Caller must perform the real store afterwards (keeps the real cell
    /// coherence-latest for abort fallthrough). Returns false on abort.
    pub fn store(&self, tid: usize, addr: usize, ord: MOrd, val: u64, real_cur: u64) -> bool {
        if self.aborted() {
            return false;
        }
        let loc = self.loc_of(addr, real_cur);
        if self.park(tid, Op::Store { loc, ord }).is_none() {
            return false;
        }
        let mut g = self.lock();
        g.model.store(tid, loc, ord, val);
        Self::set_step_val(&mut g, val);
        true
    }

    /// Read-modify-write on the modeled cell. Returns `None` when the caller
    /// should fall through to the real primitive; otherwise `(old, new)`
    /// where `new = None` means no write happened (failed CAS). The caller
    /// must mirror a committed write into the real cell with a plain store.
    pub fn rmw(
        &self,
        tid: usize,
        addr: usize,
        ord: MOrd,
        ord_fail: MOrd,
        real_cur: u64,
        f: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> Option<(u64, Option<u64>)> {
        if self.aborted() {
            return None;
        }
        let loc = self.loc_of(addr, real_cur);
        self.park(tid, Op::Rmw { loc, ord })?;
        let mut g = self.lock();
        let (old, new) = g.model.rmw(tid, loc, ord, ord_fail, f);
        Self::set_step_val(&mut g, new.unwrap_or(old));
        Some((old, new))
    }

    /// Model-level mutex lock. Returns false on abort (caller: real lock
    /// only — the model never held it).
    pub fn mutex_lock(&self, tid: usize, addr: usize) -> bool {
        if self.aborted() {
            return false;
        }
        let loc = self.loc_of(addr, 0);
        if self.park(tid, Op::Lock { loc }).is_none() {
            return false;
        }
        let mut g = self.lock();
        g.model.mutex_lock(tid, loc);
        true
    }

    pub fn mutex_unlock(&self, tid: usize, addr: usize) {
        if self.aborted() {
            return;
        }
        let loc = self.loc_of(addr, 0);
        if self.park(tid, Op::Unlock { loc }).is_none() {
            return;
        }
        let mut g = self.lock();
        g.model.mutex_unlock(tid, loc);
    }

    pub fn yield_point(&self, tid: usize) {
        if self.aborted() {
            return;
        }
        let _ = self.park(tid, Op::Yield);
    }

    /// Parent-side spawn: one schedule point, then registers the child tid.
    pub fn op_spawn(&self, parent: usize) -> Option<usize> {
        if self.aborted() {
            return None;
        }
        self.park(parent, Op::Spawn)?;
        let mut g = self.lock();
        let child = g.model.add_thread();
        g.model.fork_edge(parent, child);
        g.threads.push(ThreadSlot {
            state: TState::Running,
            pending: None,
            yielded: false,
        });
        g.starting += 1;
        Some(child)
    }

    /// Child-side first park.
    pub fn op_begin(&self, tid: usize) {
        {
            let mut g = self.lock();
            g.starting -= 1;
            self.cv.notify_all();
        }
        let _ = self.park(tid, Op::Begin);
    }

    pub fn op_finish(&self, tid: usize) {
        let mut g = self.lock();
        g.threads[tid].state = TState::Finished;
        g.threads[tid].pending = None;
        self.cv.notify_all();
    }

    pub fn op_join(&self, tid: usize, target: usize) {
        if self.aborted() {
            return;
        }
        if self.park(tid, Op::Join { target }).is_none() {
            return;
        }
        let mut g = self.lock();
        g.model.join_edge(tid, target);
    }

    /// Registers the root thread (tid 0). Called by the checker before the
    /// closure starts.
    pub fn register_root(&self) -> usize {
        let mut g = self.lock();
        let tid = g.model.add_thread();
        g.threads.push(ThreadSlot {
            state: TState::Running,
            pending: None,
            yielded: false,
        });
        g.starting += 1;
        tid
    }

    // ---- controller ----------------------------------------------------

    fn enabled(g: &Core, tid: usize) -> bool {
        let t = &g.threads[tid];
        if t.state != TState::Parked {
            return false;
        }
        match t.pending.as_ref() {
            Some(Op::Lock { loc }) => g.model.mutex_free(*loc),
            Some(Op::Join { target }) => g.threads[*target].state == TState::Finished,
            Some(_) => true,
            None => false,
        }
    }

    /// Drives one execution to completion. Call after the root OS thread
    /// has been spawned.
    pub fn drive(&self, strat: &mut dyn Strategy) -> Outcome {
        let mut g = self.lock();
        loop {
            // Wait for quiescence: no unconsumed grant, nobody running,
            // nobody mid-startup.
            loop {
                let busy = g.granted.is_some()
                    || g.starting > 0
                    || g.threads.iter().any(|t| t.state == TState::Running);
                if !busy || self.aborted() {
                    break;
                }
                g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            if self.aborted() {
                // Wait for every thread to finish its unchecked fallthrough.
                loop {
                    if g.threads.iter().all(|t| t.state == TState::Finished) {
                        break;
                    }
                    self.cv.notify_all();
                    g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
                return match g.violation.take() {
                    Some(message) => Outcome::Violation { message },
                    None if g.step_limit_hit => Outcome::Pruned { limit: true },
                    None if g.strategy_pruned => Outcome::Pruned { limit: false },
                    None => Outcome::Complete,
                };
            }
            if g.threads.iter().all(|t| t.state == TState::Finished) {
                return Outcome::Complete;
            }
            if g.steps.len() >= g.step_limit {
                g.step_limit_hit = true;
                self.enter_abort(&mut g, None);
                continue;
            }

            let enabled: Vec<usize> = (0..g.threads.len())
                .filter(|&t| Self::enabled(&g, t))
                .collect();
            if enabled.is_empty() {
                let stuck: Vec<String> = g
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.state == TState::Parked)
                    .map(|(i, t)| {
                        format!(
                            "t{i} blocked at {}",
                            t.pending.as_ref().map(|o| o.describe()).unwrap_or_default()
                        )
                    })
                    .collect();
                // Leak rather than release: waking the blocked threads
                // would send them to the *real* mutexes, reproducing the
                // deadlock at the OS level.
                self.leaked.store(true, RealOrd::Release);
                return Outcome::Violation {
                    message: format!("deadlock: {}", stuck.join("; ")),
                };
            }

            // Livelock fairness: a thread that just yielded must cede if
            // anyone else can run.
            let last = g.last_tid;
            let eligible: Vec<usize> = if let Some(lt) = last {
                if g.threads[lt].yielded && enabled.iter().any(|&t| t != lt) {
                    enabled.iter().copied().filter(|&t| t != lt).collect()
                } else {
                    enabled.clone()
                }
            } else {
                enabled.clone()
            };

            let mut cands: Vec<Choice> = Vec::new();
            let mut pending: Vec<(usize, Op)> = Vec::new();
            // Current thread first so choice 0 ≈ run-to-completion.
            let mut order = eligible.clone();
            if let Some(lt) = last {
                order.sort_by_key(|&t| (t != lt, t));
            }
            let stale_spent: usize = g.steps.iter().map(|s| usize::from(s.variant > 0)).sum();
            for &t in &order {
                let op = g.threads[t].pending.clone().expect("parked has op");
                let cost = match last {
                    Some(lt) if lt != t && Self::enabled(&g, lt) && !g.threads[lt].yielded => 1,
                    _ => 0,
                };
                let variants = match &op {
                    Op::Load { loc, .. } if stale_spent < g.stale_budget => {
                        g.model.readable_count(t, *loc)
                    }
                    _ => 1,
                };
                for v in 0..variants {
                    cands.push(Choice {
                        tid: t,
                        variant: v,
                        cost,
                        stale: usize::from(v > 0),
                    });
                }
                pending.push((t, op));
            }

            if std::env::var_os("INTERLEAVE_TRACE").is_some() {
                eprintln!(
                    "[ilv] step {} cands={:?} pending={:?}",
                    g.steps.len(),
                    cands,
                    pending
                        .iter()
                        .map(|(t, o)| (*t, o.describe()))
                        .collect::<Vec<_>>()
                );
            }
            let Some(pick) = strat.next(&cands, &pending) else {
                g.strategy_pruned = true;
                self.enter_abort(&mut g, None);
                continue;
            };
            // Guard against a diverging replay (a nondeterministic closure):
            // granting a thread that is not actually enabled would never be
            // consumed and hang the controller.
            if !cands
                .iter()
                .any(|c| c.tid == pick.tid && c.variant == pick.variant)
            {
                self.enter_abort(
                    &mut g,
                    Some(format!(
                        "schedule divergence: strategy picked t{}.{} but enabled \
                         candidates were {:?} — is the closure nondeterministic?",
                        pick.tid, pick.variant, cands
                    )),
                );
                continue;
            }
            g.choices.push((pick.tid, pick.variant));
            g.last_tid = Some(pick.tid);
            g.granted = Some((pick.tid, pick.variant));
            self.cv.notify_all();
        }
    }

    /// Formats the recorded steps as a printable counterexample trace.
    pub fn trace(&self) -> (Vec<String>, String) {
        let g = self.lock();
        let lines = g
            .steps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let val = s.val.map(|v| format!(" = {v:#x}")).unwrap_or_default();
                let var = if s.variant > 0 {
                    format!(" [stale#{}]", s.variant)
                } else {
                    String::new()
                };
                format!("{i:4}  t{}  {}{}{}", s.tid, s.op.describe(), val, var)
            })
            .collect();
        let replay = g
            .choices
            .iter()
            .map(|(t, v)| format!("{t}.{v}"))
            .collect::<Vec<_>>()
            .join(",");
        (lines, replay)
    }
}
