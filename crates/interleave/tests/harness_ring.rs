//! Model-check harness 2: the SPMC write-back ring's claim / help / release
//! protocol (`montage::buffers::Ring`) and the claim-census gate the epoch
//! boundary uses to skip the helper scan (`montage::buffers::Buffers`).
//!
//! The code under test is the *real* protocol implementation — the harness
//! only provides tiny configurations (capacity-2 rings, one entry in
//! flight) and asserts the protocol's contracts under every schedule the
//! preemption bound admits:
//!
//! * every pushed entry's write-back is issued at least once, and each
//!   entry is popped by exactly one consumer;
//! * a consumer parked inside its claim window never loses its entry — the
//!   owner's wrap-around push or the boundary helper re-issues the flush;
//! * the boundary's one-load census gate (`claims_open`) never skips the
//!   helper scan while a claim window is open (the fence-soundness note in
//!   `buffers.rs`).
//!
//! A seeded-weakening fixture then downgrades the ring's publish pair
//! (`ring.seq.publish` + `ring.tail.publish`) and asserts the checker
//! produces a counterexample — the CI proof that the checker can actually
//! see the bug those orderings prevent. The pair must be weakened
//! *together*: the ring double-publishes each entry (the slot `seq` and
//! the `tail` bump each carry the full entry), so either Release alone
//! still delivers `off`/`len` — exhaustive exploration confirmed the
//! single-site weakenings are unobservable, which is itself a finding
//! about the protocol's redundancy (see DESIGN.md §7).

use std::sync::Arc;

use interleave::{check, try_check, Config};
use montage::buffers::{Buffers, Ring};
use montage::sync::thread;
use montage::sync::{spin_loop, AtomicU64, Ordering};
use pmem::{POff, PmemConfig, PmemPool};

/// Every pushed entry is flushed and popped exactly once, no matter how a
/// racing consumer, a helping boundary, and the owner's wrap-around push
/// interleave.
#[test]
fn ring_entries_flushed_and_popped_exactly_once() {
    let r = check(Config::from_env(), || {
        let ring = Arc::new(Ring::new(2));
        // flushed[i] counts flush invocations for off=i+1; pops[i] counts
        // successful pops. Instrumented atomics so the checker orders them.
        let flushed = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
        let pops = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);

        for off in 1..=2u64 {
            let f = flushed.clone();
            ring.push_with(off, 1, move |o, _| {
                f[(o - 1) as usize].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }

        // A racing consumer that may park anywhere inside its claim window.
        let (r2, f2, p2) = (ring.clone(), flushed.clone(), pops.clone());
        let consumer = thread::spawn(move || {
            let f = f2.clone();
            if let Some((o, _)) = r2.pop_with(move |o, _| {
                f[(o - 1) as usize].fetch_add(1, Ordering::Relaxed);
            }) {
                p2[(o - 1) as usize].fetch_add(1, Ordering::Relaxed);
            }
        });

        // The boundary: drain what is left, then help any parked claimant.
        let f3 = flushed.clone();
        while let Some((o, _)) = ring.pop_with({
            let f = f3.clone();
            move |o, _| {
                f[(o - 1) as usize].fetch_add(1, Ordering::Relaxed);
            }
        }) {
            pops[(o - 1) as usize].fetch_add(1, Ordering::Relaxed);
        }
        let f4 = flushed.clone();
        ring.help_claimed(move |o, _| {
            f4[(o - 1) as usize].fetch_add(1, Ordering::Relaxed);
        });

        consumer.join().unwrap();
        for i in 0..2 {
            assert_eq!(
                pops[i].load(Ordering::Relaxed),
                1,
                "entry {} must be popped exactly once",
                i + 1
            );
            assert!(
                flushed[i].load(Ordering::Relaxed) >= 1,
                "entry {} must be flushed at least once",
                i + 1
            );
        }
    });
    assert!(!r.truncated, "exploration must finish: {r:?}");
}

/// The owner's wrap-around push must complete a parked claimant's
/// write-back itself (push never blocks on another thread's progress).
#[test]
fn ring_owner_helps_parked_claimant_on_wraparound() {
    let r = check(Config::from_env(), || {
        let ring = Arc::new(Ring::new(2));
        let flushed = Arc::new(AtomicU64::new(0));

        let f0 = flushed.clone();
        ring.push_with(1, 1, move |_, _| {
            f0.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();

        // Claimant: pops entry 1 and may park inside the claim window.
        let (r2, f2) = (ring.clone(), flushed.clone());
        let claimant = thread::spawn(move || {
            let f = f2.clone();
            r2.pop_with(move |_, _| {
                f.fetch_add(1, Ordering::Relaxed);
            });
        });

        // Owner: fills the ring and wraps into the claimant's slot; the
        // loop inside push_with must finish the stale entry's write-back
        // rather than wait for the parked claimant. A push may transiently
        // report the ring full while the claimant sits between its seq
        // check and its head CAS, so retry — the contract is only that the
        // owner is never stuck forever.
        for off in 2..=3u64 {
            loop {
                let f = flushed.clone();
                if ring
                    .push_with(off, 1, move |_, _| {
                        f.fetch_add(1, Ordering::Relaxed);
                    })
                    .is_ok()
                {
                    break;
                }
                spin_loop();
            }
        }

        claimant.join().unwrap();
        assert!(
            flushed.load(Ordering::Relaxed) >= 1,
            "entry 1's write-back must have been issued by someone"
        );
    });
    assert!(!r.truncated, "exploration must finish: {r:?}");
}

fn tiny_pool() -> PmemPool {
    PmemPool::new(PmemConfig::strict_for_test(1 << 20))
}

/// The boundary's census gate: after `drain + (claims_open? help)`, no slot
/// may remain claimed-but-unreleased with the helper skipped — that is
/// exactly the state whose write-back the fence could not prove issued.
fn census_body() {
    let pool = Arc::new(tiny_pool());
    let bufs = Arc::new(Buffers::new(1, 2));
    bufs.push_persist(&pool, 0, 10, POff::new(64 * 1024), 8, || true);

    // A drainer that may park inside its claim window.
    let (b2, p2) = (bufs.clone(), pool.clone());
    let drainer = thread::spawn(move || {
        b2.drain_persist(&p2, 0, 10);
    });

    // The boundary: drain, then the census-gated helper scan, then the
    // fence-point assertion.
    bufs.drain_persist(&pool, 0, 10);
    let helped = bufs.claims_open();
    if helped {
        bufs.help_drainers(&pool, 0);
    }
    assert!(
        helped || bufs.debug_claimed(0) == 0,
        "fence with a claimed entry and no helper scan: unflushed write-back"
    );

    drainer.join().unwrap();
}

#[test]
fn census_gate_never_skips_open_claim() {
    let r = check(Config::from_env(), census_body);
    assert!(!r.truncated, "exploration must finish: {r:?}");
}

/// A pop must return the value that was pushed (the slot publish carries
/// the entry fields to the consumer).
fn seq_publish_body() {
    let ring = Arc::new(Ring::new(2));
    let r2 = ring.clone();
    let producer = thread::spawn(move || {
        r2.push_with(7, 1, |_, _| {}).unwrap();
    });
    loop {
        if let Some((off, len)) = ring.pop_with(|_, _| {}) {
            assert_eq!((off, len), (7, 1), "pop observed a torn entry");
            break;
        }
        spin_loop();
    }
    producer.join().unwrap();
}

#[test]
fn seq_publish_carries_entry_fields() {
    let r = check(Config::from_env(), seq_publish_body);
    assert!(!r.truncated, "exploration must finish: {r:?}");
}

/// Seeded weakening: with *both* publishes of the pair (`seq` and `tail`)
/// downgraded to Relaxed, nothing carries `off`/`len` to the consumer any
/// more; some schedule pops a stale (torn) entry. Weakening either site
/// alone is provably unobservable — the other Release still delivers the
/// fields — so the fixture weakens the pair, which is also what a real
/// regression (a refactor replacing both with Relaxed stores) looks like.
#[test]
fn weakened_publish_pair_is_caught() {
    let v = try_check(
        Config::from_env().with_weaken("ring.seq.publish,ring.tail.publish"),
        seq_publish_body,
    )
    .expect_err("weakened publish pair must be caught");
    assert!(
        v.message.contains("torn entry"),
        "unexpected counterexample: {v}"
    );
}
