//! Model-check harness 4: the epoch-verified DCSS (`montage::VerifyCell`)
//! — descriptor publish, install, decide, detach, and helper completion.
//!
//! The code under test is the real `cas_verify`/`cas_plain`/`load`
//! implementation, descriptor arena included. The explored contracts:
//!
//! * two racing `cas_verify`s from the same expected value admit exactly
//!   one winner, and the cell ends at the winner's value;
//! * a reader that observes an in-flight descriptor helps it to a decided,
//!   detached state — `load` never returns a marked word and never parks
//!   behind the installer;
//! * a `cas_plain` racing a `cas_verify` serializes: both can succeed only
//!   in the order their expected values chain.
//!
//! No seeded-weakening fixture lives here: every DCSS edge is either
//! SeqCst (install/decide/detach, whose global-order smuggling masks a
//! single-site weakening by construction) or the descriptor seqlock
//! publish, which the SeqCst install covers — the maskability analysis is
//! written up in DESIGN.md §7.

use std::sync::Arc;

use interleave::{check, Config};
use montage::dcss::CasVerifyError;
use montage::sync::{spin_loop, thread};
use montage::{EpochSys, EsysConfig, FreeStrategy, PersistStrategy, VerifyCell};
use pmem::{PmemConfig, PmemPool};

fn tiny_esys() -> Arc<EpochSys> {
    let cfg = EsysConfig {
        max_threads: 2,
        persist: PersistStrategy::Buffered(2),
        free: FreeStrategy::Background,
        epoch_length: std::time::Duration::from_secs(3600),
        advance_grace_spins: 1,
    };
    EpochSys::format(PmemPool::new(PmemConfig::strict_for_test(8 << 20)), cfg)
}

/// Exactly one of two racing `cas_verify`s from the same expected value
/// wins, and the cell holds the winner's value afterwards.
#[test]
fn cas_verify_race_has_exactly_one_winner() {
    let r = check(Config::from_env(), || {
        let sys = tiny_esys();
        let cell = Arc::new(VerifyCell::new(5));
        let t0 = sys.register_thread();
        let t1 = sys.register_thread();

        let (s2, c2) = (sys.clone(), cell.clone());
        let rival = thread::spawn(move || {
            let g = s2.begin_op(t1);
            c2.cas_verify(&s2, &g, 5, 7).is_ok()
        });

        let won = {
            let g = sys.begin_op(t0);
            cell.cas_verify(&sys, &g, 5, 6).is_ok()
        };
        let rival_won = rival.join().unwrap();

        assert!(
            won ^ rival_won,
            "exactly one racing cas_verify must win (won={won}, rival={rival_won})"
        );
        let v = cell.load(&sys);
        assert_eq!(
            v,
            if won { 6 } else { 7 },
            "cell must hold the winner's value"
        );
    });
    assert!(!r.truncated, "exploration must finish: {r:?}");
}

/// A reader racing the installer: `load` helps any in-flight descriptor
/// and only ever returns unmarked, fully-decided values — here, the old or
/// the new value, never a torn or marked word.
#[test]
fn load_helps_in_flight_dcss_to_completion() {
    let r = check(Config::from_env(), || {
        let sys = tiny_esys();
        let cell = Arc::new(VerifyCell::new(5));
        let t0 = sys.register_thread();
        let t1 = sys.register_thread();

        let (s2, c2) = (sys.clone(), cell.clone());
        let installer = thread::spawn(move || {
            let g = s2.begin_op(t1);
            c2.cas_verify(&s2, &g, 5, 6)
                .expect("no epoch change, no rival: the DCSS must succeed");
        });

        // Reader: every intermediate observation is 5 or 6; the loop exits
        // once the new value lands (the installer cannot be outwaited — if
        // the reader meets the marked word it completes the DCSS itself).
        let _g0 = sys.begin_op(t0);
        loop {
            let v = cell.load(&sys);
            assert!(v == 5 || v == 6, "load returned a torn value {v}");
            if v == 6 {
                break;
            }
            spin_loop();
        }

        installer.join().unwrap();
    });
    assert!(!r.truncated, "exploration must finish: {r:?}");
}

/// `cas_plain` and `cas_verify` racing from the same expected value
/// serialize like two CASes: one wins from 5, and the loser can only win
/// afterwards from the winner's value.
#[test]
fn cas_plain_serializes_against_cas_verify() {
    let r = check(Config::from_env(), || {
        let sys = tiny_esys();
        let cell = Arc::new(VerifyCell::new(5));
        let t0 = sys.register_thread();
        let t1 = sys.register_thread();

        let (s2, c2) = (sys.clone(), cell.clone());
        let verifier = thread::spawn(move || {
            let g = s2.begin_op(t1);
            c2.cas_verify(&s2, &g, 5, 6)
        });

        let plain_won = cell.cas_plain(&sys, 5, 8);
        let verify_res = verifier.join().unwrap();

        let v = cell.load(&sys);
        match (plain_won, &verify_res) {
            (true, Err(CasVerifyError::Conflict(seen))) => {
                assert_eq!(*seen, 8, "loser must have observed the winner's value");
                assert_eq!(v, 8);
            }
            (false, Ok(())) => assert_eq!(v, 6),
            (true, Ok(())) => {
                unreachable!("both won from the same expected value 5")
            }
            (false, Err(e)) => unreachable!("both lost: plain failed and {e:?}"),
            (true, Err(CasVerifyError::Epoch(e))) => {
                unreachable!("nobody advances the clock here: {e:?}")
            }
        }
        let _ = t0;
    });
    assert!(!r.truncated, "exploration must finish: {r:?}");
}
