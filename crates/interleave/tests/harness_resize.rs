//! Model-check harness 3: the hashmap's online resize — seal / drain /
//! retire racing lock-free lookups (`montage_ds::MontageHashMap`).
//!
//! The code under test is the real map. A one-bucket level with
//! `max_load = 1` makes the second insert install a resize, all in the
//! deterministic single-threaded prefix; the explored race is then a
//! reader walking the old-level/new-level protocol (seal check, chain
//! lock, re-check) against a migrator sealing and draining the only old
//! bucket. The contract: no schedule may lose a key — a reader always
//! finds both keys with their exact bytes, mid-migration or after.
//!
//! (The directory pointer itself is a crossbeam-epoch atomic the checker
//! cannot instrument; its loads run serialized between facade points. The
//! seal flags, chain locks, and migration cursor — the parts the resize
//! protocol's correctness argument leans on — are all instrumented. See
//! DESIGN.md §7 for the fidelity notes.)

use std::sync::Arc;

use interleave::{check, Config};
use montage::sync::thread;
use montage::{EpochSys, EsysConfig, FreeStrategy, PersistStrategy};
use montage_ds::MontageHashMap;
use pmem::{PmemConfig, PmemPool};

fn tiny_esys() -> Arc<EpochSys> {
    let cfg = EsysConfig {
        max_threads: 2,
        persist: PersistStrategy::Buffered(2),
        free: FreeStrategy::Background,
        epoch_length: std::time::Duration::from_secs(3600),
        advance_grace_spins: 1,
    };
    EpochSys::format(PmemPool::new(PmemConfig::strict_for_test(8 << 20)), cfg)
}

/// A racing reader never loses a key to the migration, and the completed
/// resize leaves both keys in the grown level.
#[test]
fn resize_never_loses_a_key_from_racing_lookups() {
    let r = check(Config::from_env(), || {
        let sys = tiny_esys();
        let map = Arc::new(MontageHashMap::with_max_load(sys.clone(), 7, 1, 1));
        let t0 = sys.register_thread();
        let t1 = sys.register_thread();

        // Deterministic prefix: two inserts overload the single bucket and
        // install the resize before any racing thread exists.
        map.put(t0, 1u64, b"a");
        map.put(t0, 2u64, b"b");
        assert!(map.resizing(), "max_load=1 must install a resize");

        let m2 = map.clone();
        let reader = thread::spawn(move || {
            assert_eq!(
                m2.get_owned(t1, &1u64).as_deref(),
                Some(&b"a"[..]),
                "key 1 lost mid-migration"
            );
            assert_eq!(
                m2.get_owned(t1, &2u64).as_deref(),
                Some(&b"b"[..]),
                "key 2 lost mid-migration"
            );
        });

        map.finish_resize(t0);
        reader.join().unwrap();

        assert!(!map.resizing(), "finish_resize must retire the old level");
        assert_eq!(map.capacity(), 2, "the level must have grown");
        assert_eq!(map.len(), 2);
        assert_eq!(map.get_owned(t0, &1u64).as_deref(), Some(&b"a"[..]));
        assert_eq!(map.get_owned(t0, &2u64).as_deref(), Some(&b"b"[..]));

        // Post-resize update through the grown level: exactly one copy of
        // the key, holding the new bytes. (A *racing* writer during the
        // drain multiplies the explored space past the CI budget — the
        // migrate-then-mutate writer path is covered by `montage-ds`'s own
        // stress tests; the model checker owns the lookup race above.)
        assert!(map.put(t0, 1u64, b"A"), "update must find the migrated key");
        assert_eq!(map.len(), 2, "an update must not duplicate the key");
        assert_eq!(map.get_owned(t0, &1u64).as_deref(), Some(&b"A"[..]));
    });
    assert!(!r.truncated, "exploration must finish: {r:?}");
}
