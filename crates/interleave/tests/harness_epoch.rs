//! Model-check harness 1: the epoch clock's single-winner CAS, the
//! durable-clock mirror `sync` acks against, and the tracker gate that
//! lets an advancer trust an idle slot.
//!
//! The code under test is the *real* `montage::esys::EpochSys` advance
//! path and the real `Tracker`/`Mindicator`/`Buffers` protocol — the
//! harness only shrinks the configuration (2 thread slots, capacity-2
//! rings, a zero-spin grace window) so bound-2 exploration is exhaustive.
//!
//! Three seeded-weakening fixtures then downgrade one ordering each and
//! assert the checker produces a counterexample:
//!
//! * `esys.durable.mirror` — the winner's durable-clock release; without
//!   it a syncer can ack an epoch whose write-backs it cannot see.
//! * `tracker.unregister` — the op's idle publish; without it an advancer
//!   can observe the slot idle yet miss the op's buffered pushes.
//! * `tracker.idle.acquire` — the matching load side of the same edge.

use std::sync::Arc;

use interleave::{check, try_check, Config};
use montage::buffers::Buffers;
use montage::mindicator::Mindicator;
use montage::sync::thread;
use montage::sync::{spin_loop, AtomicBool, Ordering};
use montage::tracker::{Tracker, IDLE};
use montage::{EpochSys, EsysConfig, FreeStrategy, PersistStrategy};
use pmem::{POff, PmemConfig, PmemPool};

// One thread slot: every boundary scan (tracker, mindicator, per-thread
// rings) is a single iteration, which keeps exhaustive bound-2 exploration
// in the hundreds of executions instead of hundreds of thousands. The
// advancing racer needs no slot of its own — `advance_epoch` never
// registers.
fn tiny_esys() -> Arc<EpochSys> {
    let cfg = EsysConfig {
        max_threads: 1,
        persist: PersistStrategy::Buffered(2),
        free: FreeStrategy::Background,
        epoch_length: std::time::Duration::from_secs(3600),
        advance_grace_spins: 1,
    };
    EpochSys::format(PmemPool::new(PmemConfig::strict_for_test(8 << 20)), cfg)
}

/// Two racing advances over the same quiescent system: the clock ticks
/// once per boundary (the CAS admits one winner), the durable mirror never
/// runs ahead of the clock, and once both advances returned the mirror has
/// caught up — plus, if both boundaries happened (clock moved twice), the
/// op's epoch-`e0` buffered write-back must have been drained.
#[test]
fn epoch_tick_has_single_winner_and_mirror_catches_up() {
    let r = check(Config::from_env(), || {
        let sys = tiny_esys();
        let e0 = sys.curr_epoch();
        let t0 = sys.register_thread();
        {
            let g = sys.begin_op(t0);
            sys.pnew(&g, 1, &0xabu64);
        }

        let s2 = sys.clone();
        let racer = thread::spawn(move || {
            s2.advance_epoch();
        });
        sys.advance_epoch();
        racer.join().unwrap();

        let clock = sys.curr_epoch();
        assert!(
            clock == e0 + 1 || clock == e0 + 2,
            "two advances tick the clock once or twice, got {e0} -> {clock}"
        );
        assert_eq!(
            sys.durable_epoch(),
            clock,
            "quiescent mirror must equal the clock"
        );
        if clock == e0 + 2 {
            assert_eq!(
                sys.debug_min_pending(t0),
                u64::MAX,
                "the e0 boundary ran, so the op's write-back must be drained"
            );
        }
    });
    assert!(!r.truncated, "exploration must finish: {r:?}");
}

/// A syncer-shaped observer: waits for the durable mirror to reach
/// `e0 + 2` (the op's durability point) and then asserts it can see the
/// op's write-back drained. The *only* edge from the advancing thread to
/// the observer is the durable-clock release — exactly the edge `sync`
/// acks rely on.
fn durable_mirror_body() {
    let sys = tiny_esys();
    let e0 = sys.curr_epoch();
    let t0 = sys.register_thread();
    {
        let g = sys.begin_op(t0);
        sys.pnew(&g, 1, &0xcdu64);
    }

    let s2 = sys.clone();
    let observer = thread::spawn(move || {
        while s2.durable_epoch() < e0 + 2 {
            spin_loop();
        }
        assert_eq!(
            s2.debug_min_pending(t0),
            u64::MAX,
            "durable mirror visible but the drained ring is not"
        );
    });

    sys.advance_epoch();
    sys.advance_epoch();
    observer.join().unwrap();
}

#[test]
fn durable_mirror_carries_the_boundary_drains() {
    let r = check(Config::from_env(), durable_mirror_body);
    assert!(!r.truncated, "exploration must finish: {r:?}");
}

/// Seeded weakening: the winner's durable-clock publish downgraded to
/// Relaxed no longer carries the boundary's drains; some schedule lets the
/// observer read the new mirror value while still seeing the pre-drain
/// ring — the ack-without-durability bug `sync` is built to exclude.
#[test]
fn weakened_durable_mirror_is_caught() {
    let v = try_check(
        Config::from_env().with_weaken("esys.durable.mirror"),
        durable_mirror_body,
    )
    .expect_err("weakened durable mirror must be caught");
    assert!(
        v.message.contains("drained ring is not"),
        "unexpected counterexample: {v}"
    );
}

/// The advancer-side tracker gate, reduced to its three moving parts: a
/// worker registers, pushes a buffered write-back, publishes its oldest
/// epoch, and unregisters; an advancer that observes the slot idle must
/// then see the mindicator/ring state the op left behind, or it will skip
/// a drain the boundary needs.
fn tracker_gate_body() {
    let pool = Arc::new(PmemPool::new(PmemConfig::strict_for_test(1 << 20)));
    let tracker = Arc::new(Tracker::new(1));
    let mind = Arc::new(Mindicator::new(1));
    let bufs = Arc::new(Buffers::new(1, 2));
    // Stands in for the synchronization `BEGIN_OP` establishes at
    // registration (the SeqCst announce/validate handshake): acquiring it
    // tells the advancer the op exists, so a later idle read cannot be the
    // slot's *initial* value. It is published before the op's pushes, so
    // it delivers none of the state the unregister edge is responsible
    // for — the fixtures below stay unmasked.
    let registered = Arc::new(AtomicBool::new(false));

    let (t2, m2, b2, p2, r2) = (
        tracker.clone(),
        mind.clone(),
        bufs.clone(),
        pool.clone(),
        registered.clone(),
    );
    let worker = thread::spawn(move || {
        t2.register(0, 10);
        r2.store(true, Ordering::Release);
        b2.push_persist(&p2, 0, 10, POff::new(64 * 1024), 8, || true);
        m2.publish(0, 10);
        t2.unregister(0);
    });

    // Advancer: watch the op appear, then watch it retire, then run the
    // gated drain exactly the way `advance_epoch` does.
    while !registered.load(Ordering::Acquire) {
        spin_loop();
    }
    while tracker.load(0) != IDLE {
        spin_loop();
    }
    if mind.min() < 11 {
        bufs.drain_persist_upto(&pool, 0, 10);
    }
    assert_eq!(
        bufs.min_pending(0),
        u64::MAX,
        "idle slot observed but the op's write-back was skipped"
    );

    worker.join().unwrap();
}

#[test]
fn idle_tracker_slot_publishes_the_finished_op() {
    let r = check(Config::from_env(), tracker_gate_body);
    assert!(!r.truncated, "exploration must finish: {r:?}");
}

/// Seeded weakening: the unregister publish downgraded to Relaxed lets the
/// advancer see the slot idle while the mindicator still reads EMPTY — it
/// skips the drain and fences with the op's write-back still buffered.
#[test]
fn weakened_unregister_is_caught() {
    let v = try_check(
        Config::from_env().with_weaken("tracker.unregister"),
        tracker_gate_body,
    )
    .expect_err("weakened unregister must be caught");
    assert!(
        v.message.contains("write-back was skipped"),
        "unexpected counterexample: {v}"
    );
}

/// Seeded weakening: same edge, load side — the advancer's idle read
/// downgraded to Relaxed discards the synchronization the Release publish
/// offered, producing the same skipped-drain schedule.
#[test]
fn weakened_idle_acquire_is_caught() {
    let v = try_check(
        Config::from_env().with_weaken("tracker.idle.acquire"),
        tracker_gate_body,
    )
    .expect_err("weakened idle acquire must be caught");
    assert!(
        v.message.contains("write-back was skipped"),
        "unexpected counterexample: {v}"
    );
}
