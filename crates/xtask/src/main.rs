//! Repo lint: the static companion to the `persist-san` runtime sanitizer.
//!
//! `cargo run -p xtask -- lint` walks every `.rs` file in the repo (vendored
//! shims excluded) through a comment- and string-aware token scanner and
//! enforces three rules:
//!
//! * **safety-comment** — every `unsafe` keyword (block, fn, impl) must have
//!   a `// SAFETY:` comment (or a `# Safety` doc section) within the five
//!   preceding lines.
//! * **raw-write** — raw memory writes that can touch pool memory
//!   (`ptr::write*`, `copy_nonoverlapping`, `write_volatile`) bypass the
//!   sanitizer's tracked write path and are allowed only inside the module
//!   allowlist below.
//! * **flush-no-fence** — a function that issues `clwb`/`clwb_range` but
//!   never reaches an `sfence` (or `persist_range`, which fences) leaves
//!   lines parked in the flushed-unfenced state; legitimate deferrals (the
//!   buffered-persistence drains whose fence is the epoch boundary) must say
//!   so.
//! * **ord-justify** — inside the model-checked protocol core
//!   (`crates/montage`, `crates/montage-ds`), every non-SeqCst
//!   `Ordering::{Relaxed, Acquire, Release, AcqRel}` must carry an
//!   `// ord(<rule>): reason` comment within the six preceding lines, naming
//!   the edge it implements. SeqCst needs no tag (it is the
//!   strongest-by-default choice); test modules are skipped.
//! * **atomic-import** — `std::sync::atomic` may not be named outside the
//!   pool/allocator internals, the checker, and the `montage::sync` facade:
//!   protocol atomics must come from `montage::sync` (so the `interleave`
//!   checker can instrument them) and bookkeeping counters from
//!   `montage::sync::uninstrumented` (so the exemption is explicit at the
//!   import site).
//!
//! Any finding can be waived in place with
//! `// lint: allow(<rule>): <reason>` on the flagged line or up to two lines
//! above — but the reason is mandatory; a bare allow is itself a violation,
//! so the audit trail stays complete.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories never scanned: vendored dependency shims (external API
/// subsets, not our persistence code) and build/VCS output.
const SKIP_DIRS: &[&str] = &["shims", "target", ".git"];

/// Modules allowed to issue raw writes, with the reason on record.
/// Everything else must go through the tracked `PmemPool` write path (or
/// carry a reasoned `lint: allow`).
const RAW_WRITE_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/pmem/src/",
        "the pool implementation IS the tracked write path; its raw copies \
         (crash images, snapshot load) deliberately bypass shadow tracking",
    ),
    (
        "crates/ralloc/src/",
        "allocator metadata initialization precedes any tracked content and \
         is re-validated by the recovery sweep",
    ),
];

/// Modules exempt from the flush-no-fence rule: the flush primitives
/// themselves live here, so `clwb` without a local fence is their job.
const FLUSH_RULE_EXEMPT: &[&str] = &["crates/pmem/src/"];

/// Files the ord-justify rule covers: the lock-free protocol core the
/// `interleave` harnesses model-check. Everything above it (servers, kv
/// engines) keeps its atomics behind `montage::sync::uninstrumented`, and
/// everything below it (pool, allocator) has no cross-thread protocol to
/// justify.
const ORD_JUSTIFY_SCOPE: &[&str] = &["crates/montage/src/", "crates/montage-ds/src/"];

/// The facade itself is exempt from ord-justify: its `Ordering` mentions
/// map orderings between the real and checked worlds — plumbing, not
/// protocol decisions.
const ORD_JUSTIFY_EXEMPT: &[&str] = &["crates/montage/src/sync.rs"];

/// Modules allowed to name `std::sync::atomic` directly, with the reason on
/// record. Everything else routes protocol atomics through `montage::sync`
/// (instrumentable by the `interleave` checker) and bookkeeping counters
/// through `montage::sync::uninstrumented`.
const ATOMIC_IMPORT_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/pmem/src/",
        "the pool sits below the facade; its atomics guard mapping metadata, \
         not the model-checked protocol",
    ),
    (
        "crates/ralloc/src/",
        "the allocator sits below montage in the dependency graph and cannot \
         import the facade without a cycle",
    ),
    (
        "crates/interleave/",
        "the checker implements the instrumented atomics — it wraps std, it \
         cannot route through itself",
    ),
    (
        "crates/montage/src/sync.rs",
        "the facade is the sanctioned wrapper; this is where std atomics are \
         adapted",
    ),
    (
        "crates/baselines/",
        "reference implementations we benchmark against, deliberately not \
         threaded through the facade",
    ),
    (
        "crates/bench/",
        "measurement harness; its counters must never become schedule points",
    ),
];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Rule {
    SafetyComment,
    RawWrite,
    FlushNoFence,
    OrdJustify,
    AtomicImport,
}

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::RawWrite => "raw-write",
            Rule::FlushNoFence => "flush-no-fence",
            Rule::OrdJustify => "ord-justify",
            Rule::AtomicImport => "atomic-import",
        }
    }
}

#[derive(Debug)]
struct Violation {
    file: String,
    /// 1-based.
    line: usize,
    rule: Rule,
    msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.msg
        )
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("bench-diff") => bench_diff::run(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint | bench-diff>");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    let root = repo_root();
    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();

    let mut violations = Vec::new();
    for rel in &files {
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", rel.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = rel.to_string_lossy().replace('\\', "/");
        violations.extend(lint_source(&rel, &src));
    }

    for v in &violations {
        println!("{v}");
    }
    let count = |r: Rule| violations.iter().filter(|v| v.rule == r).count();
    println!(
        "xtask lint: {} file(s), {} violation(s) \
         (safety-comment {}, raw-write {}, flush-no-fence {}, \
         ord-justify {}, atomic-import {})",
        files.len(),
        violations.len(),
        count(Rule::SafetyComment),
        count(Rule::RawWrite),
        count(Rule::FlushNoFence),
        count(Rule::OrdJustify),
        count(Rule::AtomicImport),
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: `xtask` runs from anywhere inside the repo via
/// `CARGO_MANIFEST_DIR` (two levels under the root).
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scanner: blank out comments and string/char literals, preserving the line
// structure, so the rule checks below never match inside either.
// ---------------------------------------------------------------------------

fn strip_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;

    // Pushes `c` as-is if it is a newline (line structure!), else a space.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nesting per Rust).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            out.push_str("  ");
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"..." / r#"..."# / br#"..."#.
        if c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r') {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                // Scan to `"` followed by `hashes` hashes.
                'raw: while i < n {
                    if b[i] == '"' {
                        let mut k = 0;
                        while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    blank(&mut out, b[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Plain (byte) string.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: a quote starts a char literal only when
        // it closes as one (`'x'`, `'\n'`, `'\u{1F600}'`).
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                out.push(' ');
                i += 1;
                while i < n && b[i] != '\'' {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                if i < n {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                out.push_str("   ");
                i += 3;
                continue;
            }
            // Lifetime: fall through verbatim.
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Whole-word occurrence of `word` in `line` (identifier-boundary on both
/// sides).
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before = start == 0 || !is_ident(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        from = end;
    }
    false
}

/// `pattern(` preceded by a non-identifier char (so `on_clwb(` does not
/// match `clwb(`).
fn has_call(text: &str, callee: &str) -> bool {
    let needle = format!("{callee}(");
    let bytes = text.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = text[from..].find(&needle) {
        let start = from + pos;
        if start == 0 || !is_ident(bytes[start - 1]) {
            return true;
        }
        from = start + needle.len();
    }
    false
}

/// Outcome of looking for a `// lint: allow(rule): reason` waiver near
/// `line_idx` (that raw line and up to two above).
enum Waiver {
    None,
    Explained,
    /// An allow without a reason — flagged itself.
    Unexplained(usize),
}

fn waiver(raw_lines: &[&str], line_idx: usize, rule: Rule) -> Waiver {
    let marker = format!("lint: allow({})", rule.name());
    let lo = line_idx.saturating_sub(2);
    for (i, raw) in raw_lines.iter().enumerate().take(line_idx + 1).skip(lo) {
        let Some(pos) = raw.find(&marker) else {
            continue;
        };
        let rest = raw[pos + marker.len()..].trim_start();
        let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            return Waiver::Unexplained(i);
        }
        return Waiver::Explained;
    }
    Waiver::None
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let code = strip_code(src);
    let code_lines: Vec<&str> = code.lines().collect();
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();

    check_safety_comments(rel_path, &code_lines, &raw_lines, &mut out);
    check_raw_writes(rel_path, &code_lines, &raw_lines, &mut out);
    check_flush_fences(rel_path, &code_lines, &raw_lines, &mut out);
    check_ord_justify(rel_path, &code_lines, &raw_lines, &mut out);
    check_atomic_imports(rel_path, &code_lines, &raw_lines, &mut out);
    out
}

fn push_checked(
    out: &mut Vec<Violation>,
    raw_lines: &[&str],
    file: &str,
    line_idx: usize,
    rule: Rule,
    msg: String,
) {
    match waiver(raw_lines, line_idx, rule) {
        Waiver::Explained => {}
        Waiver::None => out.push(Violation {
            file: file.to_string(),
            line: line_idx + 1,
            rule,
            msg,
        }),
        Waiver::Unexplained(i) => out.push(Violation {
            file: file.to_string(),
            line: i + 1,
            rule,
            msg: format!(
                "`lint: allow({})` without a reason — write one after the colon",
                rule.name()
            ),
        }),
    }
}

/// Rule 1: `unsafe` needs a `SAFETY:` comment (or `# Safety` doc section)
/// within the five preceding lines.
fn check_safety_comments(
    file: &str,
    code_lines: &[&str],
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    for (i, line) in code_lines.iter().enumerate() {
        if !has_word(line, "unsafe") {
            continue;
        }
        let lo = i.saturating_sub(5);
        let covered = raw_lines[lo..=i.min(raw_lines.len() - 1)]
            .iter()
            .any(|r| r.contains("SAFETY:") || r.contains("# Safety"));
        if covered {
            continue;
        }
        push_checked(
            out,
            raw_lines,
            file,
            i,
            Rule::SafetyComment,
            "`unsafe` without a `// SAFETY:` comment within the 5 preceding lines".to_string(),
        );
    }
}

/// Rule 2: raw writes that bypass the tracked pool write path.
fn check_raw_writes(file: &str, code_lines: &[&str], raw_lines: &[&str], out: &mut Vec<Violation>) {
    if RAW_WRITE_ALLOWLIST
        .iter()
        .any(|(prefix, _reason)| file.starts_with(prefix))
    {
        return;
    }
    const PATTERNS: &[&str] = &["ptr::write", "copy_nonoverlapping", "write_volatile"];
    for (i, line) in code_lines.iter().enumerate() {
        let Some(pat) = PATTERNS.iter().find(|p| line.contains(*p)) else {
            continue;
        };
        push_checked(
            out,
            raw_lines,
            file,
            i,
            Rule::RawWrite,
            format!(
                "raw write (`{pat}`) outside the allowlisted pool/allocator \
                 internals bypasses tracked persistence"
            ),
        );
    }
}

/// Rule 3: a function body that flushes (`clwb`) but never fences.
fn check_flush_fences(
    file: &str,
    code_lines: &[&str],
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    if FLUSH_RULE_EXEMPT.iter().any(|p| file.starts_with(p)) {
        return;
    }
    for func in function_bodies(code_lines) {
        let body = func.body_text(code_lines);
        let flushes = has_call(&body, "clwb") || has_call(&body, "clwb_range");
        if !flushes {
            continue;
        }
        let fences = has_call(&body, "sfence")
            || has_call(&body, "persist_range")
            || has_call(&body, "flush_era");
        if fences {
            continue;
        }
        // Anchor the finding on the first flushing line; accept a waiver
        // there or at the function head.
        let flush_line = (func.body_start..=func.body_end)
            .find(|&i| has_call(code_lines[i], "clwb") || has_call(code_lines[i], "clwb_range"))
            .unwrap_or(func.fn_line);
        if matches!(
            waiver(raw_lines, func.fn_line, Rule::FlushNoFence),
            Waiver::Explained
        ) {
            continue;
        }
        push_checked(
            out,
            raw_lines,
            file,
            flush_line,
            Rule::FlushNoFence,
            "function issues clwb but never reaches an sfence; if the fence \
             is deferred by design (epoch boundary), say so with \
             `lint: allow(flush-no-fence): <reason>`"
                .to_string(),
        );
    }
}

/// Line index of the file's first `#[cfg(test)]` attribute (in stripped
/// code, so a mention inside a comment or string does not count), or the
/// line count if there is none. By repo convention the test module is the
/// file's tail; the ordering rules stop there — a test's atomics are
/// scaffolding, not protocol edges.
fn cfg_test_tail(code_lines: &[&str]) -> usize {
    code_lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(code_lines.len())
}

/// True when the path has a `tests/`, `benches/`, or `examples/` component —
/// integration scaffolding the in-source ordering rules do not police.
fn is_test_path(file: &str) -> bool {
    file.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Rule 4: a non-SeqCst ordering in the protocol core must say which edge it
/// implements — `// ord(<rule>): reason` on the line or within the six
/// above. SeqCst is exempt: it is the strongest-by-default choice, so only
/// deliberate weakenings carry a justification burden.
fn check_ord_justify(
    file: &str,
    code_lines: &[&str],
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    if !ORD_JUSTIFY_SCOPE.iter().any(|p| file.starts_with(p))
        || ORD_JUSTIFY_EXEMPT.iter().any(|p| file.starts_with(p))
        || is_test_path(file)
    {
        return;
    }
    const WEAK: &[&str] = &[
        "Ordering::Relaxed",
        "Ordering::Acquire",
        "Ordering::Release",
        "Ordering::AcqRel",
    ];
    let tail = cfg_test_tail(code_lines);
    for (i, line) in code_lines.iter().enumerate().take(tail) {
        let Some(ord) = WEAK.iter().find(|o| has_word(line, o)) else {
            continue;
        };
        let lo = i.saturating_sub(6);
        let justified = raw_lines[lo..=i.min(raw_lines.len() - 1)]
            .iter()
            .any(|r| has_call(r, "ord"));
        if justified {
            continue;
        }
        push_checked(
            out,
            raw_lines,
            file,
            i,
            Rule::OrdJustify,
            format!(
                "`{ord}` on a protocol atomic without an `// ord(<rule>): \
                 reason` comment within the 6 preceding lines"
            ),
        );
    }
}

/// Rule 5: `std::sync::atomic` named outside the allowlist. Any mention
/// counts, not just `use` lines, so an inline
/// `std::sync::atomic::AtomicU64::new(0)` cannot dodge the rule.
fn check_atomic_imports(
    file: &str,
    code_lines: &[&str],
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    if ATOMIC_IMPORT_ALLOWLIST
        .iter()
        .any(|(prefix, _reason)| file.starts_with(prefix))
        || is_test_path(file)
    {
        return;
    }
    let tail = cfg_test_tail(code_lines);
    for (i, line) in code_lines.iter().enumerate().take(tail) {
        if !line.contains("std::sync::atomic") {
            continue;
        }
        push_checked(
            out,
            raw_lines,
            file,
            i,
            Rule::AtomicImport,
            "`std::sync::atomic` outside the facade: protocol atomics come \
             from `montage::sync` (checker-instrumentable), bookkeeping \
             counters from `montage::sync::uninstrumented`"
                .to_string(),
        );
    }
}

struct FnSpan {
    /// Line of the `fn` keyword (0-based).
    fn_line: usize,
    /// First and last line of the `{}` body (0-based, inclusive).
    body_start: usize,
    body_end: usize,
}

impl FnSpan {
    fn body_text(&self, code_lines: &[&str]) -> String {
        code_lines[self.body_start..=self.body_end].join("\n")
    }
}

/// Brace-matched `fn` bodies in the stripped source. Trait-method
/// declarations (ending in `;` before any `{`) are skipped. Nested items
/// are reported both on their own and as part of their enclosing function —
/// good enough for a per-function flush/fence check.
fn function_bodies(code_lines: &[&str]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let joined: Vec<(usize, char)> = code_lines
        .iter()
        .enumerate()
        .flat_map(|(i, l)| l.chars().map(move |c| (i, c)).chain([(i, '\n')]))
        .collect();
    let text: String = joined.iter().map(|&(_, c)| c).collect();
    let bytes = text.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';

    let mut from = 0;
    while let Some(pos) = text[from..].find("fn ") {
        let start = from + pos;
        from = start + 3;
        if start > 0 && is_ident(bytes[start - 1]) {
            continue;
        }
        let fn_line = joined[start].0;
        // Find the body opener, giving up at a `;` (declaration).
        let mut j = start + 3;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut close = None;
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        spans.push(FnSpan {
            fn_line,
            body_start: joined[open].0,
            body_end: joined[close].0,
        });
    }
    spans
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        lint_source(path, src)
    }

    #[test]
    fn scanner_blanks_comments_and_strings() {
        let src = "let a = \"unsafe {\"; // unsafe here too\nlet b = 'x';\n/* unsafe */ let c = r#\"clwb(\"#;\n";
        let code = strip_code(src);
        assert!(!code.contains("unsafe"));
        assert!(!code.contains("clwb"));
        assert_eq!(code.lines().count(), src.lines().count());
    }

    #[test]
    fn scanner_keeps_lifetimes_and_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { unsafe { g(x) } }\n";
        let code = strip_code(src);
        assert!(code.contains("unsafe"));
        assert!(code.contains("'a"));
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let v = lint(
            "crates/demo/src/lib.rs",
            "fn f() {\n    unsafe { g() }\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SafetyComment);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_comment_within_five_lines_covers() {
        let src = "fn f() {\n    // SAFETY: g is fine here\n    unsafe { g() }\n}\n";
        assert!(lint("crates/demo/src/lib.rs", src).is_empty());
        let doc = "/// # Safety\n/// Caller checks x.\nunsafe fn f(x: u8) {}\n";
        assert!(lint("crates/demo/src/lib.rs", doc).is_empty());
    }

    #[test]
    fn commented_out_unsafe_is_ignored() {
        let src = "fn f() {\n    // unsafe { g() }\n    let s = \"unsafe\";\n}\n";
        assert!(lint("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn raw_write_outside_allowlist_is_flagged() {
        let src = "// SAFETY: raw copy\nunsafe { std::ptr::copy_nonoverlapping(a, b, 8); }\n";
        let v = lint("crates/demo/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RawWrite);
    }

    #[test]
    fn raw_write_in_pool_internals_is_allowed() {
        let src = "// SAFETY: image copy\nunsafe { std::ptr::copy_nonoverlapping(a, b, 8); }\n";
        assert!(lint("crates/pmem/src/pool.rs", src).is_empty());
        assert!(lint("crates/ralloc/src/alloc.rs", src).is_empty());
    }

    #[test]
    fn reasoned_allow_waives_and_bare_allow_is_flagged() {
        let ok = "// lint: allow(raw-write): shadow-tracked via san_mark_dirty\n// SAFETY: x\nunsafe { std::ptr::copy_nonoverlapping(a, b, 8); }\n";
        assert!(lint("crates/demo/src/lib.rs", ok).is_empty());
        let bare = "// lint: allow(raw-write)\n// SAFETY: x\nunsafe { std::ptr::copy_nonoverlapping(a, b, 8); }\n";
        let v = lint("crates/demo/src/lib.rs", bare);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("without a reason"));
    }

    #[test]
    fn clwb_without_fence_is_flagged() {
        let src = "fn f(p: &Pool) {\n    p.clwb(off);\n}\n";
        let v = lint("crates/demo/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FlushNoFence);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn clwb_reaching_a_fence_is_clean() {
        for fence in ["p.sfence();", "p.persist_range(o, 8);"] {
            let src = format!("fn f(p: &Pool) {{\n    p.clwb_range(o, 64);\n    {fence}\n}}\n");
            assert!(lint("crates/demo/src/lib.rs", &src).is_empty(), "{fence}");
        }
    }

    #[test]
    fn deferred_fence_allow_waives_flush_rule() {
        let src = "// lint: allow(flush-no-fence): fence happens at the epoch boundary\nfn f(p: &Pool) {\n    p.clwb(off);\n}\n";
        assert!(lint("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn on_clwb_is_not_a_clwb_call() {
        let src = "fn f(s: &San) {\n    s.on_clwb(1, 2, 3, loc);\n}\n";
        assert!(lint("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn weak_ordering_without_ord_comment_is_flagged() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Acquire)\n}\n";
        let v = lint("crates/montage/src/demo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::OrdJustify);
        assert_eq!(v[0].line, 2);
        // Outside the protocol core the same code is fine.
        assert!(lint("crates/kvstore/src/demo.rs", src).is_empty());
    }

    #[test]
    fn ord_comment_within_six_lines_justifies() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n    // ord(acquire): pairs with the publish in g\n    a.load(Ordering::Acquire)\n}\n";
        assert!(lint("crates/montage/src/demo.rs", src).is_empty());
        // `word(` is not an `ord(` tag.
        let sly = "fn f(a: &AtomicU64) -> u64 {\n    // keyword(acquire) chatter\n    a.load(Ordering::Acquire)\n}\n";
        assert_eq!(lint("crates/montage/src/demo.rs", sly).len(), 1);
    }

    #[test]
    fn seqcst_and_test_modules_need_no_ord_comment() {
        let src = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::SeqCst);\n}\n#[cfg(test)]\nmod tests {\n    fn g(a: &AtomicU64) -> u64 {\n        a.load(Ordering::Relaxed)\n    }\n}\n";
        assert!(lint("crates/montage/src/demo.rs", src).is_empty());
    }

    #[test]
    fn facade_is_exempt_from_ord_justify() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Acquire)\n}\n";
        assert!(lint("crates/montage/src/sync.rs", src)
            .iter()
            .all(|v| v.rule != Rule::OrdJustify));
    }

    #[test]
    fn std_atomic_outside_facade_is_flagged() {
        let import = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        let v = lint("crates/kvstore/src/demo.rs", import);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::AtomicImport);
        // Inline qualified paths cannot dodge the rule.
        let inline = "fn f() { let _ = std::sync::atomic::AtomicU64::new(0); }\n";
        assert_eq!(lint("crates/kvserver/src/demo.rs", inline).len(), 1);
    }

    #[test]
    fn std_atomic_allowlist_and_test_tails_pass() {
        let import = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        for ok in [
            "crates/pmem/src/pool.rs",
            "crates/ralloc/src/alloc.rs",
            "crates/interleave/src/sync.rs",
            "crates/montage/src/sync.rs",
            "crates/baselines/src/lib.rs",
            "crates/kvserver/tests/wire.rs",
            "tests/liveness.rs",
        ] {
            assert!(lint(ok, import).is_empty(), "{ok}");
        }
        let tail =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n}\n";
        assert!(lint("crates/kvstore/src/demo.rs", tail).is_empty());
        // A comment mentioning the path is not an import.
        let comment = "// std::sync::atomic is banned here\nfn f() {}\n";
        assert!(lint("crates/kvstore/src/demo.rs", comment).is_empty());
    }

    #[test]
    fn atomic_import_waiver_needs_a_reason() {
        let ok = "// lint: allow(atomic-import): FFI type layout requires the std atomic\nuse std::sync::atomic::AtomicU64;\n";
        assert!(lint("crates/kvstore/src/demo.rs", ok).is_empty());
        let bare = "// lint: allow(atomic-import)\nuse std::sync::atomic::AtomicU64;\n";
        let v = lint("crates/kvstore/src/demo.rs", bare);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("without a reason"));
    }
}

/// `bench-diff`: the benchmark regression gate.
///
/// Compares a fresh `BENCH_<figure>.json` (written by the bench binaries;
/// see `montage_bench::report::JsonReport`) against the checked-in baseline
/// under `benches/baselines/`, and fails when a **gated** metric regressed
/// by more than its threshold. Gated metrics are the run's headline plus
/// any listed for the figure in `benches/baselines/manifest.txt` — lines of
/// `<figure> <slug> [threshold_pct]`, `#` comments. Other metrics are
/// reported but never gate — on a noisy shared box only the metrics a
/// change is *about* are stable enough to block on, and the manifest is
/// where a figure declares which those are (ops/s *and* tail latency).
///
/// The parser below handles exactly the subset of JSON that
/// `JsonReport::render` emits (string fields, a flat `"metrics"` object of
/// slug → number) — hand-rolled because the workspace builds offline with
/// no JSON dependency.
mod bench_diff {
    use std::path::PathBuf;
    use std::process::ExitCode;

    pub fn run(args: &[String]) -> ExitCode {
        let mut new_path: Option<PathBuf> = None;
        let mut baseline_path: Option<PathBuf> = None;
        let mut manifest_path: Option<PathBuf> = None;
        let mut threshold_pct: f64 = 15.0;
        let mut report_only = false;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--baseline" => match it.next() {
                    Some(p) => baseline_path = Some(p.into()),
                    None => return usage("--baseline needs a path"),
                },
                "--manifest" => match it.next() {
                    Some(p) => manifest_path = Some(p.into()),
                    None => return usage("--manifest needs a path"),
                },
                "--threshold" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => threshold_pct = v,
                    None => return usage("--threshold needs a percentage"),
                },
                "--report-only" => report_only = true,
                p if new_path.is_none() && !p.starts_with('-') => new_path = Some(p.into()),
                other => return usage(&format!("unknown argument {other:?}")),
            }
        }
        let Some(new_path) = new_path else {
            return usage("missing the new results file");
        };

        let new = match Report::load(&new_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-diff: cannot read {}: {e}", new_path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline_path = baseline_path.unwrap_or_else(|| {
            super::repo_root()
                .join("benches/baselines")
                .join(format!("BENCH_{}.json", new.figure))
        });
        let base = match Report::load(&baseline_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!(
                    "bench-diff: no baseline at {} ({e}); nothing to gate against",
                    baseline_path.display()
                );
                return ExitCode::SUCCESS;
            }
        };

        let manifest_path = manifest_path
            .unwrap_or_else(|| super::repo_root().join("benches/baselines/manifest.txt"));
        let gates = match std::fs::read_to_string(&manifest_path) {
            Ok(src) => match parse_manifest(&src) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("bench-diff: {}: {e}", manifest_path.display());
                    return ExitCode::FAILURE;
                }
            },
            // No manifest is fine: the headline still gates.
            Err(_) => Vec::new(),
        };
        let figure_gates: Vec<&Gate> = gates.iter().filter(|g| g.figure == new.figure).collect();

        println!(
            "bench-diff: {} vs baseline {}",
            new_path.display(),
            baseline_path.display()
        );
        let mut regressions: Vec<String> = Vec::new();
        let mut compared = 0usize;
        for (slug, new_v) in &new.metrics {
            let manifest_gate = figure_gates.iter().find(|g| &g.slug == slug);
            let is_headline = *slug == new.headline;
            let Some(base_v) = base.metrics.get(slug) else {
                if is_headline || manifest_gate.is_some() {
                    // A gate with no baseline can't block, but say so out
                    // loud — a silently un-gated metric looks gated.
                    println!("  {slug}: gated but absent from baseline, skipping");
                }
                continue;
            };
            compared += 1;
            // All gated slugs are throughput-or-latency; higher is better
            // for *_ops_per_sec, lower for *_us. Express both as "regression
            // percent" so one threshold covers them.
            let higher_better = slug.ends_with("_ops_per_sec");
            let delta_pct = if higher_better {
                (base_v - new_v) / base_v * 100.0
            } else {
                (new_v - base_v) / base_v * 100.0
            };
            let gate_pct = manifest_gate
                .and_then(|g| g.threshold_pct)
                .unwrap_or(threshold_pct);
            let gated = is_headline || manifest_gate.is_some();
            let flag = if gated && delta_pct > gate_pct {
                regressions.push(format!("{slug} ({delta_pct:+.1}% past {gate_pct}%)"));
                " REGRESSED"
            } else {
                ""
            };
            if gated || flag == " REGRESSED" {
                println!(
                    "  {}{}: {:.1} -> {:.1} ({:+.1}%, gate {gate_pct}%){flag}",
                    if is_headline { "[headline] " } else { "" },
                    slug,
                    base_v,
                    new_v,
                    -delta_pct * if higher_better { 1.0 } else { -1.0 },
                );
            }
        }
        // A manifest entry naming a slug the run no longer emits is a gate
        // that quietly stopped existing — fail it like a regression.
        for g in &figure_gates {
            if new.metrics.get(&g.slug).is_none() {
                regressions.push(format!("{} (missing from the run)", g.slug));
            }
        }
        let headline_in_manifest = figure_gates.iter().any(|g| g.slug == new.headline);
        println!(
            "  {compared} metrics compared, {} gated, default threshold {threshold_pct}%",
            figure_gates.len() + usize::from(!headline_in_manifest)
        );
        if !regressions.is_empty() {
            eprintln!("bench-diff: gated metrics regressed:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            if report_only {
                eprintln!("bench-diff: --report-only, not failing the build");
                return ExitCode::SUCCESS;
            }
            return ExitCode::FAILURE;
        }
        ExitCode::SUCCESS
    }

    /// One `<figure> <slug> [threshold_pct]` line of the manifest.
    struct Gate {
        figure: String,
        slug: String,
        threshold_pct: Option<f64>,
    }

    fn parse_manifest(src: &str) -> Result<Vec<Gate>, String> {
        let mut out = Vec::new();
        for (lineno, line) in src.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (figure, slug) = match (parts.next(), parts.next()) {
                (Some(f), Some(s)) => (f.to_string(), s.to_string()),
                _ => return Err(format!("line {}: want <figure> <slug>", lineno + 1)),
            };
            let threshold_pct = match parts.next() {
                Some(t) => Some(
                    t.parse::<f64>()
                        .map_err(|_| format!("line {}: bad threshold {t:?}", lineno + 1))?,
                ),
                None => None,
            };
            if parts.next().is_some() {
                return Err(format!("line {}: trailing tokens", lineno + 1));
            }
            out.push(Gate {
                figure,
                slug,
                threshold_pct,
            });
        }
        Ok(out)
    }

    fn usage(msg: &str) -> ExitCode {
        eprintln!("bench-diff: {msg}");
        eprintln!(
            "usage: cargo run -p xtask -- bench-diff <new.json> \
             [--baseline <path>] [--threshold <pct>] [--report-only]"
        );
        ExitCode::from(2)
    }

    pub struct Report {
        pub figure: String,
        pub headline: String,
        pub metrics: Vec<(String, f64)>,
    }

    impl Report {
        pub fn load(path: &std::path::Path) -> Result<Report, String> {
            let src = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            Ok(Report {
                figure: string_field(&src, "figure").ok_or("missing \"figure\"")?,
                headline: string_field(&src, "headline").ok_or("missing \"headline\"")?,
                metrics: metrics_object(&src)?,
            })
        }
    }

    trait Lookup {
        fn get(&self, key: &str) -> Option<&f64>;
    }
    impl Lookup for Vec<(String, f64)> {
        fn get(&self, key: &str) -> Option<&f64> {
            self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
    }

    /// Finds the top-level `"name": "value"` string field.
    fn string_field(src: &str, name: &str) -> Option<String> {
        let at = src.find(&format!("\"{name}\":"))?;
        let rest = &src[at..];
        let open = rest.find(": \"")? + 3;
        let close = rest[open..].find('"')? + open;
        Some(rest[open..close].to_string())
    }

    /// Parses the flat `"metrics": { "slug": number, ... }` object.
    fn metrics_object(src: &str) -> Result<Vec<(String, f64)>, String> {
        let at = src.find("\"metrics\":").ok_or("missing \"metrics\"")?;
        let body = &src[at..];
        let open = body.find('{').ok_or("metrics: no object")?;
        let close = body[open..]
            .find('}')
            .ok_or("metrics: unterminated object")?
            + open;
        let mut out = Vec::new();
        for pair in body[open + 1..close].split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("metrics: malformed pair {pair:?}"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("metrics: non-numeric value in {pair:?}"))?;
            out.push((key, value));
        }
        Ok(out)
    }

    #[cfg(test)]
    mod tests {
        use super::parse_manifest;

        #[test]
        fn manifest_parses_gates_comments_and_thresholds() {
            let src = "\
# figure        slug                          threshold_pct (default if absent)
fig10_wire_ycsb ycsb_a_montage_sync1_p99_us   20
fig_shard_scaling shards_4_ops_per_sec  # inline comment, default threshold
";
            let gates = parse_manifest(src).unwrap();
            assert_eq!(gates.len(), 2);
            assert_eq!(gates[0].figure, "fig10_wire_ycsb");
            assert_eq!(gates[0].slug, "ycsb_a_montage_sync1_p99_us");
            assert_eq!(gates[0].threshold_pct, Some(20.0));
            assert_eq!(gates[1].figure, "fig_shard_scaling");
            assert_eq!(gates[1].threshold_pct, None);
        }

        #[test]
        fn manifest_rejects_malformed_lines() {
            assert!(parse_manifest("just_a_figure\n").is_err());
            assert!(parse_manifest("fig slug not_a_number\n").is_err());
            assert!(parse_manifest("fig slug 10 extra\n").is_err());
        }
    }
}
