//! NVTraverse — "In NVRAM Data Structures, the Destination Is More Important
//! Than the Journey" (Friedman et al., PLDI '20): a general transformation
//! that makes *traversal data structures* durable by flushing only the small
//! "critical zone" at the end of a traversal, rather than everything
//! touched.
//!
//! Applied to the benchmark hashmap (bucket = linked list): the traversal
//! prefix needs no persistence; the last two nodes (pred/curr) are flushed
//! and fenced before the operation linearizes, **in reads as well as
//! writes** — the paper observes this is why NVTraverse keeps up with
//! Montage at low thread counts but falls behind once flush traffic
//! contends.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{POff, PmemPool};
use ralloc::Ralloc;

use crate::api::{BenchMap, Key32};

/// Node layout: `next: u64 | vlen: u32 | pad | key 32B | value bytes`.
const NEXT_OFF: u64 = 0;
const VLEN_OFF: u64 = 8;
const KEY_OFF: u64 = 16;
const DATA_OFF: u64 = 48;

pub struct NvTraverseHashMap {
    ralloc: Arc<Ralloc>,
    pool: PmemPool,
    buckets: Box<[Mutex<POff>]>,
    len: AtomicUsize,
}

impl NvTraverseHashMap {
    pub fn new(ralloc: Arc<Ralloc>, nbuckets: usize) -> Self {
        NvTraverseHashMap {
            pool: ralloc.pool().clone(),
            ralloc,
            buckets: (0..nbuckets).map(|_| Mutex::new(POff::NULL)).collect(),
            len: AtomicUsize::new(0),
        }
    }

    fn index(&self, key: &Key32) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.buckets.len()
    }

    fn key_at(&self, node: POff) -> Key32 {
        let mut k = [0u8; 32];
        self.pool.read_bytes(node.add(KEY_OFF), &mut k);
        k
    }

    fn next_of(&self, node: POff) -> POff {
        // SAFETY: `node` is a live chain node reached under the bucket lock;
        // the NEXT word is in bounds and any bit pattern is a valid u64.
        POff::new(unsafe { self.pool.read::<u64>(node.add(NEXT_OFF)) })
    }

    /// Traverse; returns (pred, curr) where curr holds `key` or is null.
    fn seek(&self, head: POff, key: &Key32) -> (POff, POff) {
        let mut pred = POff::NULL;
        let mut curr = head;
        while !curr.is_null() {
            self.pool.touch(); // NVM chain hop
            if self.key_at(curr) == *key {
                return (pred, curr);
            }
            pred = curr;
            curr = self.next_of(curr);
        }
        (pred, POff::NULL)
    }

    /// Flush the critical zone (pred + curr) and fence — done before every
    /// linearization point, including in lookups.
    fn persist_zone(&self, pred: POff, curr: POff) {
        if !pred.is_null() {
            self.pool.clwb_range(pred, DATA_OFF as usize);
        }
        if !curr.is_null() {
            self.pool.clwb_range(curr, DATA_OFF as usize);
        }
        self.pool.sfence();
    }
}

impl BenchMap for NvTraverseHashMap {
    fn get(&self, _tid: usize, key: &Key32) -> bool {
        let head = self.buckets[self.index(key)].lock();
        let (pred, curr) = self.seek(*head, key);
        self.persist_zone(pred, curr);
        !curr.is_null()
    }

    fn insert(&self, _tid: usize, key: Key32, value: &[u8]) -> bool {
        let mut head = self.buckets[self.index(&key)].lock();
        let (pred, curr) = self.seek(*head, &key);
        if !curr.is_null() {
            return false;
        }
        let node = self.ralloc.alloc(DATA_OFF as usize + value.len());
        // SAFETY: `node` is a fresh allocation sized for the header plus
        // value, owned exclusively by this thread until linked.
        unsafe {
            self.pool.write::<u64>(node.add(NEXT_OFF), &0);
            self.pool
                .write::<u32>(node.add(VLEN_OFF), &(value.len() as u32));
        }
        self.pool.write_bytes(node.add(KEY_OFF), &key);
        self.pool.write_bytes(node.add(DATA_OFF), value);
        // Persist the node, then link and persist the link (+ zone).
        self.pool
            .persist_range(node, DATA_OFF as usize + value.len());
        if pred.is_null() {
            *head = node;
        } else {
            // SAFETY: `pred` is a live chain node and this bucket's lock is
            // held, so no competing writer touches its NEXT word.
            unsafe { self.pool.write::<u64>(pred.add(NEXT_OFF), &node.raw()) };
        }
        self.persist_zone(pred, node);
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn remove(&self, _tid: usize, key: &Key32) -> bool {
        let mut head = self.buckets[self.index(key)].lock();
        let (pred, curr) = self.seek(*head, key);
        if curr.is_null() {
            return false;
        }
        let next = self.next_of(curr);
        if pred.is_null() {
            *head = next;
        } else {
            // SAFETY: see the link write in `insert` — bucket lock held.
            unsafe { self.pool.write::<u64>(pred.add(NEXT_OFF), &next.raw()) };
        }
        self.persist_zone(pred, curr);
        self.ralloc.dealloc(curr);
        self.len.fetch_sub(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::make_key;
    use pmem::PmemConfig;

    fn map() -> NvTraverseHashMap {
        let pool = PmemPool::new(PmemConfig::default());
        NvTraverseHashMap::new(Ralloc::format(pool), 64)
    }

    #[test]
    fn map_semantics() {
        let m = map();
        assert!(m.insert(0, make_key(1), b"a"));
        assert!(!m.insert(0, make_key(1), b"b"));
        assert!(m.get(0, &make_key(1)));
        assert!(m.remove(0, &make_key(1)));
        assert!(!m.get(0, &make_key(1)));
    }

    #[test]
    fn chains_survive_middle_removals() {
        let m = NvTraverseHashMap::new(
            Ralloc::format(PmemPool::new(PmemConfig::default())),
            1, // force one bucket → long chain
        );
        for i in 0..10 {
            assert!(m.insert(0, make_key(i), b"v"));
        }
        assert!(m.remove(0, &make_key(5)));
        assert!(m.remove(0, &make_key(0)));
        assert!(m.remove(0, &make_key(9)));
        for i in 0..10 {
            assert_eq!(m.get(0, &make_key(i)), ![0, 5, 9].contains(&i));
        }
    }

    #[test]
    fn even_reads_fence() {
        let m = map();
        m.insert(0, make_key(1), b"v");
        let f0 = m.pool.stats().snapshot().sfences;
        m.get(0, &make_key(1));
        let f1 = m.pool.stats().snapshot().sfences;
        assert!(f1 > f0, "NVTraverse reads flush+fence the critical zone");
    }
}
