//! Transient reference structures: "DRAM (T)" and "NVM (T)" in the paper —
//! identical high-quality structures with **no persistence support**, placed
//! either on the process heap or in the NVM pool (allocated with Ralloc, as
//! in the paper, which notes Ralloc's layout even beats jemalloc for queue
//! locality).

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::POff;
use ralloc::Ralloc;

use crate::api::{BenchMap, BenchQueue, Key32};

/// Where values live.
#[derive(Clone)]
pub enum Arena {
    /// Process heap ("DRAM (T)").
    Dram,
    /// The simulated-NVM pool via Ralloc ("NVM (T)"): pays the pool's write
    /// latency model but performs no flushes or fences.
    Nvm(Arc<Ralloc>),
}

/// A stored value: heap box or pool block.
pub enum ValRef {
    Dram(Box<[u8]>),
    Nvm(POff, u32),
}

impl Arena {
    pub fn store(&self, bytes: &[u8]) -> ValRef {
        match self {
            Arena::Dram => ValRef::Dram(bytes.into()),
            Arena::Nvm(r) => {
                let off = r.alloc(bytes.len().max(1));
                r.pool().write_bytes(off, bytes);
                ValRef::Nvm(off, bytes.len() as u32)
            }
        }
    }

    pub fn read<R>(&self, v: &ValRef, f: impl FnOnce(&[u8]) -> R) -> R {
        match v {
            ValRef::Dram(b) => f(b),
            ValRef::Nvm(off, len) => {
                let r = match self {
                    Arena::Nvm(r) => r,
                    Arena::Dram => unreachable!("NVM value in DRAM arena"),
                };
                r.pool().touch(); // NVM value dereference
                                  // SAFETY: (both lines) the ValRef was produced by this
                                  // arena's own append, so `off..off+len` is in bounds and the
                                  // bytes are initialized.
                let ptr = unsafe { r.pool().at::<u8>(*off) };
                f(unsafe { std::slice::from_raw_parts(ptr, *len as usize) })
            }
        }
    }

    pub fn free(&self, v: ValRef) {
        match (self, v) {
            (_, ValRef::Dram(_)) => {}
            (Arena::Nvm(r), ValRef::Nvm(off, _)) => r.dealloc(off),
            (Arena::Dram, ValRef::Nvm(..)) => unreachable!("NVM value in DRAM arena"),
        }
    }
}

/// Transient single-lock FIFO queue (mirrors the Montage queue's structure
/// minus persistence).
pub struct TransientQueue {
    arena: Arena,
    inner: Mutex<VecDeque<ValRef>>,
}

impl TransientQueue {
    pub fn new(arena: Arena) -> Self {
        TransientQueue {
            arena,
            inner: Mutex::new(VecDeque::new()),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BenchQueue for TransientQueue {
    fn enqueue(&self, _tid: usize, value: &[u8]) {
        let v = self.arena.store(value);
        self.inner.lock().push_back(v);
    }

    fn dequeue(&self, _tid: usize) -> bool {
        let v = self.inner.lock().pop_front();
        match v {
            Some(v) => {
                self.arena.free(v);
                true
            }
            None => false,
        }
    }
}

struct MapEntry {
    key: Key32,
    val: ValRef,
}

/// Transient lock-per-bucket chained hashmap (the paper's transient
/// reference for Fig. 7/8/9).
pub struct TransientHashMap {
    arena: Arena,
    buckets: Box<[Mutex<Vec<MapEntry>>]>,
    len: AtomicUsize,
}

impl TransientHashMap {
    pub fn new(arena: Arena, nbuckets: usize) -> Self {
        TransientHashMap {
            arena,
            buckets: (0..nbuckets).map(|_| Mutex::new(Vec::new())).collect(),
            len: AtomicUsize::new(0),
        }
    }

    fn index(&self, key: &Key32) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.buckets.len()
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get_with<R>(&self, key: &Key32, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let chain = self.buckets[self.index(key)].lock();
        chain
            .iter()
            .find(|e| e.key == *key)
            .map(|e| self.arena.read(&e.val, f))
    }
}

impl BenchMap for TransientHashMap {
    fn get(&self, _tid: usize, key: &Key32) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    fn insert(&self, _tid: usize, key: Key32, value: &[u8]) -> bool {
        let mut chain = self.buckets[self.index(&key)].lock();
        if chain.iter().any(|e| e.key == key) {
            return false;
        }
        chain.push(MapEntry {
            key,
            val: self.arena.store(value),
        });
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn remove(&self, _tid: usize, key: &Key32) -> bool {
        let mut chain = self.buckets[self.index(key)].lock();
        let Some(pos) = chain.iter().position(|e| e.key == *key) else {
            return false;
        };
        let e = chain.swap_remove(pos);
        drop(chain);
        self.arena.free(e.val);
        self.len.fetch_sub(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::make_key;
    use pmem::{PmemConfig, PmemPool};

    fn arenas() -> Vec<Arena> {
        let pool = PmemPool::new(PmemConfig::default());
        vec![Arena::Dram, Arena::Nvm(Ralloc::format(pool))]
    }

    #[test]
    fn queue_fifo_in_both_arenas() {
        for arena in arenas() {
            let q = TransientQueue::new(arena);
            for i in 0..10u32 {
                q.enqueue(0, &i.to_le_bytes());
            }
            assert_eq!(q.len(), 10);
            for _ in 0..10 {
                assert!(q.dequeue(0));
            }
            assert!(!q.dequeue(0));
        }
    }

    #[test]
    fn map_semantics_in_both_arenas() {
        for arena in arenas() {
            let m = TransientHashMap::new(arena, 64);
            assert!(m.insert(0, make_key(1), b"one"));
            assert!(!m.insert(0, make_key(1), b"dup"));
            assert!(m.get(0, &make_key(1)));
            assert_eq!(m.get_with(&make_key(1), |v| v.to_vec()).unwrap(), b"one");
            assert!(m.remove(0, &make_key(1)));
            assert!(!m.get(0, &make_key(1)));
            assert!(!m.remove(0, &make_key(1)));
        }
    }

    #[test]
    fn nvm_arena_never_flushes() {
        let pool = PmemPool::new(PmemConfig::default());
        let r = Ralloc::format(pool.clone());
        let m = TransientHashMap::new(Arena::Nvm(r), 64);
        let base = pool.stats().snapshot();
        for i in 0..200 {
            m.insert(0, make_key(i), &[7u8; 256]);
        }
        let after = pool.stats().snapshot();
        // Only superblock carving may fence; per-op persistence must be zero.
        assert!(
            after.clwbs - base.clwbs <= 8,
            "NVM(T) issued {} clwbs",
            after.clwbs - base.clwbs
        );
    }

    #[test]
    fn concurrent_queue_conserves() {
        let q = Arc::new(TransientQueue::new(Arena::Dram));
        let mut handles = vec![];
        for _ in 0..4 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0;
                for i in 0..1000u32 {
                    q.enqueue(0, &i.to_le_bytes());
                    if q.dequeue(0) {
                        got += 1;
                    }
                }
                got
            }));
        }
        let got: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(got + q.len(), 4000);
    }
}
