//! The persistent lock-free queue of Friedman, Herlihy, Marathe & Petrank
//! (PPoPP '18) — strictly durably linearizable.
//!
//! Faithful critical-path shape: an enqueue writes the node (value + null
//! next) and **flushes it with a fence before linking**, then flushes the
//! predecessor's next pointer after the link CAS; a dequeue persists its
//! claim into the dequeuer's per-thread announcement slot *before* the
//! linearizing head CAS (so a dequeue whose value was handed out is
//! recoverable as done), and marks the node dequeued afterwards. That is
//! 2 flush+fence pairs per enqueue and ~2 per dequeue — the cost Montage
//! moves off the critical path.
//!
//! Nodes live in NVM (Ralloc blocks) and carry a magic + enqueue sequence
//! number; `head`/`tail` are transient. Recovery sweeps live nodes, drops
//! those marked dequeued or claimed in an announcement slot, and rebuilds
//! the FIFO by sequence number (standing in for the original's
//! reachability walk, which is entangled with its ssmem allocator).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::epoch;
use pmem::{POff, PmemPool};
use ralloc::Ralloc;

use crate::api::BenchQueue;

/// Node layout:
/// `next: u64 | vlen: u32 | magic: u32 | seq: u64 | deqed: u64 | value`.
const NEXT_OFF: u64 = 0;
const VLEN_OFF: u64 = 8;
const MAGIC_OFF: u64 = 12;
const SEQ_OFF: u64 = 16;
const DEQED_OFF: u64 = 24;
const DATA_OFF: u64 = 32;

const NODE_MAGIC: u32 = 0xF41E_D4A9; // "friedman" node marker

/// Root-area slot holding the announcement-slot block anchor.
const ANCHOR_SLOT: usize = 9;

pub struct FriedmanQueue {
    ralloc: Arc<Ralloc>,
    pool: PmemPool,
    head: AtomicU64,
    tail: AtomicU64,
    /// Per-thread "claimed node" announcement slots (one contiguous block,
    /// anchored persistently for recovery).
    deq_slots: POff,
    max_threads: usize,
    next_seq: AtomicU64,
}

impl FriedmanQueue {
    pub fn new(ralloc: Arc<Ralloc>, max_threads: usize) -> Self {
        let pool = ralloc.pool().clone();
        let sentinel = Self::make_sentinel(&ralloc, &pool);
        let deq_slots = ralloc.alloc(8 * max_threads.max(1));
        for t in 0..max_threads {
            // SAFETY: slot t lies inside the 8*max_threads block just
            // allocated; u64 stores are plain data and nothing aliases it yet.
            unsafe { pool.write::<u64>(deq_slots.add(8 * t as u64), &0) };
        }
        pool.persist_range(deq_slots, 8 * max_threads.max(1));
        // SAFETY: the root-area anchor slot is reserved for this queue; both
        // words are in bounds and no other thread is running yet.
        unsafe {
            pool.write::<u64>(POff::root_slot(ANCHOR_SLOT), &deq_slots.raw());
            pool.write::<u64>(POff::root_slot(ANCHOR_SLOT).add(8), &(max_threads as u64));
        }
        pool.persist_range(POff::root_slot(ANCHOR_SLOT), 16);
        FriedmanQueue {
            pool,
            head: AtomicU64::new(sentinel.raw()),
            tail: AtomicU64::new(sentinel.raw()),
            deq_slots,
            max_threads,
            next_seq: AtomicU64::new(1),
            ralloc,
        }
    }

    fn make_sentinel(ralloc: &Ralloc, pool: &PmemPool) -> POff {
        let sentinel = ralloc.alloc(DATA_OFF as usize);
        // SAFETY: all header offsets fit in the DATA_OFF-byte block just
        // allocated; the sentinel is private until published via head/tail.
        unsafe {
            pool.write::<u64>(sentinel.add(NEXT_OFF), &0);
            pool.write::<u32>(sentinel.add(VLEN_OFF), &0);
            pool.write::<u32>(sentinel.add(MAGIC_OFF), &NODE_MAGIC);
            pool.write::<u64>(sentinel.add(SEQ_OFF), &0);
            pool.write::<u64>(sentinel.add(DEQED_OFF), &1); // never a value node
        }
        pool.persist_range(sentinel, DATA_OFF as usize);
        sentinel
    }

    /// Recovers the queue from a crashed pool (which must be dedicated to
    /// one Friedman queue): sweep live nodes, drop dequeued/claimed ones,
    /// rebuild FIFO order by sequence number.
    pub fn recover(pool: PmemPool, max_threads: usize) -> Self {
        Self::try_recover(pool, max_threads).expect("pool holds no Friedman queue")
    }

    /// Panic-free [`FriedmanQueue::recover`]: returns `None` when the
    /// durable image never finished formatting (allocator metadata or the
    /// queue anchor missing) — a crash-sweep point inside `new` lands here,
    /// and the caller treats it as an empty pre-history image.
    pub fn try_recover(pool: PmemPool, max_threads: usize) -> Option<Self> {
        if !Ralloc::is_formatted(&pool) {
            return None;
        }
        let anchor = POff::root_slot(ANCHOR_SLOT);
        // SAFETY: the anchor slot is in the root area; u64 reads of
        // possibly-garbage bytes are fine (validated below).
        let old_slots = POff::new(unsafe { pool.read::<u64>(anchor) });
        let old_nthreads = unsafe { pool.read::<u64>(anchor.add(8)) } as usize;
        if old_slots.is_null() || old_nthreads == 0 {
            return None;
        }
        let claimed: Vec<u64> = (0..old_nthreads)
            // SAFETY: the anchor recorded a block of old_nthreads u64 slots;
            // recovery is single-threaded, so plain reads cannot race.
            .map(|t| unsafe { pool.read::<u64>(old_slots.add(8 * t as u64)) })
            .filter(|&v| v != 0)
            .collect();

        let scan = pool.clone();
        let (ralloc, kept) = Ralloc::recover(pool, move |blk, size| {
            // SAFETY: the `size >= DATA_OFF` guard keeps every header read in bounds.
            size >= DATA_OFF as usize
                && unsafe { scan.read::<u32>(blk.add(MAGIC_OFF)) } == NODE_MAGIC
                && unsafe { scan.read::<u64>(blk.add(DEQED_OFF)) } == 0
                && unsafe { scan.read::<u64>(blk.add(SEQ_OFF)) } != 0
                && unsafe { scan.read::<u32>(blk.add(VLEN_OFF)) } as usize
                    <= size - DATA_OFF as usize
        });
        let pool = ralloc.pool().clone();

        let mut nodes: Vec<(u64, POff)> = kept
            .into_iter()
            .filter(|(blk, _)| !claimed.contains(&blk.raw()))
            // SAFETY: the sweep closure above admitted only blocks with a
            // full, magic-tagged header, so SEQ_OFF is in bounds.
            .map(|(blk, _)| (unsafe { pool.read::<u64>(blk.add(SEQ_OFF)) }, blk))
            .collect();
        // Claimed-but-kept blocks get freed (their dequeue is recovered as
        // done, exactly the original's announcement semantics).
        for &c in &claimed {
            if c != 0 {
                // May or may not still be live; if the sweep kept it, give
                // it back.
                if nodes.iter().all(|&(_, b)| b.raw() != c) {
                    // Either swept away already or live-but-claimed; mark it
                    // dequeued durably so a second crash agrees.
                    let blk = POff::new(c);
                    // SAFETY: the announcement slot held a block address this
                    // queue allocated; the magic check guards against a slot
                    // that was claimed and then swept. Recovery is
                    // single-threaded, so the read and write cannot race.
                    if unsafe { pool.read::<u32>(blk.add(MAGIC_OFF)) } == NODE_MAGIC {
                        unsafe { pool.write::<u64>(blk.add(DEQED_OFF), &1) };
                        pool.persist_range(blk.add(DEQED_OFF), 8);
                    }
                }
            }
        }
        nodes.sort_unstable_by_key(|&(seq, _)| seq);

        // Rebuild the chain behind a fresh sentinel.
        let sentinel = Self::make_sentinel(&ralloc, &pool);
        let mut prev = sentinel;
        for &(_, blk) in &nodes {
            // SAFETY: `prev` and `blk` are swept nodes (or the fresh
            // sentinel) with valid headers; recovery is single-threaded.
            unsafe {
                pool.write::<u64>(prev.add(NEXT_OFF), &blk.raw());
                pool.write::<u64>(blk.add(NEXT_OFF), &0);
            }
            pool.clwb_range(prev, DATA_OFF as usize);
            prev = blk;
        }
        pool.sfence();

        let deq_slots = ralloc.alloc(8 * max_threads.max(1));
        for t in 0..max_threads {
            // SAFETY: slot t lies inside the 8*max_threads block just
            // allocated; u64 stores are plain data and nothing aliases it yet.
            unsafe { pool.write::<u64>(deq_slots.add(8 * t as u64), &0) };
        }
        pool.persist_range(deq_slots, 8 * max_threads.max(1));
        // SAFETY: the root-area anchor slot is reserved for this queue; both
        // words are in bounds and no other thread is running yet.
        unsafe {
            pool.write::<u64>(POff::root_slot(ANCHOR_SLOT), &deq_slots.raw());
            pool.write::<u64>(POff::root_slot(ANCHOR_SLOT).add(8), &(max_threads as u64));
        }
        pool.persist_range(POff::root_slot(ANCHOR_SLOT), 16);

        let next_seq = nodes.last().map_or(1, |&(s, _)| s + 1);
        Some(FriedmanQueue {
            head: AtomicU64::new(sentinel.raw()),
            tail: AtomicU64::new(prev.raw()),
            deq_slots,
            max_threads,
            next_seq: AtomicU64::new(next_seq),
            pool,
            ralloc,
        })
    }

    fn next_cell(&self, node: u64) -> &AtomicU64 {
        // SAFETY: `node` is a live queue node (reached from head/tail under
        // an epoch pin), and NEXT_OFF is its 8-aligned first word.
        unsafe { self.pool.atomic_u64(POff::new(node + NEXT_OFF)) }
    }

    fn slot(&self, tid: usize) -> POff {
        debug_assert!(tid < self.max_threads);
        self.deq_slots.add(8 * tid as u64)
    }

    /// Number of live items (O(n) walk; for tests).
    pub fn len(&self) -> usize {
        let _pin = epoch::pin();
        let mut n = 0;
        let mut cur = self
            .next_cell(self.head.load(Ordering::SeqCst))
            .load(Ordering::SeqCst);
        while cur != 0 {
            n += 1;
            cur = self.next_cell(cur).load(Ordering::SeqCst);
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BenchQueue for FriedmanQueue {
    fn enqueue(&self, _tid: usize, value: &[u8]) {
        let node = self.ralloc.alloc(DATA_OFF as usize + value.len());
        let seq = self.next_seq.fetch_add(1, Ordering::AcqRel);
        // SAFETY: the header offsets fit in the freshly allocated block,
        // which no other thread can reach until the link CAS below.
        unsafe {
            self.pool.write::<u64>(node.add(NEXT_OFF), &0);
            self.pool
                .write::<u32>(node.add(VLEN_OFF), &(value.len() as u32));
            self.pool.write::<u32>(node.add(MAGIC_OFF), &NODE_MAGIC);
            self.pool.write::<u64>(node.add(SEQ_OFF), &seq);
            self.pool.write::<u64>(node.add(DEQED_OFF), &0);
        }
        self.pool.write_bytes(node.add(DATA_OFF), value);
        // Persist the node before it becomes reachable.
        self.pool
            .persist_range(node, DATA_OFF as usize + value.len());

        let _pin = epoch::pin();
        loop {
            let last = self.tail.load(Ordering::SeqCst);
            self.pool.touch(); // NVM node dereference
            let next = self.next_cell(last).load(Ordering::SeqCst);
            if last != self.tail.load(Ordering::SeqCst) {
                continue;
            }
            if next == 0 {
                // The link store goes through an untracked atomic; declare it
                // to the sanitizer *before* the CAS so a helping thread's
                // persist of this line never races a stale shadow state.
                self.pool.san_mark_dirty(POff::new(last + NEXT_OFF), 8);
                if self
                    .next_cell(last)
                    .compare_exchange(0, node.raw(), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // Persist the link that linearized us.
                    self.pool.persist_range(POff::new(last + NEXT_OFF), 8);
                    let _ = self.tail.compare_exchange(
                        last,
                        node.raw(),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    return;
                }
            } else {
                // Help: persist the link, then swing the tail.
                self.pool.persist_range(POff::new(last + NEXT_OFF), 8);
                let _ = self
                    .tail
                    .compare_exchange(last, next, Ordering::SeqCst, Ordering::SeqCst);
            }
        }
    }

    fn dequeue(&self, tid: usize) -> bool {
        let pin = epoch::pin();
        loop {
            let first = self.head.load(Ordering::SeqCst);
            let last = self.tail.load(Ordering::SeqCst);
            self.pool.touch(); // NVM node dereference
            let next = self.next_cell(first).load(Ordering::SeqCst);
            if first != self.head.load(Ordering::SeqCst) {
                continue;
            }
            if next == 0 {
                return false;
            }
            if first == last {
                self.pool.persist_range(POff::new(last + NEXT_OFF), 8);
                let _ = self
                    .tail
                    .compare_exchange(last, next, Ordering::SeqCst, Ordering::SeqCst);
                continue;
            }
            // Announce the claim durably before the linearizing CAS: a
            // crash after this point recovers the dequeue as done.
            // SAFETY: slot(tid) asserts tid < max_threads, so the write lands
            // in this thread's own announcement word — no aliasing.
            unsafe { self.pool.write::<u64>(self.slot(tid), &next) };
            self.pool.persist_range(self.slot(tid), 8);
            if self
                .head
                .compare_exchange(first, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // Mark the node dequeued (write + clwb; the line becomes
                // durable together with this thread's next announcement
                // fence, which also clears the claim window).
                // SAFETY: winning the head CAS makes this thread the sole
                // owner of `next`'s dequeued flag; the offset is in bounds.
                unsafe { self.pool.write::<u64>(POff::new(next + DEQED_OFF), &1) };
                self.pool.clwb(POff::new(next + DEQED_OFF));
                let r = self.ralloc.clone();
                // SAFETY: `first` was unlinked by the CAS; the deferred
                // dealloc runs only after every current epoch pin drops, and
                // the captured Arc<Ralloc> keeps the allocator alive.
                unsafe {
                    pin.defer_unchecked(move || r.dealloc(POff::new(first)));
                }
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn queue() -> FriedmanQueue {
        let pool = PmemPool::new(PmemConfig::default());
        FriedmanQueue::new(Ralloc::format(pool), 8)
    }

    #[test]
    fn fifo_single_thread() {
        let q = queue();
        for i in 0..50u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        assert_eq!(q.len(), 50);
        for _ in 0..50 {
            assert!(q.dequeue(0));
        }
        assert!(!q.dequeue(0));
        assert!(q.is_empty());
    }

    #[test]
    fn every_operation_fences() {
        let q = queue();
        let pool = q.pool.clone();
        let f0 = pool.stats().snapshot().sfences;
        q.enqueue(0, &[1u8; 100]);
        let f1 = pool.stats().snapshot().sfences;
        assert!(
            f1 >= f0 + 2,
            "enqueue must fence at least twice (node + link)"
        );
        q.dequeue(0);
        let f2 = pool.stats().snapshot().sfences;
        assert!(f2 > f1, "dequeue must fence (announcement)");
    }

    #[test]
    fn concurrent_conservation() {
        let q = Arc::new(queue());
        let mut handles = vec![];
        for t in 0..4usize {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut popped = 0usize;
                for i in 0..500u32 {
                    q.enqueue(t, &i.to_le_bytes());
                    if i % 2 == 0 && q.dequeue(t) {
                        popped += 1;
                    }
                }
                popped
            }));
        }
        let popped: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut rest = 0;
        while q.dequeue(0) {
            rest += 1;
        }
        assert_eq!(popped + rest, 2000);
    }

    #[test]
    fn recovery_restores_fifo() {
        let pool = PmemPool::new(PmemConfig::strict_for_test(16 << 20));
        let q = FriedmanQueue::new(Ralloc::format(pool.clone()), 4);
        for i in 0..30u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        for _ in 0..10 {
            assert!(q.dequeue(1));
        }
        let crashed = pool.crash();
        let q2 = FriedmanQueue::recover(crashed, 4);
        // Strictly durable: exactly items 10..30 remain (every op persisted
        // before returning), possibly minus the announced-but-uncommitted
        // head — here none.
        assert_eq!(q2.len(), 20);
        for _ in 0..20 {
            assert!(q2.dequeue(0));
        }
        assert!(!q2.dequeue(0));
    }

    #[test]
    fn recovery_survives_second_crash() {
        let pool = PmemPool::new(PmemConfig::strict_for_test(16 << 20));
        let q = FriedmanQueue::new(Ralloc::format(pool.clone()), 4);
        for i in 0..10u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        let q2 = FriedmanQueue::recover(pool.crash(), 4);
        assert_eq!(q2.len(), 10);
        q2.enqueue(0, &99u32.to_le_bytes());
        q2.dequeue(0);
        let q3 = FriedmanQueue::recover(q2.pool.crash(), 4);
        assert_eq!(q3.len(), 10);
    }
}
