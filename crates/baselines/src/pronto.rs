//! Pronto — "Easy and Fast Persistence for Volatile Data Structures"
//! (Memaripour, Izraelevitz & Swanson, ASPLOS '20): a general-purpose system
//! that keeps the data structure itself **volatile** and persists a
//! **semantic log** of high-level operations (op code + arguments), replayed
//! from a periodic checkpoint after a crash.
//!
//! Crucially (paper Sec. 2), Pronto still persists each operation **before
//! returning** — strict durable linearizability — which is exactly the cost
//! Montage's buffering removes. Two modes:
//!
//! * **Pronto-Sync**: the calling thread appends the log entry, flushes and
//!   fences it inline (two-phase: entry body, then commit header).
//! * **Pronto-Full**: an *asynchronous logging thread* (the original uses
//!   the worker's sister hyperthread) persists the entry while the caller
//!   executes the volatile operation; the caller still waits for the
//!   logger's ack before returning.
//!
//! Checkpointing serializes the volatile structure into NVM and truncates
//! the logs, bounding recovery time; [`ProntoQueue::recover`] /
//! [`ProntoMap::recover`] load the checkpoint and replay the tail of the
//! log in global sequence order.
//!
//! Note the log entry contains the full argument list — for a 1 KB value, a
//! 1 KB log write per operation, which is why Pronto trails Montage by an
//! order of magnitude on large payloads.

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use pmem::{POff, PmemPool};
use ralloc::Ralloc;

use crate::api::{BenchMap, BenchQueue, Key32};

/// Per-thread persistent log region.
const LOG_REGION: usize = 1 << 16;

/// Entry header: `len: u64 | seq: u64`, then `len` bytes of payload.
const ENTRY_HDR: u64 = 16;

/// Root-area slot anchoring {log block, nthreads, ckpt off, ckpt len, ckpt seq}.
const ANCHOR_SLOT: usize = 10;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    Sync,
    Full,
}

/// The semantic log: one region per thread (one contiguous anchored block)
/// plus, in Full mode, one logger thread servicing flush requests.
pub struct OpLog {
    pool: PmemPool,
    mode: Mode,
    /// Per-thread log regions plus the persistent table anchoring them.
    regions: Vec<POff>,
    table: POff,
    nthreads: usize,
    positions: Box<[Mutex<u64>]>,
    seq: AtomicU64,
    /// Full mode: request mailboxes — packed `(off:48 | len:16)`, 0 = none.
    requests: Box<[CachePadded<AtomicU64>]>,
    stop: Arc<AtomicBool>,
    logger: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl OpLog {
    pub fn new(ralloc: &Ralloc, mode: Mode, max_threads: usize) -> Arc<Self> {
        let pool = ralloc.pool().clone();
        let nthreads = max_threads.max(1);
        // One region per thread, anchored through a persistent offset table.
        let regions: Vec<POff> = (0..nthreads).map(|_| ralloc.alloc(LOG_REGION)).collect();
        let table = ralloc.alloc(8 * nthreads);
        for (t, r) in regions.iter().enumerate() {
            // SAFETY: region and table slots were just allocated with room for
            // these words; no other thread references them yet.
            unsafe {
                pool.write::<u64>(*r, &0); // zero terminator
                pool.write::<u64>(table.add(8 * t as u64), &r.raw());
            }
            pool.clwb(*r);
        }
        pool.persist_range(table, 8 * nthreads);
        let log = Arc::new(OpLog {
            pool: pool.clone(),
            mode,
            regions,
            table,
            nthreads,
            positions: (0..nthreads).map(|_| Mutex::new(0)).collect(),
            seq: AtomicU64::new(1),
            requests: (0..nthreads)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            stop: Arc::new(AtomicBool::new(false)),
            logger: Mutex::new(None),
        });
        if mode == Mode::Full {
            let l = log.clone();
            let stop = log.stop.clone();
            *log.logger.lock() = Some(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut idle = true;
                    for t in 0..l.requests.len() {
                        let req = l.requests[t].swap(0, Ordering::AcqRel);
                        if req != 0 {
                            idle = false;
                            let off = req >> 16;
                            let len = (req & 0xFFFF) as usize;
                            l.pool.clwb_range(POff::new(off + 8), len - 8);
                            l.pool.sfence();
                            l.pool.clwb(POff::new(off));
                            l.pool.sfence();
                        }
                    }
                    if idle {
                        // Yield so workers can post (essential when cores
                        // are oversubscribed; the original dedicates the
                        // sister hyperthread).
                        std::thread::yield_now();
                    }
                }
            }));
        }
        log
    }

    fn region(&self, tid: usize) -> POff {
        self.regions[tid % self.nthreads]
    }

    /// Appends `entry` to thread `tid`'s log with a global sequence number;
    /// returns only when durable (Sync) or after posting to the logger
    /// (Full — pair with [`OpLog::wait_durable`] before returning to the
    /// client). Call while holding the structure's lock so sequence order
    /// matches apply order (Pronto serializes per object).
    pub fn append(&self, tid: usize, entry: &[u8]) {
        let region = self.region(tid);
        let total = ENTRY_HDR + entry.len() as u64;
        let (off, len) = {
            let mut pos = self.positions[tid % self.nthreads].lock();
            if *pos + total + 8 > LOG_REGION as u64 {
                // Ring wrap. A real deployment checkpoints before this point
                // (recovery after an un-checkpointed wrap is undefined, as
                // in the original when the log fills).
                *pos = 0;
            }
            let off = region.add(*pos);
            let seq = self.seq.fetch_add(1, Ordering::AcqRel);
            // SAFETY: the wrap check above keeps entry + terminator inside this
            // thread's LOG_REGION block, and the position lock gives this
            // thread exclusive access to that region.
            unsafe {
                pool_write_entry(&self.pool, off, seq, entry);
            }
            *pos += total;
            // Terminator for the replay parser.
            // SAFETY: see above — in-region, owned under the position lock.
            unsafe { self.pool.write::<u64>(region.add(*pos), &0) };
            (off, total as usize)
        };
        match self.mode {
            Mode::Sync => {
                // Two-phase append: persist the body, then the header (whose
                // nonzero length commits the entry).
                self.pool.clwb_range(off.add(8), len - 8);
                self.pool.sfence();
                self.pool.clwb(off);
                self.pool.sfence();
            }
            Mode::Full => {
                self.requests[tid % self.nthreads]
                    .store((off.raw() << 16) | len as u64, Ordering::Release);
            }
        }
    }

    /// Full mode: block until every posted entry of `tid` is durable.
    pub fn wait_durable(&self, tid: usize) {
        if self.mode == Mode::Full {
            let mut spins = 0u32;
            while self.requests[tid % self.nthreads].load(Ordering::Acquire) != 0 {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Truncates all logs (after a checkpoint). Caller must quiesce ops.
    pub fn truncate(&self) {
        for t in 0..self.nthreads {
            let mut pos = self.positions[t].lock();
            *pos = 0;
            // SAFETY: holding the position lock, writing the region's first word.
            unsafe { self.pool.write::<u64>(self.region(t), &0) };
            self.pool.clwb(self.region(t));
        }
        self.pool.sfence();
    }

    /// Last assigned global sequence number (for checkpoint stamping).
    pub fn current_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire) - 1
    }

    /// Replays all entries with `seq > after_seq`, in sequence order. The
    /// `table` holds each thread's region offset.
    pub fn replay(
        pool: &PmemPool,
        table: POff,
        nthreads: usize,
        after_seq: u64,
        mut apply: impl FnMut(&[u8]),
    ) {
        let mut entries: Vec<(u64, Vec<u8>)> = Vec::new();
        for t in 0..nthreads {
            // SAFETY: the anchored table holds nthreads region offsets;
            // replay runs single-threaded after a crash.
            let region = POff::new(unsafe { pool.read::<u64>(table.add(8 * t as u64)) });
            let mut pos = 0u64;
            loop {
                // SAFETY: `pos` stays below LOG_REGION (checked after each
                // entry), so header reads are inside the region block.
                let len = unsafe { pool.read::<u64>(region.add(pos)) };
                if len == 0 || pos + ENTRY_HDR + len + 8 > LOG_REGION as u64 {
                    break;
                }
                // SAFETY: see above.
                let seq = unsafe { pool.read::<u64>(region.add(pos + 8)) };
                let mut bytes = vec![0u8; len as usize];
                pool.read_bytes(region.add(pos + ENTRY_HDR), &mut bytes);
                if seq > after_seq {
                    entries.push((seq, bytes));
                }
                pos += ENTRY_HDR + len;
            }
        }
        entries.sort_unstable_by_key(|&(seq, _)| seq);
        for (_, bytes) in entries {
            apply(&bytes);
        }
    }
}

/// # Safety
///
/// `off .. off + ENTRY_HDR + entry.len()` must lie inside a log region the
/// caller owns exclusively (it holds that region's position lock).
unsafe fn pool_write_entry(pool: &PmemPool, off: POff, seq: u64, entry: &[u8]) {
    pool.write::<u64>(off, &(entry.len() as u64));
    pool.write::<u64>(off.add(8), &seq);
    pool.write_bytes(off.add(ENTRY_HDR), entry);
}

impl Drop for OpLog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.logger.lock().take() {
            let _ = h.join();
        }
    }
}

// Op codes for the semantic log.
const OP_ENQ: u8 = 1;
const OP_DEQ: u8 = 2;
const OP_INS: u8 = 3;
const OP_DEL: u8 = 4;

fn encode_entry(op: u8, key: Option<&Key32>, value: Option<&[u8]>) -> Vec<u8> {
    let mut e = Vec::with_capacity(1 + 32 + value.map_or(0, |v| v.len()));
    e.push(op);
    if let Some(k) = key {
        e.extend_from_slice(k);
    }
    if let Some(v) = value {
        e.extend_from_slice(v);
    }
    e
}

/// Writes a checkpoint blob and anchors it (common to queue and map).
fn write_checkpoint(ralloc: &Ralloc, log: &OpLog, blob: &[u8]) {
    let pool = ralloc.pool();
    let ckpt = ralloc.alloc(blob.len().max(8));
    pool.write_bytes(ckpt, blob);
    pool.clwb_range(ckpt, blob.len());
    pool.sfence();
    let anchor = POff::root_slot(ANCHOR_SLOT);
    // SAFETY: the 40-byte anchor record fits in the reserved root slot, and
    // checkpointing quiesces all other writers.
    unsafe {
        pool.write::<u64>(anchor, &log.table.raw());
        pool.write::<u64>(anchor.add(8), &(log.nthreads as u64));
        pool.write::<u64>(anchor.add(16), &ckpt.raw());
        pool.write::<u64>(anchor.add(24), &(blob.len() as u64));
        pool.write::<u64>(anchor.add(32), &log.current_seq());
    }
    pool.persist_range(anchor, 40);
    log.truncate();
}

/// Offsets that must survive a Pronto recovery sweep: the region table,
/// every log region, and the checkpoint blob.
fn keep_set(
    pool: &PmemPool,
    table: POff,
    nthreads: usize,
    ckpt: POff,
    _ckpt_len: usize,
) -> std::collections::HashSet<u64> {
    let mut keep = std::collections::HashSet::new();
    keep.insert(table.raw());
    for t in 0..nthreads {
        // SAFETY: the anchored table holds nthreads in-bounds offsets;
        // recovery is single-threaded.
        keep.insert(unsafe { pool.read::<u64>(table.add(8 * t as u64)) });
    }
    if !ckpt.is_null() {
        keep.insert(ckpt.raw());
    }
    keep
}

fn read_anchor(pool: &PmemPool) -> (POff, usize, POff, usize, u64) {
    let anchor = POff::root_slot(ANCHOR_SLOT);
    // SAFETY: reads of the reserved root-slot record; any bit pattern is a
    // valid u64 and gets validated by the callers.
    unsafe {
        (
            POff::new(pool.read::<u64>(anchor)),
            pool.read::<u64>(anchor.add(8)) as usize,
            POff::new(pool.read::<u64>(anchor.add(16))),
            pool.read::<u64>(anchor.add(24)) as usize,
            pool.read::<u64>(anchor.add(32)),
        )
    }
}

/// Anchors the log block even before the first checkpoint, so replay works
/// from an empty checkpoint.
fn anchor_fresh(ralloc: &Ralloc, log: &OpLog) {
    let pool = ralloc.pool();
    let anchor = POff::root_slot(ANCHOR_SLOT);
    // SAFETY: the 40-byte anchor record fits in the reserved root slot; the
    // log was just created, so nothing else writes it.
    unsafe {
        pool.write::<u64>(anchor, &log.table.raw());
        pool.write::<u64>(anchor.add(8), &(log.nthreads as u64));
        pool.write::<u64>(anchor.add(16), &0u64);
        pool.write::<u64>(anchor.add(24), &0u64);
        pool.write::<u64>(anchor.add(32), &0u64);
    }
    pool.persist_range(anchor, 40);
}

// ---------------------------------------------------------------------------
// Pronto-wrapped volatile FIFO queue
// ---------------------------------------------------------------------------

pub struct ProntoQueue {
    ralloc: Arc<Ralloc>,
    log: Arc<OpLog>,
    inner: Mutex<VecDeque<Box<[u8]>>>,
}

impl ProntoQueue {
    pub fn new(ralloc: &Arc<Ralloc>, mode: Mode, max_threads: usize) -> Self {
        let log = OpLog::new(ralloc, mode, max_threads);
        anchor_fresh(ralloc, &log);
        ProntoQueue {
            ralloc: ralloc.clone(),
            log,
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Serializes the queue to NVM and truncates the logs.
    pub fn checkpoint(&self) {
        let inner = self.inner.lock();
        let mut blob = Vec::new();
        blob.extend_from_slice(&(inner.len() as u64).to_le_bytes());
        for item in inner.iter() {
            blob.extend_from_slice(&(item.len() as u64).to_le_bytes());
            blob.extend_from_slice(item);
        }
        write_checkpoint(&self.ralloc, &self.log, &blob);
    }

    /// Loads the checkpoint and replays the log tail.
    pub fn recover(pool: PmemPool, mode: Mode, max_threads: usize) -> Self {
        let (table, nthreads, ckpt, ckpt_len, ckpt_seq) = read_anchor(&pool);
        assert!(!table.is_null(), "pool holds no Pronto queue");
        let keep = keep_set(&pool, table, nthreads, ckpt, ckpt_len);
        let (ralloc, _kept) =
            Ralloc::recover(pool.clone(), move |blk, _| keep.contains(&blk.raw()));

        let mut items = VecDeque::new();
        if !ckpt.is_null() && ckpt_len >= 8 {
            let mut hdr = [0u8; 8];
            pool.read_bytes(ckpt, &mut hdr);
            let n = u64::from_le_bytes(hdr) as usize;
            let mut at = 8u64;
            for _ in 0..n {
                pool.read_bytes(ckpt.add(at), &mut hdr);
                let len = u64::from_le_bytes(hdr) as usize;
                let mut item = vec![0u8; len];
                pool.read_bytes(ckpt.add(at + 8), &mut item);
                items.push_back(item.into_boxed_slice());
                at += 8 + len as u64;
            }
        }
        OpLog::replay(&pool, table, nthreads, ckpt_seq, |entry| match entry[0] {
            OP_ENQ => items.push_back(entry[1..].into()),
            OP_DEQ => {
                items.pop_front();
            }
            _ => unreachable!("foreign op in queue log"),
        });

        let log = OpLog::new(&ralloc, mode, max_threads);
        anchor_fresh(&ralloc, &log);
        ProntoQueue {
            ralloc,
            log,
            inner: Mutex::new(items),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BenchQueue for ProntoQueue {
    fn enqueue(&self, tid: usize, value: &[u8]) {
        {
            let mut inner = self.inner.lock();
            self.log
                .append(tid, &encode_entry(OP_ENQ, None, Some(value)));
            inner.push_back(value.into());
        }
        self.log.wait_durable(tid);
    }

    fn dequeue(&self, tid: usize) -> bool {
        let got = {
            let mut inner = self.inner.lock();
            self.log.append(tid, &encode_entry(OP_DEQ, None, None));
            inner.pop_front().is_some()
        };
        self.log.wait_durable(tid);
        got
    }
}

// ---------------------------------------------------------------------------
// Pronto-wrapped volatile hashmap
// ---------------------------------------------------------------------------

type MapChain = Vec<(Key32, Box<[u8]>)>;

pub struct ProntoMap {
    ralloc: Arc<Ralloc>,
    log: Arc<OpLog>,
    buckets: Box<[Mutex<MapChain>]>,
}

impl ProntoMap {
    pub fn new(ralloc: &Arc<Ralloc>, mode: Mode, max_threads: usize, nbuckets: usize) -> Self {
        let log = OpLog::new(ralloc, mode, max_threads);
        anchor_fresh(ralloc, &log);
        ProntoMap {
            ralloc: ralloc.clone(),
            log,
            buckets: (0..nbuckets).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn index(&self, key: &Key32) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.buckets.len()
    }

    /// Serializes the map and truncates logs (caller quiesces operations).
    pub fn checkpoint(&self) {
        let mut blob = Vec::new();
        let mut count = 0u64;
        let mut body = Vec::new();
        for b in self.buckets.iter() {
            for (k, v) in b.lock().iter() {
                body.extend_from_slice(k);
                body.extend_from_slice(&(v.len() as u64).to_le_bytes());
                body.extend_from_slice(v);
                count += 1;
            }
        }
        blob.extend_from_slice(&count.to_le_bytes());
        blob.extend_from_slice(&body);
        write_checkpoint(&self.ralloc, &self.log, &blob);
    }

    /// Loads the checkpoint and replays the log tail.
    pub fn recover(pool: PmemPool, mode: Mode, max_threads: usize, nbuckets: usize) -> Self {
        let (table, nthreads, ckpt, ckpt_len, ckpt_seq) = read_anchor(&pool);
        assert!(!table.is_null(), "pool holds no Pronto map");
        let keep = keep_set(&pool, table, nthreads, ckpt, ckpt_len);
        let (ralloc, _kept) =
            Ralloc::recover(pool.clone(), move |blk, _| keep.contains(&blk.raw()));

        let log = OpLog::new(&ralloc, mode, max_threads);
        let map = ProntoMap {
            ralloc: ralloc.clone(),
            log,
            buckets: (0..nbuckets).map(|_| Mutex::new(Vec::new())).collect(),
        };
        anchor_fresh(&ralloc, &map.log);

        if !ckpt.is_null() && ckpt_len >= 8 {
            let mut hdr = [0u8; 8];
            pool.read_bytes(ckpt, &mut hdr);
            let n = u64::from_le_bytes(hdr);
            let mut at = 8u64;
            for _ in 0..n {
                let mut key = [0u8; 32];
                pool.read_bytes(ckpt.add(at), &mut key);
                pool.read_bytes(ckpt.add(at + 32), &mut hdr);
                let len = u64::from_le_bytes(hdr) as usize;
                let mut val = vec![0u8; len];
                pool.read_bytes(ckpt.add(at + 40), &mut val);
                map.apply_insert(key, &val);
                at += 40 + len as u64;
            }
        }
        OpLog::replay(&pool, table, nthreads, ckpt_seq, |entry| {
            let key: Key32 = entry[1..33].try_into().unwrap();
            match entry[0] {
                OP_INS => {
                    map.apply_insert(key, &entry[33..]);
                }
                OP_DEL => {
                    map.apply_remove(&key);
                }
                _ => unreachable!("foreign op in map log"),
            }
        });
        map
    }

    fn apply_insert(&self, key: Key32, value: &[u8]) -> bool {
        let mut chain = self.buckets[self.index(&key)].lock();
        if chain.iter().any(|e| e.0 == key) {
            return false;
        }
        chain.push((key, value.into()));
        true
    }

    fn apply_remove(&self, key: &Key32) -> bool {
        let mut chain = self.buckets[self.index(key)].lock();
        match chain.iter().position(|e| e.0 == *key) {
            Some(p) => {
                chain.swap_remove(p);
                true
            }
            None => false,
        }
    }

    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BenchMap for ProntoMap {
    fn get(&self, _tid: usize, key: &Key32) -> bool {
        // Reads are not logged (no state change).
        self.buckets[self.index(key)]
            .lock()
            .iter()
            .any(|e| e.0 == *key)
    }

    fn insert(&self, tid: usize, key: Key32, value: &[u8]) -> bool {
        let ok = {
            let mut chain = self.buckets[self.index(&key)].lock();
            if chain.iter().any(|e| e.0 == key) {
                false
            } else {
                self.log
                    .append(tid, &encode_entry(OP_INS, Some(&key), Some(value)));
                chain.push((key, value.into()));
                true
            }
        };
        self.log.wait_durable(tid);
        ok
    }

    fn remove(&self, tid: usize, key: &Key32) -> bool {
        let ok = {
            let mut chain = self.buckets[self.index(key)].lock();
            match chain.iter().position(|e| e.0 == *key) {
                Some(p) => {
                    self.log.append(tid, &encode_entry(OP_DEL, Some(key), None));
                    chain.swap_remove(p);
                    true
                }
                None => false,
            }
        };
        self.log.wait_durable(tid);
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::make_key;
    use pmem::PmemConfig;

    fn setup() -> Arc<Ralloc> {
        Ralloc::format(PmemPool::new(PmemConfig::default()))
    }

    fn strict_setup() -> Arc<Ralloc> {
        Ralloc::format(PmemPool::new(PmemConfig::strict_for_test(16 << 20)))
    }

    #[test]
    fn sync_queue_fifo_and_fences_per_op() {
        let r = setup();
        let q = ProntoQueue::new(&r, Mode::Sync, 4);
        let f0 = r.pool().stats().snapshot().sfences;
        for i in 0..10u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        let f1 = r.pool().stats().snapshot().sfences;
        assert!(f1 >= f0 + 10, "at least one fence per logged op");
        for _ in 0..10 {
            assert!(q.dequeue(0));
        }
        assert!(!q.dequeue(0));
    }

    #[test]
    fn full_mode_queue_works_and_persists() {
        let r = setup();
        let q = ProntoQueue::new(&r, Mode::Full, 4);
        for i in 0..100u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        for _ in 0..100 {
            assert!(q.dequeue(0));
        }
        let fences = r.pool().stats().snapshot().sfences;
        assert!(fences > 0);
    }

    #[test]
    fn map_semantics_both_modes() {
        for mode in [Mode::Sync, Mode::Full] {
            let r = setup();
            let m = ProntoMap::new(&r, mode, 4, 16);
            assert!(m.insert(0, make_key(1), b"v"));
            assert!(!m.insert(0, make_key(1), b"w"));
            assert!(m.get(0, &make_key(1)));
            assert!(m.remove(0, &make_key(1)));
            assert!(!m.get(0, &make_key(1)));
        }
    }

    #[test]
    fn log_entry_carries_full_value() {
        let r = setup();
        let m = ProntoMap::new(&r, Mode::Sync, 4, 16);
        let big = vec![7u8; 1024];
        let c0 = r.pool().stats().snapshot().clwbs;
        m.insert(0, make_key(1), &big);
        let c1 = r.pool().stats().snapshot().clwbs;
        assert!(c1 - c0 >= 16, "expected ≥16 clwbs, saw {}", c1 - c0);
    }

    #[test]
    fn concurrent_full_mode_threads_get_independent_acks() {
        let r = setup();
        let q = Arc::new(ProntoQueue::new(&r, Mode::Full, 8));
        let mut handles = vec![];
        for t in 0..4usize {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    q.enqueue(t, &i.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut n = 0;
        while q.dequeue(0) {
            n += 1;
        }
        assert_eq!(n, 800);
    }

    #[test]
    fn queue_recovers_from_log_replay_alone() {
        let r = strict_setup();
        let pool = r.pool().clone();
        let q = ProntoQueue::new(&r, Mode::Sync, 4);
        for i in 0..20u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        for _ in 0..5 {
            q.dequeue(1);
        }
        let q2 = ProntoQueue::recover(pool.crash(), Mode::Sync, 4);
        assert_eq!(q2.len(), 15, "strictly durable: every op replayed");
    }

    #[test]
    fn queue_recovers_from_checkpoint_plus_tail() {
        let r = strict_setup();
        let pool = r.pool().clone();
        let q = ProntoQueue::new(&r, Mode::Sync, 4);
        for i in 0..10u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        q.checkpoint();
        for i in 10..15u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        q.dequeue(0);
        let q2 = ProntoQueue::recover(pool.crash(), Mode::Sync, 4);
        assert_eq!(q2.len(), 14);
        // FIFO order preserved across checkpoint+replay.
        let inner = q2.inner.lock();
        assert_eq!(&inner[0][..], &1u32.to_le_bytes());
        assert_eq!(&inner[13][..], &14u32.to_le_bytes());
    }

    #[test]
    fn map_recovers_checkpoint_plus_tail() {
        let r = strict_setup();
        let pool = r.pool().clone();
        let m = ProntoMap::new(&r, Mode::Sync, 4, 16);
        for i in 0..30 {
            m.insert(0, make_key(i), format!("v{i}").as_bytes());
        }
        m.checkpoint();
        m.remove(0, &make_key(3));
        m.insert(0, make_key(100), b"tail");
        let m2 = ProntoMap::recover(pool.crash(), Mode::Sync, 4, 16);
        assert_eq!(m2.len(), 30);
        assert!(!m2.get(0, &make_key(3)));
        assert!(m2.get(0, &make_key(100)));
        assert!(m2.get(0, &make_key(7)));
    }

    #[test]
    fn checkpoint_bounds_replay() {
        let r = strict_setup();
        let pool = r.pool().clone();
        let m = ProntoMap::new(&r, Mode::Sync, 2, 16);
        for i in 0..10 {
            m.insert(0, make_key(i), b"x");
        }
        m.checkpoint();
        // The logs were truncated: replay after recovery applies nothing.
        let m2 = ProntoMap::recover(pool.crash(), Mode::Sync, 2, 16);
        assert_eq!(m2.len(), 10);
    }
}
