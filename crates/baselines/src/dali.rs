//! Dalí — "A Periodically Persistent Hash Map" (Nawab et al., DISC '17),
//! reimplemented as in the Montage paper's own evaluation: the original's
//! privileged flush-the-whole-cache instruction is replaced by **software
//! tracking of to-be-written-back lines**.
//!
//! Dalí is, besides Montage, the only *buffered* durably linearizable
//! competitor. Every update **prepends a version record** to the bucket's
//! persistent chain (no in-place mutation, no critical-path flush); a
//! periodic era advance writes back all dirty buckets and bumps a persistent
//! era stamp. Old records become garbage once two eras old and are unlinked
//! lazily during later updates.
//!
//! Compared with Montage, the cost drivers are: a record allocation +
//! prepend on *every* update (Montage updates hot payloads in place), chain
//! traversal through NVM on every lookup, and whole-bucket write-back sets.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{POff, PmemPool};
use ralloc::Ralloc;

use crate::api::{BenchMap, Key32};

/// Record layout: `next: u64 | era: u64 | op: u32 (1=put,2=del) | vlen: u32 |
/// key 32B | value bytes`.
const NEXT_OFF: u64 = 0;
const ERA_OFF: u64 = 8;
const OP_OFF: u64 = 16;
const VLEN_OFF: u64 = 20;
const KEY_OFF: u64 = 24;
const DATA_OFF: u64 = 56;

const OP_PUT: u32 = 1;
const OP_DEL: u32 = 2;

struct Bucket {
    /// Head of the persistent record chain (the bucket pointer itself lives
    /// in an NVM array in the original; we keep the pointer value here and
    /// the pointed-to records in NVM — the flush set is what matters).
    head: POff,
    /// Era in which this bucket was last modified (for the dirty set).
    dirty_since: u64,
    /// Already-durable records whose link word was patched in place by GC
    /// since the last era flush; only that word needs write-back.
    patched: Vec<POff>,
}

pub struct DaliHashMap {
    ralloc: Arc<Ralloc>,
    pool: PmemPool,
    buckets: Box<[Mutex<Bucket>]>,
    /// Dirty bucket indices since the last era flush.
    dirty: Mutex<Vec<u32>>,
    era: AtomicU64,
    len: AtomicUsize,
}

impl DaliHashMap {
    pub fn new(ralloc: Arc<Ralloc>, nbuckets: usize) -> Self {
        DaliHashMap {
            pool: ralloc.pool().clone(),
            ralloc,
            buckets: (0..nbuckets)
                .map(|_| {
                    Mutex::new(Bucket {
                        head: POff::NULL,
                        dirty_since: 0,
                        patched: Vec::new(),
                    })
                })
                .collect(),
            dirty: Mutex::new(Vec::new()),
            era: AtomicU64::new(1),
            len: AtomicUsize::new(0),
        }
    }

    fn index(&self, key: &Key32) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.buckets.len()
    }

    fn read_key(&self, rec: POff) -> Key32 {
        let mut k = [0u8; 32];
        self.pool.read_bytes(rec.add(KEY_OFF), &mut k);
        k
    }

    /// Newest record for `key` in the chain, if any.
    fn find(&self, mut rec: POff, key: &Key32) -> Option<(POff, u32)> {
        while !rec.is_null() {
            self.pool.touch(); // NVM chain hop
            if self.read_key(rec) == *key {
                // SAFETY: `rec` is a live chain record under the bucket lock;
                // header offsets are inside its allocation.
                let op = unsafe { self.pool.read::<u32>(rec.add(OP_OFF)) };
                return Some((rec, op));
            }
            // SAFETY: same live-record argument as above.
            rec = POff::new(unsafe { self.pool.read::<u64>(rec.add(NEXT_OFF)) });
        }
        None
    }

    fn prepend(&self, b: &mut Bucket, idx: usize, op: u32, key: &Key32, value: &[u8]) {
        let era = self.era.load(Ordering::Acquire);
        let rec = self.ralloc.alloc(DATA_OFF as usize + value.len());
        // SAFETY: header fields fit in the fresh record, which stays private
        // to this bucket-lock holder until `b.head = rec` below.
        unsafe {
            self.pool.write::<u64>(rec.add(NEXT_OFF), &b.head.raw());
            self.pool.write::<u64>(rec.add(ERA_OFF), &era);
            self.pool.write::<u32>(rec.add(OP_OFF), &op);
            self.pool
                .write::<u32>(rec.add(VLEN_OFF), &(value.len() as u32));
        }
        self.pool.write_bytes(rec.add(KEY_OFF), key);
        self.pool.write_bytes(rec.add(DATA_OFF), value);
        b.head = rec;
        // No flush here — buffered durability. Track the dirty bucket.
        if b.dirty_since < era {
            b.dirty_since = era;
            self.dirty.lock().push(idx as u32);
        }
        // Lazy GC: unlink stale records for the same key that are at least
        // two eras old (already superseded in every recoverable state).
        self.gc_key(b, key, era);
    }

    fn gc_key(&self, b: &mut Bucket, key: &Key32, era: u64) {
        // SAFETY: (chain walk) all records are reached from the locked
        // bucket's head, so reads and the unlink write below cannot race.
        let mut prev = b.head;
        let mut cur = POff::new(unsafe { self.pool.read::<u64>(prev.add(NEXT_OFF)) });
        while !cur.is_null() {
            self.pool.touch(); // NVM chain hop
                               // SAFETY: see the chain-walk note above.
            let next = POff::new(unsafe { self.pool.read::<u64>(cur.add(NEXT_OFF)) });
            if self.read_key(cur) == *key {
                // SAFETY: see the chain-walk note above.
                let rec_era = unsafe { self.pool.read::<u64>(cur.add(ERA_OFF)) };
                if rec_era + 2 <= era {
                    // SAFETY: see the chain-walk note above.
                    unsafe { self.pool.write::<u64>(prev.add(NEXT_OFF), &next.raw()) };
                    // An already-durable record was mutated in place: queue
                    // its link word for the next era write-back. Records
                    // stamped with the current era are written back in full
                    // anyway.
                    // SAFETY: see the chain-walk note above.
                    let prev_era = unsafe { self.pool.read::<u64>(prev.add(ERA_OFF)) };
                    if prev_era < era && !b.patched.contains(&prev) {
                        b.patched.push(prev);
                    }
                    b.patched.retain(|&p| p != cur);
                    self.ralloc.dealloc(cur);
                    cur = next;
                    continue;
                }
            }
            prev = cur;
            cur = next;
        }
    }

    /// Era advance (the periodic flush). Writes back every dirty bucket's
    /// chain head and records, fences, then bumps the era. In the original a
    /// background thread runs this on a timer; benches call it directly or
    /// via [`DaliHashMap::start_flusher`].
    pub fn flush_era(&self) {
        let dirty: Vec<u32> = std::mem::take(&mut *self.dirty.lock());
        for idx in dirty {
            let mut b = self.buckets[idx as usize].lock();
            // Write back only the records prepended since this bucket got
            // dirty (their era stamp says so); everything older became
            // durable at the era flush that covered it and must not be
            // written back again.
            let since = b.dirty_since;
            let mut rec = b.head;
            // SAFETY: (all reads below) records hang off the locked bucket's
            // head, so header reads are in-bounds and race-free.
            while !rec.is_null() {
                let rec_era = unsafe { self.pool.read::<u64>(rec.add(ERA_OFF)) };
                if rec_era >= since {
                    // SAFETY: see above.
                    let vlen = unsafe { self.pool.read::<u32>(rec.add(VLEN_OFF)) } as usize;
                    self.pool.clwb_range(rec, DATA_OFF as usize + vlen);
                }
                // SAFETY: see above.
                rec = POff::new(unsafe { self.pool.read::<u64>(rec.add(NEXT_OFF)) });
            }
            // GC patched these durable records' link words in place.
            for rec in std::mem::take(&mut b.patched) {
                self.pool.clwb_range(rec.add(NEXT_OFF), 8);
            }
        }
        self.pool.sfence();
        self.era.fetch_add(1, Ordering::AcqRel);
    }

    /// Spawns a background era-flusher with the given period.
    pub fn start_flusher(self: &Arc<Self>, period: std::time::Duration) -> DaliFlusher {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let map = self.clone();
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                map.flush_era();
            }
        });
        DaliFlusher {
            stop,
            handle: Some(handle),
        }
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

pub struct DaliFlusher {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for DaliFlusher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl BenchMap for DaliHashMap {
    fn get(&self, _tid: usize, key: &Key32) -> bool {
        let b = self.buckets[self.index(key)].lock();
        matches!(self.find(b.head, key), Some((_, OP_PUT)))
    }

    fn insert(&self, _tid: usize, key: Key32, value: &[u8]) -> bool {
        let idx = self.index(&key);
        let mut b = self.buckets[idx].lock();
        let existed = matches!(self.find(b.head, &key), Some((_, OP_PUT)));
        if existed {
            return false;
        }
        self.prepend(&mut b, idx, OP_PUT, &key, value);
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn remove(&self, _tid: usize, key: &Key32) -> bool {
        let idx = self.index(key);
        let mut b = self.buckets[idx].lock();
        if !matches!(self.find(b.head, key), Some((_, OP_PUT))) {
            return false;
        }
        self.prepend(&mut b, idx, OP_DEL, key, &[]);
        self.len.fetch_sub(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::make_key;
    use pmem::PmemConfig;

    fn map() -> Arc<DaliHashMap> {
        let pool = PmemPool::new(PmemConfig::default());
        Arc::new(DaliHashMap::new(Ralloc::format(pool), 64))
    }

    #[test]
    fn map_semantics_with_version_chains() {
        let m = map();
        assert!(m.insert(0, make_key(1), b"a"));
        assert!(!m.insert(0, make_key(1), b"b"));
        assert!(m.get(0, &make_key(1)));
        assert!(m.remove(0, &make_key(1)));
        assert!(!m.get(0, &make_key(1)), "delete record shadows the put");
        assert!(m.insert(0, make_key(1), b"c"), "re-insert after delete");
        assert!(m.get(0, &make_key(1)));
    }

    #[test]
    fn updates_do_not_flush_on_critical_path() {
        let m = map();
        let before = m.pool.stats().snapshot();
        for i in 0..100 {
            m.insert(0, make_key(i), &[1u8; 128]);
        }
        let after = m.pool.stats().snapshot();
        assert!(
            after.sfences - before.sfences <= 2,
            "buffered durability: no per-op fence"
        );
    }

    #[test]
    fn era_flush_writes_back_dirty_chains() {
        let m = map();
        m.insert(0, make_key(1), &[1u8; 256]);
        let before = m.pool.stats().snapshot();
        m.flush_era();
        let after = m.pool.stats().snapshot();
        assert!(
            after.clwbs > before.clwbs,
            "era advance must write back records"
        );
        assert!(after.sfences == before.sfences + 1, "one fence per era");
    }

    #[test]
    fn stale_versions_are_garbage_collected() {
        let m = map();
        let allocs0 = m.ralloc.stats().allocs.load(Ordering::Relaxed);
        for round in 0..10u8 {
            m.remove(0, &make_key(1));
            m.insert(0, make_key(1), &[round; 32]);
            m.flush_era();
            m.flush_era();
        }
        // Deallocs must keep pace with the version churn (chains stay short).
        let allocs = m.ralloc.stats().allocs.load(Ordering::Relaxed) - allocs0;
        let deallocs = m.ralloc.stats().deallocs.load(Ordering::Relaxed);
        assert!(
            deallocs * 2 >= allocs,
            "GC lagging: {allocs} allocs, {deallocs} deallocs"
        );
    }

    #[test]
    fn background_flusher_advances_eras() {
        let m = map();
        let f = m.start_flusher(std::time::Duration::from_millis(2));
        let e0 = m.era.load(Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(m.era.load(Ordering::Relaxed) > e0);
        drop(f);
    }
}
