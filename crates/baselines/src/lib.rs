//! # baselines — the competitor systems from the Montage paper's evaluation
//!
//! Each module reimplements one of the systems benchmarked in Sec. 6, from
//! its own paper's algorithmic description, at the fidelity that determines
//! throughput *shape* on our simulated NVM: the number and placement of
//! `clwb`/`sfence` instructions on the operation critical path, what lives
//! in DRAM vs NVM, and the logging/copying discipline. See DESIGN.md for the
//! per-system notes.
//!
//! | module | system | persistence model |
//! |--------|--------|-------------------|
//! | [`transient`] | DRAM (T) / NVM (T) | none (reference) |
//! | [`friedman`] | Friedman et al. queue | durably linearizable, lock-free |
//! | [`dali`] | Dalí hashmap | **buffered** durably linearizable |
//! | [`soft`] | SOFT hashmap | durable sets, DRAM read copy |
//! | [`nvtraverse`] | NVTraverse hashmap | durable, flush-on-traverse |
//! | [`mod_ds`] | MOD queue + hashmap | functional shadow structures |
//! | [`pronto`] | Pronto-Sync / Pronto-Full | semantic operation logging |
//! | [`mnemosyne`] | Mnemosyne-style STM | word-granularity redo logging |

pub mod api;
pub mod dali;
pub mod friedman;
pub mod mnemosyne;
pub mod mod_ds;
pub mod nvtraverse;
pub mod pronto;
pub mod soft;
pub mod transient;
pub mod transient_graph;

pub use api::{BenchMap, BenchQueue, Key32};
pub use transient::{Arena, TransientHashMap, TransientQueue};
pub use transient_graph::TransientGraph;
