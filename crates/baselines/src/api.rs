//! Uniform benchmark-facing interfaces, so every system (Montage included,
//! via adapters in the bench crate) is driven by identical workload code.

/// The paper's key format: integer keys "converted to a string and padded to
/// 32 B".
pub type Key32 = [u8; 32];

/// Builds the paper's padded string key for integer `i`.
pub fn make_key(i: u64) -> Key32 {
    let mut k = [0u8; 32]; // NUL padding so "12" and "120" stay distinct
    let s = i.to_string();
    k[..s.len()].copy_from_slice(s.as_bytes());
    k
}

/// A queue under benchmark: 1:1 enqueue/dequeue workloads.
pub trait BenchQueue: Send + Sync {
    fn enqueue(&self, tid: usize, value: &[u8]);
    /// Returns `true` if an item was dequeued.
    fn dequeue(&self, tid: usize) -> bool;
}

/// A map under benchmark: get/insert/remove mixes.
pub trait BenchMap: Send + Sync {
    /// Returns `true` on hit.
    fn get(&self, tid: usize, key: &Key32) -> bool;
    /// Returns `true` if newly inserted (`false` if the key existed).
    fn insert(&self, tid: usize, key: Key32, value: &[u8]) -> bool;
    /// Returns `true` if the key existed.
    fn remove(&self, tid: usize, key: &Key32) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_padded_strings() {
        let k = make_key(1234);
        assert_eq!(&k[..4], b"1234");
        assert!(k[4..].iter().all(|&b| b == 0));
        assert_ne!(make_key(12), make_key(120), "padding must not alias keys");
    }
}
