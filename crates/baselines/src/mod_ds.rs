//! MOD — "Minimally Ordered Durable Datastructures for Persistent Memory"
//! (Haria, Hill & Swift, ASPLOS '20): purely *functional* (shadow)
//! structures in NVM. An update builds new nodes off to the side, persists
//! them, and linearizes with a **single durable pointer write** — no logging
//! at all.
//!
//! Following the Montage paper's evaluation: the MOD hashmap here uses
//! per-bucket locking over MOD (path-copying functional) linked lists — the
//! variant the authors note has *better* complexity than the original
//! paper's CHAMP trie — and the MOD queue is the classic two-list functional
//! queue whose dequeues trigger amortized O(n) persisted reversals, which is
//! why it trails Montage by 1–2 orders of magnitude.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{POff, PmemPool};
use ralloc::Ralloc;

use crate::api::{BenchMap, BenchQueue, Key32};

/// Functional list-node layout: `next: u64 | vlen: u32 | pad | key 32B | value`.
const NEXT_OFF: u64 = 0;
const VLEN_OFF: u64 = 8;
const KEY_OFF: u64 = 16;
const DATA_OFF: u64 = 48;

struct NodeAccess<'a> {
    pool: &'a PmemPool,
}

impl<'a> NodeAccess<'a> {
    fn next(&self, n: POff) -> POff {
        // SAFETY: `n` is a live node (reached from a locked root), so its
        // header words are in bounds and not concurrently mutated.
        POff::new(unsafe { self.pool.read::<u64>(n.add(NEXT_OFF)) })
    }
    fn vlen(&self, n: POff) -> u32 {
        // SAFETY: see `next`.
        unsafe { self.pool.read::<u32>(n.add(VLEN_OFF)) }
    }
    fn key(&self, n: POff) -> Key32 {
        let mut k = [0u8; 32];
        self.pool.read_bytes(n.add(KEY_OFF), &mut k);
        k
    }
}

fn new_node(
    ralloc: &Ralloc,
    pool: &PmemPool,
    next: POff,
    key: &Key32,
    value_src: ValueSrc<'_>,
) -> POff {
    let vlen = match value_src {
        ValueSrc::Bytes(b) => b.len(),
        ValueSrc::CopyFrom(src, len) => {
            let _ = src;
            len
        }
    };
    let n = ralloc.alloc(DATA_OFF as usize + vlen);
    // SAFETY: header and value fit in the freshly allocated shadow block,
    // which stays thread-private until the commit pointer swing.
    unsafe {
        pool.write::<u64>(n.add(NEXT_OFF), &next.raw());
        pool.write::<u32>(n.add(VLEN_OFF), &(vlen as u32));
    }
    pool.write_bytes(n.add(KEY_OFF), key);
    match value_src {
        ValueSrc::Bytes(b) => pool.write_bytes(n.add(DATA_OFF), b),
        ValueSrc::CopyFrom(src, len) => {
            // SAFETY: `src` is a live node holding `len` value bytes and `n`
            // is a distinct fresh block, so the ranges cannot overlap.
            unsafe {
                // lint: allow(raw-write): the copy is declared to the sanitizer via san_mark_dirty below and flushed by the clwb_range at the end of new_node
                std::ptr::copy_nonoverlapping(
                    pool.at::<u8>(src.add(DATA_OFF)) as *const u8,
                    pool.at::<u8>(n.add(DATA_OFF)),
                    len,
                );
            }
            // The raw copy bypasses the tracked write path; declare the
            // value bytes dirty so the flush below is not misread as
            // redundant.
            pool.san_mark_dirty(n.add(DATA_OFF), len);
        }
    }
    // Shadow nodes are persisted before the root swing (no fence yet: MOD
    // batches one fence before the commit write).
    // lint: allow(flush-no-fence): commit() fences once for the whole batch of shadow nodes
    pool.clwb_range(n, DATA_OFF as usize + vlen);
    n
}

enum ValueSrc<'a> {
    Bytes(&'a [u8]),
    CopyFrom(POff, usize),
}

// ---------------------------------------------------------------------------
// MOD hashmap
// ---------------------------------------------------------------------------

pub struct ModHashMap {
    ralloc: Arc<Ralloc>,
    pool: PmemPool,
    /// Bucket roots live in NVM (one durable pointer each — the commit word).
    roots: Box<[Mutex<POff /*root cell*/>]>,
    len: AtomicUsize,
}

impl ModHashMap {
    pub fn new(ralloc: Arc<Ralloc>, nbuckets: usize) -> Self {
        let pool = ralloc.pool().clone();
        let roots = (0..nbuckets)
            .map(|_| {
                let cell = ralloc.alloc(8);
                // SAFETY: the 8-byte root cell was just allocated; nothing
                // else references it yet.
                unsafe { pool.write::<u64>(cell, &0) };
                Mutex::new(cell)
            })
            .collect();
        ModHashMap {
            pool,
            ralloc,
            roots,
            len: AtomicUsize::new(0),
        }
    }

    fn index(&self, key: &Key32) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.roots.len()
    }

    fn head(&self, cell: POff) -> POff {
        // SAFETY: `cell` is this bucket's root word; callers hold the
        // bucket lock, so the read cannot race the commit write.
        POff::new(unsafe { self.pool.read::<u64>(cell) })
    }

    /// Durable root swing: fence (shadow nodes), write, flush, fence.
    fn commit(&self, cell: POff, new_head: POff) {
        self.pool.sfence();
        // SAFETY: the bucket lock serializes all writers of this root word.
        unsafe { self.pool.write::<u64>(cell, &new_head.raw()) };
        self.pool.persist_range(cell, 8);
    }

    /// Path-copy the chain up to (excluding) `stop`, returning
    /// (new head, tail-copy whose next must be patched) — or None if the
    /// chain head *is* `stop`.
    fn copy_prefix(&self, head: POff, stop: POff) -> Option<(POff, POff)> {
        let na = NodeAccess { pool: &self.pool };
        let mut copies: Vec<POff> = Vec::new();
        let mut cur = head;
        while cur != stop {
            debug_assert!(!cur.is_null());
            let copy = new_node(
                &self.ralloc,
                &self.pool,
                POff::NULL,
                &na.key(cur),
                ValueSrc::CopyFrom(cur, na.vlen(cur) as usize),
            );
            copies.push(copy);
            cur = na.next(cur);
        }
        let mut it = copies.into_iter().rev();
        let last = it.next()?;
        let mut head_new = last;
        for c in it {
            // SAFETY: `c` is a thread-private shadow copy made just above.
            unsafe { self.pool.write::<u64>(c.add(NEXT_OFF), &head_new.raw()) };
            // Only the link word changed; the node body is already flushed.
            // lint: allow(flush-no-fence): the caller's commit() fences before the root swing
            self.pool.clwb_range(c.add(NEXT_OFF), 8);
            head_new = c;
        }
        Some((head_new, last))
    }

    fn free_prefix(&self, head: POff, stop: POff) {
        let na = NodeAccess { pool: &self.pool };
        let mut cur = head;
        while cur != stop {
            let next = na.next(cur);
            self.ralloc.dealloc(cur);
            cur = next;
        }
    }
}

impl BenchMap for ModHashMap {
    fn get(&self, _tid: usize, key: &Key32) -> bool {
        let cell = self.roots[self.index(key)].lock();
        let na = NodeAccess { pool: &self.pool };
        let mut cur = self.head(*cell);
        while !cur.is_null() {
            self.pool.touch(); // NVM chain hop
            if na.key(cur) == *key {
                return true;
            }
            cur = na.next(cur);
        }
        false
    }

    fn insert(&self, _tid: usize, key: Key32, value: &[u8]) -> bool {
        let cell = self.roots[self.index(&key)].lock();
        let na = NodeAccess { pool: &self.pool };
        let head = self.head(*cell);
        let mut cur = head;
        while !cur.is_null() {
            self.pool.touch(); // NVM chain hop
            if na.key(cur) == key {
                return false;
            }
            cur = na.next(cur);
        }
        // Prepend — already a single new shadow node.
        let node = new_node(&self.ralloc, &self.pool, head, &key, ValueSrc::Bytes(value));
        self.commit(*cell, node);
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn remove(&self, _tid: usize, key: &Key32) -> bool {
        let cell = self.roots[self.index(key)].lock();
        let na = NodeAccess { pool: &self.pool };
        let head = self.head(*cell);
        let mut target = head;
        while !target.is_null() && na.key(target) != *key {
            self.pool.touch(); // NVM chain hop
            target = na.next(target);
        }
        if target.is_null() {
            return false;
        }
        let suffix = na.next(target);
        let old_head = head;
        match self.copy_prefix(head, target) {
            None => self.commit(*cell, suffix),
            Some((new_head, tail_copy)) => {
                // SAFETY: `tail_copy` is a thread-private shadow node from
                // copy_prefix; no reader can reach it before commit.
                unsafe {
                    self.pool
                        .write::<u64>(tail_copy.add(NEXT_OFF), &suffix.raw())
                };
                // Only the link word changed; the node body is already
                // flushed.
                // lint: allow(flush-no-fence): the commit() on the next line fences
                self.pool.clwb_range(tail_copy.add(NEXT_OFF), 8);
                self.commit(*cell, new_head);
            }
        }
        // Old version unreachable (single root, bucket lock held): reclaim.
        self.free_prefix(old_head, target);
        self.ralloc.dealloc(target);
        self.len.fetch_sub(1, Ordering::Relaxed);
        true
    }
}

// ---------------------------------------------------------------------------
// MOD queue — functional two-list queue with persisted root
// ---------------------------------------------------------------------------

pub struct ModQueue {
    ralloc: Arc<Ralloc>,
    pool: PmemPool,
    /// Root cell: `front: u64 | back: u64` (16 B, one-line durable commit).
    root: Mutex<POff>,
}

impl ModQueue {
    pub fn new(ralloc: Arc<Ralloc>) -> Self {
        let pool = ralloc.pool().clone();
        let root = ralloc.alloc(16);
        // SAFETY: both words fit in the fresh 16-byte root block; nothing
        // else references it yet.
        unsafe {
            pool.write::<u64>(root, &0);
            pool.write::<u64>(root.add(8), &0);
        }
        pool.persist_range(root, 16);
        ModQueue {
            pool,
            ralloc,
            root: Mutex::new(root),
        }
    }

    fn lists(&self, root: POff) -> (POff, POff) {
        // SAFETY: callers hold the root lock, so these two in-bounds words
        // cannot race the commit writes.
        unsafe {
            (
                POff::new(self.pool.read::<u64>(root)),
                POff::new(self.pool.read::<u64>(root.add(8))),
            )
        }
    }

    fn commit(&self, root: POff, front: POff, back: POff) {
        self.pool.sfence();
        // SAFETY: the root lock serializes all writers of the root pair.
        unsafe {
            self.pool.write::<u64>(root, &front.raw());
            self.pool.write::<u64>(root.add(8), &back.raw());
        }
        self.pool.persist_range(root, 16);
    }

    /// Reverses `list` into a fresh persisted functional list.
    fn reverse(&self, mut list: POff) -> POff {
        let na = NodeAccess { pool: &self.pool };
        let mut out = POff::NULL;
        while !list.is_null() {
            self.pool.touch(); // NVM chain hop
            let k = na.key(list);
            out = new_node(
                &self.ralloc,
                &self.pool,
                out,
                &k,
                ValueSrc::CopyFrom(list, na.vlen(list) as usize),
            );
            list = na.next(list);
        }
        out
    }

    fn free_list(&self, mut list: POff) {
        let na = NodeAccess { pool: &self.pool };
        while !list.is_null() {
            let next = na.next(list);
            self.ralloc.dealloc(list);
            list = next;
        }
    }
}

impl BenchQueue for ModQueue {
    fn enqueue(&self, _tid: usize, value: &[u8]) {
        let root = self.root.lock();
        let (front, back) = self.lists(*root);
        let node = new_node(
            &self.ralloc,
            &self.pool,
            back,
            &[0u8; 32],
            ValueSrc::Bytes(value),
        );
        self.commit(*root, front, node);
    }

    fn dequeue(&self, _tid: usize) -> bool {
        let root = self.root.lock();
        let (front, back) = self.lists(*root);
        let na = NodeAccess { pool: &self.pool };
        if !front.is_null() {
            let rest = na.next(front);
            self.commit(*root, rest, back);
            self.ralloc.dealloc(front);
            return true;
        }
        if back.is_null() {
            return false;
        }
        // Amortized reversal: build a fresh persisted front list.
        let new_front = self.reverse(back);
        let rest = na.next(new_front);
        self.commit(*root, rest, POff::NULL);
        self.free_list(back);
        self.ralloc.dealloc(new_front);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::make_key;
    use pmem::PmemConfig;

    fn setup() -> Arc<Ralloc> {
        Ralloc::format(PmemPool::new(PmemConfig::default()))
    }

    #[test]
    fn map_semantics() {
        let m = ModHashMap::new(setup(), 16);
        assert!(m.insert(0, make_key(1), b"a"));
        assert!(!m.insert(0, make_key(1), b"b"));
        assert!(m.get(0, &make_key(1)));
        assert!(m.remove(0, &make_key(1)));
        assert!(!m.get(0, &make_key(1)));
    }

    #[test]
    fn remove_from_middle_of_chain_path_copies() {
        let m = ModHashMap::new(setup(), 1);
        for i in 0..8 {
            m.insert(0, make_key(i), b"v");
        }
        assert!(m.remove(0, &make_key(3)));
        for i in 0..8 {
            assert_eq!(m.get(0, &make_key(i)), i != 3);
        }
    }

    #[test]
    fn every_update_commits_durably() {
        let m = ModHashMap::new(setup(), 16);
        let f0 = m.pool.stats().snapshot().sfences;
        m.insert(0, make_key(1), &[0u8; 64]);
        let f1 = m.pool.stats().snapshot().sfences;
        assert!(f1 >= f0 + 2, "shadow fence + commit fence");
    }

    #[test]
    fn queue_fifo_through_reversals() {
        let q = ModQueue::new(setup());
        for i in 0..5u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        assert!(q.dequeue(0)); // triggers a reversal
        q.enqueue(0, &5u32.to_le_bytes());
        let mut n = 1;
        while q.dequeue(0) {
            n += 1;
        }
        assert_eq!(n, 6);
    }

    #[test]
    fn queue_memory_is_reclaimed() {
        let q = ModQueue::new(setup());
        for round in 0..20 {
            for i in 0..20u32 {
                q.enqueue(0, &(round * 100 + i).to_le_bytes());
            }
            for _ in 0..20 {
                assert!(q.dequeue(0));
            }
        }
        let s = q.ralloc.stats();
        let allocs = s.allocs.load(Ordering::Relaxed);
        let deallocs = s.deallocs.load(Ordering::Relaxed);
        assert!(
            allocs - deallocs < 50,
            "leak: {allocs} allocs vs {deallocs} deallocs"
        );
    }
}
