//! Transient reference graph for Fig. 11/12: the same structure as
//! `montage_ds::MontageGraph` (per-vertex locks, adjacency maps, attribute
//! blobs) with no persistence; attributes live in DRAM or the NVM pool
//! per the [`Arena`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::{Mutex, MutexGuard};

use crate::transient::{Arena, ValRef};

#[derive(Default)]
struct Slot {
    exists: bool,
    attr: Option<ValRef>,
    adj: HashMap<u64, ValRef>,
}

/// A transient undirected graph with fixed vertex-id capacity.
pub struct TransientGraph {
    arena: Arena,
    slots: Box<[Mutex<Slot>]>,
    vertices: AtomicUsize,
    edges: AtomicUsize,
}

impl TransientGraph {
    pub fn new(arena: Arena, capacity: usize) -> Self {
        TransientGraph {
            arena,
            slots: (0..capacity).map(|_| Mutex::default()).collect(),
            vertices: AtomicUsize::new(0),
            edges: AtomicUsize::new(0),
        }
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.load(Ordering::Relaxed)
    }

    pub fn edge_count(&self) -> usize {
        self.edges.load(Ordering::Relaxed)
    }

    pub fn add_vertex(&self, vid: u64, attr: &[u8]) -> bool {
        let mut slot = self.slots[vid as usize].lock();
        if slot.exists {
            return false;
        }
        slot.exists = true;
        slot.attr = Some(self.arena.store(attr));
        self.vertices.fetch_add(1, Ordering::Relaxed);
        true
    }

    pub fn has_vertex(&self, vid: u64) -> bool {
        self.slots[vid as usize].lock().exists
    }

    fn lock_pair(&self, a: u64, b: u64) -> (MutexGuard<'_, Slot>, MutexGuard<'_, Slot>) {
        let (lo, hi) = (a.min(b), a.max(b));
        let first = self.slots[lo as usize].lock();
        let second = self.slots[hi as usize].lock();
        if a < b {
            (first, second)
        } else {
            (second, first)
        }
    }

    pub fn add_edge(&self, src: u64, dst: u64, attr: &[u8]) -> bool {
        if src == dst {
            return false;
        }
        let (mut s, mut d) = self.lock_pair(src, dst);
        if !s.exists || !d.exists || s.adj.contains_key(&dst) {
            return false;
        }
        s.adj.insert(dst, self.arena.store(attr));
        d.adj.insert(src, self.arena.store(&[]));
        self.edges.fetch_add(1, Ordering::Relaxed);
        true
    }

    pub fn remove_edge(&self, src: u64, dst: u64) -> bool {
        if src == dst {
            return false;
        }
        let (mut s, mut d) = self.lock_pair(src, dst);
        let Some(v) = s.adj.remove(&dst) else {
            return false;
        };
        self.arena.free(v);
        if let Some(v) = d.adj.remove(&src) {
            self.arena.free(v);
        }
        self.edges.fetch_sub(1, Ordering::Relaxed);
        true
    }

    pub fn remove_vertex(&self, vid: u64) -> bool {
        loop {
            let neighbours: Vec<u64> = {
                let slot = self.slots[vid as usize].lock();
                if !slot.exists {
                    return false;
                }
                slot.adj.keys().copied().collect()
            };
            let mut ids: Vec<u64> = neighbours.iter().copied().chain([vid]).collect();
            ids.sort_unstable();
            ids.dedup();
            let mut guards: Vec<(u64, MutexGuard<'_, Slot>)> = ids
                .iter()
                .map(|&id| (id, self.slots[id as usize].lock()))
                .collect();
            let vidx = guards.iter().position(|(id, _)| *id == vid).unwrap();
            if !guards[vidx].1.exists {
                return false;
            }
            let current: Vec<u64> = guards[vidx].1.adj.keys().copied().collect();
            {
                let mut a = current.clone();
                let mut b = neighbours.clone();
                a.sort_unstable();
                b.sort_unstable();
                if a != b {
                    continue;
                }
            }
            let adj: Vec<(u64, ValRef)> = guards[vidx].1.adj.drain().collect();
            for (nid, v) in adj {
                self.arena.free(v);
                let n = guards.iter_mut().find(|(id, _)| *id == nid).unwrap();
                if let Some(v) = n.1.adj.remove(&vid) {
                    self.arena.free(v);
                }
                self.edges.fetch_sub(1, Ordering::Relaxed);
            }
            let vslot = &mut guards[vidx].1;
            vslot.exists = false;
            if let Some(v) = vslot.attr.take() {
                self.arena.free(v);
            }
            self.vertices.fetch_sub(1, Ordering::Relaxed);
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_semantics() {
        let g = TransientGraph::new(Arena::Dram, 64);
        assert!(g.add_vertex(1, b"a"));
        assert!(g.add_vertex(2, b"b"));
        assert!(g.add_edge(1, 2, b"e"));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_vertex(1));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_vertex(1));
        assert!(g.has_vertex(2));
    }

    #[test]
    fn concurrent_churn() {
        let g = std::sync::Arc::new(TransientGraph::new(Arena::Dram, 32));
        for v in 0..32 {
            g.add_vertex(v, b"");
        }
        let mut handles = vec![];
        for t in 0..4u64 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let mut x = t + 1;
                for _ in 0..2000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = (x >> 33) % 32;
                    let b = (x >> 11) % 32;
                    match x % 3 {
                        0 => {
                            g.add_edge(a, b, b"");
                        }
                        1 => {
                            g.remove_edge(a, b);
                        }
                        _ => {
                            g.remove_vertex(a);
                            g.add_vertex(a, b"");
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
