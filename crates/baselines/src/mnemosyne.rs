//! Mnemosyne — "Lightweight Persistent Memory" (Volos, Tack & Swift,
//! ASPLOS '11): the pioneering general-purpose system. Operations run as
//! durable transactions over TinySTM-style **word-granularity redo logs**:
//! every NVM word a transaction writes is appended to a per-thread log,
//! the log is flushed and a commit record fenced, and only then are the
//! data words written back in place.
//!
//! The cost model that makes Mnemosyne the slowest system in the paper's
//! figures: a 1 KB value update writes ~2 KB (log + data), flushes both
//! copies, and fences twice — per operation.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{POff, PmemPool};
use ralloc::Ralloc;

use crate::api::{BenchMap, BenchQueue, Key32};

const LOG_REGION: usize = 1 << 16;

/// A per-thread redo log in NVM.
struct RedoLog {
    base: POff,
    pos: u64,
}

/// A write-set entry: destination + bytes (stored transiently until commit).
struct Write {
    dst: POff,
    bytes: Vec<u8>,
}

/// One durable transaction.
pub struct Txn<'a> {
    sys: &'a Mnemosyne,
    tid: usize,
    writes: Vec<Write>,
}

impl Txn<'_> {
    /// Buffers a write of `bytes` to `dst`.
    pub fn write(&mut self, dst: POff, bytes: &[u8]) {
        self.writes.push(Write {
            dst,
            bytes: bytes.to_vec(),
        });
    }

    /// Commits: append (addr,len,data) records to the redo log, flush them,
    /// fence a commit record, apply the writes in place, flush, fence.
    pub fn commit(self) {
        let pool = &self.sys.pool;
        {
            let mut log = self.sys.logs[self.tid].lock();
            let mut pos = log.pos;
            let mut first = pos;
            // Word-granularity redo records, as in TinySTM: one 16-byte
            // (addr, value) entry per 8-byte word written — the 2x log
            // amplification that defines this system's cost.
            for w in &self.writes {
                let words = w.bytes.len().div_ceil(8);
                let need = 16 * words as u64;
                if pos + need + 16 > LOG_REGION as u64 {
                    pos = 0; // wrap (a real system would truncate at commit)
                    first = 0;
                }
                for i in 0..words {
                    let at = log.base.add(pos + 16 * i as u64);
                    let mut word = [0u8; 8];
                    let s = &w.bytes[i * 8..(i * 8 + 8).min(w.bytes.len())];
                    word[..s.len()].copy_from_slice(s);
                    // SAFETY: the wrap check above keeps every entry inside
                    // LOG_REGION, and the log lock serializes appenders.
                    unsafe {
                        pool.write::<u64>(at, &(w.dst.raw() + 8 * i as u64));
                        pool.write::<u64>(at.add(8), &u64::from_le_bytes(word));
                    }
                }
                pos += need;
            }
            // Flush the log extent, then the commit record, with a fence.
            pool.clwb_range(log.base.add(first), (pos - first) as usize);
            let commit_at = log.base.add(pos);
            // SAFETY: `commit_at` sits right after the entries, still inside
            // LOG_REGION per the wrap check; the log lock is held.
            unsafe { pool.write::<u64>(commit_at, &u64::MAX) };
            pool.clwb(commit_at);
            pool.sfence();
            log.pos = (pos + 16) % LOG_REGION as u64;
        }
        // Apply in place and persist the home locations.
        for w in &self.writes {
            pool.write_bytes(w.dst, &w.bytes);
            pool.clwb_range(w.dst, w.bytes.len());
        }
        pool.sfence();
    }
}

/// The Mnemosyne runtime: redo logs + persistent heap.
pub struct Mnemosyne {
    ralloc: Arc<Ralloc>,
    pool: PmemPool,
    logs: Box<[Mutex<RedoLog>]>,
}

impl Mnemosyne {
    pub fn new(ralloc: Arc<Ralloc>, max_threads: usize) -> Arc<Self> {
        let pool = ralloc.pool().clone();
        let logs = (0..max_threads)
            .map(|_| {
                Mutex::new(RedoLog {
                    base: ralloc.alloc(LOG_REGION),
                    pos: 0,
                })
            })
            .collect();
        Arc::new(Mnemosyne { ralloc, pool, logs })
    }

    pub fn begin(&self, tid: usize) -> Txn<'_> {
        Txn {
            sys: self,
            tid,
            writes: Vec::new(),
        }
    }

    pub fn alloc(&self, size: usize) -> POff {
        self.ralloc.alloc(size)
    }

    pub fn free(&self, off: POff) {
        self.ralloc.dealloc(off);
    }

    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }
}

// ---------------------------------------------------------------------------
// Structures persisted through Mnemosyne transactions
// ---------------------------------------------------------------------------

/// Node layout shared by the queue and map chains:
/// `next: u64 | vlen: u32 | pad | key 32B | value`.
const NEXT_OFF: u64 = 0;
const VLEN_OFF: u64 = 8;
const KEY_OFF: u64 = 16;
const DATA_OFF: u64 = 48;

pub struct MnemosyneQueue {
    sys: Arc<Mnemosyne>,
    /// Transient mirror of (head, tail) for navigation; the durable copies
    /// live in a root cell written transactionally.
    state: Mutex<(POff, POff)>,
    root: POff,
}

impl MnemosyneQueue {
    pub fn new(sys: Arc<Mnemosyne>) -> Self {
        let root = sys.alloc(16);
        MnemosyneQueue {
            sys,
            state: Mutex::new((POff::NULL, POff::NULL)),
            root,
        }
    }
}

impl BenchQueue for MnemosyneQueue {
    fn enqueue(&self, tid: usize, value: &[u8]) {
        let mut st = self.state.lock();
        let node = self.sys.alloc(DATA_OFF as usize + value.len());
        let mut txn = self.sys.begin(tid);
        let mut node_img = vec![0u8; DATA_OFF as usize + value.len()];
        node_img[VLEN_OFF as usize..VLEN_OFF as usize + 4]
            .copy_from_slice(&(value.len() as u32).to_le_bytes());
        node_img[DATA_OFF as usize..].copy_from_slice(value);
        txn.write(node, &node_img);
        if st.1.is_null() {
            txn.write(
                self.root,
                &[node.raw().to_le_bytes(), node.raw().to_le_bytes()].concat(),
            );
        } else {
            txn.write(st.1.add(NEXT_OFF), &node.raw().to_le_bytes());
            txn.write(self.root.add(8), &node.raw().to_le_bytes());
        }
        txn.commit();
        if st.0.is_null() {
            st.0 = node;
        }
        st.1 = node;
    }

    fn dequeue(&self, tid: usize) -> bool {
        let mut st = self.state.lock();
        if st.0.is_null() {
            return false;
        }
        let head = st.0;
        // SAFETY: `head` is a live node under the queue lock; the NEXT word
        // is in bounds and any bit pattern is a valid u64.
        let next = POff::new(unsafe { self.sys.pool.read::<u64>(head.add(NEXT_OFF)) });
        let mut txn = self.sys.begin(tid);
        txn.write(self.root, &next.raw().to_le_bytes());
        txn.commit();
        st.0 = next;
        if next.is_null() {
            st.1 = POff::NULL;
        }
        self.sys.free(head);
        true
    }
}

pub struct MnemosyneMap {
    sys: Arc<Mnemosyne>,
    /// Transient mirror of each bucket head + the offset of its durable cell.
    buckets: Box<[Mutex<POff>]>,
    heads: Box<[POff]>,
    len: AtomicUsize,
}

impl MnemosyneMap {
    pub fn new(sys: Arc<Mnemosyne>, nbuckets: usize) -> Self {
        let heads = (0..nbuckets).map(|_| sys.alloc(8)).collect();
        MnemosyneMap {
            buckets: (0..nbuckets).map(|_| Mutex::new(POff::NULL)).collect(),
            heads,
            sys,
            len: AtomicUsize::new(0),
        }
    }

    fn index(&self, key: &Key32) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.buckets.len()
    }

    fn key_at(&self, node: POff) -> Key32 {
        let mut k = [0u8; 32];
        self.sys.pool.read_bytes(node.add(KEY_OFF), &mut k);
        k
    }

    fn next_of(&self, node: POff) -> POff {
        // SAFETY: `node` is a live chain node reached under the bucket lock;
        // the NEXT word is in bounds and any bit pattern is a valid u64.
        POff::new(unsafe { self.sys.pool.read::<u64>(node.add(NEXT_OFF)) })
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BenchMap for MnemosyneMap {
    fn get(&self, _tid: usize, key: &Key32) -> bool {
        let head = self.buckets[self.index(key)].lock();
        let mut cur = *head;
        while !cur.is_null() {
            self.sys.pool.touch(); // NVM chain hop
            if self.key_at(cur) == *key {
                return true;
            }
            cur = self.next_of(cur);
        }
        false
    }

    fn insert(&self, tid: usize, key: Key32, value: &[u8]) -> bool {
        let idx = self.index(&key);
        let mut head = self.buckets[idx].lock();
        let mut cur = *head;
        while !cur.is_null() {
            self.sys.pool.touch(); // NVM chain hop
            if self.key_at(cur) == key {
                return false;
            }
            cur = self.next_of(cur);
        }
        let node = self.sys.alloc(DATA_OFF as usize + value.len());
        let mut img = vec![0u8; DATA_OFF as usize + value.len()];
        img[..8].copy_from_slice(&head.raw().to_le_bytes());
        img[VLEN_OFF as usize..VLEN_OFF as usize + 4]
            .copy_from_slice(&(value.len() as u32).to_le_bytes());
        img[KEY_OFF as usize..KEY_OFF as usize + 32].copy_from_slice(&key);
        img[DATA_OFF as usize..].copy_from_slice(value);
        let mut txn = self.sys.begin(tid);
        txn.write(node, &img);
        txn.write(self.heads[idx], &node.raw().to_le_bytes());
        txn.commit();
        *head = node;
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn remove(&self, tid: usize, key: &Key32) -> bool {
        let idx = self.index(key);
        let mut head = self.buckets[idx].lock();
        let mut pred = POff::NULL;
        let mut cur = *head;
        while !cur.is_null() && self.key_at(cur) != *key {
            self.sys.pool.touch(); // NVM chain hop
            pred = cur;
            cur = self.next_of(cur);
        }
        if cur.is_null() {
            return false;
        }
        let next = self.next_of(cur);
        let mut txn = self.sys.begin(tid);
        if pred.is_null() {
            txn.write(self.heads[idx], &next.raw().to_le_bytes());
        } else {
            txn.write(pred.add(NEXT_OFF), &next.raw().to_le_bytes());
        }
        txn.commit();
        if pred.is_null() {
            *head = next;
        }
        self.sys.free(cur);
        self.len.fetch_sub(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::make_key;
    use pmem::PmemConfig;

    fn sys() -> Arc<Mnemosyne> {
        Mnemosyne::new(Ralloc::format(PmemPool::new(PmemConfig::default())), 8)
    }

    #[test]
    fn txn_logs_then_applies() {
        let s = sys();
        let dst = s.alloc(64);
        let f0 = s.pool().stats().snapshot().sfences;
        let mut t = s.begin(0);
        t.write(dst, &[9u8; 64]);
        t.commit();
        let f1 = s.pool().stats().snapshot().sfences;
        assert_eq!(f1 - f0, 2, "log fence + apply fence");
        let mut out = [0u8; 64];
        s.pool().read_bytes(dst, &mut out);
        assert_eq!(out, [9u8; 64]);
    }

    #[test]
    fn queue_fifo() {
        let q = MnemosyneQueue::new(sys());
        for i in 0..20u32 {
            q.enqueue(0, &i.to_le_bytes());
        }
        for _ in 0..20 {
            assert!(q.dequeue(0));
        }
        assert!(!q.dequeue(0));
    }

    #[test]
    fn map_semantics() {
        let m = MnemosyneMap::new(sys(), 64);
        assert!(m.insert(0, make_key(1), b"v"));
        assert!(!m.insert(0, make_key(1), b"w"));
        assert!(m.get(0, &make_key(1)));
        assert!(m.remove(0, &make_key(1)));
        assert!(!m.get(0, &make_key(1)));
        assert!(m.insert(0, make_key(1), b"again"));
    }

    #[test]
    fn chain_removal_in_middle() {
        let m = MnemosyneMap::new(sys(), 1);
        for i in 0..6 {
            m.insert(0, make_key(i), b"v");
        }
        assert!(m.remove(0, &make_key(3)));
        for i in 0..6 {
            assert_eq!(m.get(0, &make_key(i)), i != 3);
        }
    }

    #[test]
    fn large_value_doubles_write_traffic() {
        let s = sys();
        let m = MnemosyneMap::new(s.clone(), 16);
        let c0 = s.pool().stats().snapshot().clwbs;
        m.insert(0, make_key(1), &vec![1u8; 1024]);
        let c1 = s.pool().stats().snapshot().clwbs;
        // ~1 KB logged + ~1 KB applied ⇒ ≥ 32 lines flushed.
        assert!(c1 - c0 >= 32, "expected ≥32 clwbs, saw {}", c1 - c0);
    }
}
