//! SOFT — "Efficient Lock-free Durable Sets" (Zuriel et al., OOPSLA '19).
//!
//! SOFT persists **only semantic data** (key, value, validity) in persistent
//! nodes ("PNodes") while keeping a *full copy* of the set in DRAM for
//! reads. Lookups therefore touch no NVM at all — the property that makes
//! SOFT the fastest persistent competitor in the paper — but the DRAM copy
//! forfeits NVM's capacity advantage, and the algorithm cannot atomically
//! update an existing key (the paper's benchmarks accordingly avoid
//! updates).
//!
//! Critical-path shape: insert = write PNode (key+value), flush, fence,
//! set valid bit, flush, fence; remove = mark PNode deleted, flush, fence.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{POff, PmemPool};
use ralloc::Ralloc;

use crate::api::{BenchMap, Key32};

/// PNode layout: `valid: u64 | klen..: key 32B | vlen: u32 | value`.
const VALID_OFF: u64 = 0;
const KEY_OFF: u64 = 8;
const VLEN_OFF: u64 = 40;
const DATA_OFF: u64 = 48;

struct Entry {
    key: Key32,
    /// DRAM copy of the value — reads never touch NVM.
    value: Box<[u8]>,
    pnode: POff,
}

pub struct SoftHashMap {
    ralloc: Arc<Ralloc>,
    pool: PmemPool,
    buckets: Box<[Mutex<Vec<Entry>>]>,
    len: AtomicUsize,
}

impl SoftHashMap {
    pub fn new(ralloc: Arc<Ralloc>, nbuckets: usize) -> Self {
        SoftHashMap {
            pool: ralloc.pool().clone(),
            ralloc,
            buckets: (0..nbuckets).map(|_| Mutex::new(Vec::new())).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// SOFT recovery, as in the original: scan the PNodes; every valid node
    /// is a member; rebuild the volatile copy from them. Requires the pool
    /// to be dedicated to this map (as SOFT's own allocator assumes).
    pub fn recover(pool: PmemPool, nbuckets: usize) -> Self {
        Self::try_recover(pool, nbuckets).expect("pool holds no SOFT map")
    }

    /// Panic-free [`SoftHashMap::recover`]: `None` when the allocator
    /// metadata never became durable (a crash mid-format), so sweep
    /// harnesses can treat the image as empty pre-history.
    pub fn try_recover(pool: PmemPool, nbuckets: usize) -> Option<Self> {
        if !Ralloc::is_formatted(&pool) {
            return None;
        }
        let scan = pool.clone();
        // SAFETY: (both reads) the `size >= DATA_OFF` guard keeps the
        // header words inside the swept block, and any bit pattern is a
        // valid u64/u32; the vlen check rejects torn lengths.
        let (ralloc, kept) = Ralloc::recover(pool, move |blk, size| {
            size >= DATA_OFF as usize
                && unsafe { scan.read::<u64>(blk.add(VALID_OFF)) } == 1
                // SAFETY: see above.
                && unsafe { scan.read::<u32>(blk.add(VLEN_OFF)) } as usize
                    <= size - DATA_OFF as usize
        });
        let map = Self::new(ralloc, nbuckets);
        for (pnode, _size) in kept {
            let mut key = [0u8; 32];
            map.pool.read_bytes(pnode.add(KEY_OFF), &mut key);
            // SAFETY: the sweep filter above validated this node's header,
            // and recovery is single-threaded.
            let vlen = unsafe { map.pool.read::<u32>(pnode.add(VLEN_OFF)) } as usize;
            let mut value = vec![0u8; vlen];
            map.pool.read_bytes(pnode.add(DATA_OFF), &mut value);
            let idx = map.index(&key);
            map.buckets[idx].lock().push(Entry {
                key,
                value: value.into(),
                pnode,
            });
            map.len.fetch_add(1, Ordering::Relaxed);
        }
        Some(map)
    }

    fn index(&self, key: &Key32) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.buckets.len()
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BenchMap for SoftHashMap {
    fn get(&self, _tid: usize, key: &Key32) -> bool {
        // DRAM only: this is SOFT's defining read path.
        self.buckets[self.index(key)]
            .lock()
            .iter()
            .any(|e| e.key == *key)
    }

    fn insert(&self, _tid: usize, key: Key32, value: &[u8]) -> bool {
        let mut chain = self.buckets[self.index(&key)].lock();
        if chain.iter().any(|e| e.key == key) {
            return false;
        }
        // Persistent part: PNode with two-phase validity.
        let pnode = self.ralloc.alloc(DATA_OFF as usize + value.len());
        // SAFETY: `pnode` is a fresh allocation sized for the header plus
        // value, owned exclusively by this thread until the chain push.
        unsafe {
            self.pool.write::<u64>(pnode.add(VALID_OFF), &0);
            self.pool
                .write::<u32>(pnode.add(VLEN_OFF), &(value.len() as u32));
        }
        self.pool.write_bytes(pnode.add(KEY_OFF), &key);
        self.pool.write_bytes(pnode.add(DATA_OFF), value);
        self.pool
            .persist_range(pnode, DATA_OFF as usize + value.len());
        // SAFETY: see the header-write comment above.
        unsafe { self.pool.write::<u64>(pnode.add(VALID_OFF), &1) };
        self.pool.persist_range(pnode.add(VALID_OFF), 8);

        chain.push(Entry {
            key,
            value: value.into(),
            pnode,
        });
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn remove(&self, _tid: usize, key: &Key32) -> bool {
        let mut chain = self.buckets[self.index(key)].lock();
        let Some(pos) = chain.iter().position(|e| e.key == *key) else {
            return false;
        };
        let e = chain.swap_remove(pos);
        drop(chain);
        // Persist the deletion marker, then reclaim.
        // SAFETY: the entry was removed from the chain under the bucket
        // lock, so this thread is the only writer of its PNode header.
        unsafe { self.pool.write::<u64>(e.pnode.add(VALID_OFF), &2) };
        self.pool.persist_range(e.pnode.add(VALID_OFF), 8);
        self.ralloc.dealloc(e.pnode);
        drop(e.value); // DRAM copy
        self.len.fetch_sub(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::make_key;
    use pmem::PmemConfig;

    fn map() -> SoftHashMap {
        let pool = PmemPool::new(PmemConfig::default());
        SoftHashMap::new(Ralloc::format(pool), 64)
    }

    #[test]
    fn set_semantics() {
        let m = map();
        assert!(m.insert(0, make_key(1), b"x"));
        assert!(
            !m.insert(0, make_key(1), b"y"),
            "no atomic update: duplicate insert fails"
        );
        assert!(m.get(0, &make_key(1)));
        assert!(m.remove(0, &make_key(1)));
        assert!(!m.get(0, &make_key(1)));
    }

    #[test]
    fn reads_touch_no_nvm() {
        let m = map();
        for i in 0..100 {
            m.insert(0, make_key(i), &[1u8; 128]);
        }
        let before = m.pool.stats().snapshot();
        for i in 0..100 {
            assert!(m.get(0, &make_key(i)));
        }
        assert_eq!(
            m.pool.stats().snapshot(),
            before,
            "lookups must be DRAM-only"
        );
    }

    #[test]
    fn recovery_restores_valid_pnodes() {
        let pool = PmemPool::new(PmemConfig::strict_for_test(16 << 20));
        let m = SoftHashMap::new(Ralloc::format(pool.clone()), 64);
        for i in 0..50 {
            m.insert(0, make_key(i), format!("v{i}").as_bytes());
        }
        for i in 0..10 {
            m.remove(0, &make_key(i));
        }
        let crashed = pool.crash();
        let m2 = SoftHashMap::recover(crashed, 64);
        assert_eq!(m2.len(), 40);
        for i in 0..50 {
            assert_eq!(m2.get(0, &make_key(i)), i >= 10, "key {i}");
        }
        // Usable after recovery; inserts don't collide with survivors.
        assert!(m2.insert(0, make_key(100), b"new"));
        assert!(m2.get(0, &make_key(100)));
    }

    #[test]
    fn recovery_drops_half_inserted_pnodes() {
        // A PNode whose valid flag never persisted must not come back.
        let pool = PmemPool::new(PmemConfig::strict_for_test(16 << 20));
        let m = SoftHashMap::new(Ralloc::format(pool.clone()), 64);
        m.insert(0, make_key(1), b"committed");
        // Fabricate a torn insert: write a pnode body but crash before the
        // validity flush (simulated by just crashing now — the valid=1 write
        // of a *new* insert below is never fenced because we crash first).
        let crashed = pool.crash();
        let m2 = SoftHashMap::recover(crashed, 64);
        assert_eq!(m2.len(), 1);
        assert!(m2.get(0, &make_key(1)));
    }

    #[test]
    fn insert_fences_twice() {
        let m = map();
        let f0 = m.pool.stats().snapshot().sfences;
        m.insert(0, make_key(7), &[0u8; 64]);
        let f1 = m.pool.stats().snapshot().sfences;
        assert!(f1 >= f0 + 2, "two-phase validity needs two fences");
    }
}
