//! Crash-point sweeps over the strictly-durable baselines.
//!
//! These are the paper's competitor systems; sweeping them serves two
//! purposes. First, their *strict* durability gives a sharper invariant
//! than Montage's buffered contract: single-threaded histories must
//! recover to exactly the state after some **operation prefix** (give or
//! take the one operation straddling the crash point). Second, their
//! recovery paths must degrade — `try_recover` returns `None` for an image
//! whose format never became durable, instead of panicking.

use baselines::api::{make_key, BenchMap, BenchQueue};
use baselines::friedman::FriedmanQueue;
use baselines::soft::SoftHashMap;
use pmem::PmemConfig;
use pmem_chaos::{crash_sweep, SweepConfig};
use ralloc::Ralloc;

const POOL: usize = 4 << 20;
const CFG: SweepConfig = SweepConfig {
    // Full workloads run to thousands of events; sample the interior but
    // always hit both boundaries.
    exhaustive_limit: 512,
    samples: 48,
    seed: 0xBA5E_11E5,
};

#[test]
fn friedman_queue_recovers_an_operation_prefix_at_every_crash_point() {
    const ENQS: u32 = 24;
    const DEQS: u32 = 6;
    let report = crash_sweep(
        &CFG,
        PmemConfig::strict_for_test(POOL),
        |pool| {
            let q = FriedmanQueue::new(Ralloc::format(pool.clone()), 2);
            for i in 0..ENQS {
                q.enqueue(0, &i.to_le_bytes());
            }
            for _ in 0..DEQS {
                q.dequeue(1);
            }
        },
        |durable, crash_at| {
            // A crash during formatting legitimately leaves no queue.
            let Some(q) = FriedmanQueue::try_recover(durable, 2) else {
                return Ok(());
            };
            let len = q.len();
            // Prefix of a 24-enq/6-deq history: between 8-minus-one (a
            // claimed-but-unmarked head may be recovered as dequeued) and
            // 12 items, never more.
            if len > ENQS as usize {
                return Err(format!("crash_at={crash_at}: phantom items, len={len}"));
            }
            // The transient index must agree with itself: exactly `len`
            // dequeues succeed, then the queue is empty.
            for i in 0..len {
                if !q.dequeue(0) {
                    return Err(format!("index said {len} items but dequeue {i} failed"));
                }
            }
            if q.dequeue(0) {
                return Err("queue yielded more items than len()".into());
            }
            Ok(())
        },
    );
    assert!(
        report.total_events > 200,
        "workload too small to exercise the sweep: {} events",
        report.total_events
    );
    report.assert_ok();
}

#[test]
fn soft_map_recovers_a_contiguous_key_range_at_every_crash_point() {
    const INSERTS: u64 = 28;
    const REMOVES: u64 = 6;
    let report = crash_sweep(
        &CFG,
        PmemConfig::strict_for_test(POOL),
        |pool| {
            let m = SoftHashMap::new(Ralloc::format(pool.clone()), 16);
            for i in 0..INSERTS {
                m.insert(0, make_key(i), format!("value-{i}").as_bytes());
            }
            for i in 0..REMOVES {
                m.remove(0, &make_key(i));
            }
        },
        |durable, crash_at| {
            let Some(m) = SoftHashMap::try_recover(durable, 16) else {
                return Ok(());
            };
            // Single-threaded inserts 0..28 then removes 0..6, each op
            // strictly durable in program order: the recovered key set must
            // be a contiguous range lo..hi with hi <= 28, and lo > 0 only
            // once every insert persisted (removes start after inserts).
            let present: Vec<bool> = (0..INSERTS).map(|i| m.get(0, &make_key(i))).collect();
            let Some(hi) = present.iter().rposition(|&p| p).map(|p| p + 1) else {
                // Crash before any insert became durable: empty map is the
                // (only) legal empty prefix.
                return if m.is_empty() {
                    Ok(())
                } else {
                    Err(format!(
                        "crash_at={crash_at}: phantom keys, len={}",
                        m.len()
                    ))
                };
            };
            let lo = present.iter().position(|&p| p).unwrap();
            if present[lo..hi].iter().any(|&p| !p) {
                return Err(format!(
                    "crash_at={crash_at}: key set has a hole: {present:?}"
                ));
            }
            if lo > 0 && hi != INSERTS as usize {
                return Err(format!(
                    "crash_at={crash_at}: removes visible before all inserts: {present:?}"
                ));
            }
            if lo > REMOVES as usize {
                return Err(format!("crash_at={crash_at}: phantom removes: {present:?}"));
            }
            if m.len() != hi - lo {
                return Err(format!(
                    "len {} disagrees with recovered keys {present:?}",
                    m.len()
                ));
            }
            Ok(())
        },
    );
    assert!(
        report.total_events > 200,
        "workload too small to exercise the sweep: {} events",
        report.total_events
    );
    report.assert_ok();
}
