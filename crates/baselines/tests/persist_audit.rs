//! Flush audit: runs each baseline under the persistency sanitizer and
//! asserts its hot paths issue **no redundant `clwb`s** (a flush of a line
//! that holds no unflushed store — the dominant persistence cost knob).
//!
//! Requires `--features baselines/persist-san`. Counts are filtered to call
//! sites inside the structure under audit so allocator-internal flushes do
//! not pollute the numbers. Before/after counts for the redundancies this
//! audit originally caught are recorded in EXPERIMENTS.md.

#![cfg(feature = "persist-san")]

use std::sync::Arc;

use baselines::api::{make_key, BenchMap, BenchQueue};
use baselines::dali::DaliHashMap;
use baselines::friedman::FriedmanQueue;
use baselines::mod_ds::{ModHashMap, ModQueue};
use baselines::soft::SoftHashMap;
use pmem::{PmemConfig, PmemPool, SanClass};
use ralloc::Ralloc;

fn pool() -> PmemPool {
    PmemPool::new(PmemConfig::default())
}

/// Redundant-clwb occurrences attributed to call sites in `file`, plus a
/// human-readable dump of them (test output doubles as the audit report).
fn redundant_in(pool: &PmemPool, file: &str) -> u64 {
    let report = pool.san_report();
    assert!(
        report.correctness_clean(),
        "audit hit a correctness violation"
    );
    let mut total = 0;
    for (site, n) in &report.redundant_by_site {
        if site.file.contains(file) {
            eprintln!("[persist-audit] {site}: {n} redundant clwb(s)");
            total += n;
        }
    }
    eprintln!(
        "[persist-audit] {file}: {total} redundant clwb(s) in-structure, \
         {} pool-wide",
        report.count(SanClass::RedundantClwb)
    );
    total
}

#[test]
fn friedman_queue_issues_no_redundant_flushes() {
    let p = pool();
    let q = FriedmanQueue::new(Ralloc::format(p.clone()), 4);
    p.san_reset_counts();
    for i in 0..200u32 {
        q.enqueue(0, &i.to_le_bytes());
        if i % 2 == 0 {
            assert!(q.dequeue(0));
        }
    }
    while q.dequeue(0) {}
    assert_eq!(redundant_in(&p, "friedman.rs"), 0);
}

#[test]
fn soft_map_issues_no_redundant_flushes() {
    let p = pool();
    let m = SoftHashMap::new(Ralloc::format(p.clone()), 64);
    p.san_reset_counts();
    for i in 0..200 {
        m.insert(0, make_key(i), &[i as u8; 96]);
    }
    for i in 0..100 {
        m.remove(0, &make_key(i));
    }
    assert_eq!(redundant_in(&p, "soft.rs"), 0);
}

#[test]
fn dali_era_flush_writes_back_only_new_records() {
    let p = pool();
    let m = DaliHashMap::new(Ralloc::format(p.clone()), 8);
    // Long-lived records spread over few buckets: every era flush re-walks
    // chains that are mostly already durable.
    for i in 0..128 {
        m.insert(0, make_key(i), &[1u8; 64]);
    }
    m.flush_era();
    p.san_reset_counts();
    for round in 0..8u64 {
        // A handful of updates per era; the other ~120 records are durable
        // and must not be written back again.
        for i in 0..8 {
            m.remove(0, &make_key(i));
            m.insert(0, make_key(i), &[round as u8; 64]);
        }
        m.flush_era();
    }
    assert_eq!(redundant_in(&p, "dali.rs"), 0);
}

#[test]
fn mod_map_path_copy_flushes_each_line_once() {
    let p = pool();
    let m = ModHashMap::new(Ralloc::format(p.clone()), 1);
    // One bucket → long chain → removals path-copy a deep prefix whose
    // patched links must not re-flush the node bodies.
    for i in 0..32 {
        m.insert(0, make_key(i), &[2u8; 48]);
    }
    p.san_reset_counts();
    for i in (0..32).rev().step_by(2) {
        assert!(m.remove(0, &make_key(i)));
    }
    assert_eq!(redundant_in(&p, "mod_ds.rs"), 0);
}

#[test]
fn mod_queue_reversal_flushes_each_line_once() {
    let p = pool();
    let q = ModQueue::new(Ralloc::format(p.clone()));
    p.san_reset_counts();
    for round in 0..4u32 {
        for i in 0..16 {
            q.enqueue(0, &[(round * 16 + i) as u8; 40]);
        }
        for _ in 0..16 {
            assert!(q.dequeue(0));
        }
    }
    assert_eq!(redundant_in(&p, "mod_ds.rs"), 0);
}
