//! Payload blocks: the only data Montage keeps in NVM.
//!
//! Every payload starts with a fixed header recording the epoch in which it
//! was created or last modified, whether it is a fresh allocation (`ALLOC`),
//! a copy-on-write replacement (`UPDATE`), or an anti-payload (`DELETE`), and
//! a `uid` shared between a logical object's versions and its anti-payload so
//! recovery can cancel them (paper Sec. 5).

use pmem::{POff, PmemPool};

/// Byte size of the payload header. User data follows immediately.
pub const HDR_SIZE: usize = 32;

/// Header magic for a live payload block.
pub const MAGIC_LIVE: u32 = 0x4D54_4147; // "MTAG"

/// Header magic written when a block is reclaimed, so the post-crash sweep
/// can never resurrect freed memory (see DESIGN.md, reclamation soundness).
pub const MAGIC_TOMBSTONE: u32 = 0xDEAD_D00D;

/// Payload kind, as in the paper's `enum type = {ALLOC, UPDATE, DELETE}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PayloadKind {
    /// Created by `PNEW`.
    Alloc = 1,
    /// A copy-on-write replacement created by `set`.
    Update = 2,
    /// An anti-payload created by `PDELETE`.
    Delete = 3,
}

impl PayloadKind {
    pub fn from_u8(v: u8) -> Option<PayloadKind> {
        match v {
            1 => Some(PayloadKind::Alloc),
            2 => Some(PayloadKind::Update),
            3 => Some(PayloadKind::Delete),
            _ => None,
        }
    }
}

/// Raw header accessors over a block at offset `blk` (the block base).
///
/// Layout (32 bytes, all little-endian):
/// ```text
/// 0  magic: u32
/// 4  kind:  u8   |  pad: u8 | type_tag: u16
/// 8  epoch: u64
/// 16 uid:   u64
/// 24 size:  u32 (user bytes)  | sum: u32 (header checksum)
/// ```
///
/// The final word holds a checksum over the other header fields so that a
/// *torn* header (a power cut persisting only a prefix of the header's cache
/// line — see `pmem::ChaosConfig::torn_line_permille`) is detectable: any
/// 8-byte-granular tear either drops the checksum word (leaving stale bytes
/// that won't match) or drops fields the stored checksum covers. Recovery
/// quarantines blocks whose checksum does not verify.
pub struct Header;

/// Checksum over the header fields (excluding the magic, which acts as the
/// liveness discriminant, and including the raw kind byte so invalid kinds
/// perturb it too).
#[inline]
fn hdr_sum(kind: u8, tag: u16, epoch: u64, uid: u64, size: u32) -> u32 {
    let mut h: u32 = 0x9E37_79B9;
    for w in [
        (kind as u32) | ((tag as u32) << 16),
        epoch as u32,
        (epoch >> 32) as u32,
        uid as u32,
        (uid >> 32) as u32,
        size,
    ] {
        h = (h ^ w).wrapping_mul(0x85EB_CA6B).rotate_left(13);
    }
    // Never produce 0: a zeroed (never-persisted) checksum word must always
    // read as corrupt.
    if h == 0 {
        1
    } else {
        h
    }
}

impl Header {
    #[inline]
    pub fn write_new(
        pool: &PmemPool,
        blk: POff,
        kind: PayloadKind,
        tag: u16,
        epoch: u64,
        uid: u64,
        size: u32,
    ) {
        // SAFETY: the caller hands a block of at least HDR_SIZE bytes that it
        // owns exclusively (fresh allocation or recovery quarantine).
        unsafe {
            pool.write::<u32>(blk, &MAGIC_LIVE);
            pool.write::<u8>(blk.add(4), &(kind as u8));
            pool.write::<u8>(blk.add(5), &0u8);
            pool.write::<u16>(blk.add(6), &tag);
            pool.write::<u64>(blk.add(8), &epoch);
            pool.write::<u64>(blk.add(16), &uid);
            pool.write::<u32>(blk.add(24), &size);
            pool.write::<u32>(blk.add(28), &hdr_sum(kind as u8, tag, epoch, uid, size));
        }
    }

    #[inline]
    pub fn magic(pool: &PmemPool, blk: POff) -> u32 {
        // SAFETY: `blk` heads an in-bounds payload block; header words are
        // plain data, readable even when never initialized.
        unsafe { pool.read(blk) }
    }

    #[inline]
    pub fn kind(pool: &PmemPool, blk: POff) -> Option<PayloadKind> {
        // SAFETY: see `magic`; the byte is validated by from_u8.
        PayloadKind::from_u8(unsafe { pool.read::<u8>(blk.add(4)) })
    }

    #[inline]
    pub fn set_kind(pool: &PmemPool, blk: POff, kind: PayloadKind) {
        // SAFETY: kind transitions happen inside the owning operation (or
        // single-threaded recovery), so the header words cannot race.
        unsafe {
            pool.write::<u8>(blk.add(4), &(kind as u8));
            let sum = hdr_sum(
                kind as u8,
                Self::tag(pool, blk),
                Self::epoch(pool, blk),
                Self::uid(pool, blk),
                Self::size(pool, blk),
            );
            pool.write::<u32>(blk.add(28), &sum);
        }
    }

    #[inline]
    pub fn tag(pool: &PmemPool, blk: POff) -> u16 {
        // SAFETY: see `magic`.
        unsafe { pool.read(blk.add(6)) }
    }

    #[inline]
    pub fn epoch(pool: &PmemPool, blk: POff) -> u64 {
        // SAFETY: see `magic`.
        unsafe { pool.read(blk.add(8)) }
    }

    #[inline]
    pub fn uid(pool: &PmemPool, blk: POff) -> u64 {
        // SAFETY: see `magic`.
        unsafe { pool.read(blk.add(16)) }
    }

    #[inline]
    pub fn size(pool: &PmemPool, blk: POff) -> u32 {
        // SAFETY: see `magic`.
        unsafe { pool.read(blk.add(24)) }
    }

    /// Verifies the header checksum. `false` means the header's line reached
    /// durable media only partially (or was otherwise corrupted) and the
    /// block must be quarantined, not trusted.
    #[inline]
    pub fn checksum_ok(pool: &PmemPool, blk: POff) -> bool {
        // SAFETY: see `magic` — in-bounds header words, any bit pattern ok.
        let kind = unsafe { pool.read::<u8>(blk.add(4)) };
        let stored = unsafe { pool.read::<u32>(blk.add(28)) };
        stored
            == hdr_sum(
                kind,
                Self::tag(pool, blk),
                Self::epoch(pool, blk),
                Self::uid(pool, blk),
                Self::size(pool, blk),
            )
    }

    /// Marks a block as reclaimed. The caller schedules the header line for
    /// write-back with the surrounding epoch boundary's flush batch.
    #[inline]
    pub fn tombstone(pool: &PmemPool, blk: POff) {
        // SAFETY: only the retiring operation tombstones a block, so the
        // in-bounds magic word has a single writer.
        unsafe { pool.write::<u32>(blk, &MAGIC_TOMBSTONE) }
    }

    /// Offset of the user bytes.
    #[inline]
    pub fn data(blk: POff) -> POff {
        blk.add(HDR_SIZE as u64)
    }
}

/// A typed handle to a payload block. `Copy`; the `T` is only a phantom —
/// all access is via [`crate::EpochSys`] so epoch labelling stays correct.
pub struct PHandle<T: ?Sized> {
    pub(crate) blk: POff,
    _m: std::marker::PhantomData<*const T>,
}

// SAFETY: a handle is just an offset; all access goes through the pool.
unsafe impl<T: ?Sized> Send for PHandle<T> {}
unsafe impl<T: ?Sized> Sync for PHandle<T> {}

impl<T: ?Sized> PHandle<T> {
    /// Wraps a raw block offset (e.g. one returned by recovery).
    #[inline]
    pub fn from_raw(blk: POff) -> Self {
        PHandle {
            blk,
            _m: std::marker::PhantomData,
        }
    }

    /// The block's base offset (header included).
    #[inline]
    pub fn raw(&self) -> POff {
        self.blk
    }

    /// The persistent-null handle.
    #[inline]
    pub fn null() -> Self {
        Self::from_raw(POff::NULL)
    }

    #[inline]
    pub fn is_null(&self) -> bool {
        self.blk.is_null()
    }
}

impl<T: ?Sized> Clone for PHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: ?Sized> Copy for PHandle<T> {}

impl<T: ?Sized> PartialEq for PHandle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.blk == other.blk
    }
}
impl<T: ?Sized> Eq for PHandle<T> {}

impl<T: ?Sized> std::fmt::Debug for PHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PHandle({:?})", self.blk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    #[test]
    fn header_roundtrip() {
        let pool = PmemPool::new(PmemConfig::default());
        let blk = POff::new(8192);
        Header::write_new(&pool, blk, PayloadKind::Update, 99, 12, 345, 1024);
        assert_eq!(Header::magic(&pool, blk), MAGIC_LIVE);
        assert_eq!(Header::kind(&pool, blk), Some(PayloadKind::Update));
        assert_eq!(Header::tag(&pool, blk), 99);
        assert_eq!(Header::epoch(&pool, blk), 12);
        assert_eq!(Header::uid(&pool, blk), 345);
        assert_eq!(Header::size(&pool, blk), 1024);
        assert_eq!(Header::data(blk).raw(), blk.raw() + 32);
    }

    #[test]
    fn tombstone_invalidates() {
        let pool = PmemPool::new(PmemConfig::default());
        let blk = POff::new(8192);
        Header::write_new(&pool, blk, PayloadKind::Alloc, 0, 5, 1, 8);
        Header::tombstone(&pool, blk);
        assert_eq!(Header::magic(&pool, blk), MAGIC_TOMBSTONE);
        // Other fields are untouched; only the magic decides liveness.
        assert_eq!(Header::epoch(&pool, blk), 5);
    }

    #[test]
    fn checksum_verifies_and_detects_tears() {
        let pool = PmemPool::new(PmemConfig::default());
        let blk = POff::new(8192);
        Header::write_new(&pool, blk, PayloadKind::Alloc, 7, 12, 345, 64);
        assert!(Header::checksum_ok(&pool, blk));
        Header::set_kind(&pool, blk, PayloadKind::Delete);
        assert!(Header::checksum_ok(&pool, blk), "set_kind keeps the sum");
        // A tear that kept the first 16 bytes but lost uid/size/sum reads as
        // corrupt (the stale checksum word no longer matches).
        // SAFETY: in-bounds test scratch words; this thread owns the pool.
        unsafe {
            pool.write::<u64>(blk.add(16), &0u64);
            pool.write::<u32>(blk.add(24), &0u32);
            pool.write::<u32>(blk.add(28), &0u32);
        }
        assert!(!Header::checksum_ok(&pool, blk));
    }

    #[test]
    fn kind_parsing_rejects_garbage() {
        assert_eq!(PayloadKind::from_u8(0), None);
        assert_eq!(PayloadKind::from_u8(4), None);
        assert_eq!(PayloadKind::from_u8(2), Some(PayloadKind::Update));
    }

    #[test]
    fn handles_are_value_types() {
        let a: PHandle<u64> = PHandle::from_raw(POff::new(64));
        let b = a;
        assert_eq!(a, b);
        assert!(!a.is_null());
        assert!(PHandle::<u64>::null().is_null());
    }
}
