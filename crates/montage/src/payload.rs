//! Payload blocks: the only data Montage keeps in NVM.
//!
//! Every payload starts with a fixed header recording the epoch in which it
//! was created or last modified, whether it is a fresh allocation (`ALLOC`),
//! a copy-on-write replacement (`UPDATE`), or an anti-payload (`DELETE`), and
//! a `uid` shared between a logical object's versions and its anti-payload so
//! recovery can cancel them (paper Sec. 5).

use pmem::{POff, PmemPool};

/// Byte size of the payload header. User data follows immediately.
pub const HDR_SIZE: usize = 32;

/// Header magic for a live payload block.
pub const MAGIC_LIVE: u32 = 0x4D54_4147; // "MTAG"

/// Header magic written when a block is reclaimed, so the post-crash sweep
/// can never resurrect freed memory (see DESIGN.md, reclamation soundness).
pub const MAGIC_TOMBSTONE: u32 = 0xDEAD_D00D;

/// Payload kind, as in the paper's `enum type = {ALLOC, UPDATE, DELETE}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PayloadKind {
    /// Created by `PNEW`.
    Alloc = 1,
    /// A copy-on-write replacement created by `set`.
    Update = 2,
    /// An anti-payload created by `PDELETE`.
    Delete = 3,
}

impl PayloadKind {
    pub fn from_u8(v: u8) -> Option<PayloadKind> {
        match v {
            1 => Some(PayloadKind::Alloc),
            2 => Some(PayloadKind::Update),
            3 => Some(PayloadKind::Delete),
            _ => None,
        }
    }
}

/// Raw header accessors over a block at offset `blk` (the block base).
///
/// Layout (32 bytes, all little-endian):
/// ```text
/// 0  magic: u32
/// 4  kind:  u8   |  pad: u8 | type_tag: u16
/// 8  epoch: u64
/// 16 uid:   u64
/// 24 size:  u32 (user bytes)  | sum: u32 (header checksum)
/// ```
///
/// The final word holds a checksum over the other header fields **and the
/// user data bytes**, so that a *torn* payload — a power cut persisting only
/// some of the block's cache lines (see `pmem::ChaosConfig::torn_line_permille`
/// and the nonblocking advance, which deliberately declares epochs durable
/// while a bypassed straggler may still hold half-written payloads) — is
/// detectable: any tear either drops the checksum word (leaving stale bytes
/// that won't match) or drops bytes the stored checksum covers. Recovery
/// quarantines blocks whose checksum does not verify. This is sound because
/// a payload whose content can be torn at a crash cut is always one whose
/// operation was never acknowledged (see DESIGN.md, helping-protocol
/// invariants), so quarantining it preserves the consistent prefix.
pub struct Header;

/// Checksum over the header fields (excluding the magic, which acts as the
/// liveness discriminant, and including the raw kind byte so invalid kinds
/// perturb it too).
#[inline]
fn hdr_sum(kind: u8, tag: u16, epoch: u64, uid: u64, size: u32) -> u32 {
    let mut h: u32 = 0x9E37_79B9;
    for w in [
        (kind as u32) | ((tag as u32) << 16),
        epoch as u32,
        (epoch >> 32) as u32,
        uid as u32,
        (uid >> 32) as u32,
        size,
    ] {
        h = (h ^ w).wrapping_mul(0x85EB_CA6B).rotate_left(13);
    }
    // Never produce 0: a zeroed (never-persisted) checksum word must always
    // read as corrupt.
    if h == 0 {
        1
    } else {
        h
    }
}

/// Folds the data checksum into the header checksum; keeps the never-zero
/// property so an unwritten checksum word still reads as corrupt.
#[inline]
fn full_sum(kind: u8, tag: u16, epoch: u64, uid: u64, size: u32, data_sum: u32) -> u32 {
    let h = hdr_sum(kind, tag, epoch, uid, size) ^ data_sum.rotate_left(7);
    if h == 0 {
        1
    } else {
        h
    }
}

/// Streaming 4-lane multiplicative checksum over a payload's user bytes.
///
/// The original byte-at-a-time FNV-1a put ~4k serially dependent multiplies
/// on every 4 KiB value seal/reseal (~4 µs per update — it dominated the
/// wire benchmarks). Four independent u64 lanes striding 32-byte blocks keep
/// the multiplier pipeline full; any flipped byte still flips the folded
/// result with overwhelming probability, which is all the torn-payload
/// quarantine at recovery needs. Not a cryptographic or portable format —
/// sums are only ever compared against ones the same code computed.
struct DataSum {
    lanes: [u64; 4],
    total: u64,
}

/// FNV-1a 64-bit prime: cheap, odd (so multiplication is invertible), and
/// good avalanche after the final fold for checksum purposes.
const SUM_PRIME: u64 = 0x0000_0100_0000_01B3;

impl DataSum {
    fn new() -> DataSum {
        // Distinct lane seeds derived from the FNV-1a 64 offset basis.
        DataSum {
            lanes: [0xCBF2_9CE4_8422_2325u64; 4].map({
                let mut i = 0u64;
                move |s| {
                    i += 1;
                    s.wrapping_mul(SUM_PRIME).wrapping_add(i)
                }
            }),
            total: 0,
        }
    }

    /// Absorbs `bytes`, whose length must be a multiple of 32 — every chunk
    /// except the last fed to a [`DataSum`] must satisfy this so streamed
    /// and one-shot sums agree.
    fn blocks(&mut self, bytes: &[u8]) {
        debug_assert_eq!(bytes.len() % 32, 0, "non-final chunk must be 32-aligned");
        self.total += bytes.len() as u64;
        for blk in bytes.chunks_exact(32) {
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                let w = u64::from_le_bytes(blk[i * 8..i * 8 + 8].try_into().unwrap());
                *lane = (*lane ^ w).wrapping_mul(SUM_PRIME);
            }
        }
    }

    /// Absorbs the final (arbitrary-length) chunk and folds to the sum.
    fn finish(mut self, tail: &[u8]) -> u32 {
        let cut = tail.len() & !31;
        self.blocks(&tail[..cut]);
        let mut h = self.lanes[0];
        for &lane in &self.lanes[1..] {
            h = (h ^ lane).wrapping_mul(SUM_PRIME);
        }
        for &b in &tail[cut..] {
            h = (h ^ u64::from(b)).wrapping_mul(SUM_PRIME);
        }
        // Total length in, so content that only differs by trailing zeros
        // cannot alias; fold high into low bits for the 32-bit seal.
        h = (h ^ (self.total + (tail.len() - cut) as u64)).wrapping_mul(SUM_PRIME);
        (h ^ (h >> 32)) as u32
    }
}

impl Header {
    /// Checksum over a payload's user bytes, for the header seal (see
    /// [`DataSum`]).
    #[inline]
    pub fn data_sum(bytes: &[u8]) -> u32 {
        DataSum::new().finish(bytes)
    }

    /// [`Header::data_sum`] over the `size` user bytes stored at `blk`'s
    /// data area in the pool (chunked, so large payloads don't allocate).
    pub fn data_sum_pooled(pool: &PmemPool, blk: POff, size: u32) -> u32 {
        let mut st = DataSum::new();
        let mut off = Self::data(blk);
        let mut left = size as usize;
        let mut buf = [0u8; 1024];
        while left > buf.len() {
            pool.read_bytes(off, &mut buf);
            st.blocks(&buf);
            off = off.add(buf.len() as u64);
            left -= buf.len();
        }
        pool.read_bytes(off, &mut buf[..left]);
        st.finish(&buf[..left])
    }

    /// Writes a fresh header sealing `size` user bytes whose
    /// [`Header::data_sum`] is `data_sum`. The caller writes exactly those
    /// bytes at [`Header::data`] — before or after this call; the checksum
    /// only has to match by the time the block's epoch can be declared
    /// durable, and a crash cut that catches header and data out of step is
    /// precisely what the checksum is there to detect.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn write_new(
        pool: &PmemPool,
        blk: POff,
        kind: PayloadKind,
        tag: u16,
        epoch: u64,
        uid: u64,
        size: u32,
        data_sum: u32,
    ) {
        // SAFETY: the caller hands a block of at least HDR_SIZE bytes that it
        // owns exclusively (fresh allocation or recovery quarantine).
        unsafe {
            pool.write::<u32>(blk, &MAGIC_LIVE);
            pool.write::<u8>(blk.add(4), &(kind as u8));
            pool.write::<u8>(blk.add(5), &0u8);
            pool.write::<u16>(blk.add(6), &tag);
            pool.write::<u64>(blk.add(8), &epoch);
            pool.write::<u64>(blk.add(16), &uid);
            pool.write::<u32>(blk.add(24), &size);
            pool.write::<u32>(
                blk.add(28),
                &full_sum(kind as u8, tag, epoch, uid, size, data_sum),
            );
        }
    }

    /// Recomputes and rewrites the checksum word from the current header
    /// fields and the current pool-resident data bytes. Used after an
    /// in-place `set` mutated the data area.
    #[inline]
    pub fn reseal(pool: &PmemPool, blk: POff) {
        let size = Self::size(pool, blk);
        let sum = full_sum(
            // SAFETY: see `magic` — in-bounds header byte.
            unsafe { pool.read::<u8>(blk.add(4)) },
            Self::tag(pool, blk),
            Self::epoch(pool, blk),
            Self::uid(pool, blk),
            size,
            Self::data_sum_pooled(pool, blk, size),
        );
        // SAFETY: the owning operation has exclusive write access to the
        // header during its mutation.
        unsafe { pool.write::<u32>(blk.add(28), &sum) }
    }

    #[inline]
    pub fn magic(pool: &PmemPool, blk: POff) -> u32 {
        // SAFETY: `blk` heads an in-bounds payload block; header words are
        // plain data, readable even when never initialized.
        unsafe { pool.read(blk) }
    }

    #[inline]
    pub fn kind(pool: &PmemPool, blk: POff) -> Option<PayloadKind> {
        // SAFETY: see `magic`; the byte is validated by from_u8.
        PayloadKind::from_u8(unsafe { pool.read::<u8>(blk.add(4)) })
    }

    #[inline]
    pub fn set_kind(pool: &PmemPool, blk: POff, kind: PayloadKind) {
        let size = Self::size(pool, blk);
        let sum = full_sum(
            kind as u8,
            Self::tag(pool, blk),
            Self::epoch(pool, blk),
            Self::uid(pool, blk),
            size,
            Self::data_sum_pooled(pool, blk, size),
        );
        // SAFETY: kind transitions happen inside the owning operation (or
        // single-threaded recovery), so the header words cannot race.
        unsafe {
            pool.write::<u8>(blk.add(4), &(kind as u8));
            pool.write::<u32>(blk.add(28), &sum);
        }
    }

    #[inline]
    pub fn tag(pool: &PmemPool, blk: POff) -> u16 {
        // SAFETY: see `magic`.
        unsafe { pool.read(blk.add(6)) }
    }

    #[inline]
    pub fn epoch(pool: &PmemPool, blk: POff) -> u64 {
        // SAFETY: see `magic`.
        unsafe { pool.read(blk.add(8)) }
    }

    #[inline]
    pub fn uid(pool: &PmemPool, blk: POff) -> u64 {
        // SAFETY: see `magic`.
        unsafe { pool.read(blk.add(16)) }
    }

    #[inline]
    pub fn size(pool: &PmemPool, blk: POff) -> u32 {
        // SAFETY: see `magic`.
        unsafe { pool.read(blk.add(24)) }
    }

    /// Verifies the block checksum (header fields + user data). `false`
    /// means some of the block's lines reached durable media only partially
    /// — a torn header, a half-flushed in-place update, a bypassed
    /// straggler's unfinished payload — and the block must be quarantined,
    /// not trusted. The caller must have validated the `size` field's bound
    /// against the arena before calling (recovery's `validate_header` does).
    #[inline]
    pub fn checksum_ok(pool: &PmemPool, blk: POff) -> bool {
        // SAFETY: see `magic` — in-bounds header words, any bit pattern ok.
        let kind = unsafe { pool.read::<u8>(blk.add(4)) };
        let stored = unsafe { pool.read::<u32>(blk.add(28)) };
        let size = Self::size(pool, blk);
        stored
            == full_sum(
                kind,
                Self::tag(pool, blk),
                Self::epoch(pool, blk),
                Self::uid(pool, blk),
                size,
                Self::data_sum_pooled(pool, blk, size),
            )
    }

    /// Marks a block as reclaimed. The caller schedules the header line for
    /// write-back with the surrounding epoch boundary's flush batch.
    #[inline]
    pub fn tombstone(pool: &PmemPool, blk: POff) {
        // SAFETY: only the retiring operation tombstones a block, so the
        // in-bounds magic word has a single writer.
        unsafe { pool.write::<u32>(blk, &MAGIC_TOMBSTONE) }
    }

    /// Offset of the user bytes.
    #[inline]
    pub fn data(blk: POff) -> POff {
        blk.add(HDR_SIZE as u64)
    }
}

/// A typed handle to a payload block. `Copy`; the `T` is only a phantom —
/// all access is via [`crate::EpochSys`] so epoch labelling stays correct.
pub struct PHandle<T: ?Sized> {
    pub(crate) blk: POff,
    _m: std::marker::PhantomData<*const T>,
}

// SAFETY: a handle is just an offset; all access goes through the pool.
unsafe impl<T: ?Sized> Send for PHandle<T> {}
unsafe impl<T: ?Sized> Sync for PHandle<T> {}

impl<T: ?Sized> PHandle<T> {
    /// Wraps a raw block offset (e.g. one returned by recovery).
    #[inline]
    pub fn from_raw(blk: POff) -> Self {
        PHandle {
            blk,
            _m: std::marker::PhantomData,
        }
    }

    /// The block's base offset (header included).
    #[inline]
    pub fn raw(&self) -> POff {
        self.blk
    }

    /// The persistent-null handle.
    #[inline]
    pub fn null() -> Self {
        Self::from_raw(POff::NULL)
    }

    #[inline]
    pub fn is_null(&self) -> bool {
        self.blk.is_null()
    }
}

impl<T: ?Sized> Clone for PHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: ?Sized> Copy for PHandle<T> {}

impl<T: ?Sized> PartialEq for PHandle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.blk == other.blk
    }
}
impl<T: ?Sized> Eq for PHandle<T> {}

impl<T: ?Sized> std::fmt::Debug for PHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PHandle({:?})", self.blk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    #[test]
    fn header_roundtrip() {
        let pool = PmemPool::new(PmemConfig::default());
        let blk = POff::new(8192);
        let data = vec![0xA5u8; 1024];
        pool.write_bytes(Header::data(blk), &data);
        Header::write_new(
            &pool,
            blk,
            PayloadKind::Update,
            99,
            12,
            345,
            1024,
            Header::data_sum(&data),
        );
        assert_eq!(Header::magic(&pool, blk), MAGIC_LIVE);
        assert_eq!(Header::kind(&pool, blk), Some(PayloadKind::Update));
        assert_eq!(Header::tag(&pool, blk), 99);
        assert_eq!(Header::epoch(&pool, blk), 12);
        assert_eq!(Header::uid(&pool, blk), 345);
        assert_eq!(Header::size(&pool, blk), 1024);
        assert_eq!(Header::data(blk).raw(), blk.raw() + 32);
        assert!(Header::checksum_ok(&pool, blk));
    }

    #[test]
    fn tombstone_invalidates() {
        let pool = PmemPool::new(PmemConfig::default());
        let blk = POff::new(8192);
        Header::write_new(
            &pool,
            blk,
            PayloadKind::Alloc,
            0,
            5,
            1,
            0,
            Header::data_sum(&[]),
        );
        Header::tombstone(&pool, blk);
        assert_eq!(Header::magic(&pool, blk), MAGIC_TOMBSTONE);
        // Other fields are untouched; only the magic decides liveness.
        assert_eq!(Header::epoch(&pool, blk), 5);
    }

    #[test]
    fn checksum_verifies_and_detects_tears() {
        let pool = PmemPool::new(PmemConfig::default());
        let blk = POff::new(8192);
        let data = [7u8; 64];
        pool.write_bytes(Header::data(blk), &data);
        Header::write_new(
            &pool,
            blk,
            PayloadKind::Alloc,
            7,
            12,
            345,
            64,
            Header::data_sum(&data),
        );
        assert!(Header::checksum_ok(&pool, blk));
        Header::set_kind(&pool, blk, PayloadKind::Delete);
        assert!(Header::checksum_ok(&pool, blk), "set_kind keeps the sum");
        // A tear that kept the first 16 bytes but lost uid/size/sum reads as
        // corrupt (the stale checksum word no longer matches).
        // SAFETY: in-bounds test scratch words; this thread owns the pool.
        unsafe {
            pool.write::<u64>(blk.add(16), &0u64);
            pool.write::<u32>(blk.add(24), &0u32);
            pool.write::<u32>(blk.add(28), &0u32);
        }
        assert!(!Header::checksum_ok(&pool, blk));
    }

    #[test]
    fn checksum_covers_data_bytes() {
        // A payload whose header persisted but whose data lines tore (the
        // bypassed-straggler crash shape) must read as corrupt.
        let pool = PmemPool::new(PmemConfig::default());
        let blk = POff::new(8192);
        let data = [0x5Au8; 200];
        pool.write_bytes(Header::data(blk), &data);
        Header::write_new(
            &pool,
            blk,
            PayloadKind::Alloc,
            1,
            9,
            77,
            200,
            Header::data_sum(&data),
        );
        assert!(Header::checksum_ok(&pool, blk));
        // Corrupt one data byte far from the header: still detected.
        pool.write_bytes(Header::data(blk).add(150), &[0x00]);
        assert!(!Header::checksum_ok(&pool, blk));
        // An in-place mutation becomes valid again after a reseal.
        Header::reseal(&pool, blk);
        assert!(Header::checksum_ok(&pool, blk));
        // Pooled and slice-based data sums agree.
        let mut cur = [0u8; 200];
        pool.read_bytes(Header::data(blk), &mut cur);
        assert_eq!(
            Header::data_sum(&cur),
            Header::data_sum_pooled(&pool, blk, 200)
        );
    }

    #[test]
    fn pooled_and_oneshot_sums_agree_at_every_chunk_boundary() {
        // data_sum seals at pnew time from the caller's slice; recovery (and
        // reseal) recompute with data_sum_pooled's 1 KiB streaming chunks.
        // The two must agree for every size straddling the lane width (32)
        // and the chunk size (1024), or valid payloads would be quarantined.
        let pool = PmemPool::new(PmemConfig::default());
        let blk = POff::new(8192);
        for size in [0usize, 1, 31, 32, 33, 255, 1023, 1024, 1025, 4096, 5000] {
            let data: Vec<u8> = (0..size).map(|i| (i * 7 + 13) as u8).collect();
            pool.write_bytes(Header::data(blk), &data);
            assert_eq!(
                Header::data_sum(&data),
                Header::data_sum_pooled(&pool, blk, size as u32),
                "size {size}"
            );
        }
    }

    #[test]
    fn data_sum_sees_every_byte_and_the_length() {
        let base = vec![0u8; 4096];
        let s0 = Header::data_sum(&base);
        for pos in [0usize, 31, 32, 1023, 1024, 4095] {
            let mut b = base.clone();
            b[pos] = 1;
            assert_ne!(Header::data_sum(&b), s0, "flip at {pos} undetected");
        }
        assert_ne!(Header::data_sum(&base[..4095]), s0, "truncation undetected");
    }

    #[test]
    fn kind_parsing_rejects_garbage() {
        assert_eq!(PayloadKind::from_u8(0), None);
        assert_eq!(PayloadKind::from_u8(4), None);
        assert_eq!(PayloadKind::from_u8(2), Some(PayloadKind::Update));
    }

    #[test]
    fn handles_are_value_types() {
        let a: PHandle<u64> = PHandle::from_raw(POff::new(64));
        let b = a;
        assert_eq!(a, b);
        assert!(!a.is_null());
        assert!(PHandle::<u64>::null().is_null());
    }
}
