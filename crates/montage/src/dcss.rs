//! `CAS_verify` / `load_verify`: a software double-compare-single-swap
//! (after Harris et al., "A Practical Multi-word Compare-and-Swap
//! Operation") that updates a location **only if the epoch clock still holds
//! the operation's epoch** (paper Sec. 3.2).
//!
//! Nonblocking structures linearize through [`VerifyCell::cas_verify`]: a
//! successful call is guaranteed to have taken effect while the clock read
//! the operation's epoch, so the operation linearizes in the epoch that
//! labels its payloads (well-formedness property 3). The compatible
//! [`VerifyCell::load`] performs **no stores** unless a DCSS is in progress
//! on the cell, in which case it helps it complete — this is the paper's
//! `load_verify2`, chosen so read-dominated workloads induce no cache-line
//! invalidations. (The paper's alternative `load_verify1`, a read-CAS on an
//! adjacent counter, trades read cost for simpler verification; we implement
//! the variant used by the reported experiments.)
//!
//! Values are limited to 62 bits (cells store `v << 1`; the LSB marks an
//! in-flight descriptor). That comfortably holds transient pointers and
//! tagged indices, the paper's use cases.

use crate::sync::{weaken, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::errors::EpochChanged;
use crate::esys::{EpochSys, OpGuard};

/// Failure modes of [`VerifyCell::cas_verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasVerifyError {
    /// The cell did not hold the expected value; the actual value is given.
    Conflict(u64),
    /// The epoch advanced between `BEGIN_OP` and the linearization attempt;
    /// the operation must restart (in the new epoch).
    Epoch(EpochChanged),
}

const MAX_DESCRIPTORS: usize = 1024;
const IDX_BITS: u32 = 10;

const UNDECIDED: u64 = 0;
const SUCCEEDED: u64 = 1;
const FAILED: u64 = 2;

/// One announcement slot; recycled per thread, versioned by `seq`.
struct Descriptor {
    /// Even = stable/published; odd = being (re)initialized.
    seq: AtomicU64,
    cell: AtomicUsize,
    old: AtomicU64,
    new: AtomicU64,
    epoch: AtomicU64,
    /// Packed `(seq << 2) | state` so a decision can never be applied to a
    /// recycled descriptor.
    decision: AtomicU64,
}

struct Arena {
    descs: Box<[Descriptor]>,
}

fn arena() -> &'static Arena {
    static ARENA: OnceLock<Arena> = OnceLock::new();
    ARENA.get_or_init(|| Arena {
        descs: (0..MAX_DESCRIPTORS)
            .map(|_| Descriptor {
                seq: AtomicU64::new(0),
                cell: AtomicUsize::new(0),
                old: AtomicU64::new(0),
                new: AtomicU64::new(0),
                epoch: AtomicU64::new(0),
                decision: AtomicU64::new(0),
            })
            .collect(),
    })
}

fn my_desc_idx() -> usize {
    // Allocation bookkeeping only — never part of a cross-thread handoff, so
    // it stays on uninstrumented primitives (a model-check execution spawns
    // fresh OS threads every run; instrumenting this would add schedule
    // points and, without the free list, exhaust the arena).
    use crate::sync::uninstrumented::AtomicUsize as PlainUsize;
    static NEXT: PlainUsize = PlainUsize::new(0);
    static FREE: std::sync::Mutex<Vec<usize>> = std::sync::Mutex::new(Vec::new());

    /// Returns the slot to the free list when the owning thread exits, so
    /// short-lived threads (tests, model-check executions) can't exhaust the
    /// arena. The descriptor's `seq` versioning already makes reuse by a
    /// different thread indistinguishable from reuse by the same thread.
    struct Slot(usize);
    impl Drop for Slot {
        fn drop(&mut self) {
            FREE.lock().unwrap().push(self.0);
        }
    }
    thread_local! {
        static IDX: Slot = Slot(FREE.lock().unwrap().pop().unwrap_or_else(|| {
            // ord(counter): one-time slot handout; no data published via it.
            let idx = NEXT.fetch_add(1, Ordering::Relaxed);
            assert!(idx < MAX_DESCRIPTORS, "too many DCSS threads");
            idx
        }));
    }
    IDX.with(|s| s.0)
}

#[inline]
fn mark(idx: usize, seq: u64) -> u64 {
    (seq << (IDX_BITS + 1)) | ((idx as u64) << 1) | 1
}

#[inline]
fn unmark(word: u64) -> (usize, u64) {
    (
        ((word >> 1) & ((1 << IDX_BITS) - 1)) as usize,
        word >> (IDX_BITS + 1),
    )
}

#[inline]
fn is_marked(word: u64) -> bool {
    word & 1 == 1
}

/// A 62-bit atomic cell supporting epoch-verified CAS.
#[derive(Debug)]
pub struct VerifyCell(AtomicU64);

impl VerifyCell {
    pub fn new(v: u64) -> Self {
        debug_assert!(v < 1 << 62);
        VerifyCell(AtomicU64::new(v << 1))
    }

    /// Reads the cell, helping any in-flight DCSS first. Performs no store
    /// instructions when no DCSS is in progress.
    pub fn load(&self, esys: &EpochSys) -> u64 {
        loop {
            let cur = self.0.load(Ordering::SeqCst);
            if !is_marked(cur) {
                return cur >> 1;
            }
            self.help(esys, cur);
        }
    }

    /// Plain store; only safe during single-threaded initialization.
    pub fn store_unsync(&self, v: u64) {
        debug_assert!(v < 1 << 62);
        self.0.store(v << 1, Ordering::SeqCst);
    }

    /// Plain (unverified) CAS, used for helper actions that are not
    /// linearization points — e.g. swinging a Michael–Scott tail pointer.
    /// Helps any in-flight DCSS first. Returns `true` on success.
    pub fn cas_plain(&self, esys: &EpochSys, old: u64, new: u64) -> bool {
        debug_assert!(old < 1 << 62 && new < 1 << 62);
        loop {
            let cur = self.0.load(Ordering::SeqCst);
            if is_marked(cur) {
                self.help(esys, cur);
                continue;
            }
            if cur != old << 1 {
                return false;
            }
            match self
                .0
                .compare_exchange_weak(cur, new << 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(_) => continue,
            }
        }
    }

    /// `CAS_verify`: atomically replaces `old` with `new` **iff** the epoch
    /// clock still equals the operation's epoch. On success the operation
    /// may be said to have linearized while the clock held `g.epoch()`.
    pub fn cas_verify(
        &self,
        esys: &EpochSys,
        g: &OpGuard<'_>,
        old: u64,
        new: u64,
    ) -> Result<(), CasVerifyError> {
        debug_assert!(old < 1 << 62 && new < 1 << 62);
        let idx = my_desc_idx();
        let d = &arena().descs[idx];

        // Publish a fresh descriptor generation (seqlock-style).
        // ord(relaxed): only this thread writes `seq`; helpers validate it.
        let s = d.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s % 2, 0);
        // ord(publish): odd marker must precede the field rewrites below.
        d.seq.store(s + 1, Ordering::Release);
        // ord(relaxed): field writes are ordered by the final `seq` publish.
        d.cell.store(self as *const _ as usize, Ordering::Relaxed);
        // ord(relaxed): ordered by the final `seq` publish.
        d.old.store(old << 1, Ordering::Relaxed);
        // ord(relaxed): ordered by the final `seq` publish.
        d.new.store(new << 1, Ordering::Relaxed);
        // ord(relaxed): ordered by the final `seq` publish.
        d.epoch.store(g.epoch(), Ordering::Relaxed);
        let s2 = s + 2;
        // ord(relaxed): ordered by the final `seq` publish.
        d.decision.store((s2 << 2) | UNDECIDED, Ordering::Relaxed);
        // ord(publish): makes the descriptor fields visible to helpers that
        // acquire-load `seq` after seeing the marked cell word.
        d.seq
            .store(s2, weaken("dcss.desc.publish", Ordering::Release));

        let marked = mark(idx, s2);

        // Install the descriptor.
        loop {
            let cur = self.0.load(Ordering::SeqCst);
            if is_marked(cur) {
                self.help(esys, cur);
                continue;
            }
            if cur != old << 1 {
                return Err(CasVerifyError::Conflict(cur >> 1));
            }
            match self
                .0
                .compare_exchange_weak(cur, marked, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(_) => continue,
            }
        }

        // Verify the epoch and decide.
        let ok = esys.curr_epoch() == g.epoch();
        let want = if ok { SUCCEEDED } else { FAILED };
        let _ = d.decision.compare_exchange(
            (s2 << 2) | UNDECIDED,
            (s2 << 2) | want,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        let outcome = d.decision.load(Ordering::SeqCst) & 0b11;

        // Detach the descriptor.
        let final_word = if outcome == SUCCEEDED {
            new << 1
        } else {
            old << 1
        };
        let _ = self
            .0
            .compare_exchange(marked, final_word, Ordering::SeqCst, Ordering::SeqCst);

        if outcome == SUCCEEDED {
            Ok(())
        } else {
            Err(CasVerifyError::Epoch(EpochChanged {
                op_epoch: g.epoch(),
                current_epoch: esys.curr_epoch(),
            }))
        }
    }

    /// Helps the DCSS whose descriptor is encoded in `word` to completion.
    fn help(&self, esys: &EpochSys, word: u64) {
        let (idx, seq) = unmark(word);
        let d = &arena().descs[idx];
        // Seqlock read of the descriptor fields.
        // ord(acquire): pairs with the owner's `seq` publish; the SeqCst
        // install CAS on the cell already ordered the fields, but the seq
        // validation below needs its own edge for the recycled case.
        let old = d.old.load(Ordering::Acquire);
        // ord(acquire): see above.
        let new = d.new.load(Ordering::Acquire);
        // ord(acquire): see above.
        let epoch = d.epoch.load(Ordering::Acquire);
        // ord(acquire): pairs with the Release `seq` publish.
        if d.seq.load(Ordering::Acquire) != seq {
            // Owner finished and recycled; the mark will be gone on re-read.
            return;
        }
        let ok = esys.curr_epoch() == epoch;
        let want = if ok { SUCCEEDED } else { FAILED };
        let _ = d.decision.compare_exchange(
            (seq << 2) | UNDECIDED,
            (seq << 2) | want,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        let decision = d.decision.load(Ordering::SeqCst);
        if decision >> 2 != seq {
            return; // recycled since
        }
        let final_word = if decision & 0b11 == SUCCEEDED {
            new
        } else {
            old
        };
        let _ = self
            .0
            .compare_exchange(word, final_word, Ordering::SeqCst, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EsysConfig;
    use pmem::{PmemConfig, PmemPool};
    use std::sync::Arc;

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(8 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn mark_roundtrip() {
        let m = mark(513, 77);
        assert!(is_marked(m));
        assert_eq!(unmark(m), (513, 77));
        assert!(!is_marked(42 << 1));
    }

    #[test]
    fn cas_verify_succeeds_in_stable_epoch() {
        let s = sys();
        let tid = s.register_thread();
        let cell = VerifyCell::new(5);
        let g = s.begin_op(tid);
        cell.cas_verify(&s, &g, 5, 6).unwrap();
        assert_eq!(cell.load(&s), 6);
    }

    #[test]
    fn cas_verify_reports_conflict() {
        let s = sys();
        let tid = s.register_thread();
        let cell = VerifyCell::new(5);
        let g = s.begin_op(tid);
        match cell.cas_verify(&s, &g, 4, 6) {
            Err(CasVerifyError::Conflict(v)) => assert_eq!(v, 5),
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(cell.load(&s), 5, "failed CAS must not change the cell");
    }

    #[test]
    fn cas_verify_fails_after_epoch_advance() {
        let s = sys();
        let tid = s.register_thread();
        let cell = VerifyCell::new(5);
        let g = s.begin_op(tid);
        s.advance_epoch(); // op is in epoch e, clock now e+1
        match cell.cas_verify(&s, &g, 5, 6) {
            Err(CasVerifyError::Epoch(_)) => {}
            other => panic!("expected epoch failure, got {other:?}"),
        }
        assert_eq!(cell.load(&s), 5, "epoch-failed CAS must not take effect");
    }

    #[test]
    fn sequential_reuse_of_descriptor() {
        let s = sys();
        let tid = s.register_thread();
        let cell = VerifyCell::new(0);
        for i in 0..100u64 {
            let g = s.begin_op(tid);
            cell.cas_verify(&s, &g, i, i + 1).unwrap();
        }
        assert_eq!(cell.load(&s), 100);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let s = sys();
        let cell = Arc::new(VerifyCell::new(0));
        let mut handles = vec![];
        const PER: u64 = 2000;
        for _ in 0..4 {
            let s = s.clone();
            let cell = cell.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut done = 0;
                while done < PER {
                    let g = s.begin_op(tid);
                    let cur = cell.load(&s);
                    if cell.cas_verify(&s, &g, cur, cur + 1).is_ok() {
                        done += 1;
                    }
                }
            }));
        }
        // Advance epochs while they contend, to exercise epoch failures.
        for _ in 0..20 {
            s.advance_epoch();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load(&s), 4 * PER);
    }
}
