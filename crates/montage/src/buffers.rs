//! Per-thread `to_persist` and `to_free` containers for the four most recent
//! epochs, indexed by `epoch % 4` (paper Fig. 3).
//!
//! `to_persist` is the per-thread **circular write-back buffer** of Sec. 5.2:
//! a bounded ring of payload extents; pushing into a full ring writes the
//! oldest entry back incrementally ("when these buffers overflow, the oldest
//! entries are written back incrementally"). The background advancer drains
//! whatever remains at the epoch boundary.
//!
//! Each thread's containers sit behind a single small mutex: the owner takes
//! it briefly on every `set`/`PNEW`, the advancer at epoch boundaries, and a
//! `sync` caller when helping. The paper's implementation uses bespoke
//! lock-free rings; a per-thread uncontended mutex has the same scaling
//! behaviour at our thread counts and keeps draining trivially race-free.

use std::collections::VecDeque;

use parking_lot::Mutex;
use pmem::{PmemPool, POff};

use crate::payload::Header;

/// A payload extent to write back: block offset + total length (header+data).
pub type PersistEntry = (POff, u32);

/// One epoch bucket of the circular write-back buffer.
#[derive(Debug, Default)]
struct PersistBucket {
    /// Which epoch this bucket currently holds entries for.
    epoch: u64,
    ring: VecDeque<PersistEntry>,
}

/// One epoch bucket of retired payloads awaiting reclamation.
#[derive(Debug, Default)]
struct FreeBucket {
    epoch: u64,
    blocks: Vec<POff>,
}

/// All buffered state of one thread.
#[derive(Debug, Default)]
pub struct ThreadBuffers {
    persist: [PersistBucket; 4],
    free: [FreeBucket; 4],
}

/// Per-thread buffer sets for every registered thread.
pub struct Buffers {
    threads: Box<[Mutex<ThreadBuffers>]>,
    capacity: usize,
}

impl Buffers {
    pub fn new(max_threads: usize, capacity: usize) -> Self {
        Buffers {
            threads: (0..max_threads).map(|_| Mutex::default()).collect(),
            capacity: capacity.max(1),
        }
    }

    /// Ring capacity per bucket.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records that the payload at `blk` (of `len` bytes including header)
    /// was created or modified in `epoch` by thread `tid`. If the ring is
    /// full, the oldest entry is written back (no fence) before inserting.
    ///
    /// Returns the minimum epoch for which this thread still holds
    /// unpersisted entries (for the mindicator).
    pub fn push_persist(&self, pool: &PmemPool, tid: usize, epoch: u64, blk: POff, len: u32) -> u64 {
        let mut t = self.threads[tid].lock();
        let cap = self.capacity;
        let b = &mut t.persist[(epoch % 4) as usize];
        debug_assert!(
            b.ring.is_empty() || b.epoch == epoch,
            "persist bucket reused before being drained (epoch {} vs {})",
            b.epoch,
            epoch
        );
        b.epoch = epoch;
        if b.ring.len() >= cap {
            let (o, l) = b.ring.pop_front().unwrap();
            pool.clwb_range(o, l as usize);
        }
        b.ring.push_back((blk, len));
        min_pending_epoch(&t)
    }

    /// Writes back (without fencing) all of thread `tid`'s entries for
    /// `epoch`. Returns the thread's new minimum pending epoch.
    pub fn drain_persist(&self, pool: &PmemPool, tid: usize, epoch: u64) -> u64 {
        let mut t = self.threads[tid].lock();
        let b = &mut t.persist[(epoch % 4) as usize];
        if b.epoch == epoch {
            for &(o, l) in &b.ring {
                pool.clwb_range(o, l as usize);
            }
            b.ring.clear();
        }
        min_pending_epoch(&t)
    }

    /// Writes back all of `tid`'s entries for every epoch `<= epoch`.
    pub fn drain_persist_upto(&self, pool: &PmemPool, tid: usize, epoch: u64) -> u64 {
        let mut t = self.threads[tid].lock();
        for b in t.persist.iter_mut() {
            if b.epoch <= epoch && !b.ring.is_empty() {
                for &(o, l) in &b.ring {
                    pool.clwb_range(o, l as usize);
                }
                b.ring.clear();
            }
        }
        min_pending_epoch(&t)
    }

    /// Schedules block `blk` (retired in `epoch`) for reclamation two epochs
    /// later.
    pub fn push_free(&self, tid: usize, epoch: u64, blk: POff) {
        let mut t = self.threads[tid].lock();
        let b = &mut t.free[(epoch % 4) as usize];
        debug_assert!(
            b.blocks.is_empty() || b.epoch == epoch,
            "free bucket reused before being drained"
        );
        b.epoch = epoch;
        b.blocks.push(blk);
    }

    /// Reclaims thread `tid`'s retirements for `epoch`: tombstones each
    /// block header (scheduling the line for write-back, so the sweep can
    /// never resurrect it) and returns the blocks for deallocation. The
    /// caller fences and deallocates.
    pub fn take_free(&self, pool: &PmemPool, tid: usize, epoch: u64) -> Vec<POff> {
        let mut t = self.threads[tid].lock();
        let b = &mut t.free[(epoch % 4) as usize];
        if b.epoch != epoch || b.blocks.is_empty() {
            return Vec::new();
        }
        let blocks = std::mem::take(&mut b.blocks);
        for &blk in &blocks {
            Header::tombstone(pool, blk);
            pool.clwb(blk);
        }
        blocks
    }

    /// Like [`Buffers::take_free`] but for all epochs `<= epoch` (worker-
    /// local reclamation in `BEGIN_OP`).
    pub fn take_free_upto(&self, pool: &PmemPool, tid: usize, epoch: u64) -> Vec<POff> {
        let mut t = self.threads[tid].lock();
        let mut out = Vec::new();
        for b in t.free.iter_mut() {
            if b.epoch <= epoch && !b.blocks.is_empty() {
                for blk in b.blocks.drain(..) {
                    Header::tombstone(pool, blk);
                    pool.clwb(blk);
                    out.push(blk);
                }
            }
        }
        out
    }

    /// Minimum epoch with unpersisted entries across **this thread's**
    /// buckets ([`u64::MAX`] if none) — used to seed the mindicator.
    pub fn min_pending(&self, tid: usize) -> u64 {
        min_pending_epoch(&self.threads[tid].lock())
    }
}

fn min_pending_epoch(t: &ThreadBuffers) -> u64 {
    t.persist
        .iter()
        .filter(|b| !b.ring.is_empty())
        .map(|b| b.epoch)
        .min()
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PmemConfig::default())
    }

    #[test]
    fn push_then_drain_flushes_everything() {
        let p = pool();
        let b = Buffers::new(2, 8);
        for i in 0..5u64 {
            b.push_persist(&p, 0, 10, POff::new(4096 + i * 128), 64);
        }
        let before = p.stats().snapshot().0;
        b.drain_persist(&p, 0, 10);
        let after = p.stats().snapshot().0;
        assert_eq!(after - before, 5, "five single-line payloads flushed");
        assert_eq!(b.min_pending(0), u64::MAX);
    }

    #[test]
    fn overflow_writes_back_oldest_incrementally() {
        let p = pool();
        let b = Buffers::new(1, 2);
        b.push_persist(&p, 0, 4, POff::new(4096), 64);
        b.push_persist(&p, 0, 4, POff::new(8192), 64);
        assert_eq!(p.stats().snapshot().0, 0, "no flush below capacity");
        b.push_persist(&p, 0, 4, POff::new(12288), 64);
        assert_eq!(p.stats().snapshot().0, 1, "overflow flushes the oldest entry");
    }

    #[test]
    fn min_pending_tracks_oldest_epoch() {
        let p = pool();
        let b = Buffers::new(1, 8);
        assert_eq!(b.min_pending(0), u64::MAX);
        b.push_persist(&p, 0, 9, POff::new(4096), 64);
        b.push_persist(&p, 0, 10, POff::new(8192), 64);
        assert_eq!(b.min_pending(0), 9);
        b.drain_persist(&p, 0, 9);
        assert_eq!(b.min_pending(0), 10);
    }

    #[test]
    fn drain_upto_spans_buckets() {
        let p = pool();
        let b = Buffers::new(1, 8);
        b.push_persist(&p, 0, 9, POff::new(4096), 64);
        b.push_persist(&p, 0, 10, POff::new(8192), 64);
        let min = b.drain_persist_upto(&p, 0, 10);
        assert_eq!(min, u64::MAX);
    }

    #[test]
    fn take_free_tombstones_blocks() {
        let p = pool();
        let b = Buffers::new(1, 8);
        let blk = POff::new(4096);
        Header::write_new(&p, blk, crate::payload::PayloadKind::Alloc, 0, 7, 1, 8);
        b.push_free(0, 7, blk);
        assert!(b.take_free(&p, 0, 6).is_empty(), "wrong epoch yields nothing");
        let freed = b.take_free(&p, 0, 7);
        assert_eq!(freed, vec![blk]);
        assert_eq!(Header::magic(&p, blk), crate::payload::MAGIC_TOMBSTONE);
        assert!(b.take_free(&p, 0, 7).is_empty(), "drained bucket is empty");
    }

    #[test]
    fn buckets_are_per_thread() {
        let p = pool();
        let b = Buffers::new(2, 8);
        b.push_persist(&p, 0, 4, POff::new(4096), 64);
        assert_eq!(b.min_pending(1), u64::MAX);
        assert_eq!(b.min_pending(0), 4);
    }
}
