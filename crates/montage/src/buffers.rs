//! Per-thread `to_persist` and `to_free` containers for the four most recent
//! epochs, indexed by `epoch % 4` (paper Fig. 3).
//!
//! `to_persist` is the per-thread **circular write-back buffer** of Sec. 5.2,
//! implemented — as in the paper — as a bespoke lock-free ring: a fixed-
//! capacity array of slots with a sequence-number protocol (single owner
//! producer, stealing consumers). The owner pushes without any lock or heap
//! allocation; the background advancer and helping `sync` callers steal
//! entries at epoch boundaries by CASing the ring head. Pushing into a full
//! ring writes the oldest entry back incrementally ("when these buffers
//! overflow, the oldest entries are written back incrementally").
//!
//! ## Steal protocol
//!
//! Each slot carries a sequence number. For ring capacity `C` and a
//! monotonically increasing global index `i`:
//!
//! * a slot at position `i % C` is free for the owner's push `i` when its
//!   sequence equals `i`; the owner writes the entry and publishes it by
//!   storing sequence `i + 1` (Release), then advances `tail`;
//! * a consumer at head `h` may take the slot once its sequence is `h + 1`;
//!   it claims the entry by CASing `head` from `h` to `h + 1` and then frees
//!   the slot by CASing sequence `h + 1` to `h + C`.
//!
//! Entries are therefore consumed exactly once even with multiple concurrent
//! drainers, and the owner never blocks: if a push finds its slot claimed by
//! a preempted consumer (head has passed the previous occupant, but the
//! release CAS is still pending), the owner completes the release itself —
//! both release CASes target the same value, so the loser's failure is
//! benign and the slot is free either way.
//!
//! ## Epoch discipline (why concurrent push/drain is safe)
//!
//! A bucket only ever holds entries of a single epoch `E` at a time. Owners
//! push into bucket `E % 4` only while registered in epoch `E`; drainers only
//! drain epochs that are quiescent (`advance_epoch` waits on the tracker
//! before draining `e − 1`; `BEGIN_OP` helping drains the owner's *own* older
//! buckets). Bucket reuse at `E + 4` happens only after the drain of `E`
//! completed, ordered by the epoch clock (SeqCst store in `advance_epoch`,
//! SeqCst load in `BEGIN_OP`).
//!
//! ## Crash consistency: the drain rendezvous
//!
//! Crash consistency rests on one rule: **every entry popped from a ring has
//! its `clwb` issued before the epoch-boundary fence that declares its epoch
//! durable**. A pop makes the entry invisible *before* the popper issues the
//! `clwb`, so ring emptiness alone must not be taken as "all written back":
//! a drainer preempted between its claim-CAS and its `clwb` would otherwise
//! let `advance_epoch` see empty rings, fence, and publish the advanced
//! clock while lines are still unflushed. Two mechanisms close that window:
//!
//! * every drain pass ([`Buffers::drain_persist`] /
//!   [`Buffers::drain_persist_upto`]) advertises itself in a per-thread
//!   `drainers` counter from before its first pop until after its last
//!   `clwb`; `advance_epoch` calls [`Buffers::wait_drainers`] after its ring
//!   scan and **before** the boundary fence, so a stalled drainer's pending
//!   write-backs are always waited out (the counter decrement is `Release`,
//!   the wait's load `Acquire`, ordering the `clwb` side effects before the
//!   fence);
//! * the overflow pop in [`Buffers::push_persist`] needs no counter: the
//!   owner performs it while registered in the entry's (current) epoch, and
//!   the boundary that will declare that epoch durable first waits for the
//!   owner to unregister (tracker quiescence), which orders the inline
//!   `clwb` before that fence.
//!
//! ## Flush coalescing
//!
//! N in-place `set`s of one hot payload within an epoch used to enqueue N
//! identical extents, issuing N redundant `clwb`s at the boundary. A small
//! per-thread, epoch-tagged dedup table now recognises a push whose cache-
//! line extent is already covered by a resident ring entry of the same epoch
//! and skips it. Entries need no eager clearing: an epoch mismatch
//! invalidates them implicitly. The one place an explicit invalidation is
//! required is the overflow pop — it removes a *same-epoch* entry from the
//! ring, so any table entry anchored at that extent must die with it,
//! otherwise a later covered push would be skipped with no resident entry
//! left to flush it at the boundary.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use pmem::{line_of, POff, PmemPool};

use crate::payload::Header;

/// A payload extent to write back: block offset + total length (header+data).
pub type PersistEntry = (POff, u32);

/// Number of direct-mapped coalescing-table slots per thread (power of two).
const DEDUP_SLOTS: usize = 128;

/// Epoch value that never matches a real epoch (real epochs start at
/// [`crate::FIRST_EPOCH`]); used for invalidated dedup entries.
const DEDUP_DEAD: u64 = 0;

/// One slot of a lock-free ring.
struct Slot {
    seq: AtomicUsize,
    off: AtomicU64,
    len: AtomicU32,
}

/// Fixed-capacity single-producer / multi-consumer ring of `(off, len)`
/// pairs. See the module docs for the sequence protocol.
struct Ring {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            slots: (0..capacity)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    off: AtomicU64::new(0),
                    len: AtomicU32::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        // tail is read first: seeing head ≥ tail with a stale tail can only
        // under-report emptiness transiently, never invent entries.
        let t = self.tail.load(Ordering::Acquire);
        self.head.load(Ordering::Acquire) >= t
    }

    /// Owner-only push. Returns `Err(())` when the ring is full.
    fn push(&self, off: u64, len: u32) -> Result<(), ()> {
        let cap = self.capacity();
        let t = self.tail.load(Ordering::Relaxed);
        if t - self.head.load(Ordering::Acquire) >= cap {
            return Err(());
        }
        let slot = &self.slots[t % cap];
        // head has passed index t - cap, so the previous occupant's consumer
        // won its claim-CAS; if that consumer was preempted before its
        // release, complete the release on its behalf instead of waiting —
        // the push must not block on another thread's progress. Both release
        // CASes write the same value (t = (t - cap) + cap), so whichever
        // side loses simply finds the slot already free.
        loop {
            let s = slot.seq.load(Ordering::Acquire);
            if s == t {
                break;
            }
            debug_assert!(
                t + 1 >= cap && s == t + 1 - cap,
                "slot seq {s} is neither free ({t}) nor claimed ({})",
                t.wrapping_add(1).wrapping_sub(cap)
            );
            if slot
                .seq
                .compare_exchange(s, t, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        slot.off.store(off, Ordering::Relaxed);
        slot.len.store(len, Ordering::Relaxed);
        slot.seq.store(t + 1, Ordering::Release);
        self.tail.store(t + 1, Ordering::Release);
        Ok(())
    }

    /// Multi-consumer pop (steal). Returns `None` when the ring is empty.
    fn pop(&self) -> Option<(u64, u32)> {
        loop {
            let h = self.head.load(Ordering::Acquire);
            let t = self.tail.load(Ordering::Acquire);
            if h >= t {
                return None;
            }
            let slot = &self.slots[h % self.capacity()];
            if slot.seq.load(Ordering::Acquire) != h + 1 {
                // A racing consumer already claimed index h; re-read head.
                continue;
            }
            let off = slot.off.load(Ordering::Relaxed);
            let len = slot.len.load(Ordering::Relaxed);
            if self
                .head
                .compare_exchange(h, h + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // Winning the CAS proves nobody consumed index h before us,
                // so (off, len) read above belong to index h. The release is
                // a CAS because the owner may have completed it for us (see
                // push); a failure means the slot was already recycled.
                let _ = slot.seq.compare_exchange(
                    h + 1,
                    h + self.capacity(),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                return Some((off, len));
            }
        }
    }
}

/// One direct-mapped coalescing-table entry: "a resident ring entry of
/// `epoch` covers cache lines `[first, last]`". Owner-only access; atomics
/// are used purely so the table can live behind `&self`.
struct DedupEntry {
    epoch: AtomicU64,
    first: AtomicU64,
    last: AtomicU64,
}

/// One epoch bucket of the circular write-back buffer.
struct PersistBucket {
    /// Which epoch this bucket currently holds entries for.
    epoch: AtomicU64,
    ring: Ring,
}

/// One epoch bucket of retired payloads awaiting reclamation. The ring is
/// the steady-state path; `spill` absorbs overflow (heap allocation only in
/// pathological epochs with more retirements than ring capacity).
struct FreeBucket {
    epoch: AtomicU64,
    ring: Ring,
    spill: Mutex<Vec<u64>>,
}

/// All buffered state of one thread.
struct ThreadState {
    persist: [PersistBucket; 4],
    free: [FreeBucket; 4],
    dedup: Box<[DedupEntry]>,
    /// Line flushes avoided by coalescing (owner-written, exact).
    coalesced: AtomicU64,
    /// Drain passes currently between their first pop and their last issued
    /// `clwb`. The epoch advancer spins this to zero before its boundary
    /// fence (see the module docs on the drain rendezvous).
    drainers: AtomicUsize,
}

impl ThreadState {
    fn new(capacity: usize) -> ThreadState {
        ThreadState {
            persist: std::array::from_fn(|_| PersistBucket {
                epoch: AtomicU64::new(0),
                ring: Ring::new(capacity),
            }),
            free: std::array::from_fn(|_| FreeBucket {
                epoch: AtomicU64::new(0),
                ring: Ring::new(capacity),
                spill: Mutex::new(Vec::new()),
            }),
            dedup: (0..DEDUP_SLOTS)
                .map(|_| DedupEntry {
                    epoch: AtomicU64::new(DEDUP_DEAD),
                    first: AtomicU64::new(0),
                    last: AtomicU64::new(0),
                })
                .collect(),
            coalesced: AtomicU64::new(0),
            drainers: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn dedup_at(&self, first_line: u64) -> &DedupEntry {
        let idx = (first_line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize;
        &self.dedup[idx & (DEDUP_SLOTS - 1)]
    }
}

/// Per-thread buffer sets for every registered thread.
pub struct Buffers {
    threads: Box<[CachePadded<ThreadState>]>,
    capacity: usize,
}

impl Buffers {
    pub fn new(max_threads: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Buffers {
            threads: (0..max_threads)
                .map(|_| CachePadded::new(ThreadState::new(capacity)))
                .collect(),
            capacity,
        }
    }

    /// Ring capacity per bucket.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records that the payload at `blk` (of `len` bytes including header)
    /// was created or modified in `epoch` by thread `tid`. Owner-only; never
    /// locks or allocates. If the push's cache-line extent is already covered
    /// by a same-epoch ring entry it is coalesced away entirely; if the ring
    /// is full, the oldest entry is written back (no fence) before inserting.
    ///
    /// Returns the minimum epoch for which this thread still holds
    /// unpersisted entries (for the mindicator).
    pub fn push_persist(
        &self,
        pool: &PmemPool,
        tid: usize,
        epoch: u64,
        blk: POff,
        len: u32,
    ) -> u64 {
        let st = &self.threads[tid];
        let first = line_of(blk.raw());
        let last = line_of(blk.raw() + u64::from(len.max(1)) - 1);

        // Coalescing: a same-epoch resident entry already covers this extent,
        // so its boundary clwb_range subsumes ours.
        let d = st.dedup_at(first);
        if d.epoch.load(Ordering::Relaxed) == epoch
            && d.first.load(Ordering::Relaxed) == first
            && d.last.load(Ordering::Relaxed) >= last
        {
            st.coalesced.fetch_add(last - first + 1, Ordering::Relaxed);
            return self.min_pending(tid);
        }

        let b = &st.persist[(epoch % 4) as usize];
        debug_assert!(
            b.ring.is_empty() || b.epoch.load(Ordering::Relaxed) == epoch,
            "persist bucket reused before being drained (epoch {} vs {})",
            b.epoch.load(Ordering::Relaxed),
            epoch
        );
        b.epoch.store(epoch, Ordering::Release);
        while b.ring.push(blk.raw(), len).is_err() {
            // Full: write back the oldest entry incrementally. The popped
            // entry leaves this same-epoch bucket, so kill any coalescing
            // promise anchored at its extent (see module docs).
            if let Some((o, l)) = b.ring.pop() {
                // lint: allow(flush-no-fence): drains only write back; the epoch-boundary sfence in advance_epoch makes them durable
                pool.clwb_range(POff::new(o), l as usize);
                let od = st.dedup_at(line_of(o));
                if od.epoch.load(Ordering::Relaxed) == epoch
                    && od.first.load(Ordering::Relaxed) == line_of(o)
                {
                    od.epoch.store(DEDUP_DEAD, Ordering::Relaxed);
                }
            }
        }
        d.first.store(first, Ordering::Relaxed);
        d.last.store(last, Ordering::Relaxed);
        d.epoch.store(epoch, Ordering::Relaxed);
        self.min_pending(tid)
    }

    /// Line flushes thread `tid` has avoided through coalescing so far
    /// (monotonic; exact when read by the owner).
    pub fn coalesced_lines(&self, tid: usize) -> u64 {
        self.threads[tid].coalesced.load(Ordering::Relaxed)
    }

    /// Writes back (without fencing) all of thread `tid`'s entries for
    /// `epoch`. Safe to call concurrently with other drainers and — for
    /// epochs the owner can no longer push into — with the owner. Returns
    /// the thread's new minimum pending epoch.
    pub fn drain_persist(&self, pool: &PmemPool, tid: usize, epoch: u64) -> u64 {
        let st = &self.threads[tid];
        let b = &st.persist[(epoch % 4) as usize];
        if !b.ring.is_empty() && b.epoch.load(Ordering::Acquire) == epoch {
            // Advertise the pass before the first pop: a pop makes an entry
            // invisible before its clwb is issued, and the advancer must be
            // able to wait out that window (module docs, drain rendezvous).
            st.drainers.fetch_add(1, Ordering::SeqCst);
            while let Some((o, l)) = b.ring.pop() {
                // lint: allow(flush-no-fence): drains only write back; the epoch-boundary sfence in advance_epoch makes them durable
                pool.clwb_range(POff::new(o), l as usize);
            }
            st.drainers.fetch_sub(1, Ordering::Release);
        }
        self.min_pending(tid)
    }

    /// Writes back all of `tid`'s entries for every epoch `<= epoch`.
    pub fn drain_persist_upto(&self, pool: &PmemPool, tid: usize, epoch: u64) -> u64 {
        let st = &self.threads[tid];
        st.drainers.fetch_add(1, Ordering::SeqCst);
        for b in st.persist.iter() {
            if !b.ring.is_empty() && b.epoch.load(Ordering::Acquire) <= epoch {
                while let Some((o, l)) = b.ring.pop() {
                    // lint: allow(flush-no-fence): drains only write back; the epoch-boundary sfence in advance_epoch makes them durable
                    pool.clwb_range(POff::new(o), l as usize);
                }
            }
        }
        st.drainers.fetch_sub(1, Ordering::Release);
        self.min_pending(tid)
    }

    /// Waits until no drain pass over thread `tid`'s persist rings is
    /// between a pop and its corresponding `clwb`. Called by the epoch
    /// advancer after its ring scan and **before** the boundary fence:
    /// together with the `Release` decrement in the drain methods this
    /// guarantees that once the fence runs, every popped entry's write-back
    /// has been issued — ring emptiness alone does not (module docs).
    pub fn wait_drainers(&self, tid: usize) {
        let mut tries = 0u32;
        while self.threads[tid].drainers.load(Ordering::Acquire) != 0 {
            // The window is a handful of instructions, so spin briefly; but
            // if the drainer was preempted mid-pass, yield the core to it
            // instead of burning the rest of our quantum.
            tries += 1;
            if tries < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Schedules block `blk` (retired in `epoch`) for reclamation two epochs
    /// later. Owner-only; allocation-free until the ring overflows.
    pub fn push_free(&self, tid: usize, epoch: u64, blk: POff) {
        let st = &self.threads[tid];
        let b = &st.free[(epoch % 4) as usize];
        debug_assert!(
            (b.ring.is_empty() && b.spill.lock().is_empty())
                || b.epoch.load(Ordering::Relaxed) == epoch,
            "free bucket reused before being drained"
        );
        b.epoch.store(epoch, Ordering::Release);
        if b.ring.push(blk.raw(), 0).is_err() {
            b.spill.lock().push(blk.raw());
        }
    }

    /// Reclaims thread `tid`'s retirements for `epoch`: tombstones each
    /// block header (scheduling the line for write-back, so the sweep can
    /// never resurrect it) and returns the blocks for deallocation. The
    /// caller fences and deallocates.
    pub fn take_free(&self, pool: &PmemPool, tid: usize, epoch: u64) -> Vec<POff> {
        let st = &self.threads[tid];
        let b = &st.free[(epoch % 4) as usize];
        if b.epoch.load(Ordering::Acquire) != epoch {
            return Vec::new();
        }
        Self::drain_free_bucket(pool, b)
    }

    /// Like [`Buffers::take_free`] but for all epochs `<= epoch` (worker-
    /// local reclamation in `BEGIN_OP`).
    pub fn take_free_upto(&self, pool: &PmemPool, tid: usize, epoch: u64) -> Vec<POff> {
        let st = &self.threads[tid];
        let mut out = Vec::new();
        for b in st.free.iter() {
            if b.epoch.load(Ordering::Acquire) <= epoch {
                out.extend(Self::drain_free_bucket(pool, b));
            }
        }
        out
    }

    fn drain_free_bucket(pool: &PmemPool, b: &FreeBucket) -> Vec<POff> {
        let mut blocks = Vec::new();
        while let Some((o, _)) = b.ring.pop() {
            blocks.push(POff::new(o));
        }
        {
            let mut spill = b.spill.lock();
            blocks.extend(spill.drain(..).map(POff::new));
        }
        for &blk in &blocks {
            Header::tombstone(pool, blk);
            // lint: allow(flush-no-fence): tombstone write-backs ride the epoch-boundary sfence, like the persist drains
            pool.clwb(blk);
        }
        blocks
    }

    /// Minimum epoch with unpersisted entries across **this thread's**
    /// buckets ([`u64::MAX`] if none). Lock-free exact scan: 4 buckets × a
    /// handful of atomic loads — cheap enough to be the authoritative gate
    /// in `advance_epoch` (the mindicator remains a monotone hint).
    pub fn min_pending(&self, tid: usize) -> u64 {
        self.threads[tid]
            .persist
            .iter()
            .filter(|b| !b.ring.is_empty())
            .map(|b| b.epoch.load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PmemConfig::default())
    }

    #[test]
    fn push_then_drain_flushes_everything() {
        let p = pool();
        let b = Buffers::new(2, 8);
        for i in 0..5u64 {
            b.push_persist(&p, 0, 10, POff::new(4096 + i * 128), 64);
        }
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 10);
        let after = p.stats().snapshot().clwbs;
        assert_eq!(after - before, 5, "five single-line payloads flushed");
        assert_eq!(b.min_pending(0), u64::MAX);
    }

    #[test]
    fn overflow_writes_back_oldest_incrementally() {
        let p = pool();
        let b = Buffers::new(1, 2);
        b.push_persist(&p, 0, 4, POff::new(4096), 64);
        b.push_persist(&p, 0, 4, POff::new(8192), 64);
        assert_eq!(p.stats().snapshot().clwbs, 0, "no flush below capacity");
        b.push_persist(&p, 0, 4, POff::new(12288), 64);
        assert_eq!(
            p.stats().snapshot().clwbs,
            1,
            "overflow flushes the oldest entry"
        );
    }

    #[test]
    fn min_pending_tracks_oldest_epoch() {
        let p = pool();
        let b = Buffers::new(1, 8);
        assert_eq!(b.min_pending(0), u64::MAX);
        b.push_persist(&p, 0, 9, POff::new(4096), 64);
        b.push_persist(&p, 0, 10, POff::new(8192), 64);
        assert_eq!(b.min_pending(0), 9);
        b.drain_persist(&p, 0, 9);
        assert_eq!(b.min_pending(0), 10);
    }

    #[test]
    fn drain_upto_spans_buckets() {
        let p = pool();
        let b = Buffers::new(1, 8);
        b.push_persist(&p, 0, 9, POff::new(4096), 64);
        b.push_persist(&p, 0, 10, POff::new(8192), 64);
        let min = b.drain_persist_upto(&p, 0, 10);
        assert_eq!(min, u64::MAX);
    }

    #[test]
    fn take_free_tombstones_blocks() {
        let p = pool();
        let b = Buffers::new(1, 8);
        let blk = POff::new(4096);
        Header::write_new(&p, blk, crate::payload::PayloadKind::Alloc, 0, 7, 1, 8);
        b.push_free(0, 7, blk);
        assert!(
            b.take_free(&p, 0, 6).is_empty(),
            "wrong epoch yields nothing"
        );
        let freed = b.take_free(&p, 0, 7);
        assert_eq!(freed, vec![blk]);
        assert_eq!(Header::magic(&p, blk), crate::payload::MAGIC_TOMBSTONE);
        assert!(b.take_free(&p, 0, 7).is_empty(), "drained bucket is empty");
    }

    #[test]
    fn buckets_are_per_thread() {
        let p = pool();
        let b = Buffers::new(2, 8);
        b.push_persist(&p, 0, 4, POff::new(4096), 64);
        assert_eq!(b.min_pending(1), u64::MAX);
        assert_eq!(b.min_pending(0), 4);
    }

    #[test]
    fn repeated_same_extent_pushes_coalesce_to_one_flush() {
        let p = pool();
        let b = Buffers::new(1, 8);
        for _ in 0..6 {
            b.push_persist(&p, 0, 4, POff::new(4096), 64);
        }
        assert_eq!(b.coalesced_lines(0), 5, "five of six pushes coalesced");
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 4);
        assert_eq!(
            p.stats().snapshot().clwbs - before,
            1,
            "one clwb covers all six"
        );
    }

    #[test]
    fn smaller_covered_extent_coalesces_larger_does_not() {
        let p = pool();
        let b = Buffers::new(1, 8);
        // 3-line entry, then a 1-line re-push of its first line: covered.
        b.push_persist(&p, 0, 4, POff::new(4096), 192);
        b.push_persist(&p, 0, 4, POff::new(4096), 8);
        assert_eq!(b.coalesced_lines(0), 1);
        // Growing the extent is NOT covered and must enqueue.
        b.push_persist(&p, 0, 4, POff::new(4096), 256);
        assert_eq!(b.coalesced_lines(0), 1);
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 4);
        // Entry 1 (3 lines) + entry 3 (4 lines).
        assert_eq!(p.stats().snapshot().clwbs - before, 7);
    }

    #[test]
    fn coalescing_is_epoch_scoped() {
        let p = pool();
        let b = Buffers::new(1, 8);
        b.push_persist(&p, 0, 4, POff::new(4096), 64);
        b.drain_persist(&p, 0, 4);
        // Same extent, next epoch: the old ring entry is gone, so this push
        // must enqueue again (the table entry's epoch tag misses).
        b.push_persist(&p, 0, 5, POff::new(4096), 64);
        assert_eq!(b.coalesced_lines(0), 0);
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 5);
        assert_eq!(p.stats().snapshot().clwbs - before, 1);
    }

    #[test]
    fn overflow_pop_invalidates_coalescing_entry() {
        let p = pool();
        let b = Buffers::new(1, 2);
        let hot = POff::new(4096);
        b.push_persist(&p, 0, 4, hot, 64);
        b.push_persist(&p, 0, 4, POff::new(8192), 64);
        // Overflow pops `hot` (the oldest) and writes it back early...
        b.push_persist(&p, 0, 4, POff::new(12288), 64);
        assert_eq!(p.stats().snapshot().clwbs, 1);
        // ...so a new same-epoch push of `hot` must NOT coalesce against the
        // now-dead entry: it must re-enter the ring to reach the boundary.
        b.push_persist(&p, 0, 4, hot, 64);
        assert_eq!(
            b.coalesced_lines(0),
            0,
            "stale table entry must not coalesce"
        );
        // That re-push overflows again, writing back 8192's entry.
        assert_eq!(p.stats().snapshot().clwbs, 2);
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 4);
        assert_eq!(
            p.stats().snapshot().clwbs - before,
            2,
            "12288 and the re-pushed hot line"
        );
    }

    #[test]
    fn steady_state_push_does_not_allocate_or_lock() {
        // Indirect check: a full epoch of pushes + drain round-trips with the
        // ring staying within its fixed capacity (overflow pops included).
        let p = pool();
        let b = Buffers::new(1, 4);
        for round in 0..100u64 {
            let e = 4 + round;
            for i in 0..16u64 {
                b.push_persist(&p, 0, e, POff::new(4096 + i * 64), 64);
            }
            b.drain_persist(&p, 0, e);
            assert_eq!(b.min_pending(0), u64::MAX);
        }
        // 16 distinct lines per round: 12 overflow + 4 drained = 16 clwbs.
        assert_eq!(p.stats().snapshot().clwbs, 1600);
    }

    #[test]
    fn concurrent_drainers_consume_each_entry_exactly_once() {
        use std::sync::atomic::AtomicU64 as A64;
        use std::sync::Arc;

        let p = pool();
        let b = Arc::new(Buffers::new(1, 256));
        const ROUNDS: u64 = 60;
        const PER_ROUND: u64 = 200;
        // The owner fills epoch e and publishes the round; two stealing
        // drainers race to drain every completed epoch, like the advancer
        // and a helping sync caller would.
        let done_round = Arc::new(A64::new(0));
        std::thread::scope(|s| {
            {
                let b = b.clone();
                let p = p.clone();
                let done_round = done_round.clone();
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        let e = 4 + r;
                        // The epoch clock only reaches e after e-4 was
                        // drained (by the advance that moved it to e-2), so
                        // an owner can never push into a bucket that still
                        // holds entries; model that constraint here.
                        while b.min_pending(0) <= e - 4 {
                            std::thread::yield_now();
                        }
                        for i in 0..PER_ROUND {
                            // Distinct lines, so every entry should clwb once.
                            b.push_persist(&p, 0, e, POff::new((1 + r * PER_ROUND + i) * 64), 64);
                        }
                        done_round.store(r + 1, std::sync::atomic::Ordering::Release);
                    }
                });
            }
            for _ in 0..2 {
                let b = b.clone();
                let p = p.clone();
                let done_round = done_round.clone();
                s.spawn(move || loop {
                    let done = done_round.load(std::sync::atomic::Ordering::Acquire);
                    // Drain only completed (quiescent) epochs, as the epoch
                    // protocol guarantees.
                    for r in 0..done {
                        b.drain_persist(&p, 0, 4 + r);
                    }
                    if done == ROUNDS {
                        break;
                    }
                    std::thread::yield_now();
                });
            }
        });
        b.drain_persist_upto(&p, 0, u64::MAX - 1);
        assert_eq!(b.min_pending(0), u64::MAX);
        // Exactly-once: ROUNDS × PER_ROUND distinct lines, one clwb each —
        // nothing lost, nothing double-flushed. (Ring capacity 256 > 200
        // per epoch means no overflow write-backs muddy the count.)
        assert_eq!(p.stats().snapshot().clwbs, ROUNDS * PER_ROUND);
    }

    #[test]
    fn ring_owner_push_completes_preempted_consumer_release() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        // Tiny ring, so the producer constantly reuses slots whose previous
        // consumer is still inside its claim→release window: the push's
        // help-release path runs hot, and the producer must never block on a
        // preempted consumer (it completes the release itself).
        let r = Arc::new(Ring::new(2));
        const N: u64 = 10_000;
        let stop = Arc::new(AtomicBool::new(false));
        // Wait loops yield rather than spin: on a single-core runner a
        // spinning waiter burns its whole quantum while the thread it waits
        // on is descheduled, turning the test pathological.
        std::thread::scope(|s| {
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let r = r.clone();
                let stop = stop.clone();
                consumers.push(s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match r.pop() {
                            Some((o, _)) => got.push(o),
                            None if stop.load(Ordering::Acquire) => break,
                            None => std::thread::yield_now(),
                        }
                    }
                    got
                }));
            }
            {
                let r = r.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    for i in 1..=N {
                        while r.push(i, 0).is_err() {
                            std::thread::yield_now();
                        }
                    }
                    stop.store(true, Ordering::Release);
                });
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (1..=N).collect::<Vec<_>>(),
                "every push popped exactly once, none lost or duplicated"
            );
        });
    }

    #[test]
    fn fence_point_sees_all_popped_entries_flushed() {
        use std::sync::atomic::{AtomicBool, AtomicU64 as A64};
        use std::sync::Arc;

        // Models the advance_epoch boundary: once the rings scan empty AND
        // wait_drainers has returned, every pushed entry's clwb must already
        // be issued. A drainer stalled between its pop and its clwb makes
        // the rings look empty early; without the rendezvous the boundary
        // fence would declare those lines durable while still unflushed.
        let p = pool();
        let b = Arc::new(Buffers::new(1, 256));
        const ROUNDS: u64 = 30;
        const PER_ROUND: u64 = 200;
        let done = Arc::new(A64::new(0)); // rounds fully pushed
        let go = Arc::new(A64::new(0)); // rounds the checker has verified
        let stop = Arc::new(AtomicBool::new(false));
        // Wait loops yield rather than spin (single-core runners).
        std::thread::scope(|s| {
            {
                // Owner: pushes one epoch's worth of distinct lines per
                // round, gated on the checker's verdict for the previous one.
                let (b, p) = (b.clone(), p.clone());
                let (done, go) = (done.clone(), go.clone());
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        while go.load(Ordering::Acquire) < r {
                            std::thread::yield_now();
                        }
                        for i in 0..PER_ROUND {
                            b.push_persist(
                                &p,
                                0,
                                4 + r,
                                POff::new((1 + r * PER_ROUND + i) * 64),
                                64,
                            );
                        }
                        done.store(r + 1, Ordering::Release);
                    }
                });
            }
            for _ in 0..2 {
                // Racing drainers (the BEGIN_OP helpers of the real system).
                let (b, p) = (b.clone(), p.clone());
                let (done, stop) = (done.clone(), stop.clone());
                s.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let d = done.load(Ordering::Acquire);
                        for r in 0..d {
                            b.drain_persist(&p, 0, 4 + r);
                        }
                        std::thread::yield_now();
                    }
                });
            }
            // Checker: plays the advancer's boundary sequence per round.
            for r in 0..ROUNDS {
                while done.load(Ordering::Acquire) < r + 1 {
                    std::thread::yield_now();
                }
                b.drain_persist_upto(&p, 0, 4 + r);
                while b.min_pending(0) != u64::MAX {
                    std::thread::yield_now();
                }
                b.wait_drainers(0);
                // Fence point: empty rings + no in-flight drain pass ⇒ every
                // line pushed so far had its clwb issued, exactly once.
                assert_eq!(p.stats().snapshot().clwbs, (r + 1) * PER_ROUND);
                go.store(r + 1, Ordering::Release);
            }
            stop.store(true, Ordering::Release);
        });
    }

    #[test]
    fn free_ring_spills_over_capacity_without_loss() {
        let p = pool();
        let b = Buffers::new(1, 2);
        let mut blks = Vec::new();
        for i in 0..10u64 {
            let blk = POff::new(4096 + i * 128);
            Header::write_new(&p, blk, crate::payload::PayloadKind::Alloc, 0, 7, i, 8);
            b.push_free(0, 7, blk);
            blks.push(blk);
        }
        let mut freed = b.take_free(&p, 0, 7);
        freed.sort();
        assert_eq!(freed, blks, "ring + spill return every block");
    }
}
