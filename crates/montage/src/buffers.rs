//! Per-thread `to_persist` and `to_free` containers for the four most recent
//! epochs, indexed by `epoch % 4` (paper Fig. 3).
//!
//! `to_persist` is the per-thread **circular write-back buffer** of Sec. 5.2,
//! implemented — as in the paper — as a bespoke lock-free ring: a fixed-
//! capacity array of slots with a sequence-number protocol (single owner
//! producer, stealing consumers). The owner pushes without any lock or heap
//! allocation; the background advancer and helping `sync` callers steal
//! entries at epoch boundaries by CASing the ring head. Pushing into a full
//! ring writes the oldest entry back incrementally ("when these buffers
//! overflow, the oldest entries are written back incrementally").
//!
//! ## Steal protocol: claim → flush → release
//!
//! Each slot carries a sequence number. For ring capacity `C` (always ≥ 2)
//! and a monotonically increasing global index `i`:
//!
//! * a slot at position `i % C` is free for the owner's push `i` when its
//!   sequence equals `i`; the owner writes the entry and publishes it by
//!   storing sequence `i + 1` (Release), then advances `tail`;
//! * a consumer at head `h` may take the slot once its sequence is `h + 1`;
//!   it claims the entry by CASing `head` from `h` to `h + 1`, **issues the
//!   entry's write-back while the slot is still in its claimed state**, and
//!   only then frees the slot by CASing sequence `h + 1` to `h + C`.
//!
//! The flush-before-release order is what makes the protocol nonblocking for
//! everyone else: a consumer parked between its claim and its release leaves
//! the slot in a *scannable* claimed state, so any helper
//! ([`Ring::help_claimed`], reached via [`Buffers::help_drainers`]) can
//! finish the write-back on its behalf and release the slot with a CAS.
//! Duplicate `clwb`s from helper/claimant races are idempotent; the release
//! CASes all write the same value, so losing one is benign.
//!
//! ### Why a helper's flush-before-release is sound
//!
//! A helper reads the claimed slot's `(off, len)` and flushes *before* its
//! validating release CAS, so it can race the slot being recycled. Three
//! facts make that safe:
//!
//! 1. values are published before `seq := i + 1` (Release) and the helper
//!    reads `seq == i + 1` first (Acquire), so it can never see values older
//!    than cycle `i`'s;
//! 2. each field is an individual atomic, so a racing read returns cycle
//!    `i`'s or a later cycle's value for that field — in a persist ring every
//!    such value is a valid in-pool extent field (the flush clamps the
//!    combined extent to the pool just in case), and `clwb` of *any* resident
//!    extent is semantically a no-op beyond cost; in a free ring `off` is
//!    always some retired block, which is safe to tombstone early;
//! 3. the release CAS succeeding from `i + 1` proves `seq` never left the
//!    claimed state (its transitions are monotone), hence no recycle
//!    happened, hence the values the helper flushed were exactly cycle
//!    `i`'s. If the CAS fails, whoever released the slot flushed the real
//!    entry first — the helper's flush was at worst a spurious extra `clwb`.
//!
//! The owner's push uses the same trick when it wraps onto a slot whose
//! previous consumer is still inside its claim window: it flushes the stale
//! entry itself and releases, so the owner never blocks either.
//!
//! ## Epoch discipline (why concurrent push/drain is safe)
//!
//! A bucket only ever holds entries of a single epoch `E` at a time. Owners
//! push into bucket `E % 4` only while registered in epoch `E`; drainers only
//! drain stale epochs (`advance_epoch` drains `<= e − 1`; `BEGIN_OP` helping
//! drains the owner's *own* older buckets). Bucket reuse at `E + 4` happens
//! only after the drain of `E` completed, ordered by the epoch clock (SeqCst
//! store in `advance_epoch`, SeqCst load in `BEGIN_OP`). A *bypassed*
//! straggler (see `esys.rs`) can push an epoch-`E` entry after `E`'s boundary
//! has already run; such an entry belongs to an incomplete, unacknowledged
//! operation — it is drained by the next boundary, and the payload checksum
//! quarantines it if a crash cut catches it half-flushed.
//!
//! ## Crash consistency at the fence
//!
//! Crash consistency rests on one rule: **every entry claimed from a ring
//! has its `clwb` issued before the epoch-boundary fence that declares its
//! epoch durable**. Claim-flush-release keeps unflushed entries scannable,
//! so the boundary sequence is: drain every stale bucket, then
//! [`Buffers::help_drainers`] (finish any claim still in flight — a parked
//! drainer, a parked overflow pop), then fence. No counter rendezvous, no
//! waiting on any other thread's schedule.
//!
//! ### The claim census (why the help scan is usually free)
//!
//! Scanning every slot of every ring on every boundary costs thousands of
//! atomic loads, all for a case (a consumer parked inside its claim window)
//! that in a healthy run never happens. A single global census counter
//! ([`Buffers::claims`]) brackets every pop pass: incremented before a
//! consumer's first claim CAS can execute, decremented only after its last
//! release. The boundary reads it once after its drains and skips the whole
//! help scan when it is zero. This is a *gate*, never a rendezvous — a
//! nonzero census triggers one bounded help scan, it is never waited on.
//!
//! Soundness of skipping: a claimed-but-unflushed entry the boundary's own
//! drains did not pop implies its claimant's head-CAS preceded a head load
//! performed by those drains (pops and emptiness checks load `head` with
//! Acquire). The census increment is sequenced before that CAS (a Release
//! write to `head`), so it happens-before the boundary's subsequent census
//! read, which therefore observes it; the matching decrement cannot have
//! run (it is sequenced after the release that has not happened), so the
//! census reads ≥ 1 and the scan runs. Claim windows opened *after* the
//! census read can only claim entries the drains left visible — entries
//! pushed by a bypassed straggler (which ride the next boundary by design)
//! or free-ring entries in buckets still pinned above the reclamation
//! frontier (whose tombstones only need durability before their claimant —
//! the sole dealloc authority — frees them, after *its* fence).
//!
//! ## Flush coalescing
//!
//! N in-place `set`s of one hot payload within an epoch used to enqueue N
//! identical extents, issuing N redundant `clwb`s at the boundary. A small
//! per-thread, epoch-tagged dedup table now recognises a push whose cache-
//! line extent is already covered by a resident ring entry of the same epoch
//! and skips it. Entries need no eager clearing: an epoch mismatch
//! invalidates them implicitly. Two places need care:
//!
//! * the overflow pop removes a *same-epoch* entry from the ring, so any
//!   table entry anchored at that extent must die with it;
//! * once the epoch clock has moved past the pusher's epoch, concurrent
//!   boundary drains may already have popped the "covering" entry, so the
//!   caller passes a `still_current` revalidation hook and the push falls
//!   through to a real enqueue when it fires (see `push_persist`).
//!
//! ## Reclamation rings
//!
//! `to_free` reuses the same ring (plus a mutex-protected spill vector that
//! is only touched outside any persistence event, so a parked thread can
//! never wedge it). The claimant tombstones + write-backs each block inside
//! its claim window; helpers can finish that too. Deallocation authority is
//! *never* helped: only the claimant that completes the pop returns the
//! block for deallocation, so a parked claimant leaks its claimed block
//! until it resumes (bounded by one entry per parked thread) instead of
//! risking a double-free or a premature reuse.

use crate::sync::{weaken, AtomicU32, AtomicU64, AtomicUsize, Mutex, Ordering};

use crossbeam::utils::CachePadded;
use pmem::{line_of, POff, PmemPool};

use crate::payload::Header;

/// A payload extent to write back: block offset + total length (header+data).
pub type PersistEntry = (POff, u32);

/// Number of direct-mapped coalescing-table slots per thread (power of two).
const DEDUP_SLOTS: usize = 128;

/// Epoch value that never matches a real epoch (real epochs start at
/// [`crate::FIRST_EPOCH`]); used for invalidated dedup entries.
const DEDUP_DEAD: u64 = 0;

/// One slot of a lock-free ring.
struct Slot {
    seq: AtomicUsize,
    off: AtomicU64,
    len: AtomicU32,
}

/// Fixed-capacity single-producer / multi-consumer ring of `(off, len)`
/// pairs. See the module docs for the sequence protocol.
///
/// Public (but hidden) so the `interleave` model-check harnesses can drive
/// the claim/help/release protocol directly under the schedule explorer.
#[doc(hidden)]
pub struct Ring {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    slots: Box<[Slot]>,
}

impl Ring {
    #[doc(hidden)]
    pub fn new(capacity: usize) -> Ring {
        // capacity ≥ 2 keeps the free form (seq ≡ p mod C) and the
        // published/claimed form (seq ≡ p + 1 mod C) distinguishable in
        // `help_claimed`'s slot scan.
        let capacity = capacity.max(2);
        Ring {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            slots: (0..capacity)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    off: AtomicU64::new(0),
                    len: AtomicU32::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    #[doc(hidden)]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    #[doc(hidden)]
    pub fn is_empty(&self) -> bool {
        // tail is read first: seeing head ≥ tail with a stale tail can only
        // under-report emptiness transiently, never invent entries.
        // ord(acquire): pairs with the tail publish in `push_with`.
        let t = self.tail.load(Ordering::Acquire);
        // ord(acquire): pairs with the head-claim CAS in `pop_with`.
        self.head.load(Ordering::Acquire) >= t
    }

    /// Owner-only push. Returns `Err(())` when the ring is full. If the
    /// target slot's previous consumer is still inside its claim window, the
    /// owner finishes its write-back via `flush` and releases the slot
    /// itself instead of waiting (module docs).
    #[doc(hidden)]
    #[allow(clippy::result_unit_err)] // internal API, pub only for the interleave harness; Err(()) = full
    pub fn push_with(&self, off: u64, len: u32, mut flush: impl FnMut(u64, u32)) -> Result<(), ()> {
        let cap = self.capacity();
        // ord(relaxed): tail is owner-written; this is the owner.
        let t = self.tail.load(Ordering::Relaxed);
        // ord(acquire): pairs with the head-claim CAS in `pop_with`.
        if t - self.head.load(Ordering::Acquire) >= cap {
            return Err(());
        }
        let slot = &self.slots[t % cap];
        // head has passed index t - cap, so the previous occupant's consumer
        // won its claim-CAS; if that consumer is parked before its release,
        // flush the stale entry on its behalf and complete the release —
        // the push must not block on another thread's progress. All release
        // CASes write the same value (t = (t - cap) + cap), so whichever
        // side loses simply finds the slot already free.
        loop {
            // ord(acquire): seeing the claimed form must also show us the
            // claimant's entry fields so the help-flush reads cycle i's data.
            let s = slot.seq.load(Ordering::Acquire);
            if s == t {
                break;
            }
            debug_assert!(
                t + 1 >= cap && s == t + 1 - cap,
                "slot seq {s} is neither free ({t}) nor claimed ({})",
                t.wrapping_add(1).wrapping_sub(cap)
            );
            // ord(relaxed): ordered by the acquire on `seq` above; a racing
            // recycle is tolerated (module docs, helper-flush soundness).
            let o = slot.off.load(Ordering::Relaxed);
            // ord(relaxed): same argument as `off`.
            let l = slot.len.load(Ordering::Relaxed);
            flush(o, l);
            // ord(acqrel): release our help-flush before freeing the slot;
            // acquire so a lost race shows us the winner's release.
            if slot
                .seq
                .compare_exchange(s, t, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        // ord(relaxed): published by the `seq` store below.
        slot.off.store(off, Ordering::Relaxed);
        // ord(relaxed): published by the `seq` store below.
        slot.len.store(len, Ordering::Relaxed);
        // ord(publish): consumers acquire `seq` and must see off/len.
        slot.seq
            .store(t + 1, weaken("ring.seq.publish", Ordering::Release));
        // ord(publish): pop_with acquires tail before reading the slot.
        self.tail
            .store(t + 1, weaken("ring.tail.publish", Ordering::Release));
        Ok(())
    }

    /// Multi-consumer pop (steal). Returns `None` when the ring is empty.
    /// `flush` is invoked on the entry **inside the claim window**, before
    /// the slot is released, so a consumer parked mid-flush leaves the entry
    /// recoverable by [`Ring::help_claimed`].
    #[doc(hidden)]
    pub fn pop_with(&self, mut flush: impl FnMut(u64, u32)) -> Option<(u64, u32)> {
        loop {
            // ord(acquire): pairs with claim CASes by racing consumers.
            let h = self.head.load(Ordering::Acquire);
            // ord(acquire): pairs with the owner's tail publish.
            let t = self.tail.load(Ordering::Acquire);
            if h >= t {
                return None;
            }
            let slot = &self.slots[h % self.capacity()];
            // ord(acquire): pairs with the owner's `seq` publish so off/len
            // below read cycle h's values.
            if slot.seq.load(Ordering::Acquire) != h + 1 {
                // A racing consumer already claimed index h; re-read head.
                continue;
            }
            // ord(relaxed): ordered by the acquire on `seq` above.
            let off = slot.off.load(Ordering::Relaxed);
            // ord(relaxed): ordered by the acquire on `seq` above.
            let len = slot.len.load(Ordering::Relaxed);
            // ord(acqrel): the claim must not sink below the seq check
            // (acquire) and publishes our intent to flush (release).
            if self
                .head
                .compare_exchange(h, h + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // Winning the CAS proves nobody consumed index h before us,
                // so (off, len) read above belong to index h. Claim → flush
                // → release: the write-back is issued while the slot is
                // still claimed so helpers can finish it if we park here.
                flush(off, len);
                // The release is a CAS because a helper (or the owner's
                // wrap-around push) may have completed it for us; a failure
                // means the slot was already flushed and recycled.
                // ord(acqrel): the flush above must not sink below the
                // release; failure needs no edge (we discard the result).
                let _ = slot.seq.compare_exchange(
                    h + 1,
                    h + self.capacity(),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                return Some((off, len));
            }
        }
    }

    /// Helper scan: finish the write-back + release of every slot whose
    /// consumer is parked inside its claim window. Wait-free — one pass over
    /// the slots, a bounded number of atomic ops each, never spins on
    /// another thread. See the module docs for the soundness argument of
    /// flushing before the validating release CAS.
    #[doc(hidden)]
    pub fn help_claimed(&self, mut flush: impl FnMut(u64, u32)) {
        let cap = self.capacity();
        for (p, slot) in self.slots.iter().enumerate() {
            // ord(acquire): pairs with the owner's publish; off/len below
            // must be no older than the claimed cycle's.
            let s = slot.seq.load(Ordering::Acquire);
            if s == 0 || (s - 1) % cap != p {
                // Free or released form; nothing pending here.
                continue;
            }
            let i = s - 1;
            // ord(acquire): pairs with the claimant's head CAS.
            if self.head.load(Ordering::Acquire) <= i {
                // Published but unclaimed: a drain pass owns this one; it is
                // still visible to `pop_with`, not stuck.
                continue;
            }
            // ord(relaxed): ordered by the acquire on `seq`; a racing
            // recycle is tolerated (module docs, helper-flush soundness).
            let off = slot.off.load(Ordering::Relaxed);
            // ord(relaxed): same argument as `off`.
            let len = slot.len.load(Ordering::Relaxed);
            flush(off, len);
            // ord(acqrel): release our flush before freeing the slot.
            let _ = slot
                .seq
                .compare_exchange(s, i + cap, Ordering::AcqRel, Ordering::Relaxed);
        }
    }

    /// Model-check probe: number of slots currently in the claimed form
    /// (claim CAS won, release CAS not yet performed). Read-only; exists so
    /// the `interleave` harnesses can assert the boundary's census gate
    /// never leaves a claimed entry unhelped at a fence.
    #[doc(hidden)]
    pub fn debug_claimed(&self) -> usize {
        let cap = self.capacity();
        let mut n = 0;
        for (p, slot) in self.slots.iter().enumerate() {
            // ord(acquire): same edge as `help_claimed`'s scan.
            let s = slot.seq.load(Ordering::Acquire);
            if s == 0 || (s - 1) % cap != p {
                continue;
            }
            // ord(acquire): pairs with the claimant's head CAS.
            if self.head.load(Ordering::Acquire) > s - 1 {
                n += 1;
            }
        }
        n
    }
}

/// One direct-mapped coalescing-table entry: "a resident ring entry of
/// `epoch` covers cache lines `[first, last]`". Owner-only access; atomics
/// are used purely so the table can live behind `&self`.
struct DedupEntry {
    epoch: AtomicU64,
    first: AtomicU64,
    last: AtomicU64,
}

/// One epoch bucket of the circular write-back buffer.
struct PersistBucket {
    /// Which epoch this bucket currently holds entries for.
    epoch: AtomicU64,
    ring: Ring,
}

/// One epoch bucket of retired payloads awaiting reclamation. The ring is
/// the steady-state path; `spill` absorbs overflow (heap allocation only in
/// pathological epochs with more retirements than ring capacity).
struct FreeBucket {
    epoch: AtomicU64,
    ring: Ring,
    spill: Mutex<Vec<u64>>,
}

/// All buffered state of one thread.
struct ThreadState {
    persist: [PersistBucket; 4],
    free: [FreeBucket; 4],
    dedup: Box<[DedupEntry]>,
    /// Line flushes avoided by coalescing (owner-written, exact).
    coalesced: AtomicU64,
}

impl ThreadState {
    fn new(capacity: usize) -> ThreadState {
        ThreadState {
            persist: std::array::from_fn(|_| PersistBucket {
                epoch: AtomicU64::new(0),
                ring: Ring::new(capacity),
            }),
            free: std::array::from_fn(|_| FreeBucket {
                epoch: AtomicU64::new(0),
                ring: Ring::new(capacity),
                spill: Mutex::new(Vec::new()),
            }),
            dedup: (0..DEDUP_SLOTS)
                .map(|_| DedupEntry {
                    epoch: AtomicU64::new(DEDUP_DEAD),
                    first: AtomicU64::new(0),
                    last: AtomicU64::new(0),
                })
                .collect(),
            coalesced: AtomicU64::new(0),
        }
    }

    #[inline]
    fn dedup_at(&self, first_line: u64) -> &DedupEntry {
        let idx = (first_line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize;
        &self.dedup[idx & (DEDUP_SLOTS - 1)]
    }
}

/// `clwb_range` with the extent clamped to the pool. Helper flushes can race
/// a slot being recycled and read an `(off, len)` pair mixed across two
/// entries (each field individually valid); the combined extent is harmless
/// to flush but could marginally overrun the pool end.
#[inline]
fn clwb_clamped(pool: &PmemPool, off: u64, len: u32) {
    let size = pool.size() as u64;
    if off >= size {
        return;
    }
    let len = u64::from(len.max(1)).min(size - off);
    // lint: allow(flush-no-fence): drains only write back; the epoch-boundary sfence in advance_epoch makes them durable (the claim/help/release ordering this rides on is model-checked by interleave's harness_ring)
    pool.clwb_range(POff::new(off), len as usize);
}

/// Tombstone + write back one retired block (free-ring flush action).
#[inline]
fn tombstone_flush(pool: &PmemPool, off: u64) {
    let blk = POff::new(off);
    Header::tombstone(pool, blk);
    // lint: allow(flush-no-fence): tombstone write-backs ride the epoch-boundary sfence, like the persist drains (same harness_ring-checked claim protocol)
    pool.clwb(blk);
}

/// Per-thread buffer sets for every registered thread.
pub struct Buffers {
    threads: Box<[CachePadded<ThreadState>]>,
    capacity: usize,
    /// Census of pop passes currently inside (or about to enter) a claim
    /// window, across all rings. See the module docs: `advance_epoch` skips
    /// the `help_drainers` slot scans entirely while this reads zero. A
    /// consumer parked mid-claim keeps its bracket open — the census stays
    /// positive and every boundary scans until the claim is helped *and*
    /// the claimant resumes.
    claims: CachePadded<AtomicUsize>,
}

/// RAII bracket around a pop pass for the claim census. Held across every
/// code path that can claim a ring entry, opened *before* the first claim
/// CAS can execute.
struct ClaimScope<'a>(&'a AtomicUsize);

impl Drop for ClaimScope<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Buffers {
    pub fn new(max_threads: usize, capacity: usize) -> Self {
        let capacity = capacity.max(2);
        Buffers {
            threads: (0..max_threads)
                .map(|_| CachePadded::new(ThreadState::new(capacity)))
                .collect(),
            capacity,
            claims: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    fn claim_scope(&self) -> ClaimScope<'_> {
        // SeqCst: the census gate's soundness needs a total order between
        // this increment and the boundary's one-shot read (module docs).
        self.claims
            .fetch_add(1, weaken("buffers.census", Ordering::SeqCst));
        ClaimScope(&self.claims)
    }

    /// `true` while any pop pass may be inside a claim window. One atomic
    /// load; the boundary's cheap gate in front of [`Buffers::help_drainers`].
    pub fn claims_open(&self) -> bool {
        self.claims.load(Ordering::SeqCst) != 0
    }

    /// Ring capacity per bucket.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records that the payload at `blk` (of `len` bytes including header)
    /// was created or modified in `epoch` by thread `tid`. Owner-only; never
    /// locks or allocates. If the push's cache-line extent is already covered
    /// by a same-epoch ring entry it is coalesced away entirely; if the ring
    /// is full, the oldest entry is written back (no fence) before inserting.
    ///
    /// `still_current` revalidates — *after* the coalescing decision, with a
    /// SeqCst-ordered read — that the epoch clock has not moved past
    /// `epoch`. Boundary drains only pop a bucket once the clock has
    /// advanced past its epoch (the advance loads the clock before its
    /// drains), so `still_current() == true` sequenced after the dedup hit
    /// proves the covering entry was still resident when the decision was
    /// made. Without it, a bypassed straggler could coalesce against an
    /// entry a concurrent boundary drain already flushed, leaving this
    /// push's latest bytes with no resident entry to flush them.
    ///
    /// Returns the minimum epoch for which this thread still holds
    /// unpersisted entries (for the mindicator).
    pub fn push_persist(
        &self,
        pool: &PmemPool,
        tid: usize,
        epoch: u64,
        blk: POff,
        len: u32,
        still_current: impl FnOnce() -> bool,
    ) -> u64 {
        let st = &self.threads[tid];
        let first = line_of(blk.raw());
        let last = line_of(blk.raw() + u64::from(len.max(1)) - 1);

        // Coalescing: a same-epoch resident entry already covers this extent,
        // so its boundary clwb_range subsumes ours.
        let d = st.dedup_at(first);
        // ord(relaxed): dedup table is owner-only (module docs).
        if d.epoch.load(Ordering::Relaxed) == epoch
            // ord(relaxed): owner-only, as above.
            && d.first.load(Ordering::Relaxed) == first
            // ord(relaxed): owner-only, as above.
            && d.last.load(Ordering::Relaxed) >= last
            && still_current()
        {
            // ord(counter): stats tally, read by the owner.
            st.coalesced.fetch_add(last - first + 1, Ordering::Relaxed);
            return self.min_pending(tid);
        }

        let b = &st.persist[(epoch % 4) as usize];
        debug_assert!(
            // ord(relaxed): owner-only invariant check.
            b.ring.is_empty() || b.epoch.load(Ordering::Relaxed) == epoch,
            "persist bucket reused before being drained (epoch {} vs {})",
            b.epoch.load(Ordering::Relaxed),
            epoch
        );
        // ord(publish): drainers acquire the bucket epoch before popping.
        b.epoch.store(epoch, Ordering::Release);
        while b
            .ring
            .push_with(blk.raw(), len, |o, l| clwb_clamped(pool, o, l))
            .is_err()
        {
            // Full: write back the oldest entry incrementally. The popped
            // entry leaves this same-epoch bucket, so kill any coalescing
            // promise anchored at its extent (see module docs).
            let _census = self.claim_scope();
            if let Some((o, _)) = b.ring.pop_with(|o, l| clwb_clamped(pool, o, l)) {
                let od = st.dedup_at(line_of(o));
                // ord(relaxed): dedup table is owner-only.
                if od.epoch.load(Ordering::Relaxed) == epoch
                    // ord(relaxed): owner-only.
                    && od.first.load(Ordering::Relaxed) == line_of(o)
                {
                    // ord(relaxed): owner-only.
                    od.epoch.store(DEDUP_DEAD, Ordering::Relaxed);
                }
            }
        }
        // ord(relaxed): dedup table is owner-only.
        d.first.store(first, Ordering::Relaxed);
        // ord(relaxed): owner-only.
        d.last.store(last, Ordering::Relaxed);
        // ord(relaxed): owner-only.
        d.epoch.store(epoch, Ordering::Relaxed);
        self.min_pending(tid)
    }

    /// Line flushes thread `tid` has avoided through coalescing so far
    /// (monotonic; exact when read by the owner).
    pub fn coalesced_lines(&self, tid: usize) -> u64 {
        // ord(counter): stats tally; no ordering contract.
        self.threads[tid].coalesced.load(Ordering::Relaxed)
    }

    /// Writes back (without fencing) all of thread `tid`'s entries for
    /// `epoch`. Safe to call concurrently with other drainers and — for
    /// epochs the owner can no longer push into — with the owner. Returns
    /// the thread's new minimum pending epoch.
    pub fn drain_persist(&self, pool: &PmemPool, tid: usize, epoch: u64) -> u64 {
        let st = &self.threads[tid];
        let b = &st.persist[(epoch % 4) as usize];
        // ord(acquire): pairs with the owner's bucket-epoch publish.
        if !b.ring.is_empty() && b.epoch.load(Ordering::Acquire) == epoch {
            let _census = self.claim_scope();
            while b.ring.pop_with(|o, l| clwb_clamped(pool, o, l)).is_some() {}
        }
        self.min_pending(tid)
    }

    /// Writes back all of `tid`'s entries for every epoch `<= epoch`.
    pub fn drain_persist_upto(&self, pool: &PmemPool, tid: usize, epoch: u64) -> u64 {
        let st = &self.threads[tid];
        for b in st.persist.iter() {
            // ord(acquire): pairs with the owner's bucket-epoch publish.
            if !b.ring.is_empty() && b.epoch.load(Ordering::Acquire) <= epoch {
                let _census = self.claim_scope();
                while b.ring.pop_with(|o, l| clwb_clamped(pool, o, l)).is_some() {}
            }
        }
        self.min_pending(tid)
    }

    /// Finishes the write-back + release of any of thread `tid`'s ring
    /// entries whose consumer is parked inside its claim window (a stalled
    /// boundary drainer, a stalled overflow pop, a stalled reclamation
    /// pass). Called by `advance_epoch` after its drains and **before** the
    /// boundary fence, in place of the old counter rendezvous: wait-free,
    /// and duplicate `clwb`s with a claimant that later resumes are
    /// idempotent. Deallocation of free-ring blocks is *not* helped — only
    /// the claimant returns blocks for deallocation.
    pub fn help_drainers(&self, pool: &PmemPool, tid: usize) {
        let st = &self.threads[tid];
        for b in st.persist.iter() {
            b.ring.help_claimed(|o, l| clwb_clamped(pool, o, l));
        }
        for b in st.free.iter() {
            b.ring.help_claimed(|o, _| tombstone_flush(pool, o));
        }
    }

    /// Model-check probe: claimed-but-unreleased slots across all of
    /// `tid`'s rings (see [`Ring::debug_claimed`]).
    #[doc(hidden)]
    pub fn debug_claimed(&self, tid: usize) -> usize {
        let st = &self.threads[tid];
        st.persist
            .iter()
            .map(|b| b.ring.debug_claimed())
            .chain(st.free.iter().map(|b| b.ring.debug_claimed()))
            .sum()
    }

    /// Schedules block `blk` (retired in `epoch`) for reclamation two epochs
    /// later. Owner-only; allocation-free until the ring overflows.
    pub fn push_free(&self, pool: &PmemPool, tid: usize, epoch: u64, blk: POff) {
        let st = &self.threads[tid];
        let b = &st.free[(epoch % 4) as usize];
        debug_assert!(
            (b.ring.is_empty() && b.spill.lock().is_empty())
                // ord(relaxed): owner-only invariant check.
                || b.epoch.load(Ordering::Relaxed) == epoch,
            "free bucket reused before being drained"
        );
        // ord(publish): reclaimers acquire the bucket epoch before popping.
        b.epoch.store(epoch, Ordering::Release);
        if b.ring
            .push_with(blk.raw(), 0, |o, _| tombstone_flush(pool, o))
            .is_err()
        {
            b.spill.lock().push(blk.raw());
        }
    }

    /// Reclaims thread `tid`'s retirements for `epoch`: tombstones each
    /// block header (scheduling the line for write-back, so the sweep can
    /// never resurrect it) and returns the blocks for deallocation. The
    /// caller fences and deallocates.
    pub fn take_free(&self, pool: &PmemPool, tid: usize, epoch: u64) -> Vec<POff> {
        let st = &self.threads[tid];
        let b = &st.free[(epoch % 4) as usize];
        // ord(acquire): pairs with the owner's bucket-epoch publish.
        if b.epoch.load(Ordering::Acquire) != epoch {
            return Vec::new();
        }
        self.drain_free_bucket(pool, b)
    }

    /// Like [`Buffers::take_free`] but for all epochs `<= epoch` (worker-
    /// local reclamation in `BEGIN_OP`, and the advance's catch-up over
    /// buckets skipped while their epoch was pinned by a straggler).
    pub fn take_free_upto(&self, pool: &PmemPool, tid: usize, epoch: u64) -> Vec<POff> {
        let st = &self.threads[tid];
        let mut out = Vec::new();
        for b in st.free.iter() {
            // ord(acquire): pairs with the owner's bucket-epoch publish.
            if b.epoch.load(Ordering::Acquire) <= epoch {
                out.extend(self.drain_free_bucket(pool, b));
            }
        }
        out
    }

    fn drain_free_bucket(&self, pool: &PmemPool, b: &FreeBucket) -> Vec<POff> {
        let mut blocks = Vec::new();
        // Tombstone + write back inside the claim window (helpers can then
        // finish a parked pass), but collect for deallocation only what WE
        // popped: dealloc authority is never shared.
        {
            let _census = self.claim_scope();
            while let Some((o, _)) = b.ring.pop_with(|o, _| tombstone_flush(pool, o)) {
                blocks.push(POff::new(o));
            }
        }
        let spilled: Vec<u64> = {
            // No persistence event happens under the spill lock, so a parked
            // thread can never be holding it.
            let mut spill = b.spill.lock();
            spill.drain(..).collect()
        };
        for &o in &spilled {
            tombstone_flush(pool, o);
            blocks.push(POff::new(o));
        }
        blocks
    }

    /// Minimum epoch with unpersisted entries across **this thread's**
    /// buckets ([`u64::MAX`] if none). Lock-free exact scan: 4 buckets × a
    /// handful of atomic loads — cheap enough to be the authoritative gate
    /// in `advance_epoch` (the mindicator remains a monotone hint). A
    /// claimed-but-unreleased entry is invisible here; the boundary covers
    /// it with [`Buffers::help_drainers`], never by waiting.
    pub fn min_pending(&self, tid: usize) -> u64 {
        self.threads[tid]
            .persist
            .iter()
            .filter(|b| !b.ring.is_empty())
            // ord(acquire): pairs with the owner's bucket-epoch publish.
            .map(|b| b.epoch.load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PmemConfig::default())
    }

    fn push(b: &Buffers, p: &PmemPool, tid: usize, epoch: u64, blk: POff, len: u32) -> u64 {
        b.push_persist(p, tid, epoch, blk, len, || true)
    }

    #[test]
    fn push_then_drain_flushes_everything() {
        let p = pool();
        let b = Buffers::new(2, 8);
        for i in 0..5u64 {
            push(&b, &p, 0, 10, POff::new(4096 + i * 128), 64);
        }
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 10);
        let after = p.stats().snapshot().clwbs;
        assert_eq!(after - before, 5, "five single-line payloads flushed");
        assert_eq!(b.min_pending(0), u64::MAX);
    }

    #[test]
    fn overflow_writes_back_oldest_incrementally() {
        let p = pool();
        let b = Buffers::new(1, 2);
        push(&b, &p, 0, 4, POff::new(4096), 64);
        push(&b, &p, 0, 4, POff::new(8192), 64);
        assert_eq!(p.stats().snapshot().clwbs, 0, "no flush below capacity");
        push(&b, &p, 0, 4, POff::new(12288), 64);
        assert_eq!(
            p.stats().snapshot().clwbs,
            1,
            "overflow flushes the oldest entry"
        );
    }

    #[test]
    fn min_pending_tracks_oldest_epoch() {
        let p = pool();
        let b = Buffers::new(1, 8);
        assert_eq!(b.min_pending(0), u64::MAX);
        push(&b, &p, 0, 9, POff::new(4096), 64);
        push(&b, &p, 0, 10, POff::new(8192), 64);
        assert_eq!(b.min_pending(0), 9);
        b.drain_persist(&p, 0, 9);
        assert_eq!(b.min_pending(0), 10);
    }

    #[test]
    fn drain_upto_spans_buckets() {
        let p = pool();
        let b = Buffers::new(1, 8);
        push(&b, &p, 0, 9, POff::new(4096), 64);
        push(&b, &p, 0, 10, POff::new(8192), 64);
        let min = b.drain_persist_upto(&p, 0, 10);
        assert_eq!(min, u64::MAX);
    }

    #[test]
    fn take_free_tombstones_blocks() {
        let p = pool();
        let b = Buffers::new(1, 8);
        let blk = POff::new(4096);
        Header::write_new(
            &p,
            blk,
            crate::payload::PayloadKind::Alloc,
            0,
            7,
            1,
            8,
            Header::data_sum(&[0u8; 8]),
        );
        b.push_free(&p, 0, 7, blk);
        assert!(
            b.take_free(&p, 0, 6).is_empty(),
            "wrong epoch yields nothing"
        );
        let freed = b.take_free(&p, 0, 7);
        assert_eq!(freed, vec![blk]);
        assert_eq!(Header::magic(&p, blk), crate::payload::MAGIC_TOMBSTONE);
        assert!(b.take_free(&p, 0, 7).is_empty(), "drained bucket is empty");
    }

    #[test]
    fn buckets_are_per_thread() {
        let p = pool();
        let b = Buffers::new(2, 8);
        push(&b, &p, 0, 4, POff::new(4096), 64);
        assert_eq!(b.min_pending(1), u64::MAX);
        assert_eq!(b.min_pending(0), 4);
    }

    #[test]
    fn repeated_same_extent_pushes_coalesce_to_one_flush() {
        let p = pool();
        let b = Buffers::new(1, 8);
        for _ in 0..6 {
            push(&b, &p, 0, 4, POff::new(4096), 64);
        }
        assert_eq!(b.coalesced_lines(0), 5, "five of six pushes coalesced");
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 4);
        assert_eq!(
            p.stats().snapshot().clwbs - before,
            1,
            "one clwb covers all six"
        );
    }

    #[test]
    fn stale_clock_revalidation_defeats_coalescing() {
        // A bypassed straggler whose epoch is no longer current must not
        // coalesce: the covering entry may already have been drained by a
        // concurrent boundary. The revalidation hook returning false forces
        // a real enqueue.
        let p = pool();
        let b = Buffers::new(1, 8);
        b.push_persist(&p, 0, 4, POff::new(4096), 64, || true);
        b.push_persist(&p, 0, 4, POff::new(4096), 64, || false);
        assert_eq!(b.coalesced_lines(0), 0, "stale push must not coalesce");
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 4);
        assert_eq!(
            p.stats().snapshot().clwbs - before,
            2,
            "both pushes resident"
        );
    }

    #[test]
    fn smaller_covered_extent_coalesces_larger_does_not() {
        let p = pool();
        let b = Buffers::new(1, 8);
        // 3-line entry, then a 1-line re-push of its first line: covered.
        push(&b, &p, 0, 4, POff::new(4096), 192);
        push(&b, &p, 0, 4, POff::new(4096), 8);
        assert_eq!(b.coalesced_lines(0), 1);
        // Growing the extent is NOT covered and must enqueue.
        push(&b, &p, 0, 4, POff::new(4096), 256);
        assert_eq!(b.coalesced_lines(0), 1);
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 4);
        // Entry 1 (3 lines) + entry 3 (4 lines).
        assert_eq!(p.stats().snapshot().clwbs - before, 7);
    }

    #[test]
    fn coalescing_is_epoch_scoped() {
        let p = pool();
        let b = Buffers::new(1, 8);
        push(&b, &p, 0, 4, POff::new(4096), 64);
        b.drain_persist(&p, 0, 4);
        // Same extent, next epoch: the old ring entry is gone, so this push
        // must enqueue again (the table entry's epoch tag misses).
        push(&b, &p, 0, 5, POff::new(4096), 64);
        assert_eq!(b.coalesced_lines(0), 0);
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 5);
        assert_eq!(p.stats().snapshot().clwbs - before, 1);
    }

    #[test]
    fn overflow_pop_invalidates_coalescing_entry() {
        let p = pool();
        let b = Buffers::new(1, 2);
        let hot = POff::new(4096);
        push(&b, &p, 0, 4, hot, 64);
        push(&b, &p, 0, 4, POff::new(8192), 64);
        // Overflow pops `hot` (the oldest) and writes it back early...
        push(&b, &p, 0, 4, POff::new(12288), 64);
        assert_eq!(p.stats().snapshot().clwbs, 1);
        // ...so a new same-epoch push of `hot` must NOT coalesce against the
        // now-dead entry: it must re-enter the ring to reach the boundary.
        push(&b, &p, 0, 4, hot, 64);
        assert_eq!(
            b.coalesced_lines(0),
            0,
            "stale table entry must not coalesce"
        );
        // That re-push overflows again, writing back 8192's entry.
        assert_eq!(p.stats().snapshot().clwbs, 2);
        let before = p.stats().snapshot().clwbs;
        b.drain_persist(&p, 0, 4);
        assert_eq!(
            p.stats().snapshot().clwbs - before,
            2,
            "12288 and the re-pushed hot line"
        );
    }

    #[test]
    fn steady_state_push_does_not_allocate_or_lock() {
        // Indirect check: a full epoch of pushes + drain round-trips with the
        // ring staying within its fixed capacity (overflow pops included).
        let p = pool();
        let b = Buffers::new(1, 4);
        for round in 0..100u64 {
            let e = 4 + round;
            for i in 0..16u64 {
                push(&b, &p, 0, e, POff::new(4096 + i * 64), 64);
            }
            b.drain_persist(&p, 0, e);
            assert_eq!(b.min_pending(0), u64::MAX);
        }
        // 16 distinct lines per round: 12 overflow + 4 drained = 16 clwbs.
        assert_eq!(p.stats().snapshot().clwbs, 1600);
    }

    #[test]
    fn concurrent_drainers_consume_each_entry_exactly_once() {
        use std::sync::atomic::AtomicU64 as A64;
        use std::sync::Arc;

        let p = pool();
        let b = Arc::new(Buffers::new(1, 256));
        const ROUNDS: u64 = 60;
        const PER_ROUND: u64 = 200;
        // The owner fills epoch e and publishes the round; two stealing
        // drainers race to drain every completed epoch, like the advancer
        // and a helping sync caller would.
        let done_round = Arc::new(A64::new(0));
        std::thread::scope(|s| {
            {
                let b = b.clone();
                let p = p.clone();
                let done_round = done_round.clone();
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        let e = 4 + r;
                        // The epoch clock only reaches e after e-4 was
                        // drained (by the advance that moved it to e-2), so
                        // an owner can never push into a bucket that still
                        // holds entries; model that constraint here.
                        while b.min_pending(0) <= e - 4 {
                            std::thread::yield_now();
                        }
                        for i in 0..PER_ROUND {
                            // Distinct lines, so every entry should clwb once.
                            push(&b, &p, 0, e, POff::new((1 + r * PER_ROUND + i) * 64), 64);
                        }
                        done_round.store(r + 1, std::sync::atomic::Ordering::Release);
                    }
                });
            }
            for _ in 0..2 {
                let b = b.clone();
                let p = p.clone();
                let done_round = done_round.clone();
                s.spawn(move || loop {
                    let done = done_round.load(std::sync::atomic::Ordering::Acquire);
                    // Drain only completed (quiescent) epochs, as the epoch
                    // protocol guarantees.
                    for r in 0..done {
                        b.drain_persist(&p, 0, 4 + r);
                    }
                    if done == ROUNDS {
                        break;
                    }
                    std::thread::yield_now();
                });
            }
        });
        b.drain_persist_upto(&p, 0, u64::MAX - 1);
        assert_eq!(b.min_pending(0), u64::MAX);
        // Exactly-once: ROUNDS × PER_ROUND distinct lines, one clwb each —
        // nothing lost, nothing double-flushed. (Ring capacity 256 > 200
        // per epoch means no overflow write-backs muddy the count, and no
        // helper runs, so no idempotent duplicates either.)
        assert_eq!(p.stats().snapshot().clwbs, ROUNDS * PER_ROUND);
    }

    #[test]
    fn ring_owner_push_completes_preempted_consumer_release() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        // Tiny ring, so the producer constantly reuses slots whose previous
        // consumer is still inside its claim→release window: the push's
        // help path runs hot, and the producer must never block on a
        // preempted consumer (it flushes + releases the slot itself).
        let r = Arc::new(Ring::new(2));
        const N: u64 = 10_000;
        let stop = Arc::new(AtomicBool::new(false));
        // Wait loops yield rather than spin: on a single-core runner a
        // spinning waiter burns its whole quantum while the thread it waits
        // on is descheduled, turning the test pathological.
        std::thread::scope(|s| {
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let r = r.clone();
                let stop = stop.clone();
                consumers.push(s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match r.pop_with(|_, _| {}) {
                            Some((o, _)) => got.push(o),
                            None if stop.load(Ordering::Acquire) => break,
                            None => std::thread::yield_now(),
                        }
                    }
                    got
                }));
            }
            {
                let r = r.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    for i in 1..=N {
                        while r.push_with(i, 0, |_, _| {}).is_err() {
                            std::thread::yield_now();
                        }
                    }
                    stop.store(true, Ordering::Release);
                });
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (1..=N).collect::<Vec<_>>(),
                "every push popped exactly once, none lost or duplicated"
            );
        });
    }

    #[test]
    fn help_claimed_finishes_a_parked_consumers_entry() {
        // Deterministically freeze a consumer inside its claim window:
        // emulate the claim by CASing head past a published entry without
        // flushing or releasing, exactly the state a parked `pop_with`
        // leaves behind. A helper must find the entry, flush it with the
        // correct extent, and release the slot so the owner can reuse it.
        let r = Ring::new(4);
        r.push_with(4096, 64, |_, _| {}).unwrap();
        r.push_with(8192, 64, |_, _| {}).unwrap();
        r.head
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
            .unwrap();
        let mut helped = Vec::new();
        r.help_claimed(|o, l| helped.push((o, l)));
        assert_eq!(
            helped,
            vec![(4096, 64)],
            "exactly the claimed entry is helped; the published one is left to drains"
        );
        // Slot 0 was released by the helper: after draining the published
        // entry the owner can wrap around the whole ring without blocking.
        assert_eq!(r.pop_with(|_, _| {}), Some((8192, 64)));
        for i in 0..4u64 {
            r.push_with(100 + i, 0, |_, _| panic!("no slot should need help"))
                .unwrap();
        }
    }

    #[test]
    fn help_claimed_is_idempotent_and_skips_live_entries() {
        let r = Ring::new(4);
        r.push_with(4096, 64, |_, _| {}).unwrap();
        // Nothing claimed: a helper pass must not touch anything.
        r.help_claimed(|_, _| panic!("no claimed slot exists"));
        // Claim it, help it twice: the second pass sees the released form.
        r.head
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
            .unwrap();
        let mut n = 0;
        r.help_claimed(|_, _| n += 1);
        r.help_claimed(|_, _| n += 1);
        assert_eq!(n, 1, "a released slot is never re-helped");
    }

    #[test]
    fn pop_with_flushes_inside_the_claim_window() {
        // The flush closure must run while the slot still shows the claimed
        // sequence (h + 1), i.e. before the release CAS — that is the
        // property helpers rely on.
        let r = Ring::new(2);
        r.push_with(4096, 64, |_, _| {}).unwrap();
        let seq_at_flush = std::cell::Cell::new(0usize);
        r.pop_with(|_, _| seq_at_flush.set(r.slots[0].seq.load(Ordering::Acquire)));
        assert_eq!(seq_at_flush.get(), 1, "flush ran in the claimed state");
        assert_eq!(
            r.slots[0].seq.load(Ordering::Acquire),
            2,
            "slot released after the flush"
        );
    }

    #[test]
    fn boundary_with_racing_drainers_leaves_no_dirty_lines() {
        use std::sync::atomic::{AtomicBool, AtomicU64 as A64};
        use std::sync::Arc;

        // Models the advance_epoch boundary under the helping protocol: per
        // round the checker drains, helps any claim still in flight, and
        // then requires every pushed entry's write-back to have been issued
        // — with racing drainers that may be anywhere inside their claim
        // windows. Coverage is asserted exactly: each round's distinct lines
        // must all be flushed by the time the checker finishes (duplicates
        // from helper/claimant races are allowed, losses are not).
        let p = pool();
        let b = Arc::new(Buffers::new(1, 256));
        const ROUNDS: u64 = 30;
        const PER_ROUND: u64 = 200;
        let done = Arc::new(A64::new(0)); // rounds fully pushed
        let go = Arc::new(A64::new(0)); // rounds the checker has verified
        let stop = Arc::new(AtomicBool::new(false));
        // Wait loops yield rather than spin (single-core runners).
        std::thread::scope(|s| {
            {
                // Owner: pushes one epoch's worth of distinct lines per
                // round, gated on the checker's verdict for the previous one.
                let (b, p) = (b.clone(), p.clone());
                let (done, go) = (done.clone(), go.clone());
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        while go.load(Ordering::Acquire) < r {
                            std::thread::yield_now();
                        }
                        for i in 0..PER_ROUND {
                            push(
                                &b,
                                &p,
                                0,
                                4 + r,
                                POff::new((1 + r * PER_ROUND + i) * 64),
                                64,
                            );
                        }
                        done.store(r + 1, Ordering::Release);
                    }
                });
            }
            for _ in 0..2 {
                // Racing drainers (the BEGIN_OP helpers of the real system).
                let (b, p) = (b.clone(), p.clone());
                let (done, stop) = (done.clone(), stop.clone());
                s.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let d = done.load(Ordering::Acquire);
                        for r in 0..d {
                            b.drain_persist(&p, 0, 4 + r);
                        }
                        std::thread::yield_now();
                    }
                });
            }
            // Checker: plays the advancer's boundary sequence per round.
            for r in 0..ROUNDS {
                while done.load(Ordering::Acquire) < r + 1 {
                    std::thread::yield_now();
                }
                b.drain_persist_upto(&p, 0, 4 + r);
                while b.min_pending(0) != u64::MAX {
                    std::thread::yield_now();
                }
                b.help_drainers(&p, 0);
                // Fence point: empty rings + help pass done ⇒ every line
                // pushed so far had its clwb issued at least once. (With a
                // drainer parked mid-claim its entry was helped; duplicates
                // are possible, losses are not.)
                assert!(
                    p.stats().snapshot().clwbs >= (r + 1) * PER_ROUND,
                    "round {r}: some pushed line was never written back"
                );
                go.store(r + 1, Ordering::Release);
            }
            stop.store(true, Ordering::Release);
        });
        // End-to-end ledger: all lines distinct, so flushes ≥ pushes; the
        // surplus is exactly the idempotent helper duplicates.
        assert!(p.stats().snapshot().clwbs >= ROUNDS * PER_ROUND);
    }

    #[test]
    fn free_ring_spills_over_capacity_without_loss() {
        let p = pool();
        let b = Buffers::new(1, 2);
        let mut blks = Vec::new();
        for i in 0..10u64 {
            let blk = POff::new(4096 + i * 128);
            Header::write_new(
                &p,
                blk,
                crate::payload::PayloadKind::Alloc,
                0,
                7,
                i,
                8,
                Header::data_sum(&[0u8; 8]),
            );
            b.push_free(&p, 0, 7, blk);
            blks.push(blk);
        }
        let mut freed = b.take_free(&p, 0, 7);
        freed.sort();
        assert_eq!(freed, blks, "ring + spill return every block");
    }
}
