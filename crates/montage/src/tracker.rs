//! The operation tracker: per-thread announcement of the epoch in which a
//! thread's operation is active (paper Fig. 3, `Tracker operation_tracker`).

use crate::sync::{weaken, AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// Slot value meaning "no active operation".
pub const IDLE: u64 = u64::MAX;

/// Per-thread active-epoch slots.
pub struct Tracker {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl Tracker {
    pub fn new(max_threads: usize) -> Self {
        Tracker {
            slots: (0..max_threads)
                .map(|_| CachePadded::new(AtomicU64::new(IDLE)))
                .collect(),
        }
    }

    /// Announces that thread `tid` is running an operation in `epoch`.
    /// SeqCst so the subsequent clock re-read in `BEGIN_OP` cannot be
    /// reordered before the announcement (a StoreLoad edge).
    #[inline]
    pub fn register(&self, tid: usize, epoch: u64) {
        self.slots[tid].store(epoch, Ordering::SeqCst);
    }

    /// Clears thread `tid`'s announcement.
    #[inline]
    pub fn unregister(&self, tid: usize) {
        // ord(publish): the op's payload writes (ring pushes, mindicator
        // publish) must be visible to any advancer that observes this slot
        // as idle — this edge is what keeps the advance's mindicator gate
        // from reading a stale EMPTY and skipping a needed drain.
        self.slots[tid].store(IDLE, weaken("tracker.unregister", Ordering::Release));
    }

    /// Epoch thread `tid` is registered in, or [`IDLE`].
    #[inline]
    pub fn load(&self, tid: usize) -> u64 {
        // ord(acquire): pairs with the Release in `unregister`.
        self.slots[tid].load(weaken("tracker.idle.acquire", Ordering::Acquire))
    }

    /// Blocks until no thread is registered in any epoch `<= epoch`
    /// (the advance step `operation_tracker.wait_all(curr_epoch - 1)`).
    ///
    /// A stalled thread can delay this arbitrarily — that is the paper's
    /// documented liveness caveat for blocking advances. The nonblocking
    /// advance uses [`Tracker::wait_all_bounded`] instead and helps the
    /// straggler's write-backs to completion rather than waiting.
    pub fn wait_all(&self, epoch: u64) {
        for slot in self.slots.iter() {
            let mut spins = 0u32;
            // ord(acquire): seeing the slot leave `epoch` must also show us
            // the finished op's writes before we retire its blocks.
            while slot.load(weaken("tracker.idle.acquire", Ordering::Acquire)) <= epoch {
                spins += 1;
                if spins.is_multiple_of(64) {
                    crate::sync::yield_now();
                } else {
                    crate::sync::spin_loop();
                }
            }
        }
    }

    /// Bounded [`Tracker::wait_all`]: gives each slot at most `spins`
    /// spin/yield steps to leave epochs `<= epoch`, then moves on. Returns
    /// the number of slots still registered at `<= epoch` when the grace
    /// window ran out — the stragglers the caller is about to bypass.
    ///
    /// The grace window keeps the quiescent fast path identical to the
    /// blocking advance (an in-flight op normally retires within a few
    /// hundred instructions); the bound is what makes `advance_epoch` — and
    /// therefore `sync` — complete in a bounded number of steps no matter
    /// what any one thread does (nbMontage's liveness property).
    pub fn wait_all_bounded(&self, epoch: u64, spins: usize) -> usize {
        let mut stragglers = 0usize;
        for slot in self.slots.iter() {
            let mut tries = 0usize;
            loop {
                // ord(acquire): same edge as `wait_all` — pairs with the
                // Release in `unregister`.
                if slot.load(weaken("tracker.idle.acquire", Ordering::Acquire)) > epoch {
                    break;
                }
                tries += 1;
                if tries > spins {
                    stragglers += 1;
                    break;
                }
                if tries.is_multiple_of(64) {
                    crate::sync::yield_now();
                } else {
                    crate::sync::spin_loop();
                }
            }
        }
        stragglers
    }

    /// Smallest epoch any thread is currently registered in ([`IDLE`] =
    /// `u64::MAX` if none). Reclamation uses this as its safety frontier:
    /// blocks retired in epoch `r` may be freed only once every active
    /// thread's epoch exceeds `r`, which a bypassed (parked) straggler keeps
    /// pinned down without blocking the clock.
    pub fn oldest_active(&self) -> u64 {
        self.slots
            .iter()
            // ord(acquire): the frontier gates reclamation; pairs with the
            // Release in `unregister`.
            .map(|s| s.load(Ordering::Acquire))
            .min()
            .unwrap_or(IDLE)
    }

    /// True iff some thread is currently registered in `epoch`.
    pub fn any_active_in(&self, epoch: u64) -> bool {
        self.slots
            .iter()
            // ord(acquire): pairs with the Release in `unregister`.
            .any(|s| s.load(Ordering::Acquire) == epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn register_unregister_roundtrip() {
        let t = Tracker::new(4);
        assert_eq!(t.load(2), IDLE);
        t.register(2, 7);
        assert_eq!(t.load(2), 7);
        assert!(t.any_active_in(7));
        t.unregister(2);
        assert_eq!(t.load(2), IDLE);
        assert!(!t.any_active_in(7));
    }

    #[test]
    fn wait_all_returns_when_no_old_ops() {
        let t = Tracker::new(4);
        t.register(0, 10);
        t.wait_all(9); // nothing ≤ 9 → returns immediately
    }

    #[test]
    fn wait_all_blocks_until_old_op_ends() {
        let t = Arc::new(Tracker::new(2));
        t.register(0, 5);
        let t2 = t.clone();
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            t2.unregister(0);
        });
        let start = std::time::Instant::now();
        t.wait_all(5);
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "must wait for the op"
        );
        releaser.join().unwrap();
    }
}
