//! `EpochSys`: the Montage epoch system (paper Fig. 3 and Sec. 5).
//!
//! Responsibilities, mirroring the paper:
//!
//! 1. every payload created or modified by an operation is labelled with the
//!    operation's epoch (`PNEW` / `set`);
//! 2. all payloads of epoch *e* persist together when the clock ticks from
//!    *e+1* to *e+2* (`advance_epoch`), and recovery discards epochs *e* and
//!    *e−1* after a crash in *e*;
//! 3. operations linearize in the epoch in which they created payloads —
//!    supported by `CHECK_EPOCH`, the `OldSeeNewException`, and the
//!    [`crate::dcss`] primitives.

use std::sync::Arc;

use crate::sync::{
    uninstrumented as raw, weaken, AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering,
};
use crossbeam::utils::CachePadded;
use pmem::{POff, PmemFault, PmemPool};
use ralloc::Ralloc;

use crate::buffers::Buffers;
use crate::config::{EsysConfig, FreeStrategy, PersistStrategy};
use crate::errors::{EpochChanged, OldSeeNewException};
use crate::mindicator::Mindicator;
use crate::payload::{Header, PHandle, PayloadKind, HDR_SIZE};
use crate::tracker::{Tracker, IDLE};

/// Root-area slot holding the Montage format magic.
pub(crate) const MAGIC_SLOT: usize = 0;
/// Root-area slot holding the persistent epoch clock.
pub(crate) const CLOCK_SLOT: usize = 1;
/// Root-area slot applications may use for their own persistent root.
pub const APP_ROOT_SLOT: usize = 2;

const MONTAGE_MAGIC: u64 = 0x4D4F_4E54_4147_4531; // "MONTAGE1"

/// Epochs start here so that epoch values 0..FIRST_EPOCH never appear on
/// payloads (zeroed memory is unambiguously dead) and `e - 2` never
/// underflows in recovery.
pub const FIRST_EPOCH: u64 = 4;

/// uid space is handed to threads in blocks of this size.
const UID_BLOCK: u64 = 1 << 20;

/// A registered thread's identity within an [`EpochSys`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadId(pub usize);

// uid handout is allocation bookkeeping, never a cross-thread protocol
// handoff, so it stays on uninstrumented atomics (see `sync::uninstrumented`).
struct PerThreadUid {
    next: raw::AtomicU64,
    limit: raw::AtomicU64,
}

/// Operation counters (transient, relaxed).
#[derive(Debug, Default)]
pub struct EsysStats {
    pub pnews: raw::AtomicU64,
    pub sets_in_place: raw::AtomicU64,
    pub sets_copied: raw::AtomicU64,
    pub pdeletes: raw::AtomicU64,
    pub advances: raw::AtomicU64,
    pub syncs: raw::AtomicU64,
    /// Cache-line flushes avoided by write-back buffer coalescing: a `set`
    /// whose extent was already covered by a same-epoch buffered entry
    /// enqueues nothing, so the boundary issues one `clwb_range` for all of
    /// them. Counted in lines (what the skipped `clwb_range` would have
    /// flushed).
    pub flushes_coalesced: raw::AtomicU64,
}

/// The epoch system. Shared via `Arc`; one instance manages all Montage
/// structures living in one pool.
pub struct EpochSys {
    pool: PmemPool,
    ralloc: Arc<Ralloc>,
    cfg: EsysConfig,
    tracker: Tracker,
    buffers: Buffers,
    mind: Mindicator,
    /// Highest clock value known to be *flushed* (clwb + fence issued on a
    /// healthy pool). The transient clock may run ahead of this when an
    /// advance's winner is preempted between its clock store and its clwb;
    /// `sync` waits on this mirror, not the clock, because durability can
    /// only be claimed for epochs whose closing tick reached the media.
    durable_clock: AtomicU64,
    /// Highest epoch some in-flight `sync` wants persisted (0 = none); a
    /// hint that makes workers help with write-back in `BEGIN_OP`.
    sync_requested: AtomicU64,
    next_tid: AtomicUsize,
    /// Thread ids handed back via [`EpochSys::unregister_thread`], available
    /// for reuse. Lets connection-oriented front-ends lease ids per session
    /// without exhausting the `max_threads` table under churn.
    free_tids: Mutex<Vec<usize>>,
    uid_block: raw::AtomicU64,
    uids: Box<[CachePadded<PerThreadUid>]>,
    last_epoch: Box<[CachePadded<AtomicU64>]>,
    /// Set while thread `tid` holds an [`EpochPin`]. Only the owning thread
    /// reads or writes its slot (Relaxed); the flag routes that thread's
    /// `begin_op` onto the nested (non-owning) path.
    pinned: Box<[CachePadded<AtomicBool>]>,
    stats: EsysStats,
}

impl EpochSys {
    /// Formats a fresh pool: ralloc heap + Montage clock.
    pub fn format(pool: PmemPool, cfg: EsysConfig) -> Arc<EpochSys> {
        let ralloc = Ralloc::format(pool.clone());
        // SAFETY: the root slots are reserved in-bounds words, and no other
        // thread touches the pool while it is being formatted.
        unsafe {
            pool.write(POff::root_slot(CLOCK_SLOT), &FIRST_EPOCH);
            pool.write(POff::root_slot(MAGIC_SLOT), &MONTAGE_MAGIC);
        }
        pool.clwb(POff::root_slot(CLOCK_SLOT));
        pool.clwb(POff::root_slot(MAGIC_SLOT));
        pool.sfence();
        Arc::new(Self::from_parts(pool, ralloc, cfg, 1))
    }

    pub(crate) fn from_parts(
        pool: PmemPool,
        ralloc: Arc<Ralloc>,
        cfg: EsysConfig,
        uid_base: u64,
    ) -> EpochSys {
        let cap = match cfg.persist {
            PersistStrategy::Buffered(n) => n,
            _ => 1,
        };
        // SAFETY: the clock slot is a reserved in-bounds word, written before
        // from_parts both at format and at recovery. Its current value is
        // durable by construction (format fences it; recovery read it from
        // the durable image), so it seeds the durable-clock mirror.
        let clock_now = unsafe { pool.read::<u64>(POff::root_slot(CLOCK_SLOT)) };
        EpochSys {
            tracker: Tracker::new(cfg.max_threads),
            buffers: Buffers::new(cfg.max_threads, cap),
            mind: Mindicator::new(cfg.max_threads),
            durable_clock: AtomicU64::new(clock_now),
            sync_requested: AtomicU64::new(0),
            next_tid: AtomicUsize::new(0),
            free_tids: Mutex::new(Vec::new()),
            uid_block: raw::AtomicU64::new(uid_base),
            uids: (0..cfg.max_threads)
                .map(|_| {
                    CachePadded::new(PerThreadUid {
                        next: raw::AtomicU64::new(0),
                        limit: raw::AtomicU64::new(0),
                    })
                })
                .collect(),
            last_epoch: (0..cfg.max_threads)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            pinned: (0..cfg.max_threads)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            stats: EsysStats::default(),
            pool,
            ralloc,
            cfg,
        }
    }

    /// Checks a pool for the Montage format magic.
    pub fn is_formatted(pool: &PmemPool) -> bool {
        // SAFETY: the magic slot is a reserved in-bounds word; reading
        // arbitrary bytes as u64 is fine.
        unsafe { pool.read::<u64>(POff::root_slot(MAGIC_SLOT)) == MONTAGE_MAGIC }
    }

    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    pub fn allocator(&self) -> &Arc<Ralloc> {
        &self.ralloc
    }

    pub fn config(&self) -> &EsysConfig {
        &self.cfg
    }

    pub fn stats(&self) -> &EsysStats {
        &self.stats
    }

    /// The application's persistent root slot (a cache line at a well-known
    /// offset, for storing e.g. a structure's metadata block offset).
    pub fn app_root(&self) -> POff {
        POff::root_slot(APP_ROOT_SLOT)
    }

    fn clock(&self) -> &AtomicU64 {
        // SAFETY: the clock slot is a reserved, 8-aligned root word accessed
        // only through this atomic view after format.
        crate::sync::from_std(unsafe { self.pool.atomic_u64(POff::root_slot(CLOCK_SLOT)) })
    }

    /// Current epoch (transient read of the persistent clock).
    #[inline]
    pub fn curr_epoch(&self) -> u64 {
        // ord(acquire): an epoch read implies visibility of the boundary
        // drains that preceded the tick (pairs with the SeqCst clock CAS).
        self.clock().load(Ordering::Acquire)
    }

    /// Durable-frontier mirror: the highest clock value whose boundary clwb
    /// is known to have reached the media. Exposed for the model-check
    /// harnesses, which assert its ordering contract (observing `d` implies
    /// every epoch `<= d - 2` write-back is visible).
    #[doc(hidden)]
    pub fn durable_epoch(&self) -> u64 {
        // ord(acquire): pairs with the winner's durable-clock release.
        self.durable_clock.load(Ordering::Acquire)
    }

    /// Oldest buffered (not yet written back) epoch of `tid`'s ring, or
    /// `u64::MAX` when empty. A model-check probe, not an API.
    #[doc(hidden)]
    pub fn debug_min_pending(&self, tid: ThreadId) -> u64 {
        self.buffers.min_pending(tid.0)
    }

    /// Size of the thread-id table this system was formatted with.
    pub fn max_threads(&self) -> usize {
        self.cfg.max_threads
    }

    /// Registers the calling thread, returning its id. Panics when
    /// `max_threads` is exceeded.
    pub fn register_thread(&self) -> ThreadId {
        self.try_register_thread().unwrap_or_else(|| {
            panic!(
                "more than max_threads={} threads registered",
                self.cfg.max_threads
            )
        })
    }

    /// Like [`EpochSys::register_thread`] but returns `None` instead of
    /// panicking when all `max_threads` ids are currently leased. Ids handed
    /// back via [`EpochSys::unregister_thread`] are reused.
    pub fn try_register_thread(&self) -> Option<ThreadId> {
        if let Some(tid) = self.free_tids.lock().pop() {
            return Some(ThreadId(tid));
        }
        // CAS loop (rather than fetch_add) so repeated over-capacity attempts
        // never push next_tid past max_threads: the counter stays an exact
        // high-water mark and `registered()` an exact drain bound.
        // ord(acquire): see the exact high-water-mark argument above.
        let mut cur = self.next_tid.load(Ordering::Acquire);
        loop {
            if cur >= self.cfg.max_threads {
                return None;
            }
            // ord(acqrel): the claimed id's slot state must be visible to
            // whoever scans `registered()`; acquire on failure re-reads.
            match self.next_tid.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(ThreadId(cur)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns a leased id to the free pool. The caller must have finished
    /// every operation on `tid` (no live [`OpGuard`]); buffered write-backs
    /// the thread left behind are still drained by the epoch advancer, so an
    /// id can be re-leased immediately without losing durability of its past
    /// work.
    pub fn unregister_thread(&self, tid: ThreadId) {
        debug_assert!(tid.0 < self.cfg.max_threads, "unregister of bogus tid");
        debug_assert_eq!(
            self.tracker.load(tid.0),
            IDLE,
            "unregister_thread with an operation in flight"
        );
        let mut free = self.free_tids.lock();
        debug_assert!(!free.contains(&tid.0), "double unregister of {tid:?}");
        free.push(tid.0);
    }

    fn registered(&self) -> usize {
        self.next_tid
            // ord(acquire): pairs with the registration CAS; the drain scan
            // must cover every handed-out id.
            .load(Ordering::Acquire)
            .min(self.cfg.max_threads)
    }

    // ---- BEGIN_OP / END_OP --------------------------------------------------

    /// `BEGIN_OP`: announces an operation in the current epoch and returns an
    /// RAII guard whose drop is `END_OP` (the paper's `BEGIN_OP_AUTOEND`).
    ///
    /// Lock freedom: the announce/validate loop only retries when the epoch
    /// clock advanced, which implies system-wide progress (paper Thm. 4.4).
    pub fn begin_op(&self, tid: ThreadId) -> OpGuard<'_> {
        // ord(relaxed): pinned[tid] is owner-only (doc on the field).
        if self.pinned[tid.0].load(Ordering::Relaxed) {
            // Nested under an EpochPin: the pin's tracker registration is
            // live, so the op only needs to move it *forward* to the current
            // clock (the same announce/validate loop; the slot moves
            // monotonically up and is never IDLE in between, so an advancer's
            // `wait_all` can neither miss the thread nor deadlock on it).
            // The guard does not own the registration — drop is a no-op.
            let epoch = loop {
                let e = self.clock().load(Ordering::SeqCst);
                if self.tracker.load(tid.0) == e {
                    break e;
                }
                self.tracker.register(tid.0, e);
                if self.clock().load(Ordering::SeqCst) == e {
                    break e;
                }
            };
            return OpGuard {
                esys: self,
                tid,
                epoch,
                owns: false,
            };
        }
        debug_assert_eq!(
            self.tracker.load(tid.0),
            IDLE,
            "nested operations are not allowed"
        );
        let epoch = loop {
            let e = self.clock().load(Ordering::SeqCst);
            self.tracker.register(tid.0, e);
            if self.clock().load(Ordering::SeqCst) == e {
                break e;
            }
        };

        // Help any waiting sync persist our older buffered payloads
        // ("at the beginning of each operation, a worker also helps to
        // persist its payloads from the previous epoch if they are needed by
        // any active sync").
        if matches!(self.cfg.persist, PersistStrategy::Buffered(_)) {
            // ord(relaxed): a hint; a missed request is caught by the next
            // boundary (sync never relies on this edge for durability).
            let want = self.sync_requested.load(Ordering::Relaxed);
            if want != 0 && self.buffers.min_pending(tid.0) < epoch {
                let min = self
                    .buffers
                    .drain_persist_upto(&self.pool, tid.0, epoch - 1);
                self.mind.publish(tid.0, min);
            }
        }

        // Worker-local reclamation (the "+LocalFree" configuration).
        if self.cfg.free == FreeStrategy::WorkerLocal {
            // ord(relaxed): last_epoch[tid] is owner-only.
            let last = self.last_epoch[tid.0].swap(epoch, Ordering::Relaxed);
            if epoch > last {
                // The frontier scan runs *after* the announce/validate loop
                // confirmed clock == epoch, so every thread still registered
                // in an older epoch is visible to it (see `reclaim_limit`);
                // a bypassed straggler pins the frontier instead of being
                // freed out from under.
                let limit = Self::reclaim_limit(epoch, self.tracker.oldest_active());
                let blocks = self.buffers.take_free_upto(&self.pool, tid.0, limit);
                if !blocks.is_empty() {
                    self.pool.sfence();
                    for b in blocks {
                        self.ralloc.dealloc(b);
                    }
                }
            }
        }

        OpGuard {
            esys: self,
            tid,
            epoch,
            owns: true,
        }
    }

    /// Checked [`EpochSys::begin_op`]: refuses to start an operation on a
    /// pool whose fault plan has tripped, so cooperative workers unwind
    /// instead of doing doomed (never-durable) work.
    pub fn try_begin_op(&self, tid: ThreadId) -> Result<OpGuard<'_>, PmemFault> {
        self.pool.check_fault()?;
        Ok(self.begin_op(tid))
    }

    /// The pool's pending fault, if its fault plan has tripped.
    #[inline]
    pub fn fault(&self) -> Option<PmemFault> {
        self.pool.fault()
    }

    /// Pins the calling thread into the epoch system so that a whole *batch*
    /// of operations shares one announce/validate window: while the pin is
    /// held, `begin_op(tid)` takes a cheap nested path (no tracker
    /// register/unregister churn, no per-op `DirWB` fence) and `end_op` is
    /// deferred to the pin's drop. This is the group-commit primitive: N
    /// front-end requests ride one epoch window and the caller issues one
    /// shared `sync` after dropping the pin.
    ///
    /// Semantics:
    /// - Nested ops re-register **forward** to the current clock, so payload
    ///   epochs stay current and the advancer is never blocked on a stale
    ///   epoch longer than one tick: a pinned thread bounds the clock to at
    ///   most two adjacent epochs between nested ops, which is exactly the
    ///   consistent-prefix window group commit promises.
    /// - `sync`/`try_sync`/`advance_epoch` **should not** be called by the
    ///   pinning thread while the pin is held: they complete (the bounded
    ///   advance bypasses the pin's own slot after the grace window) but
    ///   every boundary they drive pays the full grace spin on it. Drop the
    ///   pin first (the server's batch loop treats every explicit `sync` as
    ///   a batch-cut point for this reason).
    /// - Dropping the pin issues the deferred `DirWB` fence (if configured)
    ///   and unregisters the thread; it does **not** sync. Buffered payloads
    ///   drain at the next boundary exactly as for unpinned ops.
    pub fn pin_epoch(&self, tid: ThreadId) -> EpochPin<'_> {
        debug_assert_eq!(
            self.tracker.load(tid.0),
            IDLE,
            "pin_epoch inside an operation"
        );
        debug_assert!(
            // ord(relaxed): owner-only flag.
            !self.pinned[tid.0].load(Ordering::Relaxed),
            "pin_epoch while already pinned"
        );
        let epoch = loop {
            let e = self.clock().load(Ordering::SeqCst);
            self.tracker.register(tid.0, e);
            if self.clock().load(Ordering::SeqCst) == e {
                break e;
            }
        };

        // Same cooperative duties as BEGIN_OP, hoisted to once per batch:
        // help a waiting sync persist our older buffered payloads, and run
        // worker-local reclamation.
        if matches!(self.cfg.persist, PersistStrategy::Buffered(_)) {
            // ord(relaxed): a hint; a missed request is caught by the next
            // boundary (sync never relies on this edge for durability).
            let want = self.sync_requested.load(Ordering::Relaxed);
            if want != 0 && self.buffers.min_pending(tid.0) < epoch {
                let min = self
                    .buffers
                    .drain_persist_upto(&self.pool, tid.0, epoch - 1);
                self.mind.publish(tid.0, min);
            }
        }
        if self.cfg.free == FreeStrategy::WorkerLocal {
            // ord(relaxed): last_epoch[tid] is owner-only.
            let last = self.last_epoch[tid.0].swap(epoch, Ordering::Relaxed);
            if epoch > last {
                // The frontier scan runs *after* the announce/validate loop
                // confirmed clock == epoch, so every thread still registered
                // in an older epoch is visible to it (see `reclaim_limit`);
                // a bypassed straggler pins the frontier instead of being
                // freed out from under.
                let limit = Self::reclaim_limit(epoch, self.tracker.oldest_active());
                let blocks = self.buffers.take_free_upto(&self.pool, tid.0, limit);
                if !blocks.is_empty() {
                    self.pool.sfence();
                    for b in blocks {
                        self.ralloc.dealloc(b);
                    }
                }
            }
        }

        // ord(relaxed): owner-only flag.
        self.pinned[tid.0].store(true, Ordering::Relaxed);
        EpochPin {
            esys: self,
            tid,
            epoch,
        }
    }

    /// Checked [`EpochSys::pin_epoch`]: refuses to pin on a pool whose fault
    /// plan has tripped (mirrors [`EpochSys::try_begin_op`]).
    pub fn try_pin_epoch(&self, tid: ThreadId) -> Result<EpochPin<'_>, PmemFault> {
        self.pool.check_fault()?;
        Ok(self.pin_epoch(tid))
    }

    fn end_op(&self, tid: ThreadId) {
        if self.cfg.persist == PersistStrategy::DirWB {
            self.pool.sfence();
        }
        self.tracker.unregister(tid.0);
    }

    /// `CHECK_EPOCH`: fails if the clock moved past the operation's epoch.
    #[inline]
    pub fn check_epoch(&self, g: &OpGuard<'_>) -> Result<(), EpochChanged> {
        let cur = self.clock().load(Ordering::SeqCst);
        if cur == g.epoch {
            Ok(())
        } else {
            Err(EpochChanged {
                op_epoch: g.epoch,
                current_epoch: cur,
            })
        }
    }

    // ---- uid allocation ------------------------------------------------------

    fn next_uid(&self, tid: usize) -> u64 {
        let slot = &self.uids[tid];
        // ord(relaxed): per-thread slot, owner-only (uninstrumented atomics).
        let next = slot.next.load(Ordering::Relaxed);
        if next < slot.limit.load(Ordering::Relaxed) {
            slot.next.store(next + 1, Ordering::Relaxed);
            next
        } else {
            // ord(counter): unique-block handout; no data published via it.
            let base = self.uid_block.fetch_add(UID_BLOCK, Ordering::Relaxed);
            slot.next.store(base + 1, Ordering::Relaxed);
            slot.limit.store(base + UID_BLOCK, Ordering::Relaxed);
            base
        }
    }

    // ---- payload operations ---------------------------------------------------

    fn osn_check(&self, g: &OpGuard<'_>, blk: POff) -> Result<(), OldSeeNewException> {
        self.pool.touch(); // NVM payload dereference
        let pe = Header::epoch(&self.pool, blk);
        if pe > g.epoch {
            Err(OldSeeNewException {
                op_epoch: g.epoch,
                payload_epoch: pe,
            })
        } else {
            Ok(())
        }
    }

    fn record_persist(&self, tid: usize, epoch: u64, blk: POff, len: u32) {
        match self.cfg.persist {
            PersistStrategy::Buffered(_) => {
                let before = self.buffers.coalesced_lines(tid);
                // The revalidation closure defeats coalescing against an
                // entry whose boundary already ran: if the clock has moved
                // past this op's epoch, the covering entry may have drained
                // (its lines flushed with *older* bytes), so suppressing the
                // push would leave the bytes just written never flushed —
                // lost at the next crash even though a later `sync` acked
                // them. A SeqCst clock read is exact: while it still returns
                // `epoch`, no boundary for `epoch` has published, so a
                // dedup-hit entry is still resident and will flush our bytes.
                let min = self
                    .buffers
                    .push_persist(&self.pool, tid, epoch, blk, len, || {
                        self.clock().load(Ordering::SeqCst) == epoch
                    });
                // Owner-read delta, so the count is exact per push.
                let saved = self.buffers.coalesced_lines(tid) - before;
                if saved > 0 {
                    // ord(counter): stats tally.
                    self.stats
                        .flushes_coalesced
                        .fetch_add(saved, Ordering::Relaxed);
                }
                self.mind.publish(tid, min);
            }
            // lint: allow(flush-no-fence): DirWB defers the fence to the epoch boundary, like the buffered path; the clock-CAS/mirror ordering at that boundary is model-checked by interleave's harness_epoch
            PersistStrategy::DirWB => self.pool.clwb_range(blk, len as usize),
            PersistStrategy::None => {}
        }
    }

    /// `PNEW`: creates a payload holding `val`, labelled with the operation's
    /// epoch and the given user type tag (used to route payloads to the
    /// right structure during recovery).
    pub fn pnew<T: Copy>(&self, g: &OpGuard<'_>, tag: u16, val: &T) -> PHandle<T> {
        let size = std::mem::size_of::<T>();
        debug_assert!(
            std::mem::align_of::<T>() <= 16,
            "payload alignment > 16 unsupported"
        );
        let blk = self.ralloc.alloc(HDR_SIZE + size);
        // SAFETY: `blk` was sized HDR_SIZE + size above and is still
        // thread-private; T: Copy rules out drop obligations.
        unsafe { self.pool.write(Header::data(blk), val) };
        // The header seals *after* the data lands: its checksum covers the
        // data bytes as stored (read back from the pool, so `T`'s padding
        // bytes checksum exactly as written), which lets recovery quarantine
        // a torn payload whose header line persisted but data lines did not.
        Header::write_new(
            &self.pool,
            blk,
            PayloadKind::Alloc,
            tag,
            g.epoch,
            self.next_uid(g.tid.0),
            size as u32,
            Header::data_sum_pooled(&self.pool, blk, size as u32),
        );
        self.record_persist(g.tid.0, g.epoch, blk, (HDR_SIZE + size) as u32);
        // ord(counter): stats tally.
        self.stats.pnews.fetch_add(1, Ordering::Relaxed);
        PHandle::from_raw(blk)
    }

    /// `PNEW` for runtime-sized byte payloads.
    pub fn pnew_bytes(&self, g: &OpGuard<'_>, tag: u16, bytes: &[u8]) -> PHandle<[u8]> {
        let blk = self.ralloc.alloc(HDR_SIZE + bytes.len());
        self.pool.write_bytes(Header::data(blk), bytes);
        Header::write_new(
            &self.pool,
            blk,
            PayloadKind::Alloc,
            tag,
            g.epoch,
            self.next_uid(g.tid.0),
            bytes.len() as u32,
            Header::data_sum(bytes),
        );
        self.record_persist(g.tid.0, g.epoch, blk, (HDR_SIZE + bytes.len()) as u32);
        // ord(counter): stats tally.
        self.stats.pnews.fetch_add(1, Ordering::Relaxed);
        PHandle::from_raw(blk)
    }

    /// `get`: reads the payload by value (old-see-new alert enabled).
    pub fn read<T: Copy>(&self, g: &OpGuard<'_>, h: PHandle<T>) -> Result<T, OldSeeNewException> {
        self.osn_check(g, h.blk)?;
        // SAFETY: a live PHandle<T> points at a payload of size_of::<T>()
        // bytes written by pnew/set; payload reads are race-free per the
        // paper's well-formedness constraint 2.
        Ok(unsafe { self.pool.read(Header::data(h.blk)) })
    }

    /// `get_unsafe`: reads without the old-see-new alert.
    pub fn read_unsafe<T: Copy>(&self, h: PHandle<T>) -> T {
        self.pool.touch(); // NVM payload dereference
                           // SAFETY: same payload-validity argument as `read`; the caller opts
                           // out of the old-see-new alert, not of memory safety.
        unsafe { self.pool.read(Header::data(h.blk)) }
    }

    /// Borrowing read: runs `f` on a reference into the payload. Safe under
    /// the paper's well-formedness constraint 2 (payload accesses are
    /// race-free because synchronization happens on transient state).
    pub fn peek<T: Copy, R>(
        &self,
        g: &OpGuard<'_>,
        h: PHandle<T>,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R, OldSeeNewException> {
        self.osn_check(g, h.blk)?;
        // SAFETY: the payload holds a valid T (see `read`), and the borrow
        // ends when `f` returns, before any epoch can retire the block.
        Ok(f(unsafe { &*self.pool.at::<T>(Header::data(h.blk)) }))
    }

    /// Borrowing read of a byte payload.
    pub fn peek_bytes<R>(
        &self,
        g: &OpGuard<'_>,
        h: PHandle<[u8]>,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, OldSeeNewException> {
        self.osn_check(g, h.blk)?;
        let size = Header::size(&self.pool, h.blk) as usize;
        // SAFETY: the header records the payload's byte length, so the slice
        // covers exactly the initialized data area; the borrow ends with `f`.
        let ptr = unsafe { self.pool.at::<u8>(Header::data(h.blk)) };
        Ok(f(unsafe { std::slice::from_raw_parts(ptr, size) }))
    }

    /// Byte-payload read without the old-see-new alert.
    pub fn peek_bytes_unsafe<R>(&self, h: PHandle<[u8]>, f: impl FnOnce(&[u8]) -> R) -> R {
        self.pool.touch(); // NVM payload dereference
        let size = Header::size(&self.pool, h.blk) as usize;
        // SAFETY: same slice-validity argument as `peek_bytes`.
        let ptr = unsafe { self.pool.at::<u8>(Header::data(h.blk)) };
        f(unsafe { std::slice::from_raw_parts(ptr, size) })
    }

    /// `set`: applies `f` to the payload. In place when the payload already
    /// carries the operation's epoch; otherwise Montage clones it into the
    /// current epoch (`UPDATE` payload, same uid) and retires the old
    /// version. **The caller must replace every stored handle with the
    /// returned one** (paper constraint 4).
    #[must_use = "set may return a new handle that must replace the old one"]
    pub fn set<T: Copy>(
        &self,
        g: &OpGuard<'_>,
        h: PHandle<T>,
        f: impl FnOnce(&mut T),
    ) -> Result<PHandle<T>, OldSeeNewException> {
        self.set_raw(g, h.blk, |pool, data| {
            // SAFETY: `data` points at a valid T (see `read`); set_raw runs
            // under the operation guard, and constraint 2 makes payload
            // access exclusive, so the &mut cannot alias.
            f(unsafe { &mut *pool.at::<T>(data) })
        })
        .map(PHandle::from_raw)
    }

    /// `set` for byte payloads.
    #[must_use = "set may return a new handle that must replace the old one"]
    pub fn set_bytes(
        &self,
        g: &OpGuard<'_>,
        h: PHandle<[u8]>,
        f: impl FnOnce(&mut [u8]),
    ) -> Result<PHandle<[u8]>, OldSeeNewException> {
        let size = Header::size(&self.pool, h.blk) as usize;
        self.set_raw(g, h.blk, |pool, data| {
            // SAFETY: `size` comes from the payload header, and exclusive
            // payload access (constraint 2) makes the &mut slice unique.
            let ptr = unsafe { pool.at::<u8>(data) };
            f(unsafe { std::slice::from_raw_parts_mut(ptr, size) })
        })
        .map(PHandle::from_raw)
    }

    fn set_raw(
        &self,
        g: &OpGuard<'_>,
        blk: POff,
        apply: impl FnOnce(&PmemPool, POff),
    ) -> Result<POff, OldSeeNewException> {
        self.osn_check(g, blk)?;
        let pe = Header::epoch(&self.pool, blk);
        let size = Header::size(&self.pool, blk);
        let total = HDR_SIZE as u32 + size;
        if pe == g.epoch || self.cfg.persist == PersistStrategy::None {
            // Hot payload (or Montage(T), where epochs never move): update in
            // place.
            apply(&self.pool, Header::data(blk));
            // `apply` stores through a raw pointer the sanitizer cannot see;
            // declare the whole data extent dirty before queueing its flush.
            self.pool.san_mark_dirty(Header::data(blk), size as usize);
            // Re-derive the header checksum over the bytes `apply` just
            // stored, so a crash that persists this set's data lines only
            // partially is caught at recovery (the extent rides the same
            // boundary flush as the header line).
            Header::reseal(&self.pool, blk);
            self.record_persist(g.tid.0, g.epoch, blk, total);
            // ord(counter): stats tally.
            self.stats.sets_in_place.fetch_add(1, Ordering::Relaxed);
            Ok(blk)
        } else {
            // Copy-on-write into the current epoch.
            let nblk = self.ralloc.alloc(total as usize);
            // SAFETY: `blk` is a live payload of `total` bytes and `nblk` a
            // distinct fresh block of the same size — no overlap.
            unsafe {
                // lint: allow(raw-write): the clone is declared via san_mark_dirty below and persisted by record_persist
                std::ptr::copy_nonoverlapping(
                    self.pool.at::<u8>(blk) as *const u8,
                    self.pool.at::<u8>(nblk),
                    total as usize,
                );
            }
            // The pool-to-pool copy is invisible to the sanitizer.
            self.pool.san_mark_dirty(nblk, total as usize);
            // Mutate the clone first, then seal the header over the final
            // bytes: the checksum must cover what this epoch will persist,
            // not the pre-`apply` copy.
            apply(&self.pool, Header::data(nblk));
            Header::write_new(
                &self.pool,
                nblk,
                PayloadKind::Update,
                Header::tag(&self.pool, blk),
                g.epoch,
                Header::uid(&self.pool, blk),
                size,
                Header::data_sum_pooled(&self.pool, nblk, size),
            );
            self.record_persist(g.tid.0, g.epoch, nblk, total);
            self.retire(g, blk, g.epoch);
            // ord(counter): stats tally.
            self.stats.sets_copied.fetch_add(1, Ordering::Relaxed);
            Ok(nblk)
        }
    }

    /// `set` with a size change: replaces a byte payload's contents with
    /// `bytes` (whose length may differ), keeping the payload's **uid** so
    /// the old and new versions cancel correctly at recovery — the newest
    /// epoch's record for a uid wins. This is the resize primitive a map's
    /// value update uses in place of a `pnew` + `pdelete` pair, which left
    /// two unrelated uids and with them a crash cut that recovers both the
    /// old and the new value of one key.
    #[must_use = "replace returns a new handle that must replace the old one"]
    pub fn replace_bytes(
        &self,
        g: &OpGuard<'_>,
        h: PHandle<[u8]>,
        bytes: &[u8],
    ) -> Result<PHandle<[u8]>, OldSeeNewException> {
        self.osn_check(g, h.blk)?;
        let blk = h.blk;
        let pe = Header::epoch(&self.pool, blk);
        let tag = Header::tag(&self.pool, blk);
        let uid = Header::uid(&self.pool, blk);
        let old_kind = Header::kind(&self.pool, blk).expect("replace of non-payload");
        debug_assert_ne!(
            old_kind,
            PayloadKind::Delete,
            "replace_bytes of an anti-payload"
        );
        let nblk = self.ralloc.alloc(HDR_SIZE + bytes.len());
        self.pool.write_bytes(Header::data(nblk), bytes);
        if pe == g.epoch || self.cfg.persist == PersistStrategy::None {
            // Same-epoch resize: the new block simply supersedes the old.
            // Create-then-tombstone, so no crash cut sees the uid vanish:
            // before the new block's lines land, the old version recovers;
            // in the window where both are flushed, recovery's cancel pass
            // keeps exactly one (same uid, same epoch — either content is a
            // consistent prefix of this still-unacked op); once the
            // tombstone lands, only the new one.
            Header::write_new(
                &self.pool,
                nblk,
                old_kind,
                tag,
                g.epoch,
                uid,
                bytes.len() as u32,
                Header::data_sum(bytes),
            );
            self.record_persist(g.tid.0, g.epoch, nblk, (HDR_SIZE + bytes.len()) as u32);
            // The old block may already have drained to the media earlier
            // this epoch; re-queue its tombstoned header so the invalidation
            // rides the same boundary flush.
            Header::tombstone(&self.pool, blk);
            self.record_persist(g.tid.0, g.epoch, blk, HDR_SIZE as u32);
            self.ralloc.dealloc(blk);
        } else {
            // Cross-epoch resize: an `Update` payload with the same uid in
            // the current epoch strictly supersedes the old version at
            // recovery (newest epoch wins); the old block retires on the
            // usual two-epoch schedule.
            Header::write_new(
                &self.pool,
                nblk,
                PayloadKind::Update,
                tag,
                g.epoch,
                uid,
                bytes.len() as u32,
                Header::data_sum(bytes),
            );
            self.record_persist(g.tid.0, g.epoch, nblk, (HDR_SIZE + bytes.len()) as u32);
            self.retire(g, blk, g.epoch);
        }
        // ord(counter): stats tally.
        self.stats.sets_copied.fetch_add(1, Ordering::Relaxed);
        Ok(PHandle::from_raw(nblk))
    }

    /// `PDELETE`: logically deletes a payload. The block is reclaimed only
    /// after the deletion is two epochs old; an **anti-payload** sharing the
    /// target's uid records the deletion for recovery in the meantime
    /// (paper Sec. 3.2 and Fig. 3 lines 48–60).
    pub fn pdelete<T: ?Sized>(
        &self,
        g: &OpGuard<'_>,
        h: PHandle<T>,
    ) -> Result<(), OldSeeNewException> {
        self.pdelete_raw(g, h.blk)
    }

    fn pdelete_raw(&self, g: &OpGuard<'_>, blk: POff) -> Result<(), OldSeeNewException> {
        self.osn_check(g, blk)?;
        // ord(counter): stats tally.
        self.stats.pdeletes.fetch_add(1, Ordering::Relaxed);

        if self.cfg.free == FreeStrategy::Direct {
            // Ablation mode: immediate reclamation, no anti-payload (the
            // paper's "+DirFree" — explicitly not crash-consistent).
            Header::tombstone(&self.pool, blk);
            self.ralloc.dealloc(blk);
            return Ok(());
        }

        let pe = Header::epoch(&self.pool, blk);
        if pe == g.epoch {
            match Header::kind(&self.pool, blk).expect("pdelete of non-payload") {
                PayloadKind::Alloc => {
                    // Created this epoch: discard outright. The payload may
                    // already have been written back by an overflowing
                    // buffer, so the tombstoned header must reach the
                    // boundary flush too — otherwise a crash *after* this
                    // epoch persists would resurrect it.
                    Header::tombstone(&self.pool, blk);
                    self.record_persist(g.tid.0, g.epoch, blk, HDR_SIZE as u32);
                    self.ralloc.dealloc(blk);
                }
                PayloadKind::Update => {
                    // A same-epoch copy of an older version: turn it into the
                    // anti-payload for its uid in place, and re-queue the
                    // header in case the original write-back entry already
                    // drained with the old kind. Reclamation happens one
                    // epoch after a normal retirement so the deletion record
                    // outlives the data it cancels.
                    Header::set_kind(&self.pool, blk, PayloadKind::Delete);
                    self.record_persist(g.tid.0, g.epoch, blk, HDR_SIZE as u32);
                    self.buffers
                        .push_free(&self.pool, g.tid.0, g.epoch + 1, blk);
                }
                PayloadKind::Delete => unreachable!("double pdelete of an anti-payload"),
            }
        } else {
            // Old payload: allocate an anti-payload with the same uid.
            let anti = self.ralloc.alloc(HDR_SIZE);
            Header::write_new(
                &self.pool,
                anti,
                PayloadKind::Delete,
                Header::tag(&self.pool, blk),
                g.epoch,
                Header::uid(&self.pool, blk),
                0,
                Header::data_sum(&[]),
            );
            self.record_persist(g.tid.0, g.epoch, anti, HDR_SIZE as u32);
            self.buffers
                .push_free(&self.pool, g.tid.0, g.epoch + 1, anti);
            self.retire(g, blk, g.epoch);
        }
        Ok(())
    }

    /// Schedules `blk` for reclamation two epochs after `epoch`.
    fn retire(&self, g: &OpGuard<'_>, blk: POff, epoch: u64) {
        if self.cfg.free == FreeStrategy::Direct || self.cfg.persist == PersistStrategy::None {
            Header::tombstone(&self.pool, blk);
            self.ralloc.dealloc(blk);
        } else {
            self.buffers.push_free(&self.pool, g.tid.0, epoch, blk);
        }
    }

    // ---- epoch advance and sync ------------------------------------------------

    /// Epochs ≤ this value are safe to reclaim given the current clock
    /// `epoch` and the frontier `oldest` ([`Tracker::oldest_active`]): the
    /// paper's two-epoch schedule (`epoch - 2`), further capped so that no
    /// thread still registered in epoch *o* — a bypassed straggler — can
    /// hold a reference to a freed block. A thread registered in *o* saw
    /// post-swap pointers for every retirement of epoch ≤ *o−2* (the clock
    /// could only reach *o* after those retiring ops ended), so it can hold
    /// references retired in ≥ *o−1* — which must therefore stay allocated:
    /// free only retirements ≤ *o−2*.
    ///
    /// The scan feeding `oldest` must run **after** the caller observed the
    /// clock at `epoch`: any thread registered in an older epoch announced
    /// (SeqCst) before validating that older clock value, which precedes the
    /// tick to `epoch` and hence the caller's clock read — so the scan
    /// cannot miss it. Threads registering concurrently validate at ≥
    /// `epoch` and only ever hold references retired in ≥ `epoch - 1`,
    /// which this limit never frees.
    #[inline]
    fn reclaim_limit(epoch: u64, oldest: u64) -> u64 {
        (epoch - 2).min(oldest.saturating_sub(2))
    }

    /// Advances the epoch clock by one (paper Fig. 3 `advance_epoch` plus the
    /// reclamation schedule of Sec. 3.2), **without blocking on any other
    /// thread** (nbMontage's liveness property): gives epoch *e−1* a bounded
    /// grace window to quiesce, writes back its payloads — *helping* any
    /// claimed-but-unflushed ring entry of a stalled drainer to completion
    /// instead of waiting for it — reclaims retirements behind the
    /// oldest-active frontier, fences, then bumps the clock with a CAS (so
    /// concurrent advancers race for the same tick rather than serializing
    /// behind a lock) and persists it.
    ///
    /// Bypassing a straggler is safe on every axis:
    /// - *durability of acked work*: completed ops pushed their payloads to
    ///   the rings before returning, and every pushed entry is either popped
    ///   (flushed inside the claim window) or helped here — the boundary
    ///   fence covers them all. Only the straggler's *unfinished* op can
    ///   have unflushed bytes, and unfinished ops are never acked.
    /// - *reclamation*: the straggler pins [`Tracker::oldest_active`], so
    ///   blocks it may still reference are not freed (they age in the free
    ///   buckets until it moves on).
    /// - *its own later pushes*: a bypassed op that resumes and pushes more
    ///   entries labelled *e−1* after the boundary just rides a later
    ///   boundary; its `sync` (and hence any ack) waits for that one.
    pub fn advance_epoch(&self) {
        if self.cfg.persist == PersistStrategy::None {
            return; // Montage(T): no epochs, no persistence
        }
        // ord(acquire): the boundary below must see state from the advance
        // that published e (pairs with the SeqCst clock CAS).
        let e = self.clock().load(Ordering::Acquire);
        let stragglers = self
            .tracker
            .wait_all_bounded(e - 1, self.cfg.advance_grace_spins);

        let n = self.registered();
        // Write back all payloads of epoch e-1. The mindicator (a monotone,
        // owner-published hint — it may lag low, never high) gates the pass
        // wholesale; within it, the per-thread lock-free ring scan is exact,
        // so untouched threads cost four atomic loads and no drain. The
        // advancer never publishes to the mindicator: only owners do, which
        // removes the old stale-overwrite race between a drainer's publish
        // and a concurrent owner push.
        if self.mind.min() < e {
            for t in 0..n {
                if self.buffers.min_pending(t) < e {
                    self.buffers.drain_persist_upto(&self.pool, t, e - 1);
                }
            }
        }

        // Reclaim retirements behind the frontier (tombstones join this
        // boundary's flush batch; deallocation happens after the fence).
        // The frontier scan is exact for epochs < e because we read the
        // clock at e above (see `reclaim_limit`).
        let mut reclaimed = Vec::new();
        if self.cfg.free == FreeStrategy::Background {
            let limit = Self::reclaim_limit(e, self.tracker.oldest_active());
            for t in 0..n {
                reclaimed.extend(self.buffers.take_free_upto(&self.pool, t, limit));
            }
        }

        // Help any claimed-but-unreleased ring entry to completion before
        // fencing: a consumer (BEGIN_OP helper, concurrent advancer, or
        // overflow pop) flushes *inside* its claim window, so an entry still
        // claimed may not have been written back yet. Rather than waiting
        // for the claimant — it may be parked mid-pop forever — re-issue its
        // clwb from the published (off, len) and CAS the slot released.
        // Duplicate clwbs are idempotent; the CAS makes the release exact.
        // The claim census makes the common case one atomic load: it reads
        // zero only when no pop pass can be parked inside a claim window
        // (see the soundness note in `buffers.rs`), which is every boundary
        // of a healthy run — the full slot scan is reserved for boundaries
        // that actually have a straggling drainer to help.
        if self.buffers.claims_open() {
            for t in 0..n {
                self.buffers.help_drainers(&self.pool, t);
            }
        }

        self.pool.sfence();
        // This fence is the boundary that declares epoch e-1 durable; under
        // `persist-san`, assert that no tracked store from before the
        // previous boundary is still unflushed (no-op otherwise). A bypassed
        // straggler parked mid-op may legitimately hold dirty lines it has
        // not pushed yet (they belong to an unfinished, unacked op), so the
        // assertion only runs on quiescent boundaries.
        if stragglers == 0 {
            self.pool.san_epoch_boundary();
        }

        // Now everything labelled <= e-1 is durable: publish epoch e+1. The
        // CAS admits exactly one winner per tick; a loser raced another
        // advancer over the same boundary, whose winner does the publishing
        // (both performed the same drains, so the boundary's guarantees hold
        // either way).
        if self
            .clock()
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            // The clock store is an atomic the sanitizer cannot see.
            self.pool
                .san_mark_dirty(POff::root_slot(CLOCK_SLOT), std::mem::size_of::<u64>());
            self.pool.clwb(POff::root_slot(CLOCK_SLOT));
            self.pool.sfence();
            // Publish the durable frontier — but only on a healthy pool: a
            // tripped fault plan dropped the clwb above, so claiming e+1
            // durable would let a `sync` ack work the media never saw. The
            // clwb flushes the clock line's *current* value (≥ e+1), so a
            // winner parked between its CAS and its clwb is covered by the
            // next winner's flush; fetch_max keeps the mirror monotone.
            if self.pool.check_fault().is_ok() {
                // ord(acqrel): release — a syncer that acquires the mirror
                // must see every drain and fence of this boundary; acquire —
                // keep the monotone max exact against racing winners.
                self.durable_clock
                    .fetch_max(e + 1, weaken("esys.durable.mirror", Ordering::AcqRel));
            }
            // ord(counter): stats tally.
            self.stats.advances.fetch_add(1, Ordering::Relaxed);
        }

        for blk in reclaimed {
            self.ralloc.dealloc(blk);
        }
    }

    /// `sync`: returns once every operation that completed before the call
    /// is durable — "request and wait for two-epoch advance". The caller
    /// helps perform the write-backs itself (it drives `advance_epoch`), so
    /// sync latency does not depend on the background advancer's period.
    ///
    /// **Bounded** (nbMontage's sync property): each `advance_epoch` this
    /// loop drives completes in a bounded number of steps no matter what any
    /// other thread does — a stalled peer is helped and bypassed, never
    /// waited on — and each iteration either wins the tick (raising the
    /// durable clock) or loses it to a concurrent advancer (the clock grew;
    /// at most `max_threads` winners can park pre-publish before a win is
    /// ours). One session's parked or dead thread therefore cannot stall
    /// another session's `sync`.
    ///
    /// Must be called **outside** any operation (as with `fsync`, you sync
    /// after the operation returns); a sync *inside* an op completes — the
    /// bounded advance bypasses the caller's own registration after the
    /// grace window — but each boundary it drives pays the full grace spin,
    /// so keep it off hot paths and prefer ending the op first.
    pub fn sync(&self) {
        // On a poisoned pool "persistent" is unachievable; degrading to a
        // no-op (rather than panicking or spinning) matches what the caller
        // can still do about it: nothing. Checked callers use `try_sync`.
        let _ = self.try_sync();
    }

    /// Checked [`EpochSys::sync`]: reports [`PmemFault::Crashed`] instead of
    /// returning success when the pool's fault plan trips, since a crashed
    /// pool can never make the remaining buffered work durable. The fault is
    /// re-checked every advance so a plan tripping *mid-sync* also unwinds.
    pub fn try_sync(&self) -> Result<(), PmemFault> {
        self.try_sync_deadline(None).map(|done| {
            debug_assert!(done, "unbounded sync cannot time out");
        })
    }

    /// [`EpochSys::try_sync`] with a wall-clock deadline: returns
    /// `Ok(false)` if the durable clock has not crossed the target by
    /// `deadline` (checked between advances, so the overshoot is bounded by
    /// one advance). The sync makes real progress up to the deadline —
    /// advances it drove stay driven — it just stops *waiting*; the caller
    /// keeps no durability claim for operations acked before the call.
    /// `None` waits forever (the plain `try_sync` contract).
    pub fn try_sync_deadline(
        &self,
        deadline: Option<std::time::Instant>,
    ) -> Result<bool, PmemFault> {
        if self.cfg.persist == PersistStrategy::None {
            return Ok(true);
        }
        // ord(counter): stats tally.
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        let target = self.clock().load(Ordering::SeqCst);
        // ord(relaxed): helper hint only; durability rides the durable-clock
        // acquire below, never this edge.
        self.sync_requested.fetch_max(target, Ordering::Relaxed);
        // Wait on the *durable* clock, not the transient one: the clock can
        // run ahead of the media when an advance winner parks between its
        // clock store and its clwb, and "durable" must mean the closing
        // tick actually reached the durable image.
        // ord(acquire): pairs with the winner's durable-clock release; the
        // caller's durability claim covers the boundary's write-backs.
        while self.durable_clock.load(Ordering::Acquire) < target + 2 {
            if let Err(f) = self.pool.check_fault() {
                // ord(relaxed): hint cleanup; no data rides this edge.
                let _ = self.sync_requested.compare_exchange(
                    target,
                    0,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return Err(f);
            }
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                // ord(relaxed): hint cleanup; no data rides this edge.
                let _ = self.sync_requested.compare_exchange(
                    target,
                    0,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return Ok(false);
            }
            self.advance_epoch();
        }
        // Clear the helping hint if we were the outermost sync.
        // ord(relaxed): hint cleanup; no data rides this edge.
        let _ =
            self.sync_requested
                .compare_exchange(target, 0, Ordering::Relaxed, Ordering::Relaxed);
        // A plan tripping *at the very end* of the last advance (after its
        // durable-clock publish) can still have dropped flushes the caller
        // cares about. Durability can only be claimed on a pool that is
        // still healthy now.
        self.pool.check_fault().map(|()| true)
    }
}

/// RAII operation scope: created by [`EpochSys::begin_op`]; drop is `END_OP`.
pub struct OpGuard<'a> {
    esys: &'a EpochSys,
    tid: ThreadId,
    epoch: u64,
    /// Whether this guard owns the tracker registration. Nested guards
    /// created under an [`EpochPin`] do not — END_OP belongs to the pin.
    owns: bool,
}

impl OpGuard<'_> {
    /// The epoch this operation is registered in.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The registered thread id.
    #[inline]
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        if self.owns {
            self.esys.end_op(self.tid);
        }
    }
}

/// RAII epoch pin: created by [`EpochSys::pin_epoch`]; while held, the
/// thread's `begin_op`s are nested (non-owning) and END_OP is deferred to
/// this pin's drop. See `pin_epoch` for the full contract.
pub struct EpochPin<'a> {
    esys: &'a EpochSys,
    tid: ThreadId,
    epoch: u64,
}

impl EpochPin<'_> {
    /// The epoch the pin was taken in. Nested ops may run in later epochs
    /// (they re-register forward); this is the *floor* of the batch window.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned thread id.
    #[inline]
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        // ord(relaxed): owner-only flag.
        self.esys.pinned[self.tid.0].store(false, Ordering::Relaxed);
        self.esys.end_op(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn sys(cfg: EsysConfig) -> Arc<EpochSys> {
        EpochSys::format(PmemPool::new(PmemConfig::strict_for_test(32 << 20)), cfg)
    }

    #[test]
    fn format_starts_at_first_epoch() {
        let s = sys(EsysConfig::default());
        assert_eq!(s.curr_epoch(), FIRST_EPOCH);
        assert!(EpochSys::is_formatted(s.pool()));
    }

    #[test]
    fn pnew_read_roundtrip() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let g = s.begin_op(tid);
        let h = s.pnew(&g, 3, &0x1234_5678u64);
        assert_eq!(s.read(&g, h).unwrap(), 0x1234_5678);
        assert_eq!(s.read_unsafe(h), 0x1234_5678);
    }

    #[test]
    fn bytes_roundtrip() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let g = s.begin_op(tid);
        let h = s.pnew_bytes(&g, 1, b"hello montage");
        s.peek_bytes(&g, h, |b| assert_eq!(b, b"hello montage"))
            .unwrap();
    }

    #[test]
    fn set_in_same_epoch_is_in_place() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let g = s.begin_op(tid);
        let h = s.pnew(&g, 0, &1u64);
        let h2 = s.set(&g, h, |v| *v = 2).unwrap();
        assert_eq!(h, h2, "same epoch: no copy");
        assert_eq!(s.read(&g, h2).unwrap(), 2);
        assert_eq!(s.stats().sets_in_place.load(Ordering::Relaxed), 1);
        assert_eq!(s.stats().sets_copied.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn set_across_epochs_copies_and_keeps_uid() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let h = {
            let g = s.begin_op(tid);
            s.pnew(&g, 0, &1u64)
        };
        let uid_before = Header::uid(s.pool(), h.raw());
        s.advance_epoch();
        let g = s.begin_op(tid);
        let h2 = s.set(&g, h, |v| *v = 9).unwrap();
        assert_ne!(h, h2, "different epoch: copy-on-write");
        assert_eq!(Header::uid(s.pool(), h2.raw()), uid_before);
        assert_eq!(Header::kind(s.pool(), h2.raw()), Some(PayloadKind::Update));
        assert_eq!(s.read(&g, h2).unwrap(), 9);
        assert_eq!(
            s.read_unsafe::<u64>(PHandle::from_raw(h.raw())),
            1,
            "old version untouched"
        );
    }

    #[test]
    fn epoch_advance_moves_clock_and_persists() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        {
            let g = s.begin_op(tid);
            let _ = s.pnew(&g, 0, &7u64);
        }
        let e0 = s.curr_epoch();
        s.advance_epoch();
        s.advance_epoch();
        assert_eq!(s.curr_epoch(), e0 + 2);
        // After two advances, the payload's write-back has been issued.
        assert!(s.pool().stats().snapshot().clwbs > 0);
    }

    #[test]
    fn sync_advances_clock_two_epochs() {
        let s = sys(EsysConfig::default());
        let e0 = s.curr_epoch();
        s.sync();
        assert!(s.curr_epoch() >= e0 + 2);
    }

    #[test]
    fn check_epoch_detects_advance() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let g = s.begin_op(tid);
        assert!(s.check_epoch(&g).is_ok());
        // Advance concurrently (the guard is in epoch e; advance waits only
        // for e-1, so this cannot deadlock).
        s.advance_epoch();
        assert!(s.check_epoch(&g).is_err());
    }

    #[test]
    fn old_see_new_raised() {
        let s = sys(EsysConfig::default());
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        // Op A registers in epoch e.
        let ga = s.begin_op(t0);
        // Clock moves to e+1; op B creates a payload there.
        s.advance_epoch();
        let gb = s.begin_op(t1);
        let h = s.pnew(&gb, 0, &1u64);
        drop(gb);
        // A (still in epoch e) now sees a payload from e+1.
        let err = s.read(&ga, h).unwrap_err();
        assert_eq!(err.op_epoch + 1, err.payload_epoch);
        assert_eq!(s.read_unsafe(h), 1, "get_unsafe bypasses the alert");
    }

    #[test]
    fn pdelete_same_epoch_alloc_reclaims_immediately() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let g = s.begin_op(tid);
        let h = s.pnew(&g, 0, &1u64);
        let deallocs_before = s.allocator().stats().deallocs.load(Ordering::Relaxed);
        s.pdelete(&g, h).unwrap();
        assert_eq!(
            s.allocator().stats().deallocs.load(Ordering::Relaxed),
            deallocs_before + 1
        );
    }

    #[test]
    fn pdelete_old_payload_creates_anti_payload() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let h = {
            let g = s.begin_op(tid);
            s.pnew(&g, 0, &1u64)
        };
        s.advance_epoch();
        let pnews = s.stats().pnews.load(Ordering::Relaxed);
        {
            let g = s.begin_op(tid);
            s.pdelete(&g, h).unwrap();
        }
        // No new pnew counted, but an extra allocation happened (the anti).
        assert_eq!(s.stats().pnews.load(Ordering::Relaxed), pnews);
        assert!(s.allocator().stats().allocs.load(Ordering::Relaxed) >= 2);
        // The original payload is still readable until reclamation.
        assert_eq!(s.read_unsafe::<u64>(h), 1);
    }

    #[test]
    fn reclamation_happens_two_epochs_later() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let h = {
            let g = s.begin_op(tid);
            s.pnew(&g, 0, &1u64)
        };
        s.advance_epoch();
        let e_del = {
            let g = s.begin_op(tid);
            s.pdelete(&g, h).unwrap();
            g.epoch()
        };
        let d0 = s.allocator().stats().deallocs.load(Ordering::Relaxed);
        // Advance until the end of epoch e_del+2, when the retirement of
        // e_del is reclaimed.
        while s.curr_epoch() <= e_del + 2 {
            s.advance_epoch();
        }
        let d1 = s.allocator().stats().deallocs.load(Ordering::Relaxed);
        assert!(d1 > d0, "payload reclaimed at the two-epoch boundary");
        assert_eq!(
            Header::magic(s.pool(), h.raw()),
            crate::payload::MAGIC_TOMBSTONE,
            "reclaimed block is tombstoned"
        );
    }

    #[test]
    fn transient_mode_never_flushes() {
        let s = sys(EsysConfig::transient());
        let tid = s.register_thread();
        {
            let g = s.begin_op(tid);
            let h = s.pnew(&g, 0, &1u64);
            let h = s.set(&g, h, |v| *v = 2).unwrap();
            s.pdelete(&g, h).unwrap();
        }
        s.advance_epoch();
        s.sync();
        let snap = s.pool().stats().snapshot();
        let clwbs = snap.clwbs;
        let fences = snap.sfences;
        // Formatting issued a handful; ops must add none beyond ralloc's
        // superblock carve (1 flush-pair).
        assert!(clwbs <= 6, "transient mode flushed {clwbs} lines");
        assert!(fences <= 4);
    }

    #[test]
    fn dirwb_flushes_eagerly() {
        let s = sys(EsysConfig {
            persist: PersistStrategy::DirWB,
            ..Default::default()
        });
        let tid = s.register_thread();
        let before = s.pool().stats().snapshot().clwbs;
        {
            let g = s.begin_op(tid);
            let _ = s.pnew(&g, 0, &[0u8; 256]);
        }
        let after = s.pool().stats().snapshot().clwbs;
        assert!(after > before, "DirWB writes back at the operation");
    }

    #[test]
    fn buffered_defers_flushes_until_boundary() {
        let s = sys(EsysConfig::buffered(64));
        let tid = s.register_thread();
        {
            // Warm-up: carve the size class's superblock (which flushes its
            // descriptor once) so the measurement below sees payloads only.
            let g = s.begin_op(tid);
            let _ = s.pnew(&g, 0, &0u64);
        }
        let base = s.pool().stats().snapshot().clwbs;
        {
            let g = s.begin_op(tid);
            for i in 0..10u64 {
                let _ = s.pnew(&g, 0, &i);
            }
        }
        assert_eq!(
            s.pool().stats().snapshot().clwbs,
            base,
            "no flush before boundary"
        );
        s.advance_epoch();
        s.advance_epoch();
        assert!(s.pool().stats().snapshot().clwbs > base);
    }

    #[test]
    fn same_payload_sets_coalesce_to_one_boundary_flush() {
        let s = sys(EsysConfig::buffered(64));
        let tid = s.register_thread();
        {
            // Warm-up: carve the size class's superblock so the measurement
            // below sees payload flushes only.
            let g = s.begin_op(tid);
            let _ = s.pnew(&g, 0, &0u64);
        }
        s.advance_epoch();
        s.advance_epoch();
        let base = s.pool().stats().snapshot().clwbs;
        let blk = {
            let g = s.begin_op(tid);
            let mut h = s.pnew(&g, 0, &0u64);
            for i in 1..=8u64 {
                h = s.set(&g, h, |v| *v = i).unwrap();
            }
            h.raw()
        };
        assert_eq!(s.stats().sets_in_place.load(Ordering::Relaxed), 8);
        s.advance_epoch();
        s.advance_epoch();
        let payload_lines = pmem::lines_spanned(blk.raw(), HDR_SIZE + 8);
        // The nine same-extent writes (PNEW + 8 in-place sets) boil down to
        // ONE buffered entry; the only other flushes are the two boundary
        // clock-line write-backs.
        assert_eq!(s.pool().stats().snapshot().clwbs - base, payload_lines + 2);
        assert_eq!(
            s.stats().flushes_coalesced.load(Ordering::Relaxed),
            8 * payload_lines,
            "each of the eight sets skipped the payload's line extent"
        );
    }

    #[test]
    fn buffer_overflow_writes_back_incrementally() {
        let s = sys(EsysConfig::buffered(2));
        let tid = s.register_thread();
        let base = s.pool().stats().snapshot().clwbs;
        {
            let g = s.begin_op(tid);
            for i in 0..5u64 {
                let _ = s.pnew(&g, 0, &i);
            }
        }
        assert!(
            s.pool().stats().snapshot().clwbs > base,
            "overflowing a 2-entry buffer must write back incrementally"
        );
    }

    #[test]
    fn uid_uniqueness_across_threads() {
        let s = sys(EsysConfig::default());
        let mut handles = vec![];
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut uids = vec![];
                for i in 0..500u64 {
                    let g = s.begin_op(tid);
                    let h = s.pnew(&g, 0, &i);
                    uids.push(Header::uid(s.pool(), h.raw()));
                }
                uids
            }));
        }
        let mut all = std::collections::HashSet::new();
        for h in handles {
            for uid in h.join().unwrap() {
                assert!(all.insert(uid), "duplicate uid");
            }
        }
    }

    #[test]
    fn thread_ids_are_reusable_after_unregister() {
        let s = sys(EsysConfig {
            max_threads: 4,
            ..Default::default()
        });
        // Lease every id, return them all, and lease again: no panic, and
        // the full set is reissued.
        let first: Vec<ThreadId> = (0..4).map(|_| s.register_thread()).collect();
        assert!(s.try_register_thread().is_none(), "table exhausted");
        for &tid in &first {
            s.unregister_thread(tid);
        }
        let mut again: Vec<usize> = (0..4).map(|_| s.register_thread().0).collect();
        again.sort_unstable();
        assert_eq!(again, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reused_tid_still_persists_prior_work() {
        let s = sys(EsysConfig::default());
        // Session 1 leases an id, buffers a payload, disconnects without any
        // sync of its own.
        let t = s.register_thread();
        let h = {
            let g = s.begin_op(t);
            s.pnew(&g, 9, &41u64)
        };
        s.unregister_thread(t);
        // Session 2 reuses the id; a later sync must still cover session 1's
        // buffered write-back.
        let t2 = s.register_thread();
        assert_eq!(t2, t, "freed id is reused");
        {
            let g = s.begin_op(t2);
            let _ = s.set(&g, h, |v| *v += 1).unwrap();
        }
        s.sync();
        let rec = crate::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.read::<u64>(&rec.shards[0][0]), 42);
    }

    #[test]
    fn concurrent_lease_churn_never_duplicates_ids() {
        let s = sys(EsysConfig {
            max_threads: 8,
            ..Default::default()
        });
        let held = Arc::new(Mutex::new(std::collections::HashSet::new()));
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let s = s.clone();
                let held = held.clone();
                sc.spawn(move || {
                    for _ in 0..200 {
                        let Some(tid) = s.try_register_thread() else {
                            continue;
                        };
                        assert!(held.lock().insert(tid.0), "id {tid:?} double-leased");
                        {
                            let g = s.begin_op(tid);
                            let _ = s.pnew(&g, 0, &1u64);
                        }
                        assert!(held.lock().remove(&tid.0));
                        s.unregister_thread(tid);
                    }
                });
            }
        });
    }

    #[test]
    fn pinned_ops_share_one_window_and_stay_durable() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let (h1, h2) = {
            let pin = s.pin_epoch(tid);
            // Two nested ops under one pin — without the pin the second
            // begin_op would trip the "nested operations" debug assert.
            let h1 = {
                let g = s.begin_op(tid);
                assert_eq!(g.epoch(), pin.epoch());
                s.pnew(&g, 0, &11u64)
            };
            let h2 = {
                let g = s.begin_op(tid);
                s.pnew(&g, 0, &22u64)
            };
            (h1, h2)
        };
        s.sync();
        let g = s.begin_op(tid);
        assert_eq!(s.read(&g, h1).unwrap(), 11);
        assert_eq!(s.read(&g, h2).unwrap(), 22);
        drop(g);
        let rec = crate::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        assert_eq!(rec.len(), 2, "both pinned-batch payloads recovered");
    }

    #[test]
    fn nested_op_reregisters_forward_after_advance() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        let pin = s.pin_epoch(tid);
        let e0 = pin.epoch();
        assert_eq!(s.tracker.load(tid.0), e0);
        // One advance is legal under a pin (it waits only for e0-1).
        s.advance_epoch();
        assert_eq!(s.curr_epoch(), e0 + 1);
        // The next nested op moves the registration to the new clock, so
        // payloads stay current-epoch and the advancer is unblocked again.
        {
            let g = s.begin_op(tid);
            assert_eq!(g.epoch(), e0 + 1);
        }
        assert_eq!(s.tracker.load(tid.0), e0 + 1);
        drop(pin);
        assert_eq!(s.tracker.load(tid.0), IDLE, "pin drop is END_OP");
    }

    #[test]
    fn pin_does_not_block_advances_but_pins_reclamation() {
        let s = sys(EsysConfig {
            advance_grace_spins: 64,
            ..Default::default()
        });
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        // t1 retires a payload, so there is something to reclaim.
        let h = {
            let g = s.begin_op(t1);
            s.pnew(&g, 0, &1u64)
        };
        s.advance_epoch();
        let e_del = {
            let g = s.begin_op(t1);
            s.pdelete(&g, h).unwrap();
            g.epoch()
        };
        // t0 pins and stays pinned: the old advance would spin forever on
        // its slot from the second tick on; the bounded advance bypasses it.
        let pin = s.pin_epoch(t0);
        let e_pin = pin.epoch();
        let d0 = s.allocator().stats().deallocs.load(Ordering::Relaxed);
        for _ in 0..6 {
            s.advance_epoch();
        }
        assert!(
            s.curr_epoch() >= e_pin + 6,
            "advances must complete while the pin is parked in its epoch"
        );
        // ...but the pinned thread pins the reclamation frontier: the block
        // retired at e_del (> e_pin) must not have been freed under it.
        assert_eq!(
            s.allocator().stats().deallocs.load(Ordering::Relaxed),
            d0,
            "reclamation must wait for the straggler's epoch to move"
        );
        drop(pin);
        while s.curr_epoch() <= e_del + 2 {
            s.advance_epoch();
        }
        s.advance_epoch(); // one more boundary after the frontier moved
        assert!(
            s.allocator().stats().deallocs.load(Ordering::Relaxed) > d0,
            "retirements resume reclamation once the pin drops"
        );
    }

    #[test]
    fn sync_is_not_blocked_by_a_parked_operation() {
        let s = sys(EsysConfig {
            advance_grace_spins: 64,
            ..Default::default()
        });
        let t0 = s.register_thread();
        // The victim starts an op, buffers a payload, and "parks" (the guard
        // simply stays alive while another thread syncs).
        let g = s.begin_op(t0);
        let _h = s.pnew(&g, 7, &41u64);
        let e0 = g.epoch();
        let s2 = s.clone();
        let peer = std::thread::spawn(move || s2.try_sync());
        peer.join().unwrap().unwrap();
        assert!(
            s.curr_epoch() >= e0 + 2,
            "peer sync must advance past the parked op's epoch"
        );
        // The victim's buffered write-back was helped to the media: the
        // payload (epoch e0, clock >= e0+2) survives a crash taken now.
        let rec = crate::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        assert_eq!(
            rec.len(),
            1,
            "parked op's pushed payload was helped durable"
        );
        drop(g);
    }

    #[test]
    fn guard_outside_pin_still_owns_end_op() {
        let s = sys(EsysConfig::default());
        let tid = s.register_thread();
        {
            let pin = s.pin_epoch(tid);
            drop(pin);
        }
        // After the pin is gone, begin_op owns its registration again.
        let g = s.begin_op(tid);
        assert_ne!(s.tracker.load(tid.0), IDLE);
        drop(g);
        assert_eq!(s.tracker.load(tid.0), IDLE);
    }

    #[test]
    fn concurrent_ops_and_advances() {
        let s = sys(EsysConfig::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = vec![];
        for _ in 0..3 {
            let s = s.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut h = None;
                while !stop.load(Ordering::Relaxed) {
                    let g = s.begin_op(tid);
                    match h.take() {
                        None => h = Some(s.pnew(&g, 0, &1u64)),
                        Some(old) => match s.set(&g, old, |v| *v += 1) {
                            Ok(nh) => h = Some(nh),
                            Err(_) => h = Some(old),
                        },
                    }
                }
            }));
        }
        for _ in 0..50 {
            s.advance_epoch();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
