//! Mindicator: tracks, across threads, the oldest epoch for which
//! unpersisted payloads still exist (paper Sec. 5.2, after Liu et al.,
//! "Mindicators: A scalable approach to quiescence").
//!
//! The original mindicator is a SNZI-style tree whose payoff appears at
//! hundreds of threads. At the thread counts this reproduction runs (≤ 128),
//! an exact flat scan over cache-padded per-thread slots is both faster and
//! trivially linearizable, so that is what we implement; the tree would be a
//! drop-in replacement behind the same two-method interface. Correctness
//! requirement (unlike the approximate tree): `min()` must never report a
//! value **larger** than a concurrently-published slot that was set before
//! the scan began — the flat scan with acquire loads provides this.
//!
//! **Owner-only publish discipline.** Since the write-back buffers became
//! lock-free rings, only a slot's owning thread publishes to it (after each
//! `push_persist`). Drainers — the background advancer, helping `sync`
//! callers — never publish: with two writers per slot, a drainer's "raised"
//! publish could overwrite an owner's concurrent lower publish and make
//! `min()` report too-high, skipping a needed boundary write-back. Under
//! owner-only publishing a slot can only be *stale-low* (entries drained but
//! the slot still naming their epoch), which is conservative: the advancer
//! treats the mindicator as a monotone hint and confirms against the exact
//! per-thread ring scan (`Buffers::min_pending`).

use crate::sync::{weaken, AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// Slot value for "nothing unpersisted".
pub const EMPTY: u64 = u64::MAX;

pub struct Mindicator {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl Mindicator {
    pub fn new(max_threads: usize) -> Self {
        Mindicator {
            slots: (0..max_threads)
                .map(|_| CachePadded::new(AtomicU64::new(EMPTY)))
                .collect(),
        }
    }

    /// Publishes thread `tid`'s oldest unpersisted epoch ([`EMPTY`] if none).
    #[inline]
    pub fn publish(&self, tid: usize, oldest: u64) {
        // ord(publish): the ring entries this slot summarizes must be visible
        // to an advancer that trusts the published epoch.
        self.slots[tid].store(oldest, weaken("mindicator.publish", Ordering::Release));
    }

    /// Oldest unpersisted epoch across all threads ([`EMPTY`] if none).
    pub fn min(&self) -> u64 {
        self.slots
            .iter()
            // ord(acquire): pairs with the Release in `publish`.
            .map(|s| s.load(Ordering::Acquire))
            .min()
            .unwrap_or(EMPTY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_by_default() {
        let m = Mindicator::new(8);
        assert_eq!(m.min(), EMPTY);
    }

    #[test]
    fn min_across_threads() {
        let m = Mindicator::new(4);
        m.publish(0, 10);
        m.publish(1, 7);
        m.publish(3, 12);
        assert_eq!(m.min(), 7);
        m.publish(1, EMPTY);
        assert_eq!(m.min(), 10);
    }

    #[test]
    fn concurrent_publishes_never_lose_a_minimum() {
        let m = std::sync::Arc::new(Mindicator::new(8));
        let mut handles = vec![];
        for t in 0..4usize {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    m.publish(t, 100 + (i % 5));
                }
                m.publish(t, EMPTY);
            }));
        }
        // While publishers run, min must always be ≥ 100 (or EMPTY).
        for _ in 0..1000 {
            let v = m.min();
            assert!(v >= 100);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.min(), EMPTY);
    }
}
