//! Post-crash recovery: sweep, anti-payload cancellation, and handoff of the
//! surviving payload set to data-structure rebuild routines.
//!
//! If the crash occurred in epoch *e* (durable clock = *e*), recovery keeps
//! exactly the payloads labelled with epochs `FIRST_EPOCH ..= e-2` (paper
//! Sec. 3.2 property 2), then cancels uid groups containing an anti-payload
//! and keeps only the newest surviving version of each uid. Everything else
//! returns to the allocator's free lists, durably tombstoned so a later
//! crash cannot resurrect it.
//!
//! Recovery is **panic-free**: [`try_recover`] returns a typed
//! [`RecoveryError`] for fatal problems (no format magic, corrupt clock) and
//! *quarantines* individual blocks that fail header validation — a torn or
//! corrupted payload costs exactly that payload, never the heap. The
//! [`RecoveryReport`] attached to the result accounts for every block the
//! sweep saw.

use crate::sync::{AtomicUsize, Ordering};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use pmem::{POff, PmemPool};
use ralloc::Ralloc;

use crate::config::EsysConfig;
use crate::errors::RecoveryError;
use crate::esys::{EpochSys, CLOCK_SLOT, FIRST_EPOCH};
use crate::payload::{Header, PHandle, PayloadKind, HDR_SIZE, MAGIC_LIVE};

/// One surviving payload, as handed to structure rebuild code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredItem {
    /// Block offset (header included); convert with [`RecoveredItem::handle`].
    pub blk: POff,
    /// The structure-routing tag passed to `PNEW`.
    pub tag: u16,
    pub uid: u64,
    pub epoch: u64,
    /// User-data size in bytes.
    pub size: u32,
}

impl RecoveredItem {
    /// A typed handle to this payload (caller asserts the type via the tag).
    pub fn handle<T: ?Sized>(&self) -> PHandle<T> {
        PHandle::from_raw(self.blk)
    }
}

/// A block recovery refused to trust, with the validation failure that
/// condemned it. The block is durably tombstoned and returned to the free
/// lists; its (suspect) contents are not handed to rebuild code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedPayload {
    pub blk: POff,
    pub reason: RecoveryError,
}

/// Block-level accounting for one recovery pass.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Live payloads handed to rebuild code.
    pub survivors: usize,
    /// Valid payloads discarded by uid cancellation (anti-payloads, stale
    /// versions, and groups killed by a DELETE).
    pub cancelled: usize,
    /// Valid payloads from epochs newer than the recovery cutoff — the
    /// normal buffered-durability loss window (at most two epochs).
    pub discarded_recent: usize,
    /// Blocks that failed header validation and were quarantined.
    pub quarantined: Vec<QuarantinedPayload>,
}

/// The outcome of recovery: a fresh epoch system over the surviving heap and
/// the survivors, sharded for parallel rebuild.
pub struct RecoveredState {
    pub esys: Arc<EpochSys>,
    /// `k` disjoint shards of surviving payloads (the paper's "k separate
    /// iterators, to be used by k separate application threads").
    pub shards: Vec<Vec<RecoveredItem>>,
    /// What the sweep saw: survivors, cancellations, frontier loss, and
    /// quarantined corruption.
    pub report: RecoveryReport,
}

impl RecoveredState {
    /// Reads a survivor's user data by value.
    pub fn read<T: Copy>(&self, item: &RecoveredItem) -> T {
        debug_assert_eq!(std::mem::size_of::<T>() as u32, item.size);
        // SAFETY: the sweep checksummed this survivor, so its data bytes are
        // in bounds and intact; the caller picks a T matching the payload.
        unsafe { self.esys.pool().read(Header::data(item.blk)) }
    }

    /// Runs `f` on a survivor's raw bytes.
    pub fn with_bytes<R>(&self, item: &RecoveredItem, f: impl FnOnce(&[u8]) -> R) -> R {
        // SAFETY: (both lines) the sweep validated this survivor's header,
        // so `data..data+size` is in bounds and initialized.
        let ptr = unsafe { self.esys.pool().at::<u8>(Header::data(item.blk)) };
        f(unsafe { std::slice::from_raw_parts(ptr, item.size as usize) })
    }

    /// Total number of survivors across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Recovers Montage state from a crashed pool using `k` sweep threads.
///
/// Panics if the pool was never formatted by [`EpochSys::format`] or the
/// clock is corrupt; library code should prefer [`try_recover`].
pub fn recover(pool: PmemPool, cfg: EsysConfig, k: usize) -> RecoveredState {
    match try_recover(pool, cfg, k) {
        Ok(state) => state,
        Err(e) => panic!("{e}"),
    }
}

/// Panic-free [`recover`]: fatal problems (nothing to recover *to*) come
/// back as [`RecoveryError`]; per-block corruption is quarantined into the
/// result's [`RecoveryReport`] and recovery carries on.
pub fn try_recover(
    pool: PmemPool,
    cfg: EsysConfig,
    k: usize,
) -> Result<RecoveredState, RecoveryError> {
    if !EpochSys::is_formatted(&pool) || !Ralloc::is_formatted(&pool) {
        return Err(RecoveryError::UnformattedPool);
    }
    // Everything from here to the return consumes post-crash state: open the
    // persist-san recovery window so a read of a line whose content never
    // became durable is caught at the reading site (no-op without the
    // feature). Validating probes opt out individually via `san_probe`.
    pool.san_begin_recovery();
    // SAFETY: the clock root slot is an in-bounds metadata word; any bit
    // pattern is a valid u64 and is range-checked just below.
    let durable_epoch = unsafe { pool.read::<u64>(POff::root_slot(CLOCK_SLOT)) };
    if durable_epoch < FIRST_EPOCH {
        pool.san_end_recovery();
        return Err(RecoveryError::CorruptClock {
            found: durable_epoch,
        });
    }
    let cutoff = durable_epoch - 2;

    // Phase 1: allocator sweep — keep blocks whose contents are a live
    // payload from a fully persisted epoch. Blocks with live magic but an
    // invalid header (failed checksum, bad kind, an epoch the pool never
    // durably reached, or a size overflowing the block) are quarantined:
    // recorded, *kept out of the free lists for now* (a rejected block gets
    // a free-list link written into its first bytes, which the tombstone
    // pass below would clobber — see the dealloc at the end of phase 2),
    // and freed below like any other loser.
    let quarantined: Mutex<Vec<QuarantinedPayload>> = Mutex::new(Vec::new());
    let discarded_recent = AtomicUsize::new(0);
    let sweep_pool = pool.clone();
    let (ralloc, mut shards) = {
        let quarantined = &quarantined;
        let discarded_recent = &discarded_recent;
        Ralloc::recover_parallel(pool.clone(), k, move |blk, usable| {
            // The whole filter is a validating probe: it reads arbitrary
            // swept blocks precisely in order to decide whether to trust
            // them, so its reads are exempt from the dirty-read check.
            sweep_pool.san_probe(|| {
                if Header::magic(&sweep_pool, blk) != MAGIC_LIVE {
                    return false; // free slot or tombstone: not a payload
                }
                let reason = validate_header(&sweep_pool, blk, usable, durable_epoch);
                if let Some(reason) = reason {
                    quarantined
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push(QuarantinedPayload { blk, reason });
                    return true; // keep allocated; tombstoned + freed below
                }
                let epoch = Header::epoch(&sweep_pool, blk);
                if epoch > cutoff {
                    // Valid, but from the at-risk window buffered durability
                    // gives up on: normal frontier loss, not corruption.
                    // ord(counter): recovery-time tally across the sweep.
                    discarded_recent.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                true
            })
        })
    };
    let quarantined = quarantined.into_inner().unwrap_or_else(|p| p.into_inner());

    // The quarantined blocks rode the sweep's kept set (so the allocator
    // treats them as allocated until the explicit dealloc below); they must
    // not reach cancellation — their headers are exactly what recovery
    // refused to trust.
    if !quarantined.is_empty() {
        let qset: std::collections::HashSet<POff> = quarantined.iter().map(|q| q.blk).collect();
        for shard in &mut shards {
            shard.kept.retain(|(blk, _)| !qset.contains(blk));
        }
    }

    // Phase 2: uid cancellation. Group by uid; a DELETE anti-payload kills
    // its whole group; otherwise keep the newest version. Parallel over k
    // workers: uid-hash partitioning makes groups worker-local.
    let (survivors, discards, max_uid) = cancel_parallel(&pool, &shards, k);

    // Durably tombstone and free the losers — and overwrite the quarantined
    // headers too, so their live-looking magic can never be swept up again
    // after a second crash (one batched flush + fence). Ordering matters:
    // the tombstone must land *before* the dealloc, because freeing writes a
    // transient free-list link into the block's first bytes — the reverse
    // order would clobber the link and corrupt the free list.
    for &blk in &discards {
        Header::tombstone(&pool, blk);
        pool.clwb(blk);
    }
    for q in &quarantined {
        Header::tombstone(&pool, q.blk);
        pool.clwb(q.blk);
    }
    if !discards.is_empty() || !quarantined.is_empty() {
        pool.sfence();
    }
    for blk in &discards {
        ralloc.dealloc(*blk);
    }
    for q in &quarantined {
        ralloc.dealloc(q.blk);
    }

    // Phase 3: restart the clock two epochs past the crash point so every
    // survivor is strictly older than any new work, and persist it.
    let new_epoch = durable_epoch + 2;
    // SAFETY: in-bounds root-slot word; recovery is single-threaded.
    unsafe { pool.write(POff::root_slot(CLOCK_SLOT), &new_epoch) };
    pool.persist_range(POff::root_slot(CLOCK_SLOT), 8);
    pool.san_end_recovery();

    pool.stats().on_quarantine(quarantined.len() as u64);
    let report = RecoveryReport {
        survivors: survivors.len(),
        cancelled: discards.len(),
        discarded_recent: discarded_recent.into_inner(),
        quarantined,
    };

    let esys = Arc::new(EpochSys::from_parts(pool, ralloc, cfg, max_uid + 1));

    // Re-shard survivors round-robin for parallel rebuild.
    let mut out: Vec<Vec<RecoveredItem>> = (0..k.max(1)).map(|_| Vec::new()).collect();
    for (i, item) in survivors.into_iter().enumerate() {
        out[i % k.max(1)].push(item);
    }
    Ok(RecoveredState {
        esys,
        shards: out,
        report,
    })
}

/// Why a live-magic block cannot be trusted, or `None` if the header is
/// intact. Validation order matters only for which reason gets reported:
/// the checksum subsumes almost everything, so field checks run first to
/// give the more specific diagnosis.
fn validate_header(
    pool: &PmemPool,
    blk: POff,
    usable: usize,
    durable_epoch: u64,
) -> Option<RecoveryError> {
    if Header::kind(pool, blk).is_none() {
        return Some(RecoveryError::CorruptHeader { blk });
    }
    let epoch = Header::epoch(pool, blk);
    if epoch < FIRST_EPOCH || epoch > durable_epoch {
        // No running execution can have labelled a payload past the durable
        // clock: such an epoch is a phantom from a torn header.
        return Some(RecoveryError::CorruptHeader { blk });
    }
    let size = Header::size(pool, blk);
    if size as usize + HDR_SIZE > usable {
        return Some(RecoveryError::TruncatedPayload {
            blk,
            size,
            usable: usable as u32,
        });
    }
    if !Header::checksum_ok(pool, blk) {
        return Some(RecoveryError::CorruptHeader { blk });
    }
    None
}

/// Parallel cancellation: each sweep shard is partitioned by uid hash so
/// that every uid group lands entirely within one of the `k` reducers, then
/// the reducers run [`cancel`] independently.
fn cancel_parallel(
    pool: &PmemPool,
    shards: &[ralloc::SweepShard],
    k: usize,
) -> (Vec<RecoveredItem>, Vec<POff>, u64) {
    let k = k.max(1);
    if k == 1 {
        return cancel(pool, shards.iter().flat_map(|s| s.kept.iter().copied()));
    }
    // Map: partition each shard's blocks by uid hash.
    let partitioned: Vec<Vec<Vec<(POff, usize)>>> = std::thread::scope(|sc| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                sc.spawn(move || {
                    let mut parts: Vec<Vec<(POff, usize)>> = (0..k).map(|_| Vec::new()).collect();
                    for &(blk, size) in &shard.kept {
                        let uid = Header::uid(pool, blk);
                        parts[(uid % k as u64) as usize].push((blk, size));
                    }
                    parts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Reduce: one worker per uid partition.
    let results: Vec<(Vec<RecoveredItem>, Vec<POff>, u64)> = std::thread::scope(|sc| {
        let handles: Vec<_> = (0..k)
            .map(|part| {
                let partitioned = &partitioned;
                sc.spawn(move || {
                    cancel(
                        pool,
                        partitioned
                            .iter()
                            .flat_map(|shard_parts| shard_parts[part].iter().copied()),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut survivors = Vec::new();
    let mut discards = Vec::new();
    let mut max_uid = 0;
    for (s, d, m) in results {
        survivors.extend(s);
        discards.extend(d);
        max_uid = max_uid.max(m);
    }
    (survivors, discards, max_uid)
}

/// Returns (survivors, blocks to discard, max uid seen).
fn cancel(
    pool: &PmemPool,
    blocks: impl Iterator<Item = (POff, usize)>,
) -> (Vec<RecoveredItem>, Vec<POff>, u64) {
    struct Group {
        best: Option<(u64 /*epoch*/, POff)>,
        deleted: bool,
        losers: Vec<POff>,
    }
    let mut groups: HashMap<u64, Group> = HashMap::new();
    let mut max_uid = 0u64;
    let mut discards = Vec::new();

    for (blk, _size) in blocks {
        let uid = Header::uid(pool, blk);
        let epoch = Header::epoch(pool, blk);
        let Some(kind) = Header::kind(pool, blk) else {
            // The sweep filter validates kinds, so this is unreachable in
            // practice — but recovery must not panic on a block it can
            // simply refuse. Discarding routes it to the tombstone batch.
            discards.push(blk);
            continue;
        };
        max_uid = max_uid.max(uid);
        let g = groups.entry(uid).or_insert(Group {
            best: None,
            deleted: false,
            losers: Vec::new(),
        });
        match kind {
            PayloadKind::Delete => {
                g.deleted = true;
                g.losers.push(blk);
            }
            PayloadKind::Alloc | PayloadKind::Update => match g.best {
                None => g.best = Some((epoch, blk)),
                Some((be, bb)) => {
                    if epoch > be {
                        g.losers.push(bb);
                        g.best = Some((epoch, blk));
                    } else {
                        g.losers.push(blk);
                    }
                }
            },
        }
    }

    let mut survivors = Vec::new();
    for (_uid, g) in groups {
        discards.extend(g.losers);
        match g.best {
            Some((_, blk)) if !g.deleted => survivors.push(RecoveredItem {
                blk,
                tag: Header::tag(pool, blk),
                uid: Header::uid(pool, blk),
                epoch: Header::epoch(pool, blk),
                size: Header::size(pool, blk),
            }),
            Some((_, blk)) => discards.push(blk),
            None => {}
        }
    }
    (survivors, discards, max_uid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn strict_sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(32 << 20)),
            EsysConfig::default(),
        )
    }

    /// Drives enough epoch advances that everything through the current
    /// epoch is durable.
    fn settle(s: &EpochSys) {
        s.sync();
    }

    #[test]
    fn payload_synced_before_crash_survives() {
        let s = strict_sys();
        let tid = s.register_thread();
        {
            let g = s.begin_op(tid);
            let _ = s.pnew(&g, 42, &777u64);
        }
        settle(&s);
        let crashed = s.pool().crash();
        let rec = recover(crashed, EsysConfig::default(), 1);
        assert_eq!(rec.len(), 1);
        let item = rec.shards[0][0];
        assert_eq!(item.tag, 42);
        assert_eq!(rec.read::<u64>(&item), 777);
    }

    #[test]
    fn unsynced_payload_is_lost() {
        let s = strict_sys();
        let tid = s.register_thread();
        {
            let g = s.begin_op(tid);
            let _ = s.pnew(&g, 42, &777u64);
        }
        // No sync, no epoch advance: buffered work must be lost.
        let crashed = s.pool().crash();
        let rec = recover(crashed, EsysConfig::default(), 1);
        assert_eq!(rec.len(), 0, "buffered-durable semantics: recent work lost");
    }

    #[test]
    fn deleted_payload_is_cancelled_by_anti_payload() {
        let s = strict_sys();
        let tid = s.register_thread();
        let h = {
            let g = s.begin_op(tid);
            s.pnew(&g, 1, &1u64)
        };
        settle(&s);
        {
            let g = s.begin_op(tid);
            s.pdelete(&g, h).unwrap();
        }
        settle(&s); // delete persisted; reclamation may or may not have run
        let crashed = s.pool().crash();
        let rec = recover(crashed, EsysConfig::default(), 1);
        assert_eq!(rec.len(), 0, "anti-payload must cancel the payload");
    }

    #[test]
    fn update_keeps_only_newest_version() {
        let s = strict_sys();
        let tid = s.register_thread();
        let h = {
            let g = s.begin_op(tid);
            s.pnew(&g, 1, &10u64)
        };
        settle(&s);
        {
            let g = s.begin_op(tid);
            let _ = s.set(&g, h, |v| *v = 20).unwrap();
        }
        settle(&s);
        let crashed = s.pool().crash();
        let rec = recover(crashed, EsysConfig::default(), 1);
        assert_eq!(rec.len(), 1, "one logical object, one survivor");
        assert_eq!(rec.read::<u64>(&rec.shards[0][0]), 20);
    }

    #[test]
    fn crash_between_versions_recovers_old_value() {
        let s = strict_sys();
        let tid = s.register_thread();
        let h = {
            let g = s.begin_op(tid);
            s.pnew(&g, 1, &10u64)
        };
        settle(&s);
        {
            let g = s.begin_op(tid);
            let _ = s.set(&g, h, |v| *v = 20).unwrap();
        }
        // Crash before the update persists: consistent prefix = old value.
        let crashed = s.pool().crash();
        let rec = recover(crashed, EsysConfig::default(), 1);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.read::<u64>(&rec.shards[0][0]), 10);
    }

    #[test]
    fn recovery_clock_jumps_two_epochs() {
        let s = strict_sys();
        settle(&s);
        let e = s.curr_epoch();
        let crashed = s.pool().crash();
        let rec = recover(crashed, EsysConfig::default(), 1);
        assert_eq!(rec.esys.curr_epoch(), e + 2);
    }

    #[test]
    fn recovered_system_is_usable_and_recrashable() {
        let s = strict_sys();
        let tid = s.register_thread();
        {
            let g = s.begin_op(tid);
            let _ = s.pnew(&g, 7, &1u64);
        }
        settle(&s);
        let rec = recover(s.pool().crash(), EsysConfig::default(), 1);
        let s2 = rec.esys.clone();
        let tid2 = s2.register_thread();
        {
            let g = s2.begin_op(tid2);
            let _ = s2.pnew(&g, 7, &2u64);
        }
        s2.sync();
        let rec2 = recover(s2.pool().crash(), EsysConfig::default(), 1);
        let mut vals: Vec<u64> = rec2.shards[0].iter().map(|i| rec2.read::<u64>(i)).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![1, 2], "survivors from both generations");
    }

    #[test]
    fn parallel_recovery_shards_are_disjoint_and_complete() {
        let s = strict_sys();
        let tid = s.register_thread();
        for i in 0..200u64 {
            let g = s.begin_op(tid);
            let _ = s.pnew(&g, 3, &i);
        }
        settle(&s);
        let rec = recover(s.pool().crash(), EsysConfig::default(), 4);
        assert_eq!(rec.shards.len(), 4);
        let mut vals: Vec<u64> = rec
            .shards
            .iter()
            .flatten()
            .map(|i| rec.read::<u64>(i))
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn new_uids_do_not_collide_with_recovered() {
        let s = strict_sys();
        let tid = s.register_thread();
        let h = {
            let g = s.begin_op(tid);
            s.pnew(&g, 1, &5u64)
        };
        let old_uid = Header::uid(s.pool(), h.raw());
        settle(&s);
        let rec = recover(s.pool().crash(), EsysConfig::default(), 1);
        let s2 = rec.esys.clone();
        let tid2 = s2.register_thread();
        let g = s2.begin_op(tid2);
        let h2 = s2.pnew(&g, 1, &6u64);
        assert_ne!(Header::uid(s2.pool(), h2.raw()), old_uid);
    }
}
