//! # montage — buffered persistent data structures (the paper's core system)
//!
//! Rust reproduction of **Montage** (Wen, Cai, Du, Jenkins, Valpey, Scott,
//! *"A Fast, General System for Buffered Persistent Data Structures"*,
//! ICPP '21): the first general-purpose system for *buffered durably
//! linearizable* structures.
//!
//! Montage manages **payload blocks** — the minimal semantic state of a data
//! structure — in persistent memory, while the structure keeps all of its
//! indexing/synchronization state in transient DRAM. A millisecond-scale
//! **epoch clock** divides execution so that no operation appears to span an
//! epoch boundary; all payloads created or modified in epoch *e* persist
//! together when the clock ticks from *e+1* to *e+2*. If a crash occurs in
//! epoch *e*, work from epochs *e* and *e−1* is lost, but everything older is
//! recovered **consistently**. A fast [`EpochSys::sync`] flushes on demand,
//! as in file and database systems.
//!
//! ## Quick tour
//!
//! ```
//! use montage::{EpochSys, EsysConfig};
//! use pmem::{PmemConfig, PmemPool};
//!
//! let pool = PmemPool::new(PmemConfig::strict_for_test(16 << 20));
//! let esys = EpochSys::format(pool, EsysConfig::default());
//! let tid = esys.register_thread();
//!
//! // An update operation: BEGIN_OP .. END_OP via an RAII guard.
//! let g = esys.begin_op(tid);
//! let h = esys.pnew(&g, 7 /* type tag */, &42u64); // PNEW
//! let h = esys.set(&g, h, |v| *v += 1).unwrap();   // in-place or copy-on-write
//! assert_eq!(esys.read(&g, h).unwrap(), 43);
//! drop(g);                                          // END_OP
//!
//! esys.sync();                                      // force persistence
//! ```
//!
//! ## Module map (mirrors Fig. 3 of the paper)
//!
//! * [`payload`] — payload block headers (`ALLOC`/`UPDATE`/`DELETE`), handles
//! * [`tracker`] — the operation tracker (per-thread active-epoch slots)
//! * [`buffers`] — per-thread `to_persist`/`to_free` rings for the 4 recent epochs
//! * [`mindicator`] — min-epoch tracker for cheap sync helping
//! * [`dcss`] — `CAS_verify`/`load_verify` (double-compare-single-swap on the
//!   epoch clock) for nonblocking structures
//! * [`esys`] — `EpochSys`: `BEGIN_OP`/`END_OP`, `PNEW`/`PDELETE`, `get`/`set`,
//!   `CHECK_EPOCH`, epoch advance, `sync`
//! * [`advancer`] — the background epoch-advancing thread
//! * [`recovery`] — post-crash sweep, anti-payload cancellation, parallel rebuild

pub mod advancer;
pub mod buffers;
pub mod config;
pub mod dcss;
pub mod errors;
pub mod esys;
pub mod mindicator;
pub mod payload;
pub mod recovery;
pub mod sync;
pub mod tracker;
pub mod verify1;

pub use advancer::Advancer;
pub use config::{EsysConfig, FreeStrategy, PersistStrategy};
pub use dcss::VerifyCell;
pub use errors::{EpochChanged, OldSeeNewException, RecoveryError};
pub use esys::{EpochPin, EpochSys, OpGuard, ThreadId};
pub use payload::{PHandle, PayloadKind, HDR_SIZE};
pub use recovery::{
    try_recover, QuarantinedPayload, RecoveredItem, RecoveredState, RecoveryReport,
};
pub use verify1::{Cas1Error, CountedCell};
