//! Configuration of the epoch system — the design space explored in the
//! paper's Sec. 5.2 / Figures 4 and 5.

use std::time::Duration;

/// How (and whether) payload write-backs are performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistStrategy {
    /// Track updated payloads in per-thread circular buffers of the given
    /// capacity; on overflow the oldest entry is written back incrementally;
    /// the rest are written back at the epoch boundary. The paper's default
    /// is `Buffered(64)` — "Montage (cb)" in Fig. 9.
    Buffered(usize),
    /// Write back every payload immediately when it is created or modified
    /// and fence at `END_OP` — "DirWB" in Fig. 4/5 and "Montage (dw)" in
    /// Fig. 9.
    DirWB,
    /// Elide all persistence operations: no write-backs, no fences, no
    /// delayed reclamation. Payloads still live in NVM. This is the paper's
    /// "Montage (T)" reference configuration (not crash-safe).
    None,
}

/// Who reclaims freed payloads (and when).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FreeStrategy {
    /// The epoch-advancing thread reclaims payloads freed in epoch *e−2*
    /// (and anti-payloads from *e−3*) at the end of epoch *e* — the paper's
    /// default.
    Background,
    /// Worker threads reclaim their own retired payloads at `BEGIN_OP`,
    /// as in the "+LocalFree" bars of Fig. 4/5 (slight critical-path
    /// dilation).
    WorkerLocal,
    /// Reclaim immediately at `PDELETE` — the "+DirFree" reference bars;
    /// **not crash-consistent** (a crash may resurrect freed payloads or
    /// lose still-referenced ones), provided for ablation only.
    Direct,
}

/// Epoch-system configuration.
#[derive(Clone, Copy, Debug)]
pub struct EsysConfig {
    /// Maximum number of registered threads.
    pub max_threads: usize,
    /// Write-back strategy.
    pub persist: PersistStrategy,
    /// Reclamation strategy.
    pub free: FreeStrategy,
    /// Target epoch length for the background advancer (paper default 10 ms).
    pub epoch_length: Duration,
    /// Grace window (in spin steps per tracker slot) an epoch advance gives
    /// in-flight operations to retire before bypassing them as stragglers
    /// (nbMontage-style helping; see `EpochSys::advance_epoch`). An op
    /// normally retires within a few hundred instructions, so the default
    /// keeps quiescent boundaries on the fast path while bounding how long
    /// one parked thread can delay everyone else's `sync`.
    pub advance_grace_spins: usize,
}

impl Default for EsysConfig {
    fn default() -> Self {
        EsysConfig {
            max_threads: 64,
            persist: PersistStrategy::Buffered(64),
            free: FreeStrategy::Background,
            epoch_length: Duration::from_millis(10),
            advance_grace_spins: 4096,
        }
    }
}

impl EsysConfig {
    /// The paper's "Montage (T)" configuration: payloads in NVM, all
    /// persistence elided.
    pub fn transient() -> Self {
        EsysConfig {
            persist: PersistStrategy::None,
            free: FreeStrategy::Direct,
            ..Default::default()
        }
    }

    /// Buffered write-back with the given per-thread buffer capacity.
    pub fn buffered(n: usize) -> Self {
        EsysConfig {
            persist: PersistStrategy::Buffered(n),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = EsysConfig::default();
        assert_eq!(c.persist, PersistStrategy::Buffered(64));
        assert_eq!(c.free, FreeStrategy::Background);
        assert_eq!(c.epoch_length, Duration::from_millis(10));
    }

    #[test]
    fn transient_elides_everything() {
        let c = EsysConfig::transient();
        assert_eq!(c.persist, PersistStrategy::None);
        assert_eq!(c.free, FreeStrategy::Direct);
    }
}
