//! The background epoch-advancing thread (paper Sec. 5.2: "a single
//! background thread serves to advance the epoch, … writes back any
//! remaining items in the per-worker-thread buffers at each epoch boundary,
//! and performs all memory reclamation").

use crate::sync::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::esys::EpochSys;

/// Handle to a running background advancer. Dropping it stops the thread.
pub struct Advancer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Advancer {
    /// Starts an advancer ticking at the system's configured epoch length.
    pub fn start(esys: Arc<EpochSys>) -> Advancer {
        Self::start_with_period(esys, None)
    }

    /// Starts an advancer with an explicit period (overriding the config).
    pub fn start_with_period(esys: Arc<EpochSys>, period: Option<Duration>) -> Advancer {
        Self::start_group_with_period(vec![esys], period)
    }

    /// Starts one advancer thread ticking a whole *group* of epoch systems
    /// (one per shard of a sharded store). Each shard keeps its own clock,
    /// tracker, and write-back rings: a tick advances the shards one after
    /// another, and an advance on shard `i` fences only shard `i`'s pool —
    /// shard clocks drift independently, which is exactly the point.
    pub fn start_group(group: Vec<Arc<EpochSys>>) -> Advancer {
        Self::start_group_with_period(group, None)
    }

    /// [`Advancer::start_group`] with an explicit period (overriding the
    /// first shard's configured epoch length).
    pub fn start_group_with_period(
        group: Vec<Arc<EpochSys>>,
        period: Option<Duration>,
    ) -> Advancer {
        assert!(
            !group.is_empty(),
            "advancer needs at least one epoch system"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let period = period.unwrap_or(group[0].config().epoch_length);
        let handle = std::thread::Builder::new()
            .name("montage-advancer".into())
            .spawn(move || {
                // ord(relaxed): shutdown flag; no data rides this edge.
                while !stop2.load(Ordering::Relaxed) {
                    // Sleep in small slices so shutdown is prompt even with
                    // second-scale epochs (Fig. 4/5 sweeps go up to 5 s).
                    let mut remaining = period;
                    let slice = Duration::from_millis(5);
                    // ord(relaxed): shutdown flag.
                    while remaining > Duration::ZERO && !stop2.load(Ordering::Relaxed) {
                        let d = remaining.min(slice);
                        std::thread::sleep(d);
                        remaining = remaining.saturating_sub(d);
                    }
                    // ord(relaxed): shutdown flag.
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    for esys in &group {
                        esys.advance_epoch();
                    }
                }
            })
            .expect("spawn advancer");
        Advancer {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops and joins the advancer thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // ord(relaxed): shutdown flag; the join below is the real barrier.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Advancer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    #[test]
    fn advancer_ticks_the_clock() {
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(8 << 20)),
            EsysConfig {
                epoch_length: Duration::from_millis(5),
                ..Default::default()
            },
        );
        let e0 = esys.curr_epoch();
        let adv = Advancer::start(esys.clone());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while esys.curr_epoch() < e0 + 3 {
            assert!(std::time::Instant::now() < deadline, "advancer not ticking");
            std::thread::sleep(Duration::from_millis(2));
        }
        adv.stop();
    }

    #[test]
    fn group_advancer_ticks_every_shard() {
        let cfg = EsysConfig {
            epoch_length: Duration::from_millis(5),
            ..Default::default()
        };
        let group: Vec<_> = (0..3)
            .map(|_| EpochSys::format(PmemPool::new(PmemConfig::strict_for_test(8 << 20)), cfg))
            .collect();
        let starts: Vec<_> = group.iter().map(|e| e.curr_epoch()).collect();
        let adv = Advancer::start_group(group.clone());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while group
            .iter()
            .zip(&starts)
            .any(|(e, &s)| e.curr_epoch() < s + 3)
        {
            assert!(std::time::Instant::now() < deadline, "a shard is stuck");
            std::thread::sleep(Duration::from_millis(2));
        }
        adv.stop();
    }

    /// Shard independence: advancing one shard's epoch must not fence (or
    /// flush) another shard's pool. This is what makes per-shard epoch
    /// clocks a scaling lever — shard A's quiescence wait and boundary
    /// drains never serialize against shard B's.
    #[test]
    fn advancing_one_shard_does_not_fence_another() {
        let cfg = EsysConfig::default();
        let a = EpochSys::format(PmemPool::new(PmemConfig::strict_for_test(8 << 20)), cfg);
        let b = EpochSys::format(PmemPool::new(PmemConfig::strict_for_test(8 << 20)), cfg);

        // Put buffered work on both shards so an advance has lines to drain.
        for esys in [&a, &b] {
            let tid = esys.register_thread();
            let g = esys.begin_op(tid);
            let _ = esys.pnew_bytes(&g, 1, &[0xAB; 256]);
            drop(g);
        }

        let before_a = a.pool().stats().snapshot();
        let before_b = b.pool().stats().snapshot();
        for _ in 0..4 {
            a.advance_epoch();
        }
        let after_a = a.pool().stats().snapshot();
        let after_b = b.pool().stats().snapshot();

        assert!(
            after_a.sfences > before_a.sfences,
            "advancing shard A must fence A's own pool"
        );
        assert_eq!(
            (after_b.sfences, after_b.clwbs, after_b.lines_drained),
            (before_b.sfences, before_b.clwbs, before_b.lines_drained),
            "advancing shard A must not touch shard B's pool"
        );
    }

    #[test]
    fn drop_stops_the_thread() {
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(8 << 20)),
            EsysConfig {
                epoch_length: Duration::from_millis(1),
                ..Default::default()
            },
        );
        {
            let _adv = Advancer::start(esys.clone());
            std::thread::sleep(Duration::from_millis(10));
        }
        let e = esys.curr_epoch();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(esys.curr_epoch(), e, "clock must stop after drop");
    }
}
