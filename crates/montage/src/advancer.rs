//! The background epoch-advancing thread (paper Sec. 5.2: "a single
//! background thread serves to advance the epoch, … writes back any
//! remaining items in the per-worker-thread buffers at each epoch boundary,
//! and performs all memory reclamation").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::esys::EpochSys;

/// Handle to a running background advancer. Dropping it stops the thread.
pub struct Advancer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Advancer {
    /// Starts an advancer ticking at the system's configured epoch length.
    pub fn start(esys: Arc<EpochSys>) -> Advancer {
        Self::start_with_period(esys, None)
    }

    /// Starts an advancer with an explicit period (overriding the config).
    pub fn start_with_period(esys: Arc<EpochSys>, period: Option<Duration>) -> Advancer {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let period = period.unwrap_or(esys.config().epoch_length);
        let handle = std::thread::Builder::new()
            .name("montage-advancer".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    // Sleep in small slices so shutdown is prompt even with
                    // second-scale epochs (Fig. 4/5 sweeps go up to 5 s).
                    let mut remaining = period;
                    let slice = Duration::from_millis(5);
                    while remaining > Duration::ZERO && !stop2.load(Ordering::Relaxed) {
                        let d = remaining.min(slice);
                        std::thread::sleep(d);
                        remaining = remaining.saturating_sub(d);
                    }
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    esys.advance_epoch();
                }
            })
            .expect("spawn advancer");
        Advancer {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops and joins the advancer thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Advancer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    #[test]
    fn advancer_ticks_the_clock() {
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(8 << 20)),
            EsysConfig {
                epoch_length: Duration::from_millis(5),
                ..Default::default()
            },
        );
        let e0 = esys.curr_epoch();
        let adv = Advancer::start(esys.clone());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while esys.curr_epoch() < e0 + 3 {
            assert!(std::time::Instant::now() < deadline, "advancer not ticking");
            std::thread::sleep(Duration::from_millis(2));
        }
        adv.stop();
    }

    #[test]
    fn drop_stops_the_thread() {
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(8 << 20)),
            EsysConfig {
                epoch_length: Duration::from_millis(1),
                ..Default::default()
            },
        );
        {
            let _adv = Advancer::start(esys.clone());
            std::thread::sleep(Duration::from_millis(10));
        }
        let e = esys.curr_epoch();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(esys.curr_epoch(), e, "clock must stop after drop");
    }
}
