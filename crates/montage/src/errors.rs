//! Error types surfaced to data-structure code.

use std::fmt;

use pmem::POff;

/// The paper's `OldSeeNewException`: an operation running in epoch *e*
/// touched a payload created in some epoch *e′ > e*.
///
/// Montage raises this to help structures keep their linearization order
/// consistent with epoch order (paper Sec. 3.2, property 3). Lock-based
/// structures never see it; nonblocking operations respond by rolling back
/// and restarting in the newer epoch, which preserves lock freedom (the
/// epoch must have advanced for the exception to arise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OldSeeNewException {
    /// The epoch the running operation registered in.
    pub op_epoch: u64,
    /// The (newer) epoch found on the payload.
    pub payload_epoch: u64,
}

impl fmt::Display for OldSeeNewException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "old-see-new: operation in epoch {} read payload from epoch {}",
            self.op_epoch, self.payload_epoch
        )
    }
}

impl std::error::Error for OldSeeNewException {}

/// Returned by `CHECK_EPOCH` (and `CAS_verify`) when the global epoch clock
/// no longer matches the operation's registered epoch; the operation must
/// restart to linearize within a single epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochChanged {
    pub op_epoch: u64,
    pub current_epoch: u64,
}

impl fmt::Display for EpochChanged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch changed: operation registered in {}, clock now at {}",
            self.op_epoch, self.current_epoch
        )
    }
}

impl std::error::Error for EpochChanged {}

/// What [`crate::recovery::try_recover`] found wrong with a crashed pool.
///
/// The first two variants are *fatal*: without a formatted pool or a sane
/// epoch clock there is no frontier to recover to, so `try_recover` returns
/// them as errors. The last two describe a single damaged block; recovery
/// degrades gracefully by *quarantining* that block (recorded in the
/// [`crate::recovery::RecoveryReport`] with one of these as the reason)
/// and carries on — one corrupt payload no longer loses the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// The pool carries no Montage magic (never formatted, or the crash hit
    /// before `format`'s single fence made the root area durable).
    UnformattedPool,
    /// The durable epoch clock is below the first valid epoch.
    CorruptClock {
        /// The clock value found in the root area.
        found: u64,
    },
    /// A live-magic block whose header fails validation (checksum mismatch,
    /// invalid kind, or an epoch outside the pool's durable history) —
    /// typically a torn header line.
    CorruptHeader { blk: POff },
    /// A live-magic block whose recorded size does not fit in its allocator
    /// block, so its data bytes cannot all be real.
    TruncatedPayload {
        blk: POff,
        /// The size the header claims.
        size: u32,
        /// The bytes actually available in the block (header included).
        usable: u32,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::UnformattedPool => write!(f, "pool is not a Montage pool"),
            RecoveryError::CorruptClock { found } => {
                write!(f, "corrupt epoch clock: found {found}")
            }
            RecoveryError::CorruptHeader { blk } => {
                write!(f, "corrupt payload header at {blk:?}")
            }
            RecoveryError::TruncatedPayload { blk, size, usable } => write!(
                f,
                "truncated payload at {blk:?}: claims {size} B, block holds {usable} B"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = OldSeeNewException {
            op_epoch: 5,
            payload_epoch: 7,
        };
        assert!(e.to_string().contains("epoch 5"));
        assert!(e.to_string().contains("epoch 7"));
        let c = EpochChanged {
            op_epoch: 5,
            current_epoch: 6,
        };
        assert!(c.to_string().contains('6'));
    }
}
