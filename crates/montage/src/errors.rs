//! Error types surfaced to data-structure code.

use std::fmt;

/// The paper's `OldSeeNewException`: an operation running in epoch *e*
/// touched a payload created in some epoch *e′ > e*.
///
/// Montage raises this to help structures keep their linearization order
/// consistent with epoch order (paper Sec. 3.2, property 3). Lock-based
/// structures never see it; nonblocking operations respond by rolling back
/// and restarting in the newer epoch, which preserves lock freedom (the
/// epoch must have advanced for the exception to arise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OldSeeNewException {
    /// The epoch the running operation registered in.
    pub op_epoch: u64,
    /// The (newer) epoch found on the payload.
    pub payload_epoch: u64,
}

impl fmt::Display for OldSeeNewException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "old-see-new: operation in epoch {} read payload from epoch {}",
            self.op_epoch, self.payload_epoch
        )
    }
}

impl std::error::Error for OldSeeNewException {}

/// Returned by `CHECK_EPOCH` (and `CAS_verify`) when the global epoch clock
/// no longer matches the operation's registered epoch; the operation must
/// restart to linearize within a single epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochChanged {
    pub op_epoch: u64,
    pub current_epoch: u64,
}

impl fmt::Display for EpochChanged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch changed: operation registered in {}, clock now at {}",
            self.op_epoch, self.current_epoch
        )
    }
}

impl std::error::Error for EpochChanged {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = OldSeeNewException {
            op_epoch: 5,
            payload_epoch: 7,
        };
        assert!(e.to_string().contains("epoch 5"));
        assert!(e.to_string().contains("epoch 7"));
        let c = EpochChanged {
            op_epoch: 5,
            current_epoch: 6,
        };
        assert!(c.to_string().contains('6'));
    }
}
