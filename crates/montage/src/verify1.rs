//! The paper's *first* nonblocking-linearization primitive (Sec. 3.2): a
//! counted cell whose linearizing CAS "also modifies an adjacent counter (as
//! is often used to avoid ABA anomalies)". The protocol:
//!
//! 1. read the cell,
//! 2. verify the epoch clock (`CHECK_EPOCH`),
//! 3. CAS, bumping the counter.
//!
//! If the CAS succeeds it "can be said to have occurred at the time of the
//! `CHECK_EPOCH` call" — i.e. within the operation's epoch. The counterpart
//! read, `load_verify1`, is a **read-CAS** that bumps the counter without
//! changing the value: a reader that linearizes after an epoch change
//! thereby invalidates any still-pending CAS from the previous epoch, so it
//! can never observe an old-epoch update as "not yet having occurred".
//!
//! Compared with [`crate::dcss::VerifyCell`] (`load_verify2`/`CAS_verify2`),
//! this variant makes *reads* write (a cache-line invalidation per read), so
//! the paper recommends it only when updates dominate. Values are 48 bits
//! (enough for pointers and indices); the counter is 16 bits and may wrap —
//! wrapping is harmless because the counter only needs to differ across the
//! window of one pending CAS.

use crate::sync::{AtomicU64, Ordering};

use crate::errors::EpochChanged;
use crate::esys::{EpochSys, OpGuard};

const VALUE_BITS: u32 = 48;
const VALUE_MASK: u64 = (1 << VALUE_BITS) - 1;

#[inline]
fn pack(count: u64, value: u64) -> u64 {
    (count << VALUE_BITS) | (value & VALUE_MASK)
}

#[inline]
fn count_of(word: u64) -> u64 {
    word >> VALUE_BITS
}

#[inline]
fn value_of(word: u64) -> u64 {
    word & VALUE_MASK
}

/// Failure modes of [`CountedCell::cas_verify1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cas1Error {
    /// The cell's value differed from `old` (actual value given), or the
    /// counter moved underneath us.
    Conflict(u64),
    /// The epoch advanced; restart the operation.
    Epoch(EpochChanged),
}

/// A 48-bit value with an adjacent 16-bit modification counter.
#[derive(Debug)]
pub struct CountedCell(AtomicU64);

impl CountedCell {
    pub fn new(value: u64) -> Self {
        debug_assert!(value <= VALUE_MASK);
        CountedCell(AtomicU64::new(pack(0, value)))
    }

    /// Plain racy read of the value (no linearization guarantee; for
    /// monitoring/tests).
    pub fn peek(&self) -> u64 {
        value_of(self.0.load(Ordering::SeqCst))
    }

    /// `load_verify1`: the linearizing read. Bumps the adjacent counter with
    /// a read-CAS, so this read cannot be reordered (in linearization terms)
    /// before an update from a previous epoch.
    pub fn load_verify1(&self, esys: &EpochSys, g: &OpGuard<'_>) -> Result<u64, EpochChanged> {
        loop {
            let cur = self.0.load(Ordering::SeqCst);
            esys.check_epoch(g)?;
            let next = pack(count_of(cur).wrapping_add(1) & 0xFFFF, value_of(cur));
            if self
                .0
                .compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(value_of(cur));
            }
        }
    }

    /// `CAS_verify1`: read → `CHECK_EPOCH` → counted CAS. On success the
    /// operation linearized within `g`'s epoch.
    pub fn cas_verify1(
        &self,
        esys: &EpochSys,
        g: &OpGuard<'_>,
        old: u64,
        new: u64,
    ) -> Result<(), Cas1Error> {
        debug_assert!(old <= VALUE_MASK && new <= VALUE_MASK);
        let cur = self.0.load(Ordering::SeqCst);
        if value_of(cur) != old {
            return Err(Cas1Error::Conflict(value_of(cur)));
        }
        esys.check_epoch(g).map_err(Cas1Error::Epoch)?;
        let next = pack(count_of(cur).wrapping_add(1) & 0xFFFF, new);
        match self
            .0
            .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Ok(()),
            Err(actual) => Err(Cas1Error::Conflict(value_of(actual))),
        }
    }

    /// Unsynchronized store for single-threaded initialization.
    pub fn store_unsync(&self, value: u64) {
        debug_assert!(value <= VALUE_MASK);
        self.0.store(pack(0, value), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EsysConfig;
    use pmem::{PmemConfig, PmemPool};
    use std::sync::Arc;

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(8 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn pack_roundtrip() {
        let w = pack(7, 0xABCDE);
        assert_eq!(count_of(w), 7);
        assert_eq!(value_of(w), 0xABCDE);
    }

    #[test]
    fn cas_succeeds_in_stable_epoch_and_bumps_count() {
        let s = sys();
        let tid = s.register_thread();
        let c = CountedCell::new(1);
        let g = s.begin_op(tid);
        c.cas_verify1(&s, &g, 1, 2).unwrap();
        assert_eq!(c.peek(), 2);
        assert_eq!(count_of(c.0.load(Ordering::SeqCst)), 1);
    }

    #[test]
    fn cas_fails_after_epoch_advance() {
        let s = sys();
        let tid = s.register_thread();
        let c = CountedCell::new(1);
        let g = s.begin_op(tid);
        s.advance_epoch();
        match c.cas_verify1(&s, &g, 1, 2) {
            Err(Cas1Error::Epoch(_)) => {}
            other => panic!("expected epoch failure, got {other:?}"),
        }
        assert_eq!(c.peek(), 1);
    }

    #[test]
    fn cas_reports_value_conflicts() {
        let s = sys();
        let tid = s.register_thread();
        let c = CountedCell::new(5);
        let g = s.begin_op(tid);
        match c.cas_verify1(&s, &g, 4, 6) {
            Err(Cas1Error::Conflict(v)) => assert_eq!(v, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn read_cas_invalidates_stale_writer() {
        // A writer reads the cell, then stalls; a reader linearizes with
        // load_verify1 (bumping the count); the stale writer's CAS must fail
        // even though the *value* is unchanged — the exact ABA/old-epoch
        // window the counter exists to close.
        let s = sys();
        let t_w = s.register_thread();
        let t_r = s.register_thread();
        let c = CountedCell::new(1);

        let gw = s.begin_op(t_w);
        let observed = c.0.load(Ordering::SeqCst); // writer's stale snapshot
        {
            let gr = s.begin_op(t_r);
            assert_eq!(c.load_verify1(&s, &gr).unwrap(), 1);
        }
        // Manual counted CAS with the stale snapshot must fail.
        assert!(c
            .0
            .compare_exchange(observed, pack(99, 2), Ordering::SeqCst, Ordering::SeqCst)
            .is_err());
        drop(gw);
    }

    #[test]
    fn load_verify1_fails_across_epochs() {
        let s = sys();
        let tid = s.register_thread();
        let c = CountedCell::new(3);
        let g = s.begin_op(tid);
        s.advance_epoch();
        assert!(c.load_verify1(&s, &g).is_err());
    }

    #[test]
    fn concurrent_counted_increments_are_exact() {
        let s = sys();
        let c = Arc::new(CountedCell::new(0));
        let mut handles = vec![];
        const PER: u64 = 1500;
        for _ in 0..4 {
            let s = s.clone();
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut done = 0;
                while done < PER {
                    let g = s.begin_op(tid);
                    let cur = match c.load_verify1(&s, &g) {
                        Ok(v) => v,
                        Err(_) => continue,
                    };
                    if c.cas_verify1(&s, &g, cur, cur + 1).is_ok() {
                        done += 1;
                    }
                }
            }));
        }
        for _ in 0..15 {
            s.advance_epoch();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.peek(), 4 * PER);
    }
}
