//! Synchronization facade for the lock-free protocol core.
//!
//! All protocol code in this crate (and in `montage-ds`) goes through these
//! types instead of `std::sync::atomic` / `parking_lot` directly.  In normal
//! builds everything here is a zero-cost re-export of the real primitives.
//! With the `interleave-check` feature the same names resolve to the
//! instrumented types from the `interleave` model checker, so the *actual*
//! protocol code — not a hand-written model of it — runs under exhaustive
//! bounded-preemption interleaving search.
//!
//! The `weaken(site, ord)` hook is an identity function in real builds.  Under
//! the checker it downgrades the ordering to `Relaxed` when the execution was
//! configured with a matching weakening site, which is how the CI fixtures
//! prove the checker would catch an accidental ordering downgrade at each
//! publication edge.
//!
//! Stats counters that are never part of a cross-thread protocol handoff
//! (operation tallies, byte counts) stay on raw `std` atomics via
//! [`uninstrumented`], keeping the model-checked state space focused on the
//! synchronization that matters.

#[cfg(feature = "interleave-check")]
pub use interleave::sync::{
    spin_loop, thread, weaken, yield_now, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize,
    Mutex, MutexGuard,
};

#[cfg(feature = "interleave-check")]
pub use interleave::sync::from_std;

#[cfg(not(feature = "interleave-check"))]
mod real {
    pub use parking_lot::{Mutex, MutexGuard};
    pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};
    pub use std::thread;

    /// Identity in real builds; the checker build swaps in the fixture hook.
    #[inline(always)]
    pub fn weaken(_site: &str, ord: std::sync::atomic::Ordering) -> std::sync::atomic::Ordering {
        ord
    }

    /// View a `std` atomic (e.g. one living in pmem pool metadata) as a
    /// facade atomic. A no-op here; the checker build wraps it.
    #[inline(always)]
    pub fn from_std(a: &std::sync::atomic::AtomicU64) -> &AtomicU64 {
        a
    }

    #[inline(always)]
    pub fn spin_loop() {
        std::hint::spin_loop();
    }

    #[inline(always)]
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

#[cfg(not(feature = "interleave-check"))]
pub use real::*;

// The `Ordering` enum is shared between both worlds: the facade types take the
// real `std` orderings, and the checker maps them onto its memory model.
pub use std::sync::atomic::Ordering;

/// Raw `std` atomics for stats/counters that are not part of any cross-thread
/// protocol handoff. Deliberately NOT instrumented: bumping an op tally must
/// not become a schedule point, or the model-checked state space explodes on
/// bookkeeping instead of synchronization.
pub mod uninstrumented {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}
