//! # kvstore — a memcached-like key-value cache
//!
//! Stand-in for the protected-library memcached variant of Kjellqvist et
//! al. used in the paper's Sec. 6.2 validation: the client links directly
//! against the cache (no sockets), the hash index and LRU bookkeeping stay
//! in DRAM, and item storage is pluggable:
//!
//! * [`KvBackend::Dram`] — fully transient ("DRAM (T)" in Fig. 10);
//! * [`KvBackend::Nvm`] — items in the NVM pool via Ralloc, index in DRAM
//!   ("effectively equivalent to the configuration of Montage (T)");
//! * [`KvBackend::Montage`] — items are Montage payloads: the cache is fully
//!   persistent and recoverable.
//!
//! The memcached item layout (key, flags, value) is preserved in the item
//! bytes; LRU is per-shard with stamp-ordered eviction.

pub mod protocol;
pub mod router;
pub mod session_table;
pub mod sharded;

pub use router::ShardRouter;
pub use session_table::{
    DetectOutcome, DetectStats, DetectedWrite, DESC_BYTES, RESULT_MAX, SESSION_TAG,
};
pub use sharded::{
    ShardRecovery, ShardedKvStore, StoreBatch, StoreError, StoreLease, StoreRecoveryReport,
};

use session_table::{SessionRecord, SessionTable};

use montage::sync::uninstrumented::{AtomicUsize, Ordering};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use montage::{EpochSys, OpGuard, PHandle, RecoveredState, ThreadId};
use parking_lot::Mutex;
use pmem::POff;
use ralloc::Ralloc;

/// 32-byte padded keys, as in the paper's benchmarks.
pub type Key = [u8; 32];

/// Payload tag used for Montage-backed items.
pub const KV_TAG: u16 = 6;

/// Item storage backend.
#[derive(Clone)]
pub enum KvBackend {
    Dram,
    Nvm(Arc<Ralloc>),
    Montage(Arc<EpochSys>),
}

enum ItemRef {
    Dram(Box<[u8]>),
    Nvm(POff, u32),
    Montage(PHandle<[u8]>),
}

struct Shard {
    map: HashMap<Key, (ItemRef, u64)>,
    lru: BTreeMap<u64, Key>,
    /// Key-ordered mirror of `map`'s key set, maintained at every insert
    /// and removal — what gives `scan` its per-stripe ordered walk without
    /// sorting under the lock.
    ordered: BTreeSet<Key>,
    next_stamp: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            ordered: BTreeSet::new(),
            next_stamp: 0,
        }
    }

    fn touch(&mut self, key: &Key) {
        if let Some((_, stamp)) = self.map.get(key) {
            let old = *stamp;
            self.lru.remove(&old);
            let new = self.next_stamp;
            self.next_stamp += 1;
            self.lru.insert(new, *key);
            self.map.get_mut(key).unwrap().1 = new;
        }
    }
}

/// The cache. `capacity` bounds items per shard (memcached's memory cap).
pub struct KvStore {
    backend: KvBackend,
    shards: Box<[Mutex<Shard>]>,
    capacity_per_shard: usize,
    len: AtomicUsize,
    evictions: AtomicUsize,
    /// Detectable-operations state: one durable descriptor per session (see
    /// [`session_table`]). Descriptors live in this store's pool, so in a
    /// sharded deployment each session's descriptor sits in the shard of the
    /// key it last mutated there — fault containment matches the data's.
    sessions: SessionTable,
}

/// Montage item layout: key bytes then value bytes.
const KEY_BYTES: usize = 32;

impl KvStore {
    pub fn new(backend: KvBackend, shards: usize, capacity: usize) -> Self {
        assert!(shards > 0);
        KvStore {
            backend,
            capacity_per_shard: (capacity / shards).max(1),
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            len: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            sessions: SessionTable::default(),
        }
    }

    /// Rebuilds a Montage-backed cache after a crash. KV payloads rebuild
    /// the index; session descriptors rebuild the detectable-operations
    /// table, marked `recovered` so replays from them count as acks carried
    /// across the crash.
    pub fn recover(
        esys: Arc<EpochSys>,
        shards: usize,
        capacity: usize,
        rec: &RecoveredState,
    ) -> Self {
        let store = Self::new(KvBackend::Montage(esys), shards, capacity);
        for item in rec.shards.iter().flatten() {
            match item.tag {
                KV_TAG => {
                    let key: Key = rec.with_bytes(item, |b| b[..KEY_BYTES].try_into().unwrap());
                    let mut shard = store.shards[store.index(&key)].lock();
                    let stamp = shard.next_stamp;
                    shard.next_stamp += 1;
                    shard
                        .map
                        .insert(key, (ItemRef::Montage(item.handle()), stamp));
                    shard.lru.insert(stamp, key);
                    shard.ordered.insert(key);
                    store.len.fetch_add(1, Ordering::Relaxed);
                }
                SESSION_TAG => {
                    let Some((sid, rid, op_kind, result)) =
                        rec.with_bytes(item, session_table::decode_descriptor)
                    else {
                        continue; // malformed descriptors are dropped, not trusted
                    };
                    *store.sessions.slot(sid).lock() = Some(SessionRecord {
                        rid,
                        op_kind,
                        result,
                        handle: Some(item.handle()),
                        recovered: true,
                    });
                }
                _ => {}
            }
        }
        store
    }

    /// Registers the calling worker; returns the id to pass to operations.
    pub fn register_thread(&self) -> usize {
        match &self.backend {
            KvBackend::Montage(esys) => esys.register_thread().0,
            _ => 0,
        }
    }

    /// Fallible worker registration for connection-oriented front-ends:
    /// `None` means the Montage thread table is fully leased (the caller
    /// should reject the session rather than panic). Transient backends have
    /// no per-thread state, so registration always succeeds with id 0.
    pub fn try_register_thread(&self) -> Option<usize> {
        match &self.backend {
            KvBackend::Montage(esys) => esys.try_register_thread().map(|t| t.0),
            _ => Some(0),
        }
    }

    /// Returns a worker id leased via [`KvStore::try_register_thread`] (or
    /// [`KvStore::register_thread`]) so a later session can reuse it.
    pub fn unregister_thread(&self, tid: usize) {
        if let KvBackend::Montage(esys) = &self.backend {
            esys.unregister_thread(ThreadId(tid));
        }
    }

    /// The epoch system backing a [`KvBackend::Montage`] store, if any —
    /// where a serving layer reaches `sync()` for client-visible durability.
    pub fn esys(&self) -> Option<&Arc<EpochSys>> {
        match &self.backend {
            KvBackend::Montage(esys) => Some(esys),
            _ => None,
        }
    }

    /// Reports an injected crash on the backing pool, if any — serving
    /// layers use this to refuse mutations instead of panicking once a
    /// fault plan has tripped. Transient backends never fault.
    pub fn fault(&self) -> Option<pmem::PmemFault> {
        match &self.backend {
            KvBackend::Montage(esys) => esys.fault(),
            KvBackend::Nvm(r) => r.pool().fault(),
            KvBackend::Dram => None,
        }
    }

    /// Persistence counters of the backing pool (`None` for DRAM stores) —
    /// the server's `stats` command reports these over the wire.
    pub fn pool_stats(&self) -> Option<pmem::StatsSnapshot> {
        match &self.backend {
            KvBackend::Montage(esys) => Some(esys.pool().stats().snapshot()),
            KvBackend::Nvm(r) => Some(r.pool().stats().snapshot()),
            KvBackend::Dram => None,
        }
    }

    fn index(&self, key: &Key) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// DRAM held by the per-stripe ordered mirrors (ROADMAP item 3's
    /// accounting fragment): every key the `BTreeSet`s index, costed at the
    /// key bytes plus two words of amortized B-tree node bookkeeping
    /// (leaves hold 5..=11 keys, so edge pointers and lengths stay under
    /// 16 bytes per key even at worst-case fill). An estimate by design —
    /// the 32-byte keys dominate — but it moves with occupancy, which is
    /// what capacity planning needs.
    pub fn ordered_mirror_bytes(&self) -> usize {
        const PER_KEY: usize = std::mem::size_of::<Key>() + 2 * std::mem::size_of::<usize>();
        self.shards
            .iter()
            .map(|s| s.lock().ordered.len() * PER_KEY)
            .sum()
    }

    fn make_item(&self, tid: usize, key: &Key, value: &[u8]) -> ItemRef {
        match &self.backend {
            KvBackend::Dram => ItemRef::Dram(value.into()),
            KvBackend::Nvm(r) => {
                let off = r.alloc(value.len().max(1));
                r.pool().write_bytes(off, value);
                ItemRef::Nvm(off, value.len() as u32)
            }
            KvBackend::Montage(esys) => {
                let g = esys.begin_op(ThreadId(tid));
                let mut bytes = Vec::with_capacity(KEY_BYTES + value.len());
                bytes.extend_from_slice(key);
                bytes.extend_from_slice(value);
                ItemRef::Montage(esys.pnew_bytes(&g, KV_TAG, &bytes))
            }
        }
    }

    fn free_item(&self, tid: usize, item: ItemRef) {
        match (&self.backend, item) {
            (_, ItemRef::Dram(_)) => {}
            (KvBackend::Nvm(r), ItemRef::Nvm(off, _)) => r.dealloc(off),
            (KvBackend::Montage(esys), ItemRef::Montage(h)) => {
                let g = esys.begin_op(ThreadId(tid));
                let _ = esys.pdelete(&g, h);
            }
            _ => unreachable!("item/backend mismatch"),
        }
    }

    /// memcached `get`: applies `f` to the value bytes on hit.
    pub fn get<R>(&self, _tid: usize, key: &Key, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let mut shard = self.shards[self.index(key)].lock();
        shard.touch(key);
        let (item, _) = shard.map.get(key)?;
        Some(match (&self.backend, item) {
            (_, ItemRef::Dram(b)) => f(b),
            (KvBackend::Nvm(r), ItemRef::Nvm(off, len)) => {
                r.pool().media_read(*len as usize);
                // SAFETY: (both lines) the ItemRef was produced by this
                // arena's own append, so `off..off+len` is in bounds and the
                // bytes are initialized.
                let ptr = unsafe { r.pool().at::<u8>(*off) };
                f(unsafe { std::slice::from_raw_parts(ptr, *len as usize) })
            }
            (KvBackend::Montage(esys), ItemRef::Montage(h)) => esys.peek_bytes_unsafe(*h, |b| {
                esys.pool().media_read(b.len());
                f(&b[KEY_BYTES..])
            }),
            _ => unreachable!("item/backend mismatch"),
        })
    }

    /// memcached `set`: insert or overwrite.
    pub fn set(&self, tid: usize, key: Key, value: &[u8]) {
        let mut shard = self.shards[self.index(&key)].lock();
        self.set_locked(tid, &mut shard, key, value);
    }

    /// [`KvStore::set`] under an already-held shard lock (the locked
    /// read-modify-write path applies its verdict without releasing).
    fn set_locked(&self, tid: usize, shard: &mut Shard, key: Key, value: &[u8]) {
        if let Some((item, _)) = shard.map.get_mut(&key) {
            // Update in place where the backend supports it.
            match (&self.backend, &mut *item) {
                (_, ItemRef::Dram(b)) if b.len() == value.len() => {
                    b.copy_from_slice(value);
                }
                (_, ItemRef::Dram(b)) => *b = value.into(),
                (KvBackend::Nvm(r), ItemRef::Nvm(off, len)) if *len as usize == value.len() => {
                    r.pool().write_bytes(*off, value);
                }
                (KvBackend::Nvm(r), ItemRef::Nvm(off, len)) => {
                    r.dealloc(*off);
                    let noff = r.alloc(value.len().max(1));
                    r.pool().write_bytes(noff, value);
                    *off = noff;
                    *len = value.len() as u32;
                }
                (KvBackend::Montage(esys), ItemRef::Montage(h)) => {
                    let same_len =
                        esys.peek_bytes_unsafe(*h, |b| b.len() == KEY_BYTES + value.len());
                    let g = esys.begin_op(ThreadId(tid));
                    if same_len {
                        *h = esys
                            .set_bytes(&g, *h, |b| b[KEY_BYTES..].copy_from_slice(value))
                            .expect("shard lock orders epochs");
                    } else {
                        let mut bytes = Vec::with_capacity(KEY_BYTES + value.len());
                        bytes.extend_from_slice(&key);
                        bytes.extend_from_slice(value);
                        let nh = esys.pnew_bytes(&g, KV_TAG, &bytes);
                        let _ = esys.pdelete(&g, *h);
                        *h = nh;
                    }
                }
                _ => unreachable!("item/backend mismatch"),
            }
            shard.touch(&key);
            return;
        }
        // Insert (with LRU eviction at capacity).
        if shard.map.len() >= self.capacity_per_shard {
            if let Some((&oldest, &victim)) = shard.lru.iter().next() {
                shard.lru.remove(&oldest);
                if let Some((item, _)) = shard.map.remove(&victim) {
                    shard.ordered.remove(&victim);
                    self.free_item(tid, item);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let item = self.make_item(tid, &key, value);
        let stamp = shard.next_stamp;
        shard.next_stamp += 1;
        shard.map.insert(key, (item, stamp));
        shard.lru.insert(stamp, key);
        shard.ordered.insert(key);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// memcached `delete`.
    pub fn delete(&self, tid: usize, key: &Key) -> bool {
        let mut shard = self.shards[self.index(key)].lock();
        self.delete_locked(tid, &mut shard, key)
    }

    /// [`KvStore::delete`] under an already-held shard lock.
    fn delete_locked(&self, tid: usize, shard: &mut Shard, key: &Key) -> bool {
        let Some((item, stamp)) = shard.map.remove(key) else {
            return false;
        };
        shard.lru.remove(&stamp);
        shard.ordered.remove(key);
        self.free_item(tid, item);
        self.len.fetch_sub(1, Ordering::Relaxed);
        true
    }

    /// Ordered inclusive range scan: every stripe is walked under its lock
    /// (a per-stripe atomic snapshot — no torn view of any single stripe),
    /// then the per-stripe runs are merged into one sorted result capped at
    /// `limit`. Scans are reads: they do not touch the LRU and never
    /// persist anything.
    pub fn scan(&self, lo: &Key, hi: &Key, limit: usize) -> Vec<(Key, Vec<u8>)> {
        if lo > hi || limit == 0 {
            return Vec::new();
        }
        let mut out: Vec<(Key, Vec<u8>)> = Vec::new();
        for stripe in self.shards.iter() {
            let shard = stripe.lock();
            for key in shard.ordered.range(*lo..=*hi) {
                let value = self
                    .read_value_locked(&shard, key)
                    .expect("ordered mirrors map");
                out.push((*key, value));
            }
        }
        out.sort_by_key(|e| e.0);
        out.truncate(limit);
        out
    }

    /// The key's current value bytes under an already-held shard lock —
    /// the read half of every locked read-modify-write.
    fn read_value_locked(&self, shard: &Shard, key: &Key) -> Option<Vec<u8>> {
        let (item, _) = shard.map.get(key)?;
        Some(match (&self.backend, item) {
            (_, ItemRef::Dram(b)) => b.to_vec(),
            (KvBackend::Nvm(r), ItemRef::Nvm(off, len)) => {
                r.pool().media_read(*len as usize);
                // SAFETY: (both lines) the ItemRef was produced by this
                // arena's own append, so `off..off+len` is in bounds and the
                // bytes are initialized.
                let ptr = unsafe { r.pool().at::<u8>(*off) };
                unsafe { std::slice::from_raw_parts(ptr, *len as usize) }.to_vec()
            }
            (KvBackend::Montage(esys), ItemRef::Montage(h)) => esys.peek_bytes_unsafe(*h, |b| {
                esys.pool().media_read(b.len());
                b[KEY_BYTES..].to_vec()
            }),
            _ => unreachable!("item/backend mismatch"),
        })
    }

    /// An atomic read-modify-write: runs `decide` on the key's current
    /// value and applies its verdict while **holding the shard lock across
    /// both**, so two racing mutations of one key serialize — the second
    /// decides against the first's result. This is what makes the
    /// sessionless protocol path's conditional ops (`cas`/`add`/`incr`)
    /// atomic: without the held lock, two connections on different workers
    /// interleave get→decide→set and lose updates. Returns `decide`'s
    /// reply bytes.
    pub fn update(
        &self,
        tid: usize,
        key: &Key,
        decide: impl FnOnce(Option<&[u8]>) -> (DetectedWrite, Vec<u8>),
    ) -> Vec<u8> {
        let mut shard = self.shards[self.index(key)].lock();
        let current = self.read_value_locked(&shard, key);
        let (write, reply) = decide(current.as_deref());
        match &self.backend {
            KvBackend::Montage(esys) => {
                let g = esys.begin_op(ThreadId(tid));
                self.apply_montage_write(esys, &g, &mut shard, key, write);
            }
            _ => match write {
                DetectedWrite::Keep => {}
                DetectedWrite::Delete => {
                    self.delete_locked(tid, &mut shard, key);
                }
                DetectedWrite::Upsert(v) => self.set_locked(tid, &mut shard, *key, &v),
            },
        }
        reply
    }

    // ---- detectable operations ------------------------------------------

    /// A detectable mutation: routes `(sid, rid)` through the session table,
    /// and if the request id is new, runs `decide` on the key's current
    /// value and applies its verdict **and** the session's descriptor update
    /// inside a single `BEGIN_OP` window.
    ///
    /// That single window is the whole correctness argument: the epoch clock
    /// cannot advance past an open operation, so the mutation and the
    /// descriptor recording its result are labelled with the same epoch and
    /// reach the persistence domain under the same boundary fence — a
    /// recovered image either has both (replay answers from the descriptor)
    /// or neither (the retry re-applies). No extra fence is issued: the
    /// descriptor rides whatever sync policy the caller already runs.
    ///
    /// If `rid` matches the session's last recorded request, `decide` is
    /// **not** run; the recorded result is returned as
    /// [`DetectOutcome::Replayed`]. A `rid` below the recorded one is
    /// refused as [`DetectOutcome::Stale`] — its result was already
    /// consumed and then overwritten.
    ///
    /// Transient backends (DRAM/NVM) run the same dedupe protocol in DRAM
    /// only: there is no crash to survive, so nothing is persisted.
    pub fn detected_update(
        &self,
        tid: usize,
        sid: u64,
        rid: u64,
        op_kind: u8,
        key: &Key,
        decide: impl FnOnce(Option<&[u8]>) -> (DetectedWrite, Vec<u8>),
    ) -> DetectOutcome {
        // Serialization is per session, not per store: the table-wide lock
        // is held only long enough to fetch the session's slot, then two
        // racing retries of the same request serialize on the slot (the
        // loser answered from the winner's descriptor) while unrelated
        // sessions run concurrently — contending, at most, on the mutated
        // key's shard lock like any other mutation.
        let slot = self.sessions.slot(sid);
        let mut entry = slot.lock();
        if let Some(rec) = entry.as_ref() {
            if rid == rec.rid {
                self.sessions.dedupe_hits.fetch_add(1, Ordering::Relaxed);
                if rec.recovered {
                    self.sessions.replayed_acks.fetch_add(1, Ordering::Relaxed);
                }
                return DetectOutcome::Replayed(rec.result.clone());
            }
            if rid < rec.rid {
                return DetectOutcome::Stale { last_rid: rec.rid };
            }
        }
        let (result, handle) = match &self.backend {
            KvBackend::Montage(esys) => {
                let mut shard = self.shards[self.index(key)].lock();
                let g = esys.begin_op(ThreadId(tid));
                let current = self.read_value_locked(&shard, key);
                let (write, result) = decide(current.as_deref());
                self.apply_montage_write(esys, &g, &mut shard, key, write);
                let desc = session_table::encode_descriptor(sid, rid, op_kind, &result);
                let handle = match entry.as_ref().and_then(|r| r.handle) {
                    // Fixed-size descriptor: always a same-length overwrite,
                    // so uid cancellation keeps exactly one durable version.
                    Some(h) => esys
                        .set_bytes(&g, h, |b| b.copy_from_slice(&desc))
                        .expect("session slot lock orders epochs"),
                    None => esys.pnew_bytes(&g, SESSION_TAG, &desc),
                };
                (result, Some(handle))
            }
            // Transient backends dedupe in DRAM only; the mutation itself
            // runs the same locked read-modify-write as the plain path.
            _ => (self.update(tid, key, decide), None),
        };
        *entry = Some(SessionRecord {
            rid,
            op_kind,
            result: result.clone(),
            handle,
            recovered: false,
        });
        DetectOutcome::Applied(result)
    }

    /// Applies a [`DetectedWrite`] to a Montage shard under the caller's
    /// already-open operation guard (same index/LRU bookkeeping as
    /// [`KvStore::set`]/[`KvStore::delete`], but no nested `begin_op`).
    fn apply_montage_write(
        &self,
        esys: &Arc<EpochSys>,
        g: &OpGuard<'_>,
        shard: &mut Shard,
        key: &Key,
        write: DetectedWrite,
    ) {
        let pdelete_item = |item: ItemRef| match item {
            ItemRef::Montage(h) => {
                let _ = esys.pdelete(g, h);
            }
            _ => unreachable!("item/backend mismatch"),
        };
        match write {
            DetectedWrite::Keep => {}
            DetectedWrite::Delete => {
                if let Some((item, stamp)) = shard.map.remove(key) {
                    shard.lru.remove(&stamp);
                    shard.ordered.remove(key);
                    pdelete_item(item);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                }
            }
            DetectedWrite::Upsert(value) => {
                if let Some((item, _)) = shard.map.get_mut(key) {
                    let ItemRef::Montage(h) = item else {
                        unreachable!("item/backend mismatch")
                    };
                    let same_len =
                        esys.peek_bytes_unsafe(*h, |b| b.len() == KEY_BYTES + value.len());
                    if same_len {
                        *h = esys
                            .set_bytes(g, *h, |b| b[KEY_BYTES..].copy_from_slice(&value))
                            .expect("shard lock orders epochs");
                    } else {
                        let mut bytes = Vec::with_capacity(KEY_BYTES + value.len());
                        bytes.extend_from_slice(key);
                        bytes.extend_from_slice(&value);
                        let nh = esys.pnew_bytes(g, KV_TAG, &bytes);
                        let _ = esys.pdelete(g, *h);
                        *h = nh;
                    }
                    shard.touch(key);
                    return;
                }
                if shard.map.len() >= self.capacity_per_shard {
                    if let Some((&oldest, &victim)) = shard.lru.iter().next() {
                        shard.lru.remove(&oldest);
                        if let Some((item, _)) = shard.map.remove(&victim) {
                            shard.ordered.remove(&victim);
                            pdelete_item(item);
                            self.len.fetch_sub(1, Ordering::Relaxed);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let mut bytes = Vec::with_capacity(KEY_BYTES + value.len());
                bytes.extend_from_slice(key);
                bytes.extend_from_slice(&value);
                let item = ItemRef::Montage(esys.pnew_bytes(g, KV_TAG, &bytes));
                let stamp = shard.next_stamp;
                shard.next_stamp += 1;
                shard.map.insert(*key, (item, stamp));
                shard.lru.insert(stamp, *key);
                shard.ordered.insert(*key);
                self.len.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Exactly-once counters and table occupancy for this store.
    pub fn detect_stats(&self) -> DetectStats {
        self.sessions.stats()
    }

    /// The session's recorded `(rid, op_kind, result)`, if it has a
    /// descriptor here — what a recovery test compares against the
    /// recovered key state.
    pub fn session_descriptor(&self, sid: u64) -> Option<(u64, u8, Vec<u8>)> {
        let slot = self.sessions.entries.lock().get(&sid).cloned()?;
        let entry = slot.lock();
        entry.as_ref().map(|r| (r.rid, r.op_kind, r.result.clone()))
    }
}

/// Builds the padded key for record `i` (as in the paper's workloads).
pub fn make_key(i: u64) -> Key {
    let mut k = [0u8; 32];
    let s = i.to_string();
    k[..s.len()].copy_from_slice(s.as_bytes());
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    fn backends() -> Vec<KvBackend> {
        let pool = PmemPool::new(PmemConfig::default());
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        );
        vec![
            KvBackend::Dram,
            KvBackend::Nvm(Ralloc::format(pool)),
            KvBackend::Montage(esys),
        ]
    }

    #[test]
    fn get_set_delete_all_backends() {
        for backend in backends() {
            let kv = KvStore::new(backend, 4, 1000);
            let tid = kv.register_thread();
            kv.set(tid, make_key(1), b"hello");
            assert_eq!(kv.get(tid, &make_key(1), |v| v.to_vec()).unwrap(), b"hello");
            kv.set(tid, make_key(1), b"world");
            assert_eq!(kv.get(tid, &make_key(1), |v| v.to_vec()).unwrap(), b"world");
            assert!(kv.delete(tid, &make_key(1)));
            assert!(kv.get(tid, &make_key(1), |_| ()).is_none());
            assert!(!kv.delete(tid, &make_key(1)));
        }
    }

    #[test]
    fn value_resize_works_all_backends() {
        for backend in backends() {
            let kv = KvStore::new(backend, 2, 100);
            let tid = kv.register_thread();
            kv.set(tid, make_key(9), b"short");
            kv.set(tid, make_key(9), &vec![7u8; 500]);
            assert_eq!(kv.get(tid, &make_key(9), |v| v.len()).unwrap(), 500);
        }
    }

    #[test]
    fn lru_evicts_oldest() {
        let kv = KvStore::new(KvBackend::Dram, 1, 3);
        let tid = 0;
        kv.set(tid, make_key(1), b"a");
        kv.set(tid, make_key(2), b"b");
        kv.set(tid, make_key(3), b"c");
        kv.get(tid, &make_key(1), |_| ()); // touch 1 → 2 is now LRU
        kv.set(tid, make_key(4), b"d");
        assert_eq!(kv.evictions(), 1);
        assert!(
            kv.get(tid, &make_key(2), |_| ()).is_none(),
            "LRU victim is 2"
        );
        assert!(kv.get(tid, &make_key(1), |_| ()).is_some());
    }

    #[test]
    fn update_applies_decision_atomically_all_backends() {
        for backend in backends() {
            let kv = Arc::new(KvStore::new(backend, 4, 1000));
            let tid = kv.register_thread();
            kv.set(tid, make_key(1), b"0");
            let mut handles = vec![];
            for _ in 0..4 {
                let kv = kv.clone();
                handles.push(std::thread::spawn(move || {
                    let tid = kv.register_thread();
                    for _ in 0..100 {
                        let reply = kv.update(tid, &make_key(1), |cur| {
                            let v: u64 =
                                std::str::from_utf8(cur.unwrap()).unwrap().parse().unwrap();
                            let next = (v + 1).to_string();
                            (
                                DetectedWrite::Upsert(next.clone().into_bytes()),
                                next.into_bytes(),
                            )
                        });
                        assert!(!reply.is_empty());
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                kv.get(tid, &make_key(1), |v| v.to_vec()).unwrap(),
                b"400",
                "racing read-modify-writes must not lose updates"
            );
            // Keep leaves the value alone, Delete removes it.
            let r = kv.update(tid, &make_key(1), |_| {
                (DetectedWrite::Keep, b"kept".to_vec())
            });
            assert_eq!(r, b"kept");
            kv.update(tid, &make_key(1), |_| (DetectedWrite::Delete, vec![]));
            assert!(kv.get(tid, &make_key(1), |_| ()).is_none());
        }
    }

    #[test]
    fn detected_sessions_race_without_store_wide_serialization() {
        // Distinct sessions mutating distinct keys only contend on shard
        // locks; racing them end-to-end still yields per-session exactly-once
        // counts and one descriptor each.
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        );
        let kv = Arc::new(KvStore::new(KvBackend::Montage(esys), 4, 1000));
        let mut handles = vec![];
        for sid in 0..4u64 {
            let kv = kv.clone();
            handles.push(std::thread::spawn(move || {
                let tid = kv.register_thread();
                let key = make_key(sid);
                for rid in 1..=50u64 {
                    let out = kv.detected_update(tid, sid, rid, 7, &key, |cur| {
                        let v: u64 = cur
                            .map(|b| std::str::from_utf8(b).unwrap().parse().unwrap())
                            .unwrap_or(0);
                        let next = (v + 1).to_string().into_bytes();
                        (DetectedWrite::Upsert(next.clone()), next)
                    });
                    // A fresh rid always applies; a blind retry replays.
                    assert!(matches!(out, DetectOutcome::Applied(_)));
                    let retry = kv.detected_update(tid, sid, rid, 7, &key, |_| {
                        panic!("retry must not re-run the decision")
                    });
                    assert!(matches!(retry, DetectOutcome::Replayed(_)));
                }
                kv.unregister_thread(tid);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let tid = kv.register_thread();
        for sid in 0..4u64 {
            assert_eq!(
                kv.get(tid, &make_key(sid), |v| v.to_vec()).unwrap(),
                b"50",
                "session {sid} lost updates"
            );
            assert_eq!(kv.session_descriptor(sid).unwrap().0, 50);
        }
        let stats = kv.detect_stats();
        assert_eq!(stats.descriptors, 4);
        assert_eq!(stats.dedupe_hits, 200);
    }

    #[test]
    fn montage_backend_recovers_after_crash() {
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        );
        let kv = KvStore::new(KvBackend::Montage(esys.clone()), 4, 1000);
        let tid = kv.register_thread();
        for i in 0..50 {
            kv.set(tid, make_key(i), format!("v{i}").as_bytes());
        }
        kv.delete(tid, &make_key(7));
        kv.set(tid, make_key(8), b"updated");
        esys.sync();
        let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 2);
        let kv2 = KvStore::recover(rec.esys.clone(), 4, 1000, &rec);
        let tid2 = kv2.register_thread();
        assert_eq!(kv2.len(), 49);
        assert!(kv2.get(tid2, &make_key(7), |_| ()).is_none());
        assert_eq!(
            kv2.get(tid2, &make_key(8), |v| v.to_vec()).unwrap(),
            b"updated"
        );
        assert_eq!(
            kv2.get(tid2, &make_key(33), |v| v.to_vec()).unwrap(),
            b"v33"
        );
    }

    #[test]
    fn concurrent_ycsb_like_traffic() {
        let kv = Arc::new(KvStore::new(KvBackend::Dram, 8, 100_000));
        for i in 0..1000 {
            kv.set(0, make_key(i), &[0u8; 64]);
        }
        let mut handles = vec![];
        for t in 0..4u64 {
            let kv = kv.clone();
            handles.push(std::thread::spawn(move || {
                let mut hits = 0;
                for i in 0..5000u64 {
                    let k = make_key((i * 7 + t * 13) % 1000);
                    if i % 2 == 0 {
                        if kv.get(0, &k, |_| ()).is_some() {
                            hits += 1;
                        }
                    } else {
                        kv.set(0, k, &[1u8; 64]);
                    }
                }
                hits
            }));
        }
        let hits: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(hits > 0);
        assert_eq!(kv.len(), 1000);
    }
}
