//! memcached text-protocol surface over [`crate::KvStore`].
//!
//! The Kjellqvist et al. variant the paper benchmarks links the client
//! directly against the cache, dispensing with sockets — so this module
//! exposes the protocol as a function call: one command line (+ optional
//! data block) in, one response string out. Implements the core command set
//! (`get`/`gets`, `set`/`add`/`replace`, `delete`, `touch`) with memcached
//! item semantics: 32-bit client flags and lazy expiration.
//!
//! Items are encoded inside the store's value bytes as
//! `flags: u32 | expires_at_ms: u64 | data`, so every backend (DRAM, NVM,
//! Montage) — and Montage crash recovery — carries the metadata for free.

use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::{Key, KvStore, ShardedKvStore, StoreError, StoreLease};

const META: usize = 12; // flags u32 + expires_at_ms u64

/// Source of "now" (ms since the Unix epoch) for item expiry. Injectable so
/// expiry is deterministic under test; the default is the wall clock.
pub trait Clock: Send + Sync {
    fn now_ms(&self) -> u64;
}

/// The wall clock.
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_millis() as u64
    }
}

/// One client session. Commands route through a [`ShardedKvStore`] (a
/// plain [`KvStore`] is wrapped as its 1-shard case), with worker ids
/// leased lazily per shard through the session's [`StoreLease`].
pub struct Session {
    store: Arc<ShardedKvStore>,
    lease: Arc<StoreLease>,
    clock: Arc<dyn Clock>,
}

fn make_item(flags: u32, exptime_s: u64, data: &[u8], now_ms: u64) -> Vec<u8> {
    let expires_at = if exptime_s == 0 {
        0
    } else {
        now_ms + exptime_s * 1000
    };
    let mut v = Vec::with_capacity(META + data.len());
    v.extend_from_slice(&flags.to_le_bytes());
    v.extend_from_slice(&expires_at.to_le_bytes());
    v.extend_from_slice(data);
    v
}

fn parse_item(bytes: &[u8]) -> (u32, u64, Vec<u8>) {
    let flags = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    let expires_at = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    (flags, expires_at, bytes[META..].to_vec())
}

fn key_of(s: &str) -> Result<Key, String> {
    let b = s.as_bytes();
    if b.is_empty() || b.len() > 32 {
        return Err("CLIENT_ERROR bad key".into());
    }
    let mut k = [0u8; 32];
    k[..b.len()].copy_from_slice(b);
    Ok(k)
}

impl Session {
    pub fn new(store: Arc<KvStore>) -> Self {
        let store = ShardedKvStore::single(store);
        let lease = Arc::new(store.lease());
        Session::sharded(store, lease)
    }

    /// Wraps an already-leased worker id (the server's session registry
    /// leases ids per connection and returns them on disconnect; the
    /// session does not own the id).
    pub fn with_tid(store: Arc<KvStore>, tid: usize) -> Self {
        let store = ShardedKvStore::single(store);
        let lease = Arc::new(store.lease_prefilled(vec![Some(tid)]));
        Session::sharded(store, lease)
    }

    /// A session over a sharded store with a caller-managed lease (the
    /// server's registry shares one lease per connection).
    pub fn sharded(store: Arc<ShardedKvStore>, lease: Arc<StoreLease>) -> Self {
        Session {
            store,
            lease,
            clock: Arc::new(SystemClock),
        }
    }

    /// Replaces the expiry clock (deterministic tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Executes one command line. Storage commands (`set`/`add`/`replace`)
    /// take their data block in `data`; others ignore it. Returns the
    /// protocol response (without trailing CRLF).
    pub fn execute(&self, line: &str, data: &[u8]) -> String {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return "ERROR".into();
        };
        let args: Vec<&str> = parts.collect();
        match cmd {
            "get" | "gets" => self.do_get(&args),
            "set" | "add" | "replace" => self.do_store(cmd, &args, data),
            "delete" => self.do_delete(&args),
            "touch" => self.do_touch(&args),
            _ => "ERROR".into(),
        }
    }

    /// Fetches live (unexpired) item data + flags, lazily deleting expired
    /// items like memcached does.
    fn fetch(&self, key: &Key) -> Option<(u32, Vec<u8>)> {
        let item = self.store.get(key, parse_item)?;
        let (flags, expires_at, data) = item;
        if expires_at != 0 && expires_at <= self.clock.now_ms() {
            // Best-effort: on a faulted or id-starved shard the expired item
            // stays resident but is still filtered out of every reply.
            let _ = self.store.delete(&self.lease, key);
            return None;
        }
        Some((flags, data))
    }

    fn do_get(&self, args: &[&str]) -> String {
        let mut out = String::new();
        for karg in args {
            let Ok(key) = key_of(karg) else { continue };
            if let Some((flags, data)) = self.fetch(&key) {
                // Replies travel as UTF-8; announce the length of the bytes
                // actually emitted so non-UTF-8 values (lossily transcoded)
                // cannot desync a wire client's framing.
                let text = String::from_utf8_lossy(&data);
                out.push_str(&format!("VALUE {karg} {flags} {}\r\n", text.len()));
                out.push_str(&text);
                out.push_str("\r\n");
            }
        }
        out.push_str("END");
        out
    }

    fn do_store(&self, cmd: &str, args: &[&str], data: &[u8]) -> String {
        if args.len() < 4 {
            return "CLIENT_ERROR bad command line format".into();
        }
        let key = match key_of(args[0]) {
            Ok(k) => k,
            Err(e) => return e,
        };
        let (Ok(flags), Ok(exptime), Ok(nbytes)) = (
            args[1].parse::<u32>(),
            args[2].parse::<u64>(),
            args[3].parse::<usize>(),
        ) else {
            return "CLIENT_ERROR bad command line format".into();
        };
        if nbytes != data.len() {
            return "CLIENT_ERROR bad data chunk".into();
        }
        let exists = self.fetch(&key).is_some();
        match cmd {
            "add" if exists => return "NOT_STORED".into(),
            "replace" if !exists => return "NOT_STORED".into(),
            _ => {}
        }
        match self.store.set(
            &self.lease,
            key,
            &make_item(flags, exptime, data, self.clock.now_ms()),
        ) {
            Ok(()) => "STORED".into(),
            Err(e) => server_error(&e),
        }
    }

    fn do_delete(&self, args: &[&str]) -> String {
        let Some(karg) = args.first() else {
            return "CLIENT_ERROR bad command line format".into();
        };
        match key_of(karg) {
            Ok(key) => match self.store.delete(&self.lease, &key) {
                Ok(true) => "DELETED".into(),
                Ok(false) => "NOT_FOUND".into(),
                Err(e) => server_error(&e),
            },
            Err(e) => e,
        }
    }

    fn do_touch(&self, args: &[&str]) -> String {
        if args.len() < 2 {
            return "CLIENT_ERROR bad command line format".into();
        }
        let key = match key_of(args[0]) {
            Ok(k) => k,
            Err(e) => return e,
        };
        let Ok(exptime) = args[1].parse::<u64>() else {
            return "CLIENT_ERROR bad command line format".into();
        };
        match self.fetch(&key) {
            Some((flags, data)) => match self.store.set(
                &self.lease,
                key,
                &make_item(flags, exptime, &data, self.clock.now_ms()),
            ) {
                Ok(()) => "TOUCHED".into(),
                Err(e) => server_error(&e),
            },
            None => "NOT_FOUND".into(),
        }
    }
}

/// Maps a refused mutation to its wire reply. The `persistent pool crashed`
/// prefix is load-bearing: clients (and the degradation wire tests) match
/// on it to distinguish a frozen pool from a transient error.
fn server_error(e: &StoreError) -> String {
    format!("SERVER_ERROR {e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvBackend;
    use montage::{EpochSys, EsysConfig};
    use pmem::{PmemConfig, PmemPool};

    fn session(backend: KvBackend) -> Session {
        Session::new(Arc::new(KvStore::new(backend, 8, 10_000)))
    }

    #[test]
    fn set_get_roundtrip_with_flags() {
        let s = session(KvBackend::Dram);
        assert_eq!(s.execute("set greeting 42 0 5", b"hello"), "STORED");
        let r = s.execute("get greeting", b"");
        assert!(r.starts_with("VALUE greeting 42 5\r\nhello\r\n"), "{r}");
        assert!(r.ends_with("END"));
    }

    #[test]
    fn non_utf8_value_announces_emitted_length() {
        let s = session(KvBackend::Dram);
        // 0xAB is invalid UTF-8: each byte becomes U+FFFD (3 bytes) in the
        // reply. The VALUE header must count the emitted bytes, or a wire
        // client reading exactly <len> bytes desyncs.
        assert_eq!(s.execute("set bin 0 0 2", &[0xAB, 0xAB]), "STORED");
        let r = s.execute("get bin", b"");
        let header_end = r.find("\r\n").unwrap();
        let announced: usize = r[..header_end].rsplit(' ').next().unwrap().parse().unwrap();
        let body = &r[header_end + 2..r.len() - "\r\nEND".len()];
        assert_eq!(announced, body.len(), "{r:?}");
    }

    #[test]
    fn get_misses_and_multi_get() {
        let s = session(KvBackend::Dram);
        s.execute("set a 0 0 1", b"A");
        s.execute("set b 0 0 1", b"B");
        let r = s.execute("get a missing b", b"");
        assert!(r.contains("VALUE a 0 1"));
        assert!(r.contains("VALUE b 0 1"));
        assert!(!r.contains("missing"));
    }

    #[test]
    fn add_and_replace_semantics() {
        let s = session(KvBackend::Dram);
        assert_eq!(s.execute("replace k 0 0 1", b"x"), "NOT_STORED");
        assert_eq!(s.execute("add k 0 0 1", b"x"), "STORED");
        assert_eq!(s.execute("add k 0 0 1", b"y"), "NOT_STORED");
        assert_eq!(s.execute("replace k 0 0 1", b"y"), "STORED");
        assert!(s.execute("get k", b"").contains("y"));
    }

    #[test]
    fn delete_and_errors() {
        let s = session(KvBackend::Dram);
        assert_eq!(s.execute("delete nope", b""), "NOT_FOUND");
        s.execute("set k 0 0 1", b"x");
        assert_eq!(s.execute("delete k", b""), "DELETED");
        assert_eq!(s.execute("bogus", b""), "ERROR");
        assert_eq!(
            s.execute("set k 0 0 99", b"short"),
            "CLIENT_ERROR bad data chunk"
        );
        assert_eq!(
            s.execute("set k nope 0 1", b"x"),
            "CLIENT_ERROR bad command line format"
        );
    }

    #[test]
    fn expiration_is_lazy_but_effective() {
        let s = session(KvBackend::Dram);
        // Directly store an already-expired item (bypassing the 1s protocol
        // granularity) to avoid sleeping in tests.
        let mut v = Vec::new();
        v.extend_from_slice(&7u32.to_le_bytes());
        v.extend_from_slice(&1u64.to_le_bytes()); // expired long ago
        v.extend_from_slice(b"stale");
        let key = key_of("old").unwrap();
        s.store.set(&s.lease, key, &v).unwrap();
        assert_eq!(s.execute("get old", b""), "END");
        assert_eq!(s.execute("touch old 100", b""), "NOT_FOUND");
        // And a never-expiring item stays.
        s.execute("set fresh 0 0 4", b"data");
        assert!(s.execute("get fresh", b"").contains("data"));
        assert_eq!(s.execute("touch fresh 100", b""), "TOUCHED");
    }

    #[test]
    fn injected_clock_makes_expiry_deterministic() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct MockClock(AtomicU64);
        impl Clock for MockClock {
            fn now_ms(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
        }

        let clock = Arc::new(MockClock(AtomicU64::new(1_000_000)));
        let s = session(KvBackend::Dram).with_clock(clock.clone());
        assert_eq!(s.execute("set k 0 10 1", b"x"), "STORED");
        // 9.999s later: still live.
        clock.0.store(1_000_000 + 9_999, Ordering::Relaxed);
        assert!(s.execute("get k", b"").contains("VALUE k"));
        // touch extends the deadline from *now*.
        assert_eq!(s.execute("touch k 10", b""), "TOUCHED");
        clock.0.store(1_000_000 + 19_998, Ordering::Relaxed);
        assert!(s.execute("get k", b"").contains("VALUE k"));
        // One ms past the touched deadline: lazily expired everywhere.
        clock.0.store(1_000_000 + 19_999, Ordering::Relaxed);
        assert_eq!(s.execute("get k", b""), "END");
        assert_eq!(s.execute("touch k 10", b""), "NOT_FOUND");
        assert_eq!(s.execute("delete k", b""), "NOT_FOUND", "lazy delete ran");
        // exptime 0 never expires.
        s.execute("set forever 0 0 1", b"y");
        clock.0.store(u64::MAX / 2, Ordering::Relaxed);
        assert!(s.execute("get forever", b"").contains("VALUE forever"));
    }

    #[test]
    fn protocol_over_montage_backend_survives_crash() {
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(32 << 20)),
            EsysConfig::default(),
        );
        let store = Arc::new(KvStore::new(KvBackend::Montage(esys.clone()), 8, 10_000));
        let s = Session::new(store);
        assert_eq!(s.execute("set persisted 3 0 9", b"important"), "STORED");
        esys.sync();
        let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 1);
        let store2 = KvStore::recover(rec.esys.clone(), 8, 10_000, &rec);
        let s2 = Session::new(Arc::new(store2));
        let r = s2.execute("get persisted", b"");
        assert!(r.contains("VALUE persisted 3 9"), "{r}");
        assert!(r.contains("important"));
    }

    #[test]
    fn sharded_session_spans_shards() {
        let store = crate::ShardedKvStore::format(
            4,
            PmemConfig::strict_for_test(8 << 20),
            EsysConfig::default(),
            4,
            10_000,
        );
        let lease = Arc::new(store.lease());
        let s = Session::sharded(store.clone(), lease);
        for i in 0..50 {
            assert_eq!(s.execute(&format!("set k{i} 0 0 2"), b"vv"), "STORED");
        }
        for i in 0..50 {
            let r = s.execute(&format!("get k{i}"), b"");
            assert!(r.contains(&format!("VALUE k{i} 0 2")), "{r}");
        }
        assert!(store.len() == 50);
        let touched = s.lease.held().iter().filter(|t| t.is_some()).count();
        assert!(touched >= 2, "50 keys should lease ids on several shards");
    }
}
