//! memcached text-protocol surface over [`crate::KvStore`].
//!
//! The Kjellqvist et al. variant the paper benchmarks links the client
//! directly against the cache, dispensing with sockets — so this module
//! exposes the protocol as a function call: one command line (+ optional
//! data block) in, one response string out. Implements the core command set
//! (`get`/`gets`, `set`/`add`/`replace`/`cas`, `delete`, `touch`,
//! `incr`/`decr`) with memcached item semantics: 32-bit client flags, lazy
//! expiration, and 64-bit cas ids.
//!
//! Items are encoded inside the store's value bytes as
//! `flags: u32 | expires_at_ms: u64 | cas: u64 | data`, so every backend
//! (DRAM, NVM, Montage) — and Montage crash recovery — carries the metadata
//! for free.
//!
//! ## Detectable mutations (exactly-once retries)
//!
//! A mutating command may carry a trailing `rid=<n>` token. When the caller
//! also supplies a session id ([`Session::execute_with`] — the server binds
//! one per connection via its `session <id>` command), the mutation routes
//! through the store's detectable-operations path
//! ([`crate::ShardedKvStore::detected`]): the command's *decision* — what to
//! write and what to reply — runs against the key's current value inside
//! one epoch window together with the session-descriptor update, and a
//! retried `rid` is answered from the descriptor instead of re-applying.
//! Reads never carry rids; they are idempotent. A `rid` without a session
//! is a client error: dedupe identity cannot be per-connection, or it would
//! not survive a reconnect.
//!
//! **Wire contract: one outstanding rid per session.** A session must wait
//! for rid *n*'s reply before sending rid *n+1*. Only the newest rid per
//! (session, shard) is durably retained, so a client that pipelines two
//! rid mutations and crashes before either ack can replay only the later
//! one — the earlier rid is answered `SERVER_ERROR stale request id`, its
//! recorded reply already overwritten. (The rids themselves need not be
//! dense: a session spanning shards leaves gaps in each shard's sequence,
//! which is why the server cannot detect pipelining by rejecting skips.)

use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::session_table::{DetectOutcome, DetectedWrite};
use crate::{Key, KvStore, ShardedKvStore, StoreError, StoreLease};

const META: usize = 20; // flags u32 + expires_at_ms u64 + cas u64

// Descriptor op kinds (recorded for observability; replay keys on rid).
const OP_SET: u8 = 1;
const OP_ADD: u8 = 2;
const OP_REPLACE: u8 = 3;
const OP_CAS: u8 = 4;
const OP_DELETE: u8 = 5;
const OP_TOUCH: u8 = 6;
const OP_INCR: u8 = 7;
const OP_DECR: u8 = 8;

/// Source of "now" (ms since the Unix epoch) for item expiry. Injectable so
/// expiry is deterministic under test; the default is the wall clock.
pub trait Clock: Send + Sync {
    fn now_ms(&self) -> u64;
}

/// The wall clock.
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_millis() as u64
    }
}

/// One client session. Commands route through a [`ShardedKvStore`] (a
/// plain [`KvStore`] is wrapped as its 1-shard case), with worker ids
/// leased lazily per shard through the session's [`StoreLease`].
pub struct Session {
    store: Arc<ShardedKvStore>,
    lease: Arc<StoreLease>,
    clock: Arc<dyn Clock>,
}

/// A decoded item: the protocol metadata plus the client's data bytes.
struct Item {
    flags: u32,
    expires_at: u64,
    cas: u64,
    data: Vec<u8>,
}

fn make_item_at(flags: u32, expires_at: u64, cas: u64, data: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(META + data.len());
    v.extend_from_slice(&flags.to_le_bytes());
    v.extend_from_slice(&expires_at.to_le_bytes());
    v.extend_from_slice(&cas.to_le_bytes());
    v.extend_from_slice(data);
    v
}

fn expires_at(exptime_s: u64, now_ms: u64) -> u64 {
    if exptime_s == 0 {
        0
    } else {
        now_ms + exptime_s * 1000
    }
}

fn parse_item(bytes: &[u8]) -> Item {
    Item {
        flags: u32::from_le_bytes(bytes[..4].try_into().unwrap()),
        expires_at: u64::from_le_bytes(bytes[4..12].try_into().unwrap()),
        cas: u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
        data: bytes[META..].to_vec(),
    }
}

/// Scan reply cap when the client names no limit.
pub const SCAN_DEFAULT_LIMIT: usize = 256;
/// Hard scan reply cap — larger client limits are clamped, bounding any
/// single reply (the "oversized reply" wire case).
pub const SCAN_MAX_LIMIT: usize = 4096;

/// The client-visible text of a padded key (strips the zero padding
/// [`key_of`] added; lossy for keys that were never valid UTF-8).
fn key_text(key: &Key) -> String {
    let end = key.iter().position(|&b| b == 0).unwrap_or(key.len());
    String::from_utf8_lossy(&key[..end]).into_owned()
}

fn key_of(s: &str) -> Result<Key, String> {
    let b = s.as_bytes();
    if b.is_empty() || b.len() > 32 {
        return Err("CLIENT_ERROR bad key".into());
    }
    let mut k = [0u8; 32];
    k[..b.len()].copy_from_slice(b);
    Ok(k)
}

/// One mutating command, parsed down to what its decision needs.
enum MutOp<'a> {
    Store {
        verb: &'a str,
        flags: u32,
        exptime_s: u64,
        data: &'a [u8],
        casid: u64,
    },
    Delete,
    Touch {
        exptime_s: u64,
    },
    Arith {
        incr: bool,
        delta: u64,
    },
}

impl MutOp<'_> {
    fn kind(&self) -> u8 {
        match self {
            MutOp::Store { verb, .. } => match *verb {
                "add" => OP_ADD,
                "replace" => OP_REPLACE,
                "cas" => OP_CAS,
                _ => OP_SET,
            },
            MutOp::Delete => OP_DELETE,
            MutOp::Touch { .. } => OP_TOUCH,
            MutOp::Arith { incr: true, .. } => OP_INCR,
            MutOp::Arith { incr: false, .. } => OP_DECR,
        }
    }

    /// The command's semantics as a pure decision over the key's current
    /// live item: what to write, and what to reply. Shared verbatim by the
    /// plain path and the detected (exactly-once) path, so retries replay
    /// exactly what a first execution would have said.
    fn decide(&self, cur: Option<&Item>, now_ms: u64, new_cas: u64) -> (DetectedWrite, String) {
        match self {
            MutOp::Store {
                verb,
                flags,
                exptime_s,
                data,
                casid,
            } => {
                match (*verb, cur) {
                    ("add", Some(_)) | ("replace", None) => {
                        return (DetectedWrite::Keep, "NOT_STORED".into())
                    }
                    ("cas", None) => return (DetectedWrite::Keep, "NOT_FOUND".into()),
                    ("cas", Some(it)) if it.cas != *casid => {
                        return (DetectedWrite::Keep, "EXISTS".into())
                    }
                    _ => {}
                }
                let bytes = make_item_at(*flags, expires_at(*exptime_s, now_ms), new_cas, data);
                (DetectedWrite::Upsert(bytes), "STORED".into())
            }
            MutOp::Delete => match cur {
                Some(_) => (DetectedWrite::Delete, "DELETED".into()),
                None => (DetectedWrite::Keep, "NOT_FOUND".into()),
            },
            MutOp::Touch { exptime_s } => match cur {
                Some(it) => {
                    let bytes =
                        make_item_at(it.flags, expires_at(*exptime_s, now_ms), new_cas, &it.data);
                    (DetectedWrite::Upsert(bytes), "TOUCHED".into())
                }
                None => (DetectedWrite::Keep, "NOT_FOUND".into()),
            },
            MutOp::Arith { incr, delta } => {
                let Some(it) = cur else {
                    return (DetectedWrite::Keep, "NOT_FOUND".into());
                };
                let Some(v) = std::str::from_utf8(&it.data)
                    .ok()
                    .and_then(|s| s.trim().parse::<u64>().ok())
                else {
                    return (
                        DetectedWrite::Keep,
                        "CLIENT_ERROR cannot increment or decrement non-numeric value".into(),
                    );
                };
                // memcached semantics: incr wraps at 2^64, decr floors at 0.
                let next = if *incr {
                    v.wrapping_add(*delta)
                } else {
                    v.saturating_sub(*delta)
                };
                let text = next.to_string();
                let bytes = make_item_at(it.flags, it.expires_at, new_cas, text.as_bytes());
                (DetectedWrite::Upsert(bytes), text)
            }
        }
    }
}

impl Session {
    pub fn new(store: Arc<KvStore>) -> Self {
        let store = ShardedKvStore::single(store);
        let lease = Arc::new(store.lease());
        Session::sharded(store, lease)
    }

    /// Wraps an already-leased worker id (the server's session registry
    /// leases ids per connection and returns them on disconnect; the
    /// session does not own the id).
    pub fn with_tid(store: Arc<KvStore>, tid: usize) -> Self {
        let store = ShardedKvStore::single(store);
        let lease = Arc::new(store.lease_prefilled(vec![Some(tid)]));
        Session::sharded(store, lease)
    }

    /// A session over a sharded store with a caller-managed lease (the
    /// server's registry shares one lease per connection).
    pub fn sharded(store: Arc<ShardedKvStore>, lease: Arc<StoreLease>) -> Self {
        Session {
            store,
            lease,
            clock: Arc::new(SystemClock),
        }
    }

    /// Replaces the expiry clock (deterministic tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Executes one command line with no session identity: `rid=` tokens
    /// are refused. Storage commands (`set`/`add`/`replace`/`cas`) take
    /// their data block in `data`; others ignore it. Returns the protocol
    /// response (without trailing CRLF).
    pub fn execute(&self, line: &str, data: &[u8]) -> String {
        self.execute_with(line, data, None)
    }

    /// [`Session::execute`] with an attached durable session id: mutating
    /// commands carrying `rid=<n>` run exactly-once through the store's
    /// descriptor table.
    pub fn execute_with(&self, line: &str, data: &[u8], session_id: Option<u64>) -> String {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return "ERROR".into();
        };
        let mut args: Vec<&str> = parts.collect();
        // A request id rides as the line's last token.
        let rid = match args.last().and_then(|t| t.strip_prefix("rid=")) {
            Some(t) => match t.parse::<u64>() {
                Ok(r) => {
                    args.pop();
                    Some(r)
                }
                Err(_) => return "CLIENT_ERROR bad request id".into(),
            },
            None => None,
        };
        let ctx = match (session_id, rid) {
            (Some(sid), Some(rid)) => Some((sid, rid)),
            (None, Some(_)) => return "CLIENT_ERROR rid requires a session".into(),
            _ => None,
        };
        match cmd {
            "get" => self.do_get(&args, false),
            "gets" => self.do_get(&args, true),
            "scan" => self.do_scan(&args),
            "set" | "add" | "replace" | "cas" => self.do_store(cmd, &args, data, ctx),
            "delete" => self.do_delete(&args, ctx),
            "touch" => self.do_touch(&args, ctx),
            "incr" | "decr" => self.do_arith(cmd == "incr", &args, ctx),
            _ => "ERROR".into(),
        }
    }

    /// Runs one mutating command: the op's decision against the key's
    /// current live item, then the write. With a `(sid, rid)` context the
    /// whole thing — read, decision, write, descriptor — runs inside the
    /// store's detected path; without one it runs the same locked
    /// read-decide-write minus the descriptor (at-most-once acked,
    /// at-least-once retried — but still atomic: both paths hold the key's
    /// shard lock across the decision, so racing `incr`s never lose
    /// updates and racing `add`s never both reply `STORED`).
    fn mutate(&self, ctx: Option<(u64, u64)>, key: Key, op: MutOp<'_>) -> String {
        let now_ms = self.clock.now_ms();
        let new_cas = self.store.next_cas();
        let decide = |raw: Option<&[u8]>| -> (DetectedWrite, Vec<u8>) {
            let parsed = raw.map(parse_item);
            let expired = parsed
                .as_ref()
                .is_some_and(|it| it.expires_at != 0 && it.expires_at <= now_ms);
            let cur = if expired { None } else { parsed.as_ref() };
            let (mut write, reply) = op.decide(cur, now_ms, new_cas);
            if expired && matches!(write, DetectedWrite::Keep) {
                // Lazy expiry: reap the dead item while we hold the key.
                write = DetectedWrite::Delete;
            }
            (write, reply.into_bytes())
        };
        match ctx {
            Some((sid, rid)) => {
                match self
                    .store
                    .detected(&self.lease, sid, rid, op.kind(), &key, decide)
                {
                    Ok(DetectOutcome::Applied(r)) | Ok(DetectOutcome::Replayed(r)) => {
                        String::from_utf8_lossy(&r).into_owned()
                    }
                    Ok(DetectOutcome::Stale { last_rid }) => {
                        format!("SERVER_ERROR stale request id (last acked {last_rid})")
                    }
                    Err(e) => server_error(&e),
                }
            }
            None => match self.store.update(&self.lease, &key, decide) {
                Ok(reply) => String::from_utf8_lossy(&reply).into_owned(),
                Err(e) => server_error(&e),
            },
        }
    }

    /// Fetches live (unexpired) item data + flags (+ cas), lazily deleting
    /// expired items like memcached does.
    fn fetch(&self, key: &Key) -> Option<Item> {
        let item = self.store.get(key, parse_item)?;
        if item.expires_at != 0 && item.expires_at <= self.clock.now_ms() {
            // Best-effort: on a faulted or id-starved shard the expired item
            // stays resident but is still filtered out of every reply.
            let _ = self.store.delete(&self.lease, key);
            return None;
        }
        Some(item)
    }

    fn do_get(&self, args: &[&str], with_cas: bool) -> String {
        let mut out = String::new();
        for karg in args {
            let Ok(key) = key_of(karg) else { continue };
            if let Some(it) = self.fetch(&key) {
                // Replies travel as UTF-8; announce the length of the bytes
                // actually emitted so non-UTF-8 values (lossily transcoded)
                // cannot desync a wire client's framing.
                let text = String::from_utf8_lossy(&it.data);
                let flags = it.flags;
                if with_cas {
                    out.push_str(&format!(
                        "VALUE {karg} {flags} {} {}\r\n",
                        text.len(),
                        it.cas
                    ));
                } else {
                    out.push_str(&format!("VALUE {karg} {flags} {}\r\n", text.len()));
                }
                out.push_str(&text);
                out.push_str("\r\n");
            }
        }
        out.push_str("END");
        out
    }

    /// `scan <lo> <hi> [<limit>]` — ordered inclusive range scan. Keys are
    /// compared as their padded 32-byte images (zero padding preserves the
    /// natural order of equal-prefix keys). Replies use `get` framing:
    /// `VALUE <key> <flags> <len>` lines in key order, closed by `END`.
    /// Expired items are filtered (scans are pure reads — no lazy reaping)
    /// but still count against the limit. An inverted range is simply
    /// empty, not an error.
    fn do_scan(&self, args: &[&str]) -> String {
        let (Some(lo_arg), Some(hi_arg)) = (args.first(), args.get(1)) else {
            return "CLIENT_ERROR bad scan line".into();
        };
        let (lo, hi) = match (key_of(lo_arg), key_of(hi_arg)) {
            (Ok(lo), Ok(hi)) => (lo, hi),
            (Err(e), _) | (_, Err(e)) => return e,
        };
        let limit = match args.get(2) {
            None => SCAN_DEFAULT_LIMIT,
            Some(t) => match t.parse::<usize>() {
                Ok(n) => n.min(SCAN_MAX_LIMIT),
                Err(_) => return "CLIENT_ERROR bad scan limit".into(),
            },
        };
        let now_ms = self.clock.now_ms();
        let mut out = String::new();
        for (key, raw) in self.store.scan(&lo, &hi, limit) {
            let it = parse_item(&raw);
            if it.expires_at != 0 && it.expires_at <= now_ms {
                continue;
            }
            let name = key_text(&key);
            let text = String::from_utf8_lossy(&it.data);
            // As in `do_get`: announce the length of the bytes actually
            // emitted so lossy transcoding cannot desync client framing.
            out.push_str(&format!("VALUE {name} {} {}\r\n", it.flags, text.len()));
            out.push_str(&text);
            out.push_str("\r\n");
        }
        out.push_str("END");
        out
    }

    fn do_store(&self, cmd: &str, args: &[&str], data: &[u8], ctx: Option<(u64, u64)>) -> String {
        let min_args = if cmd == "cas" { 5 } else { 4 };
        if args.len() < min_args {
            return "CLIENT_ERROR bad command line format".into();
        }
        let key = match key_of(args[0]) {
            Ok(k) => k,
            Err(e) => return e,
        };
        let (Ok(flags), Ok(exptime_s), Ok(nbytes)) = (
            args[1].parse::<u32>(),
            args[2].parse::<u64>(),
            args[3].parse::<usize>(),
        ) else {
            return "CLIENT_ERROR bad command line format".into();
        };
        let casid = if cmd == "cas" {
            match args[4].parse::<u64>() {
                Ok(c) => c,
                Err(_) => return "CLIENT_ERROR bad command line format".into(),
            }
        } else {
            0
        };
        if nbytes != data.len() {
            return "CLIENT_ERROR bad data chunk".into();
        }
        self.mutate(
            ctx,
            key,
            MutOp::Store {
                verb: cmd,
                flags,
                exptime_s,
                data,
                casid,
            },
        )
    }

    fn do_delete(&self, args: &[&str], ctx: Option<(u64, u64)>) -> String {
        let Some(karg) = args.first() else {
            return "CLIENT_ERROR bad command line format".into();
        };
        match key_of(karg) {
            Ok(key) => self.mutate(ctx, key, MutOp::Delete),
            Err(e) => e,
        }
    }

    fn do_touch(&self, args: &[&str], ctx: Option<(u64, u64)>) -> String {
        if args.len() < 2 {
            return "CLIENT_ERROR bad command line format".into();
        }
        let key = match key_of(args[0]) {
            Ok(k) => k,
            Err(e) => return e,
        };
        let Ok(exptime_s) = args[1].parse::<u64>() else {
            return "CLIENT_ERROR bad command line format".into();
        };
        self.mutate(ctx, key, MutOp::Touch { exptime_s })
    }

    fn do_arith(&self, incr: bool, args: &[&str], ctx: Option<(u64, u64)>) -> String {
        if args.len() < 2 {
            return "CLIENT_ERROR bad command line format".into();
        }
        let key = match key_of(args[0]) {
            Ok(k) => k,
            Err(e) => return e,
        };
        let Ok(delta) = args[1].parse::<u64>() else {
            return "CLIENT_ERROR invalid numeric delta argument".into();
        };
        self.mutate(ctx, key, MutOp::Arith { incr, delta })
    }
}

/// Maps a refused mutation to its wire reply. The `persistent pool crashed`
/// prefix is load-bearing: clients (and the degradation wire tests) match
/// on it to distinguish a frozen pool from a transient error.
fn server_error(e: &StoreError) -> String {
    format!("SERVER_ERROR {e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvBackend;
    use montage::{EpochSys, EsysConfig};
    use pmem::{PmemConfig, PmemPool};

    fn session(backend: KvBackend) -> Session {
        Session::new(Arc::new(KvStore::new(backend, 8, 10_000)))
    }

    #[test]
    fn set_get_roundtrip_with_flags() {
        let s = session(KvBackend::Dram);
        assert_eq!(s.execute("set greeting 42 0 5", b"hello"), "STORED");
        let r = s.execute("get greeting", b"");
        assert!(r.starts_with("VALUE greeting 42 5\r\nhello\r\n"), "{r}");
        assert!(r.ends_with("END"));
    }

    #[test]
    fn non_utf8_value_announces_emitted_length() {
        let s = session(KvBackend::Dram);
        // 0xAB is invalid UTF-8: each byte becomes U+FFFD (3 bytes) in the
        // reply. The VALUE header must count the emitted bytes, or a wire
        // client reading exactly <len> bytes desyncs.
        assert_eq!(s.execute("set bin 0 0 2", &[0xAB, 0xAB]), "STORED");
        let r = s.execute("get bin", b"");
        let header_end = r.find("\r\n").unwrap();
        let announced: usize = r[..header_end].rsplit(' ').next().unwrap().parse().unwrap();
        let body = &r[header_end + 2..r.len() - "\r\nEND".len()];
        assert_eq!(announced, body.len(), "{r:?}");
    }

    #[test]
    fn get_misses_and_multi_get() {
        let s = session(KvBackend::Dram);
        s.execute("set a 0 0 1", b"A");
        s.execute("set b 0 0 1", b"B");
        let r = s.execute("get a missing b", b"");
        assert!(r.contains("VALUE a 0 1"));
        assert!(r.contains("VALUE b 0 1"));
        assert!(!r.contains("missing"));
    }

    #[test]
    fn add_and_replace_semantics() {
        let s = session(KvBackend::Dram);
        assert_eq!(s.execute("replace k 0 0 1", b"x"), "NOT_STORED");
        assert_eq!(s.execute("add k 0 0 1", b"x"), "STORED");
        assert_eq!(s.execute("add k 0 0 1", b"y"), "NOT_STORED");
        assert_eq!(s.execute("replace k 0 0 1", b"y"), "STORED");
        assert!(s.execute("get k", b"").contains("y"));
    }

    #[test]
    fn cas_compare_and_swap_semantics() {
        let s = session(KvBackend::Dram);
        assert_eq!(s.execute("cas k 0 0 1 99", b"x"), "NOT_FOUND");
        assert_eq!(s.execute("set k 0 0 1", b"x"), "STORED");
        let r = s.execute("gets k", b"");
        // VALUE k <flags> <len> <cas>
        let casid: u64 = r
            .lines()
            .next()
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(
            s.execute(&format!("cas k 0 0 1 {}", casid + 1), b"y"),
            "EXISTS"
        );
        assert_eq!(s.execute(&format!("cas k 0 0 1 {casid}"), b"y"), "STORED");
        assert!(s.execute("get k", b"").contains('y'));
        // The stored cas id changed: the old id no longer matches.
        assert_eq!(s.execute(&format!("cas k 0 0 1 {casid}"), b"z"), "EXISTS");
    }

    #[test]
    fn incr_decr_semantics() {
        let s = session(KvBackend::Dram);
        assert_eq!(s.execute("incr n 1", b""), "NOT_FOUND");
        assert_eq!(s.execute("set n 0 0 1", b"7"), "STORED");
        assert_eq!(s.execute("incr n 5", b""), "12");
        assert_eq!(s.execute("decr n 2", b""), "10");
        assert_eq!(s.execute("decr n 100", b""), "0", "decr floors at 0");
        assert_eq!(s.execute("set t 0 0 3", b"abc"), "STORED");
        assert_eq!(
            s.execute("incr t 1", b""),
            "CLIENT_ERROR cannot increment or decrement non-numeric value"
        );
        assert_eq!(
            s.execute("incr n bogus", b""),
            "CLIENT_ERROR invalid numeric delta argument"
        );
    }

    #[test]
    fn delete_and_errors() {
        let s = session(KvBackend::Dram);
        assert_eq!(s.execute("delete nope", b""), "NOT_FOUND");
        s.execute("set k 0 0 1", b"x");
        assert_eq!(s.execute("delete k", b""), "DELETED");
        assert_eq!(s.execute("bogus", b""), "ERROR");
        assert_eq!(
            s.execute("set k 0 0 99", b"short"),
            "CLIENT_ERROR bad data chunk"
        );
        assert_eq!(
            s.execute("set k nope 0 1", b"x"),
            "CLIENT_ERROR bad command line format"
        );
        assert_eq!(
            s.execute("cas k 0 0 1", b"x"),
            "CLIENT_ERROR bad command line format",
            "cas requires a cas id"
        );
    }

    #[test]
    fn rid_requires_session_and_dedupes_with_one() {
        let s = session(KvBackend::Dram);
        assert_eq!(
            s.execute("set k 0 0 1 rid=1", b"x"),
            "CLIENT_ERROR rid requires a session"
        );
        assert_eq!(
            s.execute("set k 0 0 1 rid=zzz", b"x"),
            "CLIENT_ERROR bad request id"
        );
        // First execution applies; a blind retry of the same rid replays the
        // recorded reply without re-applying.
        assert_eq!(s.execute_with("set n 0 0 1 rid=1", b"0", Some(9)), "STORED");
        assert_eq!(s.execute_with("incr n 1 rid=2", b"", Some(9)), "1");
        assert_eq!(s.execute_with("incr n 1 rid=2", b"", Some(9)), "1");
        assert_eq!(s.execute_with("incr n 1 rid=2", b"", Some(9)), "1");
        assert_eq!(s.execute_with("incr n 1 rid=3", b"", Some(9)), "2");
        // Distinct sessions do not share request-id spaces.
        assert_eq!(s.execute_with("incr n 1 rid=2", b"", Some(10)), "3");
        // Going backwards is refused, not re-applied.
        let r = s.execute_with("incr n 1 rid=1", b"", Some(9));
        assert!(r.starts_with("SERVER_ERROR stale request id"), "{r}");
    }

    #[test]
    fn sessionless_incr_is_atomic_across_racing_sessions() {
        // Two connections land on different workers; without the shard lock
        // held across read-decide-write, racing `incr`s interleave and lose
        // updates. 4 racers × 250 increments must land on exactly 1000.
        let store = Arc::new(KvStore::new(KvBackend::Dram, 8, 10_000));
        Session::new(store.clone()).execute("set ctr 0 0 1", b"0");
        let mut handles = vec![];
        for _ in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                let s = Session::new(store);
                for _ in 0..250 {
                    let r = s.execute("incr ctr 1", b"");
                    assert!(r.parse::<u64>().is_ok(), "{r}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = Session::new(store);
        let r = s.execute("get ctr", b"");
        assert!(r.contains("1000"), "lost updates: {r}");
    }

    #[test]
    fn sessionless_add_stores_exactly_once_under_races() {
        // `add` is check-then-act: two racers must never both see "absent"
        // and both reply STORED.
        let store = Arc::new(KvStore::new(KvBackend::Dram, 8, 10_000));
        for round in 0..50 {
            let mut handles = vec![];
            for _ in 0..4 {
                let store = store.clone();
                handles.push(std::thread::spawn(move || {
                    Session::new(store).execute(&format!("add k{round} 0 0 1"), b"x")
                }));
            }
            let stored = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|r| r == "STORED")
                .count();
            assert_eq!(stored, 1, "round {round}: {stored} winners");
        }
    }

    #[test]
    fn expiration_is_lazy_but_effective() {
        let s = session(KvBackend::Dram);
        // Directly store an already-expired item (bypassing the 1s protocol
        // granularity) to avoid sleeping in tests.
        let v = make_item_at(7, 1, 0, b"stale"); // expired long ago
        let key = key_of("old").unwrap();
        s.store.set(&s.lease, key, &v).unwrap();
        assert_eq!(s.execute("get old", b""), "END");
        assert_eq!(s.execute("touch old 100", b""), "NOT_FOUND");
        // And a never-expiring item stays.
        s.execute("set fresh 0 0 4", b"data");
        assert!(s.execute("get fresh", b"").contains("data"));
        assert_eq!(s.execute("touch fresh 100", b""), "TOUCHED");
    }

    #[test]
    fn injected_clock_makes_expiry_deterministic() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct MockClock(AtomicU64);
        impl Clock for MockClock {
            fn now_ms(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
        }

        let clock = Arc::new(MockClock(AtomicU64::new(1_000_000)));
        let s = session(KvBackend::Dram).with_clock(clock.clone());
        assert_eq!(s.execute("set k 0 10 1", b"x"), "STORED");
        // 9.999s later: still live.
        clock.0.store(1_000_000 + 9_999, Ordering::Relaxed);
        assert!(s.execute("get k", b"").contains("VALUE k"));
        // touch extends the deadline from *now*.
        assert_eq!(s.execute("touch k 10", b""), "TOUCHED");
        clock.0.store(1_000_000 + 19_998, Ordering::Relaxed);
        assert!(s.execute("get k", b"").contains("VALUE k"));
        // One ms past the touched deadline: lazily expired everywhere.
        clock.0.store(1_000_000 + 19_999, Ordering::Relaxed);
        assert_eq!(s.execute("get k", b""), "END");
        assert_eq!(s.execute("touch k 10", b""), "NOT_FOUND");
        assert_eq!(s.execute("delete k", b""), "NOT_FOUND", "lazy delete ran");
        // exptime 0 never expires.
        s.execute("set forever 0 0 1", b"y");
        clock.0.store(u64::MAX / 2, Ordering::Relaxed);
        assert!(s.execute("get forever", b"").contains("VALUE forever"));
    }

    #[test]
    fn protocol_over_montage_backend_survives_crash() {
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(32 << 20)),
            EsysConfig::default(),
        );
        let store = Arc::new(KvStore::new(KvBackend::Montage(esys.clone()), 8, 10_000));
        let s = Session::new(store);
        assert_eq!(s.execute("set persisted 3 0 9", b"important"), "STORED");
        esys.sync();
        let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 1);
        let store2 = KvStore::recover(rec.esys.clone(), 8, 10_000, &rec);
        let s2 = Session::new(Arc::new(store2));
        let r = s2.execute("get persisted", b"");
        assert!(r.contains("VALUE persisted 3 9"), "{r}");
        assert!(r.contains("important"));
    }

    #[test]
    fn detected_ops_replay_across_crash() {
        let esys = EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(32 << 20)),
            EsysConfig::default(),
        );
        let store = Arc::new(KvStore::new(KvBackend::Montage(esys.clone()), 8, 10_000));
        let s = Session::new(store.clone());
        let sid = Some(4242);
        assert_eq!(s.execute_with("set ctr 0 0 1 rid=1", b"0", sid), "STORED");
        assert_eq!(s.execute_with("incr ctr 1 rid=2", b"", sid), "1");
        assert_eq!(s.execute_with("incr ctr 1 rid=3", b"", sid), "2");
        esys.sync();
        assert_eq!(store.detect_stats().descriptors, 1);
        let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 1);
        let store2 = Arc::new(KvStore::recover(rec.esys.clone(), 8, 10_000, &rec));
        // The descriptor survived with its rid and recorded reply.
        assert_eq!(
            store2.session_descriptor(4242),
            Some((3, 7, b"2".to_vec())) // rid 3, OP_INCR, reply "2"
        );
        let s2 = Session::new(store2.clone());
        // A blind retry of the in-flight rid replays; the next rid applies.
        assert_eq!(s2.execute_with("incr ctr 1 rid=3", b"", sid), "2");
        assert_eq!(s2.execute_with("incr ctr 1 rid=4", b"", sid), "3");
        let stats = store2.detect_stats();
        assert_eq!(stats.dedupe_hits, 1);
        assert_eq!(stats.replayed_acks, 1, "the replay crossed the crash");
        assert!(stats.table_bytes > 0);
    }

    #[test]
    fn sharded_session_spans_shards() {
        let store = crate::ShardedKvStore::format(
            4,
            PmemConfig::strict_for_test(8 << 20),
            EsysConfig::default(),
            4,
            10_000,
        );
        let lease = Arc::new(store.lease());
        let s = Session::sharded(store.clone(), lease);
        for i in 0..50 {
            assert_eq!(s.execute(&format!("set k{i} 0 0 2"), b"vv"), "STORED");
        }
        for i in 0..50 {
            let r = s.execute(&format!("get k{i}"), b"");
            assert!(r.contains(&format!("VALUE k{i} 0 2")), "{r}");
        }
        assert!(store.len() == 50);
        let touched = s.lease.held().iter().filter(|t| t.is_some()).count();
        assert!(touched >= 2, "50 keys should lease ids on several shards");
    }

    #[test]
    fn sharded_detected_descriptors_live_in_the_keys_shard() {
        let store = crate::ShardedKvStore::format(
            4,
            PmemConfig::strict_for_test(8 << 20),
            EsysConfig::default(),
            4,
            10_000,
        );
        let lease = Arc::new(store.lease());
        let s = Session::sharded(store.clone(), lease);
        let sid = Some(1);
        for i in 0..20 {
            assert_eq!(
                s.execute_with(&format!("set k{i} 0 0 1 rid={}", i + 1), b"v", sid),
                "STORED"
            );
        }
        let per_shard = store.detect_stats_per_shard();
        let populated = per_shard.iter().filter(|d| d.descriptors > 0).count();
        assert!(
            populated >= 2,
            "descriptors should follow keys: {per_shard:?}"
        );
        // Each shard holds at most one descriptor per session.
        assert!(per_shard.iter().all(|d| d.descriptors <= 1));
        assert_eq!(store.detect_stats_merged().descriptors, populated as u64);
    }

    #[test]
    fn scan_returns_sorted_inclusive_range() {
        let s = session(KvBackend::Dram);
        for name in ["pear", "apple", "mango", "banana", "cherry"] {
            assert_eq!(
                s.execute(&format!("set {name} 7 0 {}", name.len()), name.as_bytes()),
                "STORED"
            );
        }
        let r = s.execute("scan apple cherry", b"");
        assert_eq!(
            r,
            "VALUE apple 7 5\r\napple\r\nVALUE banana 7 6\r\nbanana\r\nVALUE cherry 7 6\r\ncherry\r\nEND"
        );
        // Bounds need not be present keys.
        let r = s.execute("scan a z", b"");
        assert!(r.matches("VALUE ").count() == 5, "{r}");
    }

    #[test]
    fn scan_empty_and_inverted_ranges() {
        let s = session(KvBackend::Dram);
        s.execute("set mango 0 0 1", b"m");
        assert_eq!(s.execute("scan x z", b""), "END");
        assert_eq!(s.execute("scan z a", b""), "END", "inverted range is empty");
        assert_eq!(s.execute("scan", b""), "CLIENT_ERROR bad scan line");
        assert_eq!(s.execute("scan a", b""), "CLIENT_ERROR bad scan line");
        assert_eq!(
            s.execute("scan a z bogus", b""),
            "CLIENT_ERROR bad scan limit"
        );
    }

    #[test]
    fn scan_respects_and_clamps_limit() {
        let s = session(KvBackend::Dram);
        for i in 0..20 {
            s.execute(&format!("set k{i:02} 0 0 1"), b"v");
        }
        let r = s.execute("scan k00 k99 5", b"");
        assert_eq!(r.matches("VALUE ").count(), 5);
        assert!(r.starts_with("VALUE k00 "), "lowest keys win: {r}");
        // A huge limit is clamped, not an error.
        let r = s.execute(&format!("scan k00 k99 {}", usize::MAX), b"");
        assert_eq!(r.matches("VALUE ").count(), 20);
    }

    #[test]
    fn scan_filters_expired_items_without_reaping() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct MockClock(AtomicU64);
        impl Clock for MockClock {
            fn now_ms(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
        }
        let clock = Arc::new(MockClock(AtomicU64::new(1_000_000)));
        let s = session(KvBackend::Dram).with_clock(clock.clone());
        s.execute("set dies 0 5 1", b"x");
        s.execute("set lives 0 0 1", b"y");
        clock.0.store(1_000_000 + 6_000, Ordering::Relaxed);
        let r = s.execute("scan a z", b"");
        assert!(!r.contains("VALUE dies"), "{r}");
        assert!(r.contains("VALUE lives"), "{r}");
    }

    #[test]
    fn scan_works_across_shards_on_a_sharded_store() {
        let store = crate::ShardedKvStore::format(
            4,
            PmemConfig::strict_for_test(8 << 20),
            EsysConfig::default(),
            4,
            10_000,
        );
        let lease = Arc::new(store.lease());
        let s = Session::sharded(store, lease);
        for i in 0..64 {
            assert_eq!(s.execute(&format!("set key{i:03} 0 0 1"), b"v"), "STORED");
        }
        let r = s.execute("scan key000 key999", b"");
        assert_eq!(r.matches("VALUE ").count(), 64);
        let keys: Vec<&str> = r
            .lines()
            .filter(|l| l.starts_with("VALUE "))
            .map(|l| l.split_whitespace().nth(1).unwrap())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "cross-shard merge must stay key-ordered");
    }
}
