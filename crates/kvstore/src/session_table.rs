//! Detectable operations: the durable per-session request-id descriptor
//! table (memento-style, after "A General Framework for Detectable,
//! Persistent, Lock-Free Data Structures").
//!
//! Every detected mutation records `(session_id, request_id, op_kind,
//! result)` in a fixed-size **descriptor payload** allocated from the same
//! Montage pool — and, crucially, the same *shard* — as the key it mutates.
//! The descriptor write happens inside the same `BEGIN_OP` window as the
//! mutation, so both ride the same epoch's write-back buffers and become
//! durable atomically at the epoch boundary: a recovered image can never
//! show a descriptor claiming a result whose mutation was lost, nor a
//! mutation whose descriptor (and therefore ack identity) vanished.
//!
//! On recovery the descriptors are swept back like any other payload (uid
//! cancellation keeps exactly the newest version per session), and a
//! reconnecting client that blindly replays its last request-id is answered
//! from the table instead of re-applying — exactly-once across crashes.
//!
//! Each (session, shard) pair retains **only its newest** request-id: the
//! descriptor is overwritten in place by the next mutation. Exactly-once
//! replay therefore requires at most one outstanding rid-carrying mutation
//! per session — a client that pipelines two and crashes before either ack
//! finds only the later descriptor, and replaying the earlier rid is
//! answered [`DetectOutcome::Stale`] rather than with its lost reply. The
//! synchronous wire client satisfies this by construction; the constraint
//! is documented at the wire-protocol level (README, `kvserver::client`).
//!
//! The DRAM side ([`SessionTable`]) is a cache of the durable table plus
//! the exactly-once counters the server's `stats` command reports. The
//! table-wide lock is held only to look up a session's slot; the dedupe/
//! apply critical section runs under the per-session slot lock (plus the
//! mutated key's shard lock), so sessions working different keys never
//! contend on a store-wide point.

use montage::sync::uninstrumented::{AtomicU64, Ordering};
use std::collections::HashMap;
use std::sync::Arc;

use montage::{PHandle, HDR_SIZE};
use parking_lot::Mutex;

/// Payload tag for session descriptors (KV items use [`crate::KV_TAG`]).
pub const SESSION_TAG: u16 = 7;

/// Fixed descriptor payload size. Fixed so every update is a same-length
/// `set_bytes` — in place when the descriptor is already in the current
/// epoch, copy-on-write with the same uid otherwise — and recovery's uid
/// cancellation always keeps exactly one version per session.
pub const DESC_BYTES: usize = 96;

/// Descriptor header: sid u64 | rid u64 | op_kind u8 | result_len u8 |
/// pad u16 — the rest is the recorded result.
const DESC_HEADER: usize = 20;

/// Longest recordable result. Every replayable wire reply (`STORED`,
/// `NOT_STORED`, `EXISTS`, `NOT_FOUND`, `DELETED`, `TOUCHED`, a decimal
/// counter value, and the deterministic `CLIENT_ERROR` strings) fits.
pub const RESULT_MAX: usize = DESC_BYTES - DESC_HEADER;

/// Encodes one descriptor. Results longer than [`RESULT_MAX`] are refused
/// by the caller (`debug_assert`) and truncated defensively in release.
pub fn encode_descriptor(sid: u64, rid: u64, op_kind: u8, result: &[u8]) -> [u8; DESC_BYTES] {
    debug_assert!(
        result.len() <= RESULT_MAX,
        "descriptor result {} bytes > {RESULT_MAX}",
        result.len()
    );
    let n = result.len().min(RESULT_MAX);
    let mut d = [0u8; DESC_BYTES];
    d[..8].copy_from_slice(&sid.to_le_bytes());
    d[8..16].copy_from_slice(&rid.to_le_bytes());
    d[16] = op_kind;
    d[17] = n as u8;
    d[DESC_HEADER..DESC_HEADER + n].copy_from_slice(&result[..n]);
    d
}

/// Decodes a recovered descriptor payload; `None` if it is malformed
/// (wrong size or an out-of-range result length).
pub fn decode_descriptor(bytes: &[u8]) -> Option<(u64, u64, u8, Vec<u8>)> {
    if bytes.len() != DESC_BYTES {
        return None;
    }
    let sid = u64::from_le_bytes(bytes[..8].try_into().unwrap());
    let rid = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let op_kind = bytes[16];
    let n = bytes[17] as usize;
    if n > RESULT_MAX {
        return None;
    }
    Some((
        sid,
        rid,
        op_kind,
        bytes[DESC_HEADER..DESC_HEADER + n].to_vec(),
    ))
}

/// What a detected mutation decided to do to the key, computed from the
/// current value inside the operation's epoch window.
pub enum DetectedWrite {
    /// Insert or overwrite the item bytes.
    Upsert(Vec<u8>),
    /// Remove the item (also used to lazily reap an expired item whose
    /// conditional op replied `NOT_FOUND`).
    Delete,
    /// Leave the item untouched (failed conditionals: `NOT_STORED`,
    /// `EXISTS`, …). The descriptor still records the reply.
    Keep,
}

/// Outcome of routing a request-id through the descriptor table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectOutcome {
    /// The request-id was new: the mutation ran and this is its reply.
    Applied(Vec<u8>),
    /// The request-id matched the session's descriptor: the recorded reply,
    /// answered **without re-applying**.
    Replayed(Vec<u8>),
    /// The request-id is older than the session's descriptor — the client
    /// already consumed this ack and moved on; refuse rather than guess.
    /// Also what a client that pipelined two rid mutations to one shard
    /// sees when replaying the earlier one after a crash: only the newest
    /// rid per (session, shard) is retained (see module docs), which is
    /// why the wire contract demands one outstanding rid at a time.
    Stale { last_rid: u64 },
}

/// Exactly-once counters, merged across shards by the `stats` command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Requests answered from the descriptor table instead of re-applying.
    pub dedupe_hits: u64,
    /// The subset of `dedupe_hits` answered from a descriptor that was
    /// rebuilt from the pool — an ack recovered across a crash.
    pub replayed_acks: u64,
    /// Live descriptors (one per session per shard it has mutated).
    pub descriptors: u64,
    /// Pool bytes held by descriptor payloads (header + data).
    pub table_bytes: u64,
}

impl std::ops::Add for DetectStats {
    type Output = DetectStats;
    fn add(self, o: DetectStats) -> DetectStats {
        DetectStats {
            dedupe_hits: self.dedupe_hits + o.dedupe_hits,
            replayed_acks: self.replayed_acks + o.replayed_acks,
            descriptors: self.descriptors + o.descriptors,
            table_bytes: self.table_bytes + o.table_bytes,
        }
    }
}

/// DRAM cache of one session's durable descriptor on one shard-store.
pub(crate) struct SessionRecord {
    pub rid: u64,
    pub op_kind: u8,
    pub result: Vec<u8>,
    /// The durable descriptor payload; `None` on transient backends (DRAM/
    /// NVM stores dedupe in DRAM only — nothing survives a crash there
    /// anyway).
    pub handle: Option<PHandle<[u8]>>,
    /// Entry came out of recovery and has not been overwritten since: a hit
    /// on it is an ack replayed across a crash.
    pub recovered: bool,
}

/// One session's serialization point: racing retries of the same request
/// lock here — not the whole table — so the loser replays the winner's
/// descriptor while unrelated sessions proceed. `None` until the session's
/// first mutation on this store completes.
pub(crate) type SessionSlot = Arc<Mutex<Option<SessionRecord>>>;

/// Per-shard-store session table: the dedupe/replay decision point.
#[derive(Default)]
pub(crate) struct SessionTable {
    pub entries: Mutex<HashMap<u64, SessionSlot>>,
    pub dedupe_hits: AtomicU64,
    pub replayed_acks: AtomicU64,
}

impl SessionTable {
    /// The session's slot, created on first touch. Holds the table lock
    /// only for the lookup/insert; callers serialize on the slot.
    pub fn slot(&self, sid: u64) -> SessionSlot {
        self.entries.lock().entry(sid).or_default().clone()
    }

    pub fn stats(&self) -> DetectStats {
        // Slot count, not record count: a session whose first mutation is
        // still in flight is counted one op early, which keeps `stats`
        // from blocking behind every in-flight slot lock.
        let descriptors = self.entries.lock().len() as u64;
        DetectStats {
            dedupe_hits: self.dedupe_hits.load(Ordering::Relaxed),
            replayed_acks: self.replayed_acks.load(Ordering::Relaxed),
            descriptors,
            table_bytes: descriptors * (HDR_SIZE as u64 + DESC_BYTES as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip() {
        let d = encode_descriptor(42, 7, 3, b"STORED");
        assert_eq!(d.len(), DESC_BYTES);
        let (sid, rid, kind, result) = decode_descriptor(&d).unwrap();
        assert_eq!((sid, rid, kind), (42, 7, 3));
        assert_eq!(result, b"STORED");
    }

    #[test]
    fn descriptor_rejects_malformed() {
        assert!(decode_descriptor(&[0u8; DESC_BYTES - 1]).is_none());
        let mut d = encode_descriptor(1, 1, 1, b"x");
        d[17] = (RESULT_MAX + 1) as u8; // out-of-range result length
        assert!(decode_descriptor(&d).is_none());
    }

    #[test]
    fn every_replayable_reply_fits() {
        for reply in [
            "STORED",
            "NOT_STORED",
            "EXISTS",
            "NOT_FOUND",
            "DELETED",
            "TOUCHED",
            &u64::MAX.to_string(),
            "CLIENT_ERROR cannot increment or decrement non-numeric value",
        ] {
            assert!(reply.len() <= RESULT_MAX, "{reply:?} too long to record");
            let d = encode_descriptor(1, 2, 3, reply.as_bytes());
            assert_eq!(decode_descriptor(&d).unwrap().3, reply.as_bytes());
        }
    }
}
