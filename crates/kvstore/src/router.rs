//! Deterministic key→shard routing.
//!
//! The router is the only thing that must agree between the process that
//! wrote a key and the process that recovers it: a key stored on shard 2
//! must be looked up on shard 2 after a restart. We therefore hash with an
//! explicitly-specified function (FNV-1a) instead of
//! `std::collections::hash_map::DefaultHasher`, whose algorithm and seeding
//! are not guaranteed stable across processes or toolchains. Recovery does
//! not actually *depend* on the router (each shard's pool carries its own
//! items, and [`crate::ShardedKvStore::recover`] rebuilds each shard from
//! its own image), but stability keeps routing, debugging, and the
//! single-pool/multi-pool equivalence tests deterministic.

use crate::Key;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable FNV-1a hash of a key's bytes.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Deterministic key→shard map over a fixed shard count.
///
/// Two routers with the same `n_shards` agree on every key, in every
/// process, forever — assignment is a pure function of the key bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    n_shards: usize,
}

impl ShardRouter {
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0, "router needs at least one shard");
        ShardRouter { n_shards }
    }

    #[inline]
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard that owns `key`.
    #[inline]
    pub fn route(&self, key: &Key) -> usize {
        // Multiply-shift instead of `% n`: the low bits of FNV over short,
        // mostly-zero-padded keys are the weakest, and `%` keeps only those.
        (((fnv1a(key) as u128) * (self.n_shards as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::make_key;

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(4);
        for i in 0..1000 {
            let k = make_key(i);
            let s = r.route(&k);
            assert!(s < 4);
            assert_eq!(s, r.route(&k), "same key, same shard");
            assert_eq!(s, ShardRouter::new(4).route(&k), "fresh router agrees");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for i in 0..100 {
            assert_eq!(r.route(&make_key(i)), 0);
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn sequential_keys_spread_across_shards() {
        let r = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[r.route(&make_key(i))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > 500 && c < 2000,
                "shard {s} got {c} of 4000 sequential keys"
            );
        }
    }
}
