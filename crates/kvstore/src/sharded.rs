//! Sharded multi-pool store: N independent [`KvStore`]s, each over its own
//! pmem pool, ralloc arena, and epoch system, behind a deterministic
//! key→shard router.
//!
//! Montage's buffered durable linearizability is a per-structure guarantee:
//! nothing in the paper's model requires two unrelated structures to share
//! an epoch clock. Sharding exploits that — each shard advances, syncs,
//! recovers, and *crashes* independently. A fault that poisons one shard's
//! pool degrades that shard's keys to errors while the others keep serving,
//! and recovery runs one thread per shard with the per-shard
//! [`montage::RecoveryReport`]s merged into a single store-level report.

use montage::sync::uninstrumented::{AtomicU64, Ordering};
use std::sync::Arc;

use montage::{EpochSys, EsysConfig, RecoveryError};
use parking_lot::Mutex;
use pmem::{PmemConfig, PmemFault, PmemPool, StatsSnapshot};

use crate::router::ShardRouter;
use crate::session_table::{DetectOutcome, DetectStats, DetectedWrite};
use crate::{Key, KvBackend, KvStore};

/// Why a sharded-store mutation was refused. `Display` output is what the
/// wire protocol sends after `SERVER_ERROR `.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The routed shard's pool has a tripped fault plan: its durable image
    /// is frozen, so accepting the mutation would lie about durability.
    Faulted { shard: usize, fault: PmemFault },
    /// The routed shard's epoch-system thread table is fully leased.
    OutOfThreadIds { shard: usize },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Faulted { shard, fault } => {
                write!(f, "persistent pool crashed: {fault} (shard {shard})")
            }
            StoreError::OutOfThreadIds { shard } => {
                write!(f, "out of worker ids (shard {shard})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Per-shard outcome of a parallel recovery.
#[derive(Clone, Debug)]
pub struct ShardRecovery {
    pub shard: usize,
    /// Payloads rebuilt into the shard's index.
    pub survivors: usize,
    /// Payloads discarded by uid cancellation.
    pub cancelled: usize,
    /// Payloads from past the recovery cutoff (the buffered loss window).
    pub discarded_recent: usize,
    /// Corrupt payloads quarantined by this shard's sweep.
    pub quarantined: usize,
    /// A fatal error means the shard's image was unrecoverable; the shard
    /// came back formatted-empty and every payload it held is lost.
    pub fatal: Option<RecoveryError>,
}

/// Merged accounting for a whole-store parallel recovery.
#[derive(Clone, Debug, Default)]
pub struct StoreRecoveryReport {
    pub shards: Vec<ShardRecovery>,
}

impl StoreRecoveryReport {
    pub fn survivors(&self) -> usize {
        self.shards.iter().map(|s| s.survivors).sum()
    }

    pub fn quarantined(&self) -> usize {
        self.shards.iter().map(|s| s.quarantined).sum()
    }

    pub fn fatal_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.fatal.is_some()).count()
    }

    /// No quarantines and no fatal shards — every shard recovered cleanly
    /// (modulo the normal buffered loss window).
    pub fn is_clean(&self) -> bool {
        self.quarantined() == 0 && self.fatal_shards() == 0
    }
}

/// N independent single-pool stores behind a stable router.
pub struct ShardedKvStore {
    shards: Box<[Arc<KvStore>]>,
    router: ShardRouter,
    /// memcached cas-id allocator; 0 = not yet seeded. Seeded lazily from
    /// the store's epoch clocks (see [`ShardedKvStore::next_cas`]) so ids
    /// stay unique across crash/recovery without any dedicated pool state.
    cas_counter: AtomicU64,
}

impl ShardedKvStore {
    /// Fronts existing per-shard stores. Shard order is identity: keys
    /// route by [`ShardRouter`] over `shards.len()`.
    pub fn from_shards(shards: Vec<Arc<KvStore>>) -> Arc<Self> {
        assert!(!shards.is_empty(), "need at least one shard");
        let router = ShardRouter::new(shards.len());
        Arc::new(ShardedKvStore {
            shards: shards.into(),
            router,
            cas_counter: AtomicU64::new(0),
        })
    }

    /// Wraps a single store — the degenerate 1-shard case the unsharded
    /// server and protocol paths run on.
    pub fn single(store: Arc<KvStore>) -> Arc<Self> {
        Self::from_shards(vec![store])
    }

    /// Formats `n_shards` fresh Montage shards, each on its own pool built
    /// from `pool_cfg`. `capacity` is the whole store's item cap, split
    /// evenly; `stripes` is each shard's internal lock striping.
    pub fn format(
        n_shards: usize,
        pool_cfg: PmemConfig,
        esys_cfg: EsysConfig,
        stripes: usize,
        capacity: usize,
    ) -> Arc<Self> {
        let pools = (0..n_shards).map(|_| PmemPool::new(pool_cfg)).collect();
        Self::format_pools(pools, esys_cfg, stripes, capacity)
    }

    /// [`ShardedKvStore::format`] over caller-built pools — chaos harnesses
    /// arm individual shards' fault plans before handing the pools over.
    pub fn format_pools(
        pools: Vec<PmemPool>,
        esys_cfg: EsysConfig,
        stripes: usize,
        capacity: usize,
    ) -> Arc<Self> {
        assert!(!pools.is_empty(), "need at least one shard");
        let cap_per_shard = (capacity / pools.len()).max(1);
        Self::from_shards(
            pools
                .into_iter()
                .map(|pool| {
                    let esys = EpochSys::format(pool, esys_cfg);
                    Arc::new(KvStore::new(
                        KvBackend::Montage(esys),
                        stripes,
                        cap_per_shard,
                    ))
                })
                .collect(),
        )
    }

    /// Parallel recovery: one thread per shard runs [`montage::try_recover`]
    /// and rebuilds that shard's index. A shard whose image is fatally
    /// unrecoverable (unformatted pool, corrupt clock) comes back
    /// formatted-empty on a fresh pool, with the error recorded in the
    /// merged report — one poisoned shard must not take the store down.
    pub fn recover(
        pools: Vec<PmemPool>,
        esys_cfg: EsysConfig,
        stripes: usize,
        capacity: usize,
        sweep_threads: usize,
    ) -> (Arc<Self>, StoreRecoveryReport) {
        assert!(!pools.is_empty(), "need at least one shard");
        let cap_per_shard = (capacity / pools.len()).max(1);
        let mut slots: Vec<Option<(Arc<KvStore>, ShardRecovery)>> =
            (0..pools.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = pools
                .into_iter()
                .enumerate()
                .map(|(shard, pool)| {
                    scope.spawn(move || {
                        // A fresh pool for the fatal path must not inherit a
                        // tripped fault plan, or it would re-poison itself.
                        let mut fresh_cfg = *pool.config();
                        fresh_cfg.chaos = Default::default();
                        match montage::try_recover(pool, esys_cfg, sweep_threads) {
                            Ok(rec) => {
                                let store = KvStore::recover(
                                    rec.esys.clone(),
                                    stripes,
                                    cap_per_shard,
                                    &rec,
                                );
                                let r = &rec.report;
                                (
                                    Arc::new(store),
                                    ShardRecovery {
                                        shard,
                                        survivors: r.survivors,
                                        cancelled: r.cancelled,
                                        discarded_recent: r.discarded_recent,
                                        quarantined: r.quarantined.len(),
                                        fatal: None,
                                    },
                                )
                            }
                            Err(e) => {
                                let esys = EpochSys::format(PmemPool::new(fresh_cfg), esys_cfg);
                                let store =
                                    KvStore::new(KvBackend::Montage(esys), stripes, cap_per_shard);
                                (
                                    Arc::new(store),
                                    ShardRecovery {
                                        shard,
                                        survivors: 0,
                                        cancelled: 0,
                                        discarded_recent: 0,
                                        quarantined: 0,
                                        fatal: Some(e),
                                    },
                                )
                            }
                        }
                    })
                })
                .collect();
            for (slot, handle) in slots.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("shard recovery thread panicked"));
            }
        });
        let mut shards = Vec::with_capacity(slots.len());
        let mut report = StoreRecoveryReport::default();
        for slot in slots {
            let (store, rec) = slot.unwrap();
            shards.push(store);
            report.shards.push(rec);
        }
        (Self::from_shards(shards), report)
    }

    // ---- topology -----------------------------------------------------------

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn shard(&self, i: usize) -> &Arc<KvStore> {
        &self.shards[i]
    }

    pub fn shards(&self) -> &[Arc<KvStore>] {
        &self.shards
    }

    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard that owns `key`.
    pub fn shard_of(&self, key: &Key) -> usize {
        self.router.route(key)
    }

    /// [`ShardedKvStore::shard_of`] for an unpadded protocol key (the
    /// server's periodic-sync path routes from the raw command line).
    /// `None` for keys the protocol would reject.
    pub fn shard_of_bytes(&self, key: &[u8]) -> Option<usize> {
        if key.is_empty() || key.len() > 32 {
            return None;
        }
        let mut k: Key = [0u8; 32];
        k[..key.len()].copy_from_slice(key);
        Some(self.shard_of(&k))
    }

    /// Leases worker ids lazily: the returned handle registers on a shard's
    /// epoch system the first time an operation routes there, and returns
    /// every leased id when dropped.
    pub fn lease(self: &Arc<Self>) -> StoreLease {
        StoreLease {
            tids: (0..self.shards.len()).map(|_| Mutex::new(None)).collect(),
            store: self.clone(),
            owned: true,
        }
    }

    /// Wraps worker ids the caller already owns (one per shard, `None` for
    /// not-yet-leased). The handle will not unregister them on drop.
    pub fn lease_prefilled(self: &Arc<Self>, tids: Vec<Option<usize>>) -> StoreLease {
        assert_eq!(tids.len(), self.shards.len());
        StoreLease {
            tids: tids.into_iter().map(Mutex::new).collect(),
            store: self.clone(),
            owned: false,
        }
    }

    // ---- operations ---------------------------------------------------------

    /// `get` routes to the owning shard. Reads need no worker id and are
    /// served even on a faulted shard — they reflect transient state and
    /// promise nothing about durability.
    pub fn get<R>(&self, key: &Key, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        self.shards[self.shard_of(key)].get(0, key, f)
    }

    /// Ordered inclusive range scan across **every** shard: keys hash
    /// across shards, so a range touches all of them. Each shard produces a
    /// per-stripe-consistent snapshot of its slice (see [`KvStore::scan`]);
    /// the slices are merged, sorted, and capped at `limit`. Like `get`,
    /// scans are pure reads — no worker id, served even on a faulted shard.
    pub fn scan(&self, lo: &Key, hi: &Key, limit: usize) -> Vec<(Key, Vec<u8>)> {
        if lo > hi || limit == 0 {
            return Vec::new();
        }
        let mut out: Vec<(Key, Vec<u8>)> = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.scan(lo, hi, limit));
        }
        out.sort_by_key(|e| e.0);
        out.truncate(limit);
        out
    }

    /// `set` routes to the owning shard, refusing mutations on a faulted
    /// one (its durable image is frozen; accepting would lie).
    pub fn set(&self, lease: &StoreLease, key: Key, value: &[u8]) -> Result<(), StoreError> {
        let shard = self.shard_of(&key);
        self.check_shard(shard)?;
        let tid = lease.tid(shard)?;
        self.shards[shard].set(tid, key, value);
        Ok(())
    }

    /// `delete` routes to the owning shard; same fault policy as `set`.
    pub fn delete(&self, lease: &StoreLease, key: &Key) -> Result<bool, StoreError> {
        let shard = self.shard_of(key);
        self.check_shard(shard)?;
        let tid = lease.tid(shard)?;
        Ok(self.shards[shard].delete(tid, key))
    }

    /// A plain (sessionless) atomic read-modify-write (see
    /// [`KvStore::update`]): routes to the owning shard, which holds its
    /// shard lock across read+decide+write — the protocol's conditional
    /// ops (`cas`/`add`/`incr`/…) stay atomic even without a session,
    /// matching the detected path's serialization. Same fault policy as
    /// [`ShardedKvStore::set`]; on a healthy shard the decision's reply
    /// bytes come back.
    pub fn update(
        &self,
        lease: &StoreLease,
        key: &Key,
        decide: impl FnOnce(Option<&[u8]>) -> (DetectedWrite, Vec<u8>),
    ) -> Result<Vec<u8>, StoreError> {
        let shard = self.shard_of(key);
        self.check_shard(shard)?;
        let tid = lease.tid(shard)?;
        Ok(self.shards[shard].update(tid, key, decide))
    }

    /// A detectable mutation (see [`KvStore::detected_update`]): routes to
    /// the shard owning `key`, so the session's descriptor is co-located —
    /// and co-crashes — with the data it describes, and a deterministic
    /// retry of the same command finds the descriptor on the same shard.
    pub fn detected(
        &self,
        lease: &StoreLease,
        sid: u64,
        rid: u64,
        op_kind: u8,
        key: &Key,
        decide: impl FnOnce(Option<&[u8]>) -> (DetectedWrite, Vec<u8>),
    ) -> Result<DetectOutcome, StoreError> {
        let shard = self.shard_of(key);
        self.check_shard(shard)?;
        let tid = lease.tid(shard)?;
        Ok(self.shards[shard].detected_update(tid, sid, rid, op_kind, key, decide))
    }

    /// Allocates a fresh memcached cas id, unique across the store's whole
    /// lifetime *including crash/recovery*. The counter seeds lazily from
    /// `(max epoch clock + 1) << 20`: epoch clocks only grow — recovery
    /// restarts them above the durable epoch — so as long as one epoch
    /// never spans 2^20 cas allocations, every post-recovery id is above
    /// every id a client saw before the crash.
    pub fn next_cas(&self) -> u64 {
        loop {
            let cur = self.cas_counter.load(Ordering::Acquire);
            if cur == 0 {
                let max_epoch = self.epochs().into_iter().flatten().max().unwrap_or(0);
                let seed = (max_epoch + 1) << 20;
                if self
                    .cas_counter
                    .compare_exchange(0, seed + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return seed;
                }
                continue;
            }
            if self
                .cas_counter
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return cur;
            }
        }
    }

    /// The session descriptor a given shard holds for `sid`, as
    /// `(rid, op_kind, result)`. Descriptors are per-(session, shard) —
    /// a session that mutated keys on two shards has one on each — so
    /// crash tests interrogate the shard that owns the mutated key.
    pub fn shard_session_descriptor(&self, shard: usize, sid: u64) -> Option<(u64, u8, Vec<u8>)> {
        self.shards[shard].session_descriptor(sid)
    }

    /// Exactly-once counters merged across shards.
    pub fn detect_stats_merged(&self) -> DetectStats {
        self.shards
            .iter()
            .map(|s| s.detect_stats())
            .fold(DetectStats::default(), |a, b| a + b)
    }

    /// Per-shard exactly-once counters (descriptor placement is a per-shard
    /// fact the `stats` command surfaces).
    pub fn detect_stats_per_shard(&self) -> Vec<DetectStats> {
        self.shards.iter().map(|s| s.detect_stats()).collect()
    }

    fn check_shard(&self, shard: usize) -> Result<(), StoreError> {
        match self.shards[shard].fault() {
            Some(fault) => Err(StoreError::Faulted { shard, fault }),
            None => Ok(()),
        }
    }

    /// The first faulted shard, if any.
    pub fn fault_any(&self) -> Option<(usize, PmemFault)> {
        self.shards
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.fault().map(|f| (i, f)))
    }

    /// Per-shard fault state.
    pub fn shard_fault(&self, shard: usize) -> Option<PmemFault> {
        self.shards[shard].fault()
    }

    /// Syncs every shard's epoch system in parallel (a store-wide durability
    /// barrier). Faulted shards report errors; healthy shards still sync.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut first_err = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|i| scope.spawn(move || self.sync_shard(i)))
                .collect();
            for h in handles {
                if let Err(e) = h.join().expect("shard sync panicked") {
                    first_err.get_or_insert(e);
                }
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Syncs one shard — the periodic durability barrier on the mutation
    /// path syncs only the shard the mutation routed to, which is what lets
    /// shards scale: barriers on shard A never wait out shard B's epochs.
    pub fn sync_shard(&self, shard: usize) -> Result<(), StoreError> {
        match self.shards[shard].esys() {
            Some(esys) => esys
                .try_sync()
                .map_err(|fault| StoreError::Faulted { shard, fault }),
            None => Ok(()),
        }
    }

    /// [`ShardedKvStore::sync_shard`] with a wall-clock budget: `Ok(false)`
    /// means the shard's epoch system could not certify durability within
    /// `timeout` (a straggling shard — injected delays, a wedged medium).
    /// The caller decides what degrades: the server severs the connections
    /// whose acks were promised behind this fence.
    pub fn sync_shard_deadline(
        &self,
        shard: usize,
        timeout: std::time::Duration,
    ) -> Result<bool, StoreError> {
        match self.shards[shard].esys() {
            Some(esys) => esys
                .try_sync_deadline(Some(std::time::Instant::now() + timeout))
                .map_err(|fault| StoreError::Faulted { shard, fault }),
            None => Ok(true),
        }
    }

    /// Freezes and returns every shard's durable image (simulated
    /// whole-machine crash). Panics on non-Montage shards.
    pub fn crash_pools(&self) -> Vec<PmemPool> {
        self.shards
            .iter()
            .map(|s| {
                s.esys()
                    .expect("crash_pools needs Montage shards")
                    .pool()
                    .crash()
            })
            .collect()
    }

    // ---- accounting ---------------------------------------------------------

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn evictions(&self) -> usize {
        self.shards.iter().map(|s| s.evictions()).sum()
    }

    /// Per-shard ordered-mirror DRAM footprint
    /// ([`KvStore::ordered_mirror_bytes`]).
    pub fn ordered_mirror_bytes_per_shard(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.ordered_mirror_bytes())
            .collect()
    }

    /// Ordered-mirror DRAM footprint summed across shards.
    pub fn ordered_mirror_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.ordered_mirror_bytes()).sum()
    }

    /// Per-shard pool counters (`None` for transient shards).
    pub fn pool_stats_per_shard(&self) -> Vec<Option<StatsSnapshot>> {
        self.shards.iter().map(|s| s.pool_stats()).collect()
    }

    /// Pool counters summed across shards (`None` if no shard has a pool).
    pub fn pool_stats_merged(&self) -> Option<StatsSnapshot> {
        let snaps: Vec<StatsSnapshot> = self.shards.iter().filter_map(|s| s.pool_stats()).collect();
        if snaps.is_empty() {
            None
        } else {
            Some(snaps.into_iter().sum())
        }
    }

    /// The tightest per-shard thread-id budget: the smallest `max_threads`
    /// across Montage shards, or `None` if every shard is transient. A
    /// server sizing a long-lived worker pool must stay at or under this —
    /// each worker's lease can pin one id per shard for its lifetime.
    pub fn min_id_capacity(&self) -> Option<usize> {
        self.shards
            .iter()
            .filter_map(|s| s.esys().map(|e| e.max_threads()))
            .min()
    }

    /// Per-shard epoch-clock values (`None` for transient shards).
    pub fn epochs(&self) -> Vec<Option<u64>> {
        self.shards
            .iter()
            .map(|s| s.esys().map(|e| e.curr_epoch()))
            .collect()
    }
}

/// Lazily-leased per-shard worker ids for one client session.
///
/// A connection touching only shard 2 holds exactly one id, on shard 2 —
/// with eager leasing a store of N shards would burn N table slots per
/// connection and the thread tables would exhaust N times sooner.
pub struct StoreLease {
    store: Arc<ShardedKvStore>,
    tids: Box<[Mutex<Option<usize>>]>,
    /// Leases made through [`ShardedKvStore::lease`] are returned on drop;
    /// prefilled wrappers borrow ids the caller owns.
    owned: bool,
}

impl StoreLease {
    /// The worker id for `shard`, registering on first touch.
    pub fn tid(&self, shard: usize) -> Result<usize, StoreError> {
        let mut slot = self.tids[shard].lock();
        if let Some(t) = *slot {
            return Ok(t);
        }
        match self.store.shard(shard).try_register_thread() {
            Some(t) => {
                *slot = Some(t);
                Ok(t)
            }
            None => Err(StoreError::OutOfThreadIds { shard }),
        }
    }

    /// Ids currently held, in shard order.
    pub fn held(&self) -> Vec<Option<usize>> {
        self.tids.iter().map(|m| *m.lock()).collect()
    }
}

impl Drop for StoreLease {
    fn drop(&mut self) {
        if !self.owned {
            return;
        }
        for (shard, slot) in self.tids.iter().enumerate() {
            if let Some(tid) = slot.lock().take() {
                self.store.shard(shard).unregister_thread(tid);
            }
        }
    }
}

/// A group-commit scope: epoch pins on the shards a batch of operations is
/// about to touch, so all of the batch's ops on one shard share a single
/// `BEGIN_OP`/`END_OP` window (see [`montage::EpochSys::pin_epoch`]).
///
/// Usage contract (the event-driven server's batch loop):
/// 1. `pin_key` each mutation's shard before executing it — best-effort; a
///    shard that cannot be pinned (faulted, out of ids, transient backend)
///    simply runs its ops unpinned and unamortized.
/// 2. Execute the batch's operations **on the same thread** that holds the
///    batch (the pins announce this thread's lease ids).
/// 3. `finish` to drop every pin, then issue the shared durability barrier
///    (`sync_shard` on the returned shards). Never sync a shard while its
///    pin is held — the pinning thread would wait on its own announcement.
pub struct StoreBatch<'a> {
    store: &'a ShardedKvStore,
    lease: &'a StoreLease,
    pins: Box<[Option<montage::EpochPin<'a>>]>,
}

impl ShardedKvStore {
    /// Opens a group-commit scope over this store with `lease`'s worker ids.
    pub fn batch<'a>(&'a self, lease: &'a StoreLease) -> StoreBatch<'a> {
        StoreBatch {
            pins: (0..self.shards.len()).map(|_| None).collect(),
            store: self,
            lease,
        }
    }
}

impl<'a> StoreBatch<'a> {
    /// Pins the shard owning a raw protocol key. Keys the protocol would
    /// reject route nowhere and are a no-op (the op itself will produce the
    /// protocol error).
    pub fn pin_key(&mut self, key: &[u8]) -> Result<(), StoreError> {
        match self.store.shard_of_bytes(key) {
            Some(shard) => self.pin_shard(shard),
            None => Ok(()),
        }
    }

    /// Pins `shard`'s epoch system (idempotent; transient shards no-op).
    pub fn pin_shard(&mut self, shard: usize) -> Result<(), StoreError> {
        if self.pins[shard].is_some() {
            return Ok(());
        }
        self.store.check_shard(shard)?;
        let tid = self.lease.tid(shard)?;
        let Some(esys) = self.store.shards[shard].esys() else {
            return Ok(()); // transient backend: no epochs to pin
        };
        let pin = esys
            .try_pin_epoch(montage::ThreadId(tid))
            .map_err(|fault| StoreError::Faulted { shard, fault })?;
        self.pins[shard] = Some(pin);
        Ok(())
    }

    /// Shards currently pinned, in shard order.
    pub fn pinned(&self) -> Vec<usize> {
        self.pins
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| i))
            .collect()
    }

    /// Drops every pin and returns the shards that were pinned — the set the
    /// caller's group fence must `sync_shard`.
    pub fn finish(&mut self) -> Vec<usize> {
        let mut touched = Vec::new();
        for (shard, slot) in self.pins.iter_mut().enumerate() {
            if slot.take().is_some() {
                touched.push(shard);
            }
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::make_key;

    fn small_store(n: usize) -> Arc<ShardedKvStore> {
        ShardedKvStore::format(
            n,
            PmemConfig::strict_for_test(8 << 20),
            EsysConfig::default(),
            4,
            10_000,
        )
    }

    #[test]
    fn set_get_delete_round_trip_across_shards() {
        let store = small_store(4);
        let lease = store.lease();
        for i in 0..200 {
            store
                .set(&lease, make_key(i), format!("v{i}").as_bytes())
                .unwrap();
        }
        assert_eq!(store.len(), 200);
        for i in 0..200 {
            assert_eq!(
                store.get(&make_key(i), |v| v.to_vec()).unwrap(),
                format!("v{i}").as_bytes()
            );
        }
        assert!(store.delete(&lease, &make_key(7)).unwrap());
        assert!(store.get(&make_key(7), |_| ()).is_none());
        assert_eq!(store.len(), 199);
    }

    #[test]
    fn lease_is_lazy_and_returns_ids_on_drop() {
        let store = small_store(4);
        let lease = store.lease();
        assert!(lease.held().iter().all(Option::is_none), "no ids yet");
        // Touch keys until at least two shards have been visited.
        for i in 0..20 {
            store.set(&lease, make_key(i), b"x").unwrap();
        }
        let held: Vec<usize> = lease.held().iter().filter_map(|t| *t).collect();
        assert!(held.len() >= 2, "20 keys should span several shards");
        drop(lease);
        // Every id came back: a fresh lease can re-register everywhere even
        // on a store formatted with a tiny thread table.
        let store2 = ShardedKvStore::format(
            2,
            PmemConfig::strict_for_test(8 << 20),
            EsysConfig {
                max_threads: 1,
                ..Default::default()
            },
            2,
            1000,
        );
        for round in 0..3 {
            let lease = store2.lease();
            for i in 0..8 {
                store2
                    .set(&lease, make_key(i), b"y")
                    .unwrap_or_else(|e| panic!("round {round}: {e}"));
            }
        }
    }

    #[test]
    fn sharded_store_recovers_all_shards_in_parallel() {
        let store = small_store(4);
        let lease = store.lease();
        for i in 0..300 {
            store
                .set(&lease, make_key(i), format!("v{i}").as_bytes())
                .unwrap();
        }
        store.delete(&lease, &make_key(5)).unwrap();
        store.sync().unwrap();
        let pools = store.crash_pools();
        let (store2, report) = ShardedKvStore::recover(pools, EsysConfig::default(), 4, 10_000, 2);
        assert_eq!(report.shards.len(), 4);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.survivors(), 299);
        assert_eq!(store2.len(), 299);
        assert!(store2.get(&make_key(5), |_| ()).is_none());
        for i in 200..300 {
            assert_eq!(
                store2.get(&make_key(i), |v| v.to_vec()).unwrap(),
                format!("v{i}").as_bytes(),
                "key {i} lost"
            );
        }
    }

    #[test]
    fn unformatted_shard_comes_back_empty_not_fatal_to_the_store() {
        let store = small_store(3);
        let lease = store.lease();
        for i in 0..100 {
            store.set(&lease, make_key(i), b"z").unwrap();
        }
        store.sync().unwrap();
        let mut pools = store.crash_pools();
        // Replace shard 1's image with a never-formatted pool.
        pools[1] = PmemPool::new(PmemConfig::strict_for_test(8 << 20));
        let (store2, report) = ShardedKvStore::recover(pools, EsysConfig::default(), 4, 10_000, 2);
        assert_eq!(report.fatal_shards(), 1);
        assert!(matches!(
            report.shards[1].fatal,
            Some(RecoveryError::UnformattedPool)
        ));
        // Shards 0 and 2 kept everything they owned.
        let router = ShardRouter::new(3);
        let expected: usize = (0..100)
            .filter(|&i| router.route(&make_key(i)) != 1)
            .count();
        assert_eq!(store2.len(), expected);
        // And the store still serves writes, including to the reborn shard.
        let lease2 = store2.lease();
        for i in 0..100 {
            store2.set(&lease2, make_key(i), b"w").unwrap();
        }
        assert_eq!(store2.len(), 100);
    }

    #[test]
    fn batch_pins_once_per_shard_and_survives_a_group_fence() {
        let store = small_store(4);
        let lease = store.lease();
        let epochs_before = store.epochs();
        let mut batch = store.batch(&lease);
        // A burst of sets spanning several shards, all under one batch.
        for i in 0..40 {
            let k = make_key(i);
            batch.pin_shard(store.shard_of(&k)).unwrap();
            store.set(&lease, k, format!("b{i}").as_bytes()).unwrap();
        }
        let pinned = batch.pinned();
        assert!(pinned.len() >= 2, "40 keys should pin several shards");
        // Pins are idempotent: re-pinning the same shards changed nothing.
        assert_eq!(batch.finish(), pinned);
        assert_eq!(batch.finish(), Vec::<usize>::new(), "finish is terminal");
        // The shared fence after dropping the pins: one sync per touched
        // shard instead of one per mutation.
        for &s in &pinned {
            store.sync_shard(s).unwrap();
        }
        for (s, (before, after)) in epochs_before.iter().zip(store.epochs()).enumerate() {
            if pinned.contains(&s) {
                assert!(
                    after.unwrap() >= before.unwrap() + 2,
                    "shard {s} never fenced"
                );
            }
        }
        // Everything written under the pins recovered after a crash.
        let pools = store.crash_pools();
        let (store2, report) = ShardedKvStore::recover(pools, EsysConfig::default(), 4, 10_000, 2);
        assert!(report.is_clean(), "{report:?}");
        for i in 0..40 {
            assert_eq!(
                store2.get(&make_key(i), |v| v.to_vec()).unwrap(),
                format!("b{i}").as_bytes()
            );
        }
    }

    #[test]
    fn batch_pin_refuses_faulted_shard_but_ops_degrade_unpinned() {
        let healthy = PmemConfig::strict_for_test(8 << 20);
        let mut armed = healthy;
        armed.chaos.crash_at_event = Some(1);
        let pools = vec![PmemPool::new(armed), PmemPool::new(healthy)];
        let store = ShardedKvStore::format_pools(pools, EsysConfig::default(), 4, 10_000);
        // Trip shard 0's plan.
        let _ = store.sync_shard(0);
        assert!(store.shard_fault(0).is_some());
        let lease = store.lease();
        let mut batch = store.batch(&lease);
        assert!(matches!(
            batch.pin_shard(0),
            Err(StoreError::Faulted { shard: 0, .. })
        ));
        batch.pin_shard(1).unwrap();
        assert_eq!(batch.finish(), vec![1]);
    }

    #[test]
    fn faulted_shard_refuses_mutations_while_others_serve() {
        // Arm shard 0 to trip almost immediately; leave the rest healthy.
        let healthy = PmemConfig::strict_for_test(8 << 20);
        let mut armed = healthy;
        armed.chaos.crash_at_event = Some(30);
        let pools = vec![
            PmemPool::new(armed),
            PmemPool::new(healthy),
            PmemPool::new(healthy),
        ];
        let store = ShardedKvStore::format_pools(pools, EsysConfig::default(), 4, 10_000);
        let lease = store.lease();
        let router = ShardRouter::new(3);
        // Hammer shard 0 with checked ops until its plan trips.
        let mut shard0_key = None;
        for i in 0..10_000 {
            let k = make_key(i);
            if router.route(&k) == 0 {
                shard0_key = Some(k);
                if store.set(&lease, k, &[7u8; 64]).is_err() {
                    break;
                }
                let _ = store.sync_shard(0);
            }
            if store.shard_fault(0).is_some() {
                break;
            }
        }
        let (shard, _) = store.fault_any().expect("shard 0 must trip");
        assert_eq!(shard, 0);
        assert!(matches!(
            store.set(&lease, shard0_key.unwrap(), b"nope"),
            Err(StoreError::Faulted { shard: 0, .. })
        ));
        assert!(
            store.sync().is_err(),
            "store-wide barrier reports the fault"
        );
        // Healthy shards still take writes and sync.
        let k1 = (0..10_000)
            .map(make_key)
            .find(|k| router.route(k) == 1)
            .unwrap();
        store.set(&lease, k1, b"alive").unwrap();
        store.sync_shard(1).unwrap();
        assert_eq!(store.get(&k1, |v| v.to_vec()).unwrap(), b"alive");
    }
}
