//! Key distributions: uniform, Zipfian, scrambled Zipfian (YCSB core).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Zipfian generator over `0..n`, exponent `theta` (YCSB default 0.99),
/// using the rejection-free method of Gray et al. ("Quickly generating
/// billion-record synthetic databases") as in YCSB's `ZipfianGenerator`.
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        let zeta2theta = Self::zeta(2, theta);
        let zetan = Self::zeta(n, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan),
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; called once per distribution. For very large n this is
        // the cost YCSB pays too (it caches the constant, as do we).
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Next sample in `0..n` (rank 0 is the hottest key).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// FNV-scrambled sample, spreading hot keys across the key space
    /// (YCSB's `ScrambledZipfianGenerator`).
    pub fn sample_scrambled(&self, rng: &mut SmallRng) -> u64 {
        fnv1a64(self.sample(rng)) % self.n
    }

    pub fn theta(&self) -> f64 {
        self.theta
    }

    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

fn fnv1a64(v: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// A key distribution over `1..=max_key`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDist {
    Uniform,
    Zipfian,
}

/// A per-thread sampler combining the distribution and its RNG.
pub struct KeySampler {
    dist: KeyDist,
    zipf: Option<Zipfian>,
    max_key: u64,
    rng: SmallRng,
}

impl KeySampler {
    pub fn new(dist: KeyDist, max_key: u64, seed: u64) -> Self {
        KeySampler {
            dist,
            zipf: matches!(dist, KeyDist::Zipfian).then(|| Zipfian::new(max_key, 0.99)),
            max_key,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A key in `1..=max_key`.
    pub fn next_key(&mut self) -> u64 {
        match self.dist {
            KeyDist::Uniform => self.rng.gen_range(1..=self.max_key),
            KeyDist::Zipfian => 1 + self.zipf.as_ref().unwrap().sample_scrambled(&mut self.rng),
        }
    }

    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_samples_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
            assert!(z.sample_scrambled(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipfian_is_skewed() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[100] * 5, "rank 0 must dominate rank 100");
        assert!(
            counts[0] as f64 > 100_000.0 * 0.05,
            "hot key ≥ 5% of traffic"
        );
    }

    #[test]
    fn scrambling_spreads_hot_keys() {
        let z = Zipfian::new(1_000_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let a = z.sample_scrambled(&mut rng);
        // Hot ranks map to arbitrary (not small) key values.
        let mut any_large = false;
        for _ in 0..100 {
            if z.sample_scrambled(&mut rng) > 1000 {
                any_large = true;
            }
        }
        let _ = a;
        assert!(any_large);
    }

    #[test]
    fn uniform_sampler_covers_range() {
        let mut s = KeySampler::new(KeyDist::Uniform, 100, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let k = s.next_key();
            assert!((1..=100).contains(&k));
            seen.insert(k);
        }
        assert!(seen.len() > 95, "uniform sampling should cover the range");
    }

    #[test]
    fn samplers_are_deterministic_by_seed() {
        let mut a = KeySampler::new(KeyDist::Zipfian, 1000, 42);
        let mut b = KeySampler::new(KeyDist::Zipfian, 1000, 42);
        for _ in 0..100 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }
}
