//! # workloads — generators for the paper's evaluation
//!
//! * [`zipfian`] — YCSB-core Zipfian / scrambled-Zipfian / uniform key
//!   distributions (Gray et al.'s method, as used by YCSB).
//! * [`ycsb`] — the YCSB-A operation mix (50% read / 50% update) driving the
//!   memcached experiment (paper Fig. 10).
//! * [`mix`] — the microbenchmark mixes: queue 1:1 enqueue:dequeue and map
//!   get:insert:remove ratios (0:1:1, 18:1:1, 2:1:1), with the paper's key
//!   range (1..=1 M) and preload (0.5 M in 1 M buckets).
//! * [`graphgen`] — a deterministic power-law graph generator standing in
//!   for the SNAP Orkut dataset (see DESIGN.md, substitutions), partitioned
//!   into binary "files" the way the paper's custom loader expects.

pub mod graphgen;
pub mod mix;
pub mod ycsb;
pub mod zipfian;

pub use graphgen::{GraphDataset, GraphGenConfig};
pub use mix::{MapMix, MapOp, QueueOp};
pub use ycsb::{YcsbAWorkload, YcsbOp};
pub use zipfian::{KeyDist, Zipfian};
