//! Synthetic power-law graph generator — the SNAP Orkut substitute for the
//! recovery experiment (paper Fig. 12).
//!
//! The paper loads Orkut (∼3 M vertices, 117 M edges) from partitioned files
//! in "a custom binary format that eliminates the need for string
//! manipulation", then compares parallel construction against Montage
//! recovery. Any fixed large power-law graph exercises the same code paths,
//! so we generate one deterministically (preferential attachment à la
//! Barabási–Albert) at a configurable scale, partition it, and provide the
//! same binary encode/decode round-trip the loader would perform.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct GraphGenConfig {
    pub vertices: u64,
    /// Edges attached per new vertex (Orkut's average degree is ~76;
    /// the default keeps container-scale runs snappy).
    pub edges_per_vertex: u32,
    pub seed: u64,
    /// Number of partitions ("files").
    pub partitions: usize,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            vertices: 100_000,
            edges_per_vertex: 16,
            seed: 0x0050_4B47, // "ORKG"-ish: fixed default seed
            partitions: 8,
        }
    }
}

/// A generated dataset: vertices `0..vertices` and a partitioned edge list.
pub struct GraphDataset {
    pub vertices: u64,
    pub partitions: Vec<Vec<(u32, u32)>>,
}

impl GraphDataset {
    /// Generates the dataset (deterministic for a given config).
    pub fn generate(cfg: GraphGenConfig) -> GraphDataset {
        assert!(cfg.vertices >= 2 && cfg.partitions >= 1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut partitions: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cfg.partitions];
        // Preferential attachment via the "repeated endpoints" trick: sample
        // targets from a growing endpoint pool, so attachment probability is
        // proportional to degree.
        let mut endpoint_pool: Vec<u32> = vec![0, 1];
        partitions[0].push((0, 1));
        let mut edge_count: u64 = 1;
        for v in 2..cfg.vertices {
            let m = cfg.edges_per_vertex.min(v as u32);
            // Small sorted vec keeps insertion deterministic (a HashSet's
            // iteration order would vary run to run).
            let mut targets: Vec<u32> = Vec::with_capacity(m as usize);
            while targets.len() < m as usize {
                // Mix preferential attachment with uniform choice for a
                // heavier tail (as in real social graphs).
                let t = if rng.gen_bool(0.9) {
                    endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
                } else {
                    rng.gen_range(0..v) as u32
                };
                if t != v as u32 && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for t in targets {
                let p = (edge_count % cfg.partitions as u64) as usize;
                partitions[p].push((v as u32, t));
                endpoint_pool.push(v as u32);
                endpoint_pool.push(t);
                edge_count += 1;
            }
        }
        GraphDataset {
            vertices: cfg.vertices,
            partitions,
        }
    }

    pub fn edge_count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Encodes one partition in the compact binary format (8 bytes/edge).
    pub fn encode_partition(&self, p: usize) -> Vec<u8> {
        let part = &self.partitions[p];
        let mut out = Vec::with_capacity(8 + part.len() * 8);
        out.extend_from_slice(&(part.len() as u64).to_le_bytes());
        for &(a, b) in part {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    /// Decodes a partition encoded by [`GraphDataset::encode_partition`].
    pub fn decode_partition(bytes: &[u8]) -> Vec<(u32, u32)> {
        let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let at = 8 + i * 8;
            out.push((
                u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()),
                u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap()),
            ));
        }
        out
    }

    /// Degree histogram (for verifying the power-law shape).
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.vertices as usize];
        for part in &self.partitions {
            for &(a, b) in part {
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GraphDataset {
        GraphDataset::generate(GraphGenConfig {
            vertices: 2000,
            edges_per_vertex: 8,
            seed: 42,
            partitions: 4,
        })
    }

    #[test]
    fn edge_count_matches_config_scale() {
        let g = small();
        // ≈ (V-2) * m edges plus the seed edge.
        assert!(g.edge_count() as u64 >= (g.vertices - 2) * 8 / 2);
        assert!(g.edge_count() as u64 <= g.vertices * 8);
    }

    #[test]
    fn no_self_loops_and_ids_in_range() {
        let g = small();
        for part in &g.partitions {
            for &(a, b) in part {
                assert_ne!(a, b);
                assert!((a as u64) < g.vertices && (b as u64) < g.vertices);
            }
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = small();
        let mut deg = g.degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let max = deg[0] as f64;
        let median = deg[deg.len() / 2] as f64;
        assert!(
            max / median > 5.0,
            "expected heavy tail: max={max}, median={median}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.partitions, b.partitions);
    }

    #[test]
    fn binary_roundtrip() {
        let g = small();
        for p in 0..g.partitions.len() {
            let enc = g.encode_partition(p);
            assert_eq!(GraphDataset::decode_partition(&enc), g.partitions[p]);
        }
    }
}
