//! YCSB core workloads (Cooper et al.) over a Zipfian-popular record set:
//! **A** (50% reads / 50% updates) is the workload of the paper's memcached
//! experiment (Fig. 10: "1 M records, 2.5 M read and 2.5 M update
//! operations, evenly distributed across threads"); **B** (95% reads / 5%
//! updates) is the read-mostly companion the wire benchmarks also report.

use crate::zipfian::{KeyDist, KeySampler};
use rand::Rng;

/// One YCSB operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbOp {
    Read(u64),
    Update(u64),
}

/// Per-thread YCSB read/update stream with a configurable read fraction.
pub struct YcsbWorkload {
    sampler: KeySampler,
    remaining: u64,
    read_permille: u32,
}

impl YcsbWorkload {
    pub const RECORDS: u64 = 1_000_000;
    pub const OPS: u64 = 5_000_000;

    /// `ops` operations for one thread over `records` keys, reading with
    /// probability `read_permille`/1000.
    pub fn with_mix(records: u64, ops: u64, seed: u64, read_permille: u32) -> Self {
        assert!(read_permille <= 1000);
        YcsbWorkload {
            sampler: KeySampler::new(KeyDist::Zipfian, records, seed),
            remaining: ops,
            read_permille,
        }
    }

    /// YCSB-A: 50% reads / 50% updates.
    pub fn a(records: u64, ops: u64, seed: u64) -> Self {
        Self::with_mix(records, ops, seed, 500)
    }

    /// YCSB-B: 95% reads / 5% updates.
    pub fn b(records: u64, ops: u64, seed: u64) -> Self {
        Self::with_mix(records, ops, seed, 950)
    }
}

impl Iterator for YcsbWorkload {
    type Item = YcsbOp;

    fn next(&mut self) -> Option<YcsbOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let read = self.sampler.rng().gen_range(0..1000u32) < self.read_permille;
        let key = self.sampler.next_key();
        Some(if read {
            YcsbOp::Read(key)
        } else {
            YcsbOp::Update(key)
        })
    }
}

/// Per-thread YCSB-A stream (the Fig. 10 workload).
pub struct YcsbAWorkload;

impl YcsbAWorkload {
    pub const RECORDS: u64 = YcsbWorkload::RECORDS;
    pub const OPS: u64 = YcsbWorkload::OPS;

    /// `ops` operations for one thread over `records` keys.
    // Compat constructor for pre-YcsbWorkload callers; deliberately returns
    // the generalised type.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(records: u64, ops: u64, seed: u64) -> YcsbWorkload {
        YcsbWorkload::a(records, ops, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_roughly_half_reads() {
        let w = YcsbAWorkload::new(1000, 100_000, 1);
        let reads = w.filter(|op| matches!(op, YcsbOp::Read(_))).count();
        assert!((40_000..60_000).contains(&reads), "reads = {reads}");
    }

    #[test]
    fn produces_exactly_n_ops() {
        assert_eq!(YcsbAWorkload::new(10, 1234, 1).count(), 1234);
    }

    #[test]
    fn keys_in_record_range() {
        for op in YcsbAWorkload::new(50, 10_000, 2) {
            let k = match op {
                YcsbOp::Read(k) | YcsbOp::Update(k) => k,
            };
            assert!((1..=50).contains(&k));
        }
    }

    #[test]
    fn ycsb_b_is_read_mostly() {
        let reads = YcsbWorkload::b(1000, 100_000, 3)
            .filter(|op| matches!(op, YcsbOp::Read(_)))
            .count();
        assert!((93_000..97_000).contains(&reads), "reads = {reads}");
    }
}
