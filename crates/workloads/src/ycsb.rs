//! YCSB-A (Cooper et al.): 50% reads / 50% updates over a Zipfian-popular
//! record set — the workload of the paper's memcached experiment (Fig. 10:
//! "1 M records, 2.5 M read and 2.5 M update operations, evenly distributed
//! across threads").

use crate::zipfian::{KeyDist, KeySampler};
use rand::Rng;

/// One YCSB-A operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbOp {
    Read(u64),
    Update(u64),
}

/// Per-thread YCSB-A stream.
pub struct YcsbAWorkload {
    sampler: KeySampler,
    remaining: u64,
}

impl YcsbAWorkload {
    pub const RECORDS: u64 = 1_000_000;
    pub const OPS: u64 = 5_000_000;

    /// `ops` operations for one thread over `records` keys.
    pub fn new(records: u64, ops: u64, seed: u64) -> Self {
        YcsbAWorkload {
            sampler: KeySampler::new(KeyDist::Zipfian, records, seed),
            remaining: ops,
        }
    }
}

impl Iterator for YcsbAWorkload {
    type Item = YcsbOp;

    fn next(&mut self) -> Option<YcsbOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let read: bool = self.sampler.rng().gen();
        let key = self.sampler.next_key();
        Some(if read {
            YcsbOp::Read(key)
        } else {
            YcsbOp::Update(key)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_roughly_half_reads() {
        let w = YcsbAWorkload::new(1000, 100_000, 1);
        let reads = w.filter(|op| matches!(op, YcsbOp::Read(_))).count();
        assert!((40_000..60_000).contains(&reads), "reads = {reads}");
    }

    #[test]
    fn produces_exactly_n_ops() {
        assert_eq!(YcsbAWorkload::new(10, 1234, 1).count(), 1234);
    }

    #[test]
    fn keys_in_record_range() {
        for op in YcsbAWorkload::new(50, 10_000, 2) {
            let k = match op {
                YcsbOp::Read(k) | YcsbOp::Update(k) => k,
            };
            assert!((1..=50).contains(&k));
        }
    }
}
