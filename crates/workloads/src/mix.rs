//! Microbenchmark operation mixes, matching the paper's Sec. 6.1 setup:
//! key range 1..=1,000,000 (padded-string keys), 0.5 M elements preloaded in
//! 1 M buckets, 1 KB values, uniform key choice; map mixes expressed as
//! get:insert:remove ratios.

use rand::Rng;

use crate::zipfian::{KeyDist, KeySampler};

/// Paper constants.
pub const KEY_RANGE: u64 = 1_000_000;
pub const PRELOAD: u64 = 500_000;
pub const NBUCKETS: usize = 1_000_000;
pub const VALUE_SIZE: usize = 1024;

/// One queue operation (1:1 enqueue:dequeue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueOp {
    Enqueue,
    Dequeue,
}

/// One map operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapOp {
    Get(u64),
    Insert(u64),
    Remove(u64),
}

/// A get:insert:remove ratio, e.g. `MapMix::new(18, 1, 1)` for the paper's
/// read-dominant workload.
#[derive(Clone, Copy, Debug)]
pub struct MapMix {
    pub get: u32,
    pub insert: u32,
    pub remove: u32,
}

impl MapMix {
    pub const WRITE_DOMINANT: MapMix = MapMix {
        get: 0,
        insert: 1,
        remove: 1,
    };
    pub const READ_DOMINANT: MapMix = MapMix {
        get: 18,
        insert: 1,
        remove: 1,
    };
    pub const MIXED: MapMix = MapMix {
        get: 2,
        insert: 1,
        remove: 1,
    };

    pub fn new(get: u32, insert: u32, remove: u32) -> Self {
        assert!(get + insert + remove > 0);
        MapMix {
            get,
            insert,
            remove,
        }
    }

    fn total(&self) -> u32 {
        self.get + self.insert + self.remove
    }
}

/// Per-thread generator of map operations.
pub struct MapOpGen {
    mix: MapMix,
    sampler: KeySampler,
}

#[allow(clippy::should_implement_trait)] // generators, not iterators (infinite)
impl MapOpGen {
    pub fn new(mix: MapMix, dist: KeyDist, max_key: u64, seed: u64) -> Self {
        MapOpGen {
            mix,
            sampler: KeySampler::new(dist, max_key, seed),
        }
    }

    pub fn next(&mut self) -> MapOp {
        let r = self.sampler.rng().gen_range(0..self.mix.total());
        let key = self.sampler.next_key();
        if r < self.mix.get {
            MapOp::Get(key)
        } else if r < self.mix.get + self.mix.insert {
            MapOp::Insert(key)
        } else {
            MapOp::Remove(key)
        }
    }
}

/// Per-thread generator of queue operations (alternating 1:1, as in the
/// paper's enqueue:dequeue workload).
pub struct QueueOpGen {
    next_enq: bool,
}

#[allow(clippy::should_implement_trait)] // generators, not iterators (infinite)
impl QueueOpGen {
    pub fn new(start_with_enqueue: bool) -> Self {
        QueueOpGen {
            next_enq: start_with_enqueue,
        }
    }

    pub fn next(&mut self) -> QueueOp {
        let op = if self.next_enq {
            QueueOp::Enqueue
        } else {
            QueueOp::Dequeue
        };
        self.next_enq = !self.next_enq;
        op
    }
}

/// A deterministic value buffer of the given size (contents don't matter for
/// throughput; a recognizable pattern helps debugging).
pub fn value_of(size: usize, salt: u64) -> Vec<u8> {
    let mut v = vec![0u8; size];
    for (i, b) in v.iter_mut().enumerate() {
        *b = (salt as u8).wrapping_add(i as u8);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_gen_alternates() {
        let mut g = QueueOpGen::new(true);
        assert_eq!(g.next(), QueueOp::Enqueue);
        assert_eq!(g.next(), QueueOp::Dequeue);
        assert_eq!(g.next(), QueueOp::Enqueue);
    }

    #[test]
    fn map_mix_ratios_are_respected() {
        let mut g = MapOpGen::new(MapMix::READ_DOMINANT, KeyDist::Uniform, KEY_RANGE, 5);
        let mut gets = 0;
        let mut writes = 0;
        for _ in 0..20_000 {
            match g.next() {
                MapOp::Get(_) => gets += 1,
                _ => writes += 1,
            }
        }
        let ratio = gets as f64 / writes as f64;
        assert!((7.0..13.0).contains(&ratio), "18:2 ratio drifted: {ratio}");
    }

    #[test]
    fn write_dominant_has_no_gets() {
        let mut g = MapOpGen::new(MapMix::WRITE_DOMINANT, KeyDist::Uniform, 100, 5);
        for _ in 0..1000 {
            assert!(!matches!(g.next(), MapOp::Get(_)));
        }
    }

    #[test]
    fn values_are_sized_and_deterministic() {
        assert_eq!(value_of(1024, 3).len(), 1024);
        assert_eq!(value_of(64, 3), value_of(64, 3));
        assert_ne!(value_of(64, 3), value_of(64, 4));
    }
}
