//! **Figure 4** — design-space exploration on the hashmap (paper: 40
//! threads, 0:1:1 get:insert:remove).
//!
//! Groups: per-thread write-back buffers of 2/16/64/256 entries × epoch
//! lengths, then Buf=64+LocalFree, DirWB, Montage(T), and Buf=64+DirFree
//! (the last two are reference points that do not correctly implement
//! persistence, exactly as in the paper).

use std::time::Duration;

use montage::{EsysConfig, FreeStrategy, PersistStrategy};
use montage_bench::harness::{env_seconds, env_threads, run_map_bench, BenchParams};
use montage_bench::report;
use montage_bench::systems::montage_map_with;
use workloads::mix::MapMix;

fn point(cfg: EsysConfig, p: BenchParams) -> f64 {
    let (map, _hold) = montage_map_with(cfg, &p);
    run_map_bench(map.as_ref(), MapMix::WRITE_DOMINANT, p)
}

fn main() {
    // The paper uses 40 threads; we default to the sweep's max.
    let threads = *env_threads().iter().max().unwrap();
    let p = BenchParams::paper_scaled(threads, 1024);
    report::header(
        "fig04",
        &format!(
            "hashmap design exploration, {} threads, 0:1:1, value 1KB, {}s/point",
            threads,
            env_seconds()
        ),
        &["config", "epoch_length", "ops_per_sec"],
    );

    let epochs = [
        Duration::from_micros(10),
        Duration::from_micros(100),
        Duration::from_millis(1),
        Duration::from_millis(10),
        Duration::from_millis(100),
        Duration::from_secs(1),
    ];

    for buf in [2usize, 16, 64, 256] {
        for epoch in epochs {
            let cfg = EsysConfig {
                persist: PersistStrategy::Buffered(buf),
                epoch_length: epoch,
                ..Default::default()
            };
            let t = point(cfg, p);
            report::row(&[format!("Buf={buf}"), format!("{epoch:?}"), report::raw(t)]);
        }
    }

    // Buf=64 + worker-local reclamation.
    for epoch in epochs {
        let cfg = EsysConfig {
            persist: PersistStrategy::Buffered(64),
            free: FreeStrategy::WorkerLocal,
            epoch_length: epoch,
            ..Default::default()
        };
        let t = point(cfg, p);
        report::row(&[
            "Buf=64+LocalFree".into(),
            format!("{epoch:?}"),
            report::raw(t),
        ]);
    }

    // DirWB: write back at every update.
    let t = point(
        EsysConfig {
            persist: PersistStrategy::DirWB,
            ..Default::default()
        },
        p,
    );
    report::row(&["DirWB".into(), "-".into(), report::raw(t)]);

    // Montage (T): all persistence elided.
    let t = point(EsysConfig::transient(), p);
    report::row(&["Montage(T)".into(), "-".into(), report::raw(t)]);

    // Buf=64 + direct (immediate) reclamation — reference only.
    let t = point(
        EsysConfig {
            persist: PersistStrategy::Buffered(64),
            free: FreeStrategy::Direct,
            ..Default::default()
        },
        p,
    );
    report::row(&["Buf=64+DirFree".into(), "-".into(), report::raw(t)]);
}
