//! **Figure 10 (wire edition)** — YCSB-A and YCSB-B driven over loopback TCP
//! through `kvserver`, for items in DRAM, in NVM, and fully persistent under
//! Montage. Where `fig10_memcached_ycsb` measures the cache library
//! in-process, this measures the whole serving stack: framing, session
//! leases, socket round-trips. Reports throughput, client-observed latency
//! percentiles, and the PersistCost (flushes / fences per op) that Montage's
//! buffering is designed to shrink.
//!
//! Montage runs twice per thread count: `buffered` (durability rides the
//! background advancer) and `sync1` (`sync_every=1`: every mutation is acked
//! durable), the mode the event-driven server's group commit amortizes.
//! Alongside the CSV, the run writes `BENCH_fig10_wire_ycsb.json` (or
//! `$BENCH_JSON_PATH`) for the `xtask bench-diff` regression gate.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use kvserver::{KvServer, PipeOp, ServerConfig, WireClient};
use kvstore::{KvBackend, KvStore};
use montage::{Advancer, EpochSys, EsysConfig};
use montage_bench::harness::{env_scale, env_threads};
use montage_bench::report::{self, JsonReport, PersistCost};
use pmem::{LatencyModel, PmemConfig, PmemMode, PmemPool};
use ralloc::Ralloc;
use workloads::ycsb::{YcsbOp, YcsbWorkload};

/// Which server core produced these numbers; recorded in the JSON so the
/// checked-in baseline can hold before/after rows side by side.
const SERVER_IMPL: &str = "event";

fn nvm_pool(bytes: usize) -> PmemPool {
    PmemPool::new(PmemConfig {
        size: bytes,
        mode: PmemMode::Fast,
        latency: LatencyModel::OPTANE,
        chaos: Default::default(),
    })
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    // A socket round-trip per op is ~10x the cost of a library call; run a
    // tenth of the in-process op count for comparable wall time.
    let scale = env_scale() / 10.0;
    let records = ((YcsbWorkload::RECORDS as f64 * scale) as u64).max(1_000);
    let total_ops = ((YcsbWorkload::OPS as f64 * scale) as u64).max(5_000);
    // ASCII payload: the text protocol transcodes non-UTF-8 value bytes, and
    // a transcoded reply would make the read path measure extra bytes.
    let value = vec![b'a'; 256];
    // Requests in flight per connection. At depth 1 the socket RTT is the
    // ceiling and batches never form; pipelining is the workload shape that
    // lets the server's group commit amortize the per-mutation fence.
    let depth: usize = std::env::var("MONTAGE_BENCH_PIPELINE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .max(1);
    report::header(
        "fig10-wire",
        &format!(
            "kvserver YCSB over loopback, {records} records, {total_ops} ops, value 256B, pipeline {depth}"
        ),
        &[
            "workload",
            "backend",
            "mode",
            "pipeline",
            "threads",
            "ops_per_sec",
            "p50_us",
            "p99_us",
            "flushes_per_op",
            "fences_per_op",
        ],
    );

    let mut json = JsonReport::new("fig10_wire_ycsb");
    json.field("server", SERVER_IMPL);
    json.field("records", records);
    json.field("total_ops", total_ops);
    json.field("pipeline", depth as u64);
    let max_threads = env_threads().into_iter().max().unwrap_or(1);
    json.headline(&JsonReport::slug(&[
        "YCSB-A",
        "Montage",
        "sync1",
        SERVER_IMPL,
        &format!("p{depth}"),
        &format!("t{max_threads}"),
        "ops_per_sec",
    ]));

    for &threads in &env_threads() {
        let pool_bytes = (64 << 20) + records as usize * 1024 * 2;

        for (wl_name, read_permille) in [("YCSB-A", 500u32), ("YCSB-B", 950u32)] {
            for (backend_name, mode) in [
                ("DRAM (T)", "buffered"),
                ("NVM (T)", "buffered"),
                ("Montage", "buffered"),
                ("Montage", "sync1"),
            ] {
                // `pool` is the persistence domain whose flush/fence counters
                // we charge to the workload (None for DRAM); `esys` doubles
                // as the coalescing-audit source for the JSON report.
                let (kv, pool, esys, _hold): (
                    Arc<KvStore>,
                    Option<PmemPool>,
                    Option<Arc<EpochSys>>,
                    Option<Advancer>,
                ) = match backend_name {
                    "DRAM (T)" => (
                        Arc::new(KvStore::new(KvBackend::Dram, 64, usize::MAX / 2)),
                        None,
                        None,
                        None,
                    ),
                    "NVM (T)" => {
                        let r = Ralloc::format(nvm_pool(pool_bytes));
                        let pool = r.pool().clone();
                        (
                            Arc::new(KvStore::new(KvBackend::Nvm(r), 64, usize::MAX / 2)),
                            Some(pool),
                            None,
                            None,
                        )
                    }
                    _ => {
                        let esys = EpochSys::format(
                            nvm_pool(pool_bytes),
                            EsysConfig {
                                // ids for the preload session + each
                                // client connection + headroom for churn.
                                max_threads: threads + 4,
                                ..Default::default()
                            },
                        );
                        let pool = esys.pool().clone();
                        let adv = Advancer::start(esys.clone());
                        (
                            Arc::new(KvStore::new(
                                KvBackend::Montage(esys.clone()),
                                64,
                                usize::MAX / 2,
                            )),
                            Some(pool),
                            Some(esys),
                            Some(adv),
                        )
                    }
                };

                let handle = KvServer::start(
                    ServerConfig {
                        max_conns: threads + 2,
                        sync_every: (mode == "sync1").then_some(1),
                        ..Default::default()
                    },
                    kv,
                )
                .expect("bind loopback");
                let addr = handle.addr();

                // Preload over the wire, outside the timed section.
                {
                    let mut c = WireClient::connect(addr).expect("connect");
                    for i in 1..=records {
                        c.set_noreply(&format!("k{i}"), 0, &value).expect("preload");
                    }
                    // A replied command flushes the noreply stream.
                    let _ = c.get("k1").expect("preload barrier");
                    c.quit().expect("quit");
                }

                let before = pool
                    .as_ref()
                    .map(|p| p.stats().snapshot())
                    .unwrap_or_default();
                let coalesced_before = esys
                    .as_ref()
                    .map(|e| {
                        e.stats()
                            .flushes_coalesced
                            .load(std::sync::atomic::Ordering::Relaxed)
                    })
                    .unwrap_or(0);
                let per_thread = total_ops / threads as u64;
                let barrier = Barrier::new(threads + 1);
                let lat_all = parking_lot::Mutex::new(Vec::<u64>::new());
                let start_cell = parking_lot::Mutex::new(None::<Instant>);
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let barrier = &barrier;
                        let value = &value;
                        let lat_all = &lat_all;
                        s.spawn(move || {
                            let mut c = WireClient::connect(addr).expect("connect");
                            let work = YcsbWorkload::with_mix(
                                records,
                                per_thread,
                                0xA11CE + t as u64,
                                read_permille,
                            );
                            // Latency samples are per pipelined round (depth
                            // requests in flight), the unit the client blocks
                            // on; at depth 1 this is per-op latency.
                            let mut lat = Vec::with_capacity(per_thread as usize / depth + 1);
                            let ops: Vec<YcsbOp> = work.collect();
                            barrier.wait();
                            for round in ops.chunks(depth) {
                                let keys: Vec<String> = round
                                    .iter()
                                    .map(|op| match op {
                                        YcsbOp::Read(k) | YcsbOp::Update(k) => format!("k{k}"),
                                    })
                                    .collect();
                                let reqs: Vec<PipeOp> = round
                                    .iter()
                                    .zip(&keys)
                                    .map(|(op, key)| match op {
                                        YcsbOp::Read(_) => PipeOp::Get(key),
                                        YcsbOp::Update(_) => PipeOp::Set(key, value),
                                    })
                                    .collect();
                                let t0 = Instant::now();
                                c.round(&reqs).expect("pipelined round");
                                lat.push(t0.elapsed().as_micros() as u64);
                            }
                            lat_all.lock().append(&mut lat);
                            c.quit().expect("quit");
                        });
                    }
                    barrier.wait();
                    *start_cell.lock() = Some(Instant::now());
                });
                let elapsed = start_cell.lock().unwrap().elapsed();
                let after = pool
                    .as_ref()
                    .map(|p| p.stats().snapshot())
                    .unwrap_or_default();
                let coalesced = esys
                    .as_ref()
                    .map(|e| {
                        e.stats()
                            .flushes_coalesced
                            .load(std::sync::atomic::Ordering::Relaxed)
                    })
                    .unwrap_or(0)
                    - coalesced_before;

                let ops = per_thread * threads as u64;
                let tput = ops as f64 / elapsed.as_secs_f64();
                let mut lats = std::mem::take(&mut *lat_all.lock());
                lats.sort_unstable();
                let p50 = percentile(&lats, 0.50);
                let p99 = percentile(&lats, 0.99);
                let cost = PersistCost::from_snapshots(before, after, ops);
                let [flushes, fences] = cost.fields();
                report::row(&[
                    wl_name.into(),
                    backend_name.into(),
                    mode.into(),
                    depth.to_string(),
                    threads.to_string(),
                    report::raw(tput),
                    p50.to_string(),
                    p99.to_string(),
                    flushes.clone(),
                    fences.clone(),
                ]);
                json.row(vec![
                    ("workload".to_string(), wl_name.into()),
                    ("backend".to_string(), backend_name.into()),
                    ("mode".to_string(), mode.into()),
                    ("server".to_string(), SERVER_IMPL.into()),
                    ("pipeline".to_string(), (depth as u64).into()),
                    ("threads".to_string(), (threads as u64).into()),
                    ("ops_per_sec".to_string(), tput.into()),
                    ("p50_us".to_string(), p50.into()),
                    ("p99_us".to_string(), p99.into()),
                    ("flushes_per_op".to_string(), cost.flushes_per_op.into()),
                    ("fences_per_op".to_string(), cost.fences_per_op.into()),
                    ("redundant_clwbs_avoided".to_string(), coalesced.into()),
                ]);
                for (metric, v) in [("ops_per_sec", tput), ("p99_us", p99 as f64)] {
                    json.metric(
                        &JsonReport::slug(&[
                            wl_name,
                            backend_name,
                            mode,
                            SERVER_IMPL,
                            &format!("p{depth}"),
                            &format!("t{threads}"),
                            metric,
                        ]),
                        v,
                    );
                }
                handle.shutdown();
            }
        }
    }

    match json.write() {
        Ok(path) => println!("# json: {}", path.display()),
        Err(e) => eprintln!("# json write failed: {e}"),
    }
}
