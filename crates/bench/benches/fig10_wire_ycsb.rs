//! **Figure 10 (wire edition)** — YCSB-A and YCSB-B driven over loopback TCP
//! through `kvserver`, for items in DRAM, in NVM, and fully persistent under
//! Montage. Where `fig10_memcached_ycsb` measures the cache library
//! in-process, this measures the whole serving stack: framing, session
//! leases, socket round-trips. Reports throughput, client-observed latency
//! percentiles, and the PersistCost (flushes / fences per op) that Montage's
//! buffering is designed to shrink.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use kvserver::{KvServer, ServerConfig, WireClient};
use kvstore::{KvBackend, KvStore};
use montage::{Advancer, EpochSys, EsysConfig};
use montage_bench::harness::{env_scale, env_threads};
use montage_bench::report::{self, PersistCost};
use pmem::{LatencyModel, PmemConfig, PmemMode, PmemPool};
use ralloc::Ralloc;
use workloads::ycsb::{YcsbOp, YcsbWorkload};

fn nvm_pool(bytes: usize) -> PmemPool {
    PmemPool::new(PmemConfig {
        size: bytes,
        mode: PmemMode::Fast,
        latency: LatencyModel::OPTANE,
        chaos: Default::default(),
    })
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    // A socket round-trip per op is ~10x the cost of a library call; run a
    // tenth of the in-process op count for comparable wall time.
    let scale = env_scale() / 10.0;
    let records = ((YcsbWorkload::RECORDS as f64 * scale) as u64).max(1_000);
    let total_ops = ((YcsbWorkload::OPS as f64 * scale) as u64).max(5_000);
    // ASCII payload: the text protocol transcodes non-UTF-8 value bytes, and
    // a transcoded reply would make the read path measure extra bytes.
    let value = vec![b'a'; 256];
    report::header(
        "fig10-wire",
        &format!("kvserver YCSB over loopback, {records} records, {total_ops} ops, value 256B"),
        &[
            "workload",
            "backend",
            "threads",
            "ops_per_sec",
            "p50_us",
            "p99_us",
            "flushes_per_op",
            "fences_per_op",
        ],
    );

    for &threads in &env_threads() {
        let pool_bytes = (64 << 20) + records as usize * 1024 * 2;

        for (wl_name, read_permille) in [("YCSB-A", 500u32), ("YCSB-B", 950u32)] {
            for backend_name in ["DRAM (T)", "NVM (T)", "Montage"] {
                // `pool` is the persistence domain whose flush/fence counters
                // we charge to the workload (None for DRAM).
                let (kv, pool, _hold): (Arc<KvStore>, Option<PmemPool>, Option<Advancer>) =
                    match backend_name {
                        "DRAM (T)" => (
                            Arc::new(KvStore::new(KvBackend::Dram, 64, usize::MAX / 2)),
                            None,
                            None,
                        ),
                        "NVM (T)" => {
                            let r = Ralloc::format(nvm_pool(pool_bytes));
                            let pool = r.pool().clone();
                            (
                                Arc::new(KvStore::new(KvBackend::Nvm(r), 64, usize::MAX / 2)),
                                Some(pool),
                                None,
                            )
                        }
                        _ => {
                            let esys = EpochSys::format(
                                nvm_pool(pool_bytes),
                                EsysConfig {
                                    // ids for the preload session + each
                                    // client connection + headroom for churn.
                                    max_threads: threads + 4,
                                    ..Default::default()
                                },
                            );
                            let pool = esys.pool().clone();
                            let adv = Advancer::start(esys.clone());
                            (
                                Arc::new(KvStore::new(
                                    KvBackend::Montage(esys),
                                    64,
                                    usize::MAX / 2,
                                )),
                                Some(pool),
                                Some(adv),
                            )
                        }
                    };

                let handle = KvServer::start(
                    ServerConfig {
                        max_sessions: threads + 2,
                        ..Default::default()
                    },
                    kv,
                )
                .expect("bind loopback");
                let addr = handle.addr();

                // Preload over the wire, outside the timed section.
                {
                    let mut c = WireClient::connect(addr).expect("connect");
                    for i in 1..=records {
                        c.set_noreply(&format!("k{i}"), 0, &value).expect("preload");
                    }
                    // A replied command flushes the noreply stream.
                    let _ = c.get("k1").expect("preload barrier");
                    c.quit().expect("quit");
                }

                let before = pool
                    .as_ref()
                    .map(|p| p.stats().snapshot())
                    .unwrap_or_default();
                let per_thread = total_ops / threads as u64;
                let barrier = Barrier::new(threads + 1);
                let lat_all = parking_lot::Mutex::new(Vec::<u64>::new());
                let start_cell = parking_lot::Mutex::new(None::<Instant>);
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let barrier = &barrier;
                        let value = &value;
                        let lat_all = &lat_all;
                        s.spawn(move || {
                            let mut c = WireClient::connect(addr).expect("connect");
                            let work = YcsbWorkload::with_mix(
                                records,
                                per_thread,
                                0xA11CE + t as u64,
                                read_permille,
                            );
                            let mut lat = Vec::with_capacity(per_thread as usize);
                            barrier.wait();
                            for op in work {
                                let t0 = Instant::now();
                                match op {
                                    YcsbOp::Read(k) => {
                                        c.get(&format!("k{k}")).expect("get");
                                    }
                                    YcsbOp::Update(k) => {
                                        c.set(&format!("k{k}"), 0, value).expect("set");
                                    }
                                }
                                lat.push(t0.elapsed().as_micros() as u64);
                            }
                            lat_all.lock().append(&mut lat);
                            c.quit().expect("quit");
                        });
                    }
                    barrier.wait();
                    *start_cell.lock() = Some(Instant::now());
                });
                let elapsed = start_cell.lock().unwrap().elapsed();
                let after = pool
                    .as_ref()
                    .map(|p| p.stats().snapshot())
                    .unwrap_or_default();

                let ops = per_thread * threads as u64;
                let tput = ops as f64 / elapsed.as_secs_f64();
                let mut lats = std::mem::take(&mut *lat_all.lock());
                lats.sort_unstable();
                let cost = PersistCost::from_snapshots(before, after, ops);
                let [flushes, fences] = cost.fields();
                report::row(&[
                    wl_name.into(),
                    backend_name.into(),
                    threads.to_string(),
                    report::raw(tput),
                    percentile(&lats, 0.50).to_string(),
                    percentile(&lats, 0.99).to_string(),
                    flushes,
                    fences,
                ]);
                handle.shutdown();
            }
        }
    }
}
