//! **Figure 6** — throughput of concurrent queues (1:1 enqueue:dequeue,
//! 1 KB values) across the thread sweep, for every system in the paper's
//! legend.

use montage_bench::harness::{env_seconds, env_threads, run_queue_bench, BenchParams};
use montage_bench::report;
use montage_bench::systems::{build_queue, QueueSystem};

fn main() {
    report::header(
        "fig06",
        &format!(
            "queue throughput, 1:1 enq:deq, value 1KB, {}s/point",
            env_seconds()
        ),
        &["system", "threads", "ops_per_sec"],
    );
    for sys in QueueSystem::ALL {
        for &threads in &env_threads() {
            let p = BenchParams::paper_scaled(threads, 1024);
            let (q, _hold) = build_queue(sys, &p);
            let t = run_queue_bench(q.as_ref(), p);
            report::row(&[sys.label().into(), threads.to_string(), report::raw(t)]);
        }
    }
}
