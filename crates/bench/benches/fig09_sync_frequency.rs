//! **Figure 9** — hashmap throughput (0:1:1) with a `sync` every *x*
//! operations per thread, comparing Montage's two write-back strategies:
//! "Montage (cb)" = 64-entry circular buffers, "Montage (dw)" = write-back
//! at the end of each operation; NVM (T) and Montage (T) as references.
//!
//! The paper's shape: throughput is flat until syncs come more often than
//! about one per 40 ops, and even with a sync after *every* operation
//! Montage beats NVTraverse/MOD/Pronto.

use montage_bench::harness::{env_seconds, env_threads, run_map_with_sync, BenchParams};
use montage_bench::report;
use montage_bench::systems::{build_map, MapSystem};
use workloads::mix::MapMix;

const SYNC_PERIODS: [u64; 6] = [1, 10, 100, 1_000, 10_000, 100_000];

fn main() {
    let threads = *env_threads().iter().max().unwrap();
    report::header(
        "fig09",
        &format!(
            "hashmap 0:1:1 with sync every x ops, {} threads, value 1KB, {}s/point",
            threads,
            env_seconds()
        ),
        &["system", "ops_per_sync", "ops_per_sec"],
    );

    for sys in [
        MapSystem::NvmT,
        MapSystem::MontageT,
        MapSystem::Montage,   // (cb)
        MapSystem::MontageDw, // (dw)
    ] {
        let label = match sys {
            MapSystem::Montage => "Montage (cb)",
            MapSystem::MontageDw => "Montage (dw)",
            s => s.label(),
        };
        for period in SYNC_PERIODS {
            let p = BenchParams::paper_scaled(threads, 1024);
            let (m, hold) = build_map(sys, &p);
            let sync = hold.sync.clone();
            let t = run_map_with_sync(m.as_ref(), MapMix::WRITE_DOMINANT, p, period, || {
                if let Some(s) = &sync {
                    s();
                }
            });
            report::row(&[label.into(), period.to_string(), report::raw(t)]);
        }
    }
}
