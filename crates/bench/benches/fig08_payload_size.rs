//! **Figure 8** — single-threaded throughput as payload size grows from
//! 16 B to 4 KB: (a) queues, (b) hashmap with the 2:1:1 mixed workload.
//! This is where the paper shows the SOFT-vs-Montage crossover: strict
//! durability's cost grows with payload size while Montage's buffering
//! absorbs it.

use montage_bench::harness::{env_seconds, run_map_bench, run_queue_bench, BenchParams};
use montage_bench::report;
use montage_bench::systems::{build_map, build_queue, MapSystem, QueueSystem};
use workloads::mix::MapMix;

const SIZES: [usize; 5] = [16, 64, 256, 1024, 4096];

fn main() {
    report::header(
        "fig08a",
        &format!(
            "single-threaded queues vs payload size, {}s/point",
            env_seconds()
        ),
        &["system", "payload_bytes", "ops_per_sec"],
    );
    for sys in [
        QueueSystem::DramT,
        QueueSystem::NvmT,
        QueueSystem::MontageT,
        QueueSystem::Montage,
        QueueSystem::Friedman,
        QueueSystem::Mod,
        QueueSystem::ProntoSync,
        QueueSystem::Mnemosyne,
    ] {
        for size in SIZES {
            let p = BenchParams::paper_scaled(1, size);
            let (q, _hold) = build_queue(sys, &p);
            let t = run_queue_bench(q.as_ref(), p);
            report::row(&[sys.label().into(), size.to_string(), report::raw(t)]);
        }
    }

    report::header(
        "fig08b",
        &format!(
            "single-threaded hashmap (2:1:1) vs payload size, {}s/point",
            env_seconds()
        ),
        &["system", "payload_bytes", "ops_per_sec"],
    );
    for sys in [
        MapSystem::DramT,
        MapSystem::NvmT,
        MapSystem::MontageT,
        MapSystem::Montage,
        MapSystem::Soft,
        MapSystem::NvTraverse,
        MapSystem::Dali,
        MapSystem::Mod,
        MapSystem::ProntoSync,
        MapSystem::Mnemosyne,
    ] {
        for size in SIZES {
            let p = BenchParams::paper_scaled(1, size);
            let (m, _hold) = build_map(sys, &p);
            let t = run_map_bench(m.as_ref(), MapMix::MIXED, p);
            report::row(&[sys.label().into(), size.to_string(), report::raw(t)]);
        }
    }
}
