//! **Figure 5** — design-space exploration on the 1-thread queue, same grid
//! as Fig. 4.

use std::time::Duration;

use montage::{EsysConfig, FreeStrategy, PersistStrategy};
use montage_bench::harness::{env_seconds, run_queue_bench, BenchParams};
use montage_bench::report;
use montage_bench::systems::montage_queue_with;

fn point(cfg: EsysConfig, p: BenchParams) -> f64 {
    let (q, _hold) = montage_queue_with(cfg, &p);
    run_queue_bench(q.as_ref(), p)
}

fn main() {
    let p = BenchParams::paper_scaled(1, 1024);
    report::header(
        "fig05",
        &format!(
            "queue design exploration, 1 thread, value 1KB, {}s/point",
            env_seconds()
        ),
        &["config", "epoch_length", "ops_per_sec"],
    );

    let epochs = [
        Duration::from_micros(10),
        Duration::from_micros(100),
        Duration::from_millis(1),
        Duration::from_millis(10),
        Duration::from_millis(100),
        Duration::from_secs(1),
    ];

    for buf in [2usize, 16, 64, 256] {
        for epoch in epochs {
            let cfg = EsysConfig {
                persist: PersistStrategy::Buffered(buf),
                epoch_length: epoch,
                ..Default::default()
            };
            let t = point(cfg, p);
            report::row(&[format!("Buf={buf}"), format!("{epoch:?}"), report::raw(t)]);
        }
    }

    for epoch in epochs {
        let cfg = EsysConfig {
            persist: PersistStrategy::Buffered(64),
            free: FreeStrategy::WorkerLocal,
            epoch_length: epoch,
            ..Default::default()
        };
        let t = point(cfg, p);
        report::row(&[
            "Buf=64+LocalFree".into(),
            format!("{epoch:?}"),
            report::raw(t),
        ]);
    }

    let t = point(
        EsysConfig {
            persist: PersistStrategy::DirWB,
            ..Default::default()
        },
        p,
    );
    report::row(&["DirWB".into(), "-".into(), report::raw(t)]);

    let t = point(EsysConfig::transient(), p);
    report::row(&["Montage(T)".into(), "-".into(), report::raw(t)]);

    let t = point(
        EsysConfig {
            persist: PersistStrategy::Buffered(64),
            free: FreeStrategy::Direct,
            ..Default::default()
        },
        p,
    );
    report::row(&["Buf=64+DirFree".into(), "-".into(), report::raw(t)]);
}
