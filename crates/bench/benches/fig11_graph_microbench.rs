//! **Figure 11** — general-graph microbenchmark: a mix of AddEdge /
//! RemoveEdge / AddVertex / RemoveVertex with
//! (edge ops):(vertex ops) = 4:1 (left panel) and 499:1 (right panel);
//! 10⁶-capacity (scaled), half preloaded, average degree 32. AddVertex
//! connects the new vertex to 32 others; RemoveVertex clears all adjacent
//! edges. Systems: DRAM (T), Montage (T), Montage.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use baselines::transient::Arena;
use baselines::TransientGraph;
use montage::{Advancer, EpochSys, EsysConfig, ThreadId};
use montage_bench::harness::{env_scale, env_seconds, env_threads};
use montage_bench::report;
use montage_ds::{tags, MontageGraph};
use pmem::{LatencyModel, PmemConfig, PmemMode, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const DEGREE: u64 = 32;
const ATTR: &[u8] = &[7u8; 64];

trait BenchGraph: Send + Sync {
    fn add_vertex(&self, tid: usize, vid: u64) -> bool;
    fn remove_vertex(&self, tid: usize, vid: u64) -> bool;
    fn add_edge(&self, tid: usize, a: u64, b: u64) -> bool;
    fn remove_edge(&self, tid: usize, a: u64, b: u64) -> bool;
    fn has_vertex(&self, vid: u64) -> bool;
}

impl BenchGraph for TransientGraph {
    fn add_vertex(&self, _t: usize, vid: u64) -> bool {
        TransientGraph::add_vertex(self, vid, ATTR)
    }
    fn remove_vertex(&self, _t: usize, vid: u64) -> bool {
        TransientGraph::remove_vertex(self, vid)
    }
    fn add_edge(&self, _t: usize, a: u64, b: u64) -> bool {
        TransientGraph::add_edge(self, a, b, ATTR)
    }
    fn remove_edge(&self, _t: usize, a: u64, b: u64) -> bool {
        TransientGraph::remove_edge(self, a, b)
    }
    fn has_vertex(&self, vid: u64) -> bool {
        TransientGraph::has_vertex(self, vid)
    }
}

impl BenchGraph for MontageGraph {
    fn add_vertex(&self, t: usize, vid: u64) -> bool {
        MontageGraph::add_vertex(self, ThreadId(t), vid, ATTR)
    }
    fn remove_vertex(&self, t: usize, vid: u64) -> bool {
        MontageGraph::remove_vertex(self, ThreadId(t), vid)
    }
    fn add_edge(&self, t: usize, a: u64, b: u64) -> bool {
        MontageGraph::add_edge(self, ThreadId(t), a, b, ATTR)
    }
    fn remove_edge(&self, t: usize, a: u64, b: u64) -> bool {
        MontageGraph::remove_edge(self, ThreadId(t), a, b)
    }
    fn has_vertex(&self, vid: u64) -> bool {
        MontageGraph::has_vertex(self, vid)
    }
}

fn preload(g: &dyn BenchGraph, capacity: u64, rng: &mut SmallRng) {
    for v in 0..capacity / 2 {
        g.add_vertex(0, v);
    }
    for v in 0..capacity / 2 {
        for _ in 0..DEGREE / 2 {
            let o = rng.gen_range(0..capacity / 2);
            g.add_edge(0, v, o);
        }
    }
}

/// Runs the op mix; returns ops/s. `edge_ratio` is the edge:vertex op ratio
/// (4 or 499).
fn run(g: &dyn BenchGraph, threads: usize, capacity: u64, edge_ratio: u32, dur: Duration) -> f64 {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let stop = &stop;
            let total = &total;
            let barrier = &barrier;
            let g = &g;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xF16 + t as u64);
                let mut ops = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    if rng.gen_range(0..=edge_ratio) != 0 {
                        // Edge op: 50/50 add/remove over random pairs.
                        let a = rng.gen_range(0..capacity);
                        let b = rng.gen_range(0..capacity);
                        if rng.gen() {
                            g.add_edge(t, a, b);
                        } else {
                            g.remove_edge(t, a, b);
                        }
                    } else {
                        // Vertex op: keep the population statistically stable.
                        let v = rng.gen_range(0..capacity);
                        if g.has_vertex(v) {
                            g.remove_vertex(t, v);
                        } else {
                            g.add_vertex(t, v);
                            for _ in 0..DEGREE {
                                let o = rng.gen_range(0..capacity);
                                g.add_edge(t, v, o);
                            }
                        }
                    }
                    ops += 1;
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / dur.as_secs_f64()
}

fn main() {
    let scale = env_scale();
    let capacity = ((1_000_000f64 * scale) as u64).max(4_000);
    let dur = Duration::from_secs_f64(env_seconds());
    let pool_bytes = (64 << 20) + capacity as usize * (DEGREE as usize) * 256;

    report::header(
        "fig11",
        &format!(
            "graph microbenchmark, capacity {capacity}, degree {DEGREE}, {}s/point",
            env_seconds()
        ),
        &["system", "edge_to_vertex_ratio", "threads", "ops_per_sec"],
    );

    for ratio in [4u32, 499] {
        for &threads in &env_threads() {
            // DRAM (T)
            {
                let g = TransientGraph::new(Arena::Dram, capacity as usize);
                preload(&g, capacity, &mut SmallRng::seed_from_u64(1));
                let t = run(&g, threads, capacity, ratio, dur);
                report::row(&[
                    "DRAM (T)".into(),
                    ratio.to_string(),
                    threads.to_string(),
                    report::raw(t),
                ]);
            }
            // Montage (T) and Montage
            for (label, cfg, advance) in [
                ("Montage (T)", EsysConfig::transient(), false),
                ("Montage", EsysConfig::default(), true),
            ] {
                let esys = EpochSys::format(
                    PmemPool::new(PmemConfig {
                        size: pool_bytes,
                        mode: PmemMode::Fast,
                        latency: LatencyModel::OPTANE,
                        chaos: Default::default(),
                    }),
                    EsysConfig {
                        max_threads: threads + 2,
                        ..cfg
                    },
                );
                for _ in 0..threads + 1 {
                    esys.register_thread();
                }
                let _adv = advance.then(|| Advancer::start(esys.clone()));
                let g = MontageGraph::new(
                    esys,
                    tags::GRAPH_VERTEX,
                    tags::GRAPH_EDGE,
                    capacity as usize,
                );
                preload(&g, capacity, &mut SmallRng::seed_from_u64(1));
                let t = run(&g, threads, capacity, ratio, dur);
                report::row(&[
                    label.into(),
                    ratio.to_string(),
                    threads.to_string(),
                    report::raw(t),
                ]);
            }
        }
    }
}
