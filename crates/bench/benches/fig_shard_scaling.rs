//! **Shard scaling** — YCSB-A driven over loopback TCP against the sharded
//! Montage server, sweeping the shard count at a fixed client count. The
//! single-pool store serializes every periodic `sync` behind one epoch
//! clock: a two-epoch advance quiesces *all* in-flight ops and drains
//! *all* write-back rings. Sharding splits the store into independent
//! persistence domains, so the same sync policy touches only the mutated
//! key's shard while the other shards keep streaming — that is the scaling
//! this figure measures (the paper's single-epoch design, Sec. 3, has no
//! counterpart; see DESIGN.md).
//!
//! The pmem latency model charges media-drain time to a *per-pool* device
//! queue (see `LatencyModel` docs): one pool means one DIMM's write
//! bandwidth shared by every client, so the 1-shard store is device-bound
//! exactly as the real single-pool Montage server is; each extra shard adds
//! an independent device.
//!
//! Alongside the CSV, the run writes `BENCH_fig_shard_scaling.json` (or
//! `$BENCH_JSON_PATH`) for `xtask bench-diff`: the manifest gates both the
//! 4-shard throughput headline and its tail latency, so the detectable-ops
//! descriptor write on the mutation path is regression-gated here.
//!
//! Knobs: `MONTAGE_BENCH_CLIENTS` (default 8), `MONTAGE_BENCH_SYNC_EVERY`
//! (default 1, i.e. every acked mutation is durable before its reply — the
//! strongest service level, and the one where the sync path is the
//! bottleneck under test), `MONTAGE_BENCH_SESSIONS` (default 1 — every
//! client attaches a durable session and stamps mutations with request
//! ids, so each update also writes its 96-byte descriptor; set 0 for the
//! pre-dedupe wire protocol),
//! `MONTAGE_BENCH_VALUE` (bytes per value, default 4096 — large enough
//! that media drain, not the wire, dominates), `MONTAGE_BENCH_REPEATS`
//! (default 3 — each row reports the median-throughput repetition),
//! `MONTAGE_BENCH_DRAM=1` (free latency model, a pure CPU-cost baseline
//! for calibrating how device-bound the default run is), and
//! `MONTAGE_BENCH_SCALE` as everywhere else.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use kvserver::{KvServer, ServerConfig, WireClient};
use kvstore::ShardedKvStore;
use montage::{Advancer, EsysConfig};
use montage_bench::harness::env_scale;
use montage_bench::report::{self, JsonReport, PersistCost};
use pmem::{LatencyModel, PmemConfig, PmemMode};
use workloads::ycsb::{YcsbOp, YcsbWorkload};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Knobs {
    records: u64,
    total_ops: u64,
    clients: usize,
    sync_every: u64,
    sessions: bool,
    value: Vec<u8>,
    lat_model: LatencyModel,
}

struct RunResult {
    tput: f64,
    lats: Vec<u64>,
    cost: PersistCost,
}

/// One full measurement at `n_shards`: fresh store, wire preload, timed
/// pipelined YCSB-A from `clients` connections.
fn run_once(n_shards: usize, k: &Knobs) -> RunResult {
    const PIPELINE: usize = 32;
    // Same total NVM budget regardless of shard count.
    let total_bytes = (128 << 20) + k.records as usize * (k.value.len() + 256) * 4;
    let pool_cfg = PmemConfig {
        size: total_bytes / n_shards,
        mode: PmemMode::Fast,
        latency: k.lat_model,
        chaos: Default::default(),
    };
    let store = ShardedKvStore::format(
        n_shards,
        pool_cfg,
        EsysConfig {
            // ids per *shard*: preload + every client may touch it.
            max_threads: k.clients + 4,
            ..Default::default()
        },
        64,
        usize::MAX / 2,
    );
    let _adv = Advancer::start_group(
        (0..n_shards)
            .map(|s| store.shard(s).esys().expect("montage shard").clone())
            .collect(),
    );

    let handle = KvServer::start_sharded(
        ServerConfig {
            max_conns: k.clients + 2,
            sync_every: Some(k.sync_every),
            ..Default::default()
        },
        Arc::clone(&store),
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Preload over the wire, outside the timed section.
    {
        let mut c = WireClient::connect(addr).expect("connect");
        for i in 1..=k.records {
            c.set_noreply(&format!("k{i}"), 0, &k.value)
                .expect("preload");
        }
        let _ = c.get("k1").expect("preload barrier");
        c.quit().expect("quit");
    }

    let before = store.pool_stats_merged().unwrap_or_default();
    let per_thread = k.total_ops / k.clients as u64;
    let barrier = Barrier::new(k.clients + 1);
    let lat_all = parking_lot::Mutex::new(Vec::<u64>::new());
    let start_cell = parking_lot::Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..k.clients {
            let barrier = &barrier;
            let value = &k.value;
            let lat_all = &lat_all;
            let records = k.records;
            let sessions = k.sessions;
            s.spawn(move || {
                let mut c = WireClient::connect(addr).expect("connect");
                if sessions {
                    // Durable client identity: every update below carries a
                    // request id and writes a descriptor on its key's shard.
                    c.session(t as u64 + 1).expect("session");
                }
                let ops: Vec<YcsbOp> =
                    YcsbWorkload::with_mix(records, per_thread, 0x5CA1E + t as u64, 500).collect();
                // Serialize every request packet before the clock starts
                // (wrk-style): the timed loop is pure send + reply-drain,
                // so client-side formatting never pollutes the server
                // measurement. Replies are drained by counting their
                // terminators: gets end in "END\r\n" and sets answer
                // "STORED\r\n" — both end with "D\r\n", which appears
                // nowhere else in our replies (values are all 'a's).
                let mut rid = 0u64;
                let batches: Vec<(Vec<u8>, usize)> = ops
                    .chunks(PIPELINE)
                    .map(|batch| {
                        let mut packet = Vec::with_capacity(PIPELINE * 48);
                        for op in batch {
                            match op {
                                YcsbOp::Read(k) => {
                                    packet.extend_from_slice(format!("get k{k}\r\n").as_bytes());
                                }
                                YcsbOp::Update(k) => {
                                    // rids are client-global and strictly
                                    // increasing, so each shard sees a
                                    // strictly increasing subsequence —
                                    // always the apply-fresh path.
                                    let trailer = if sessions {
                                        rid += 1;
                                        format!(" rid={rid}")
                                    } else {
                                        String::new()
                                    };
                                    packet.extend_from_slice(
                                        format!("set k{k} 0 0 {}{trailer}\r\n", value.len())
                                            .as_bytes(),
                                    );
                                    packet.extend_from_slice(value);
                                    packet.extend_from_slice(b"\r\n");
                                }
                            }
                        }
                        (packet, batch.len())
                    })
                    .collect();
                let mut lat = Vec::with_capacity(batches.len());
                let mut scratch = vec![0u8; 64 << 10];
                barrier.wait();
                // Pipelined: one packet of PIPELINE commands, then the
                // replies drained in bulk. This keeps every connection's
                // server thread busy concurrently, which is what makes
                // per-pool device contention visible.
                for (packet, n_replies) in &batches {
                    let t0 = Instant::now();
                    c.send_raw(packet).expect("send batch");
                    let mut seen = 0usize;
                    let mut carry = 0usize; // bytes held over from the last read
                    while seen < *n_replies {
                        let n = c.read_some(&mut scratch[carry..]).expect("drain replies");
                        assert!(n > 0, "server hung up mid-batch");
                        let avail = carry + n;
                        seen += scratch[..avail]
                            .windows(3)
                            .filter(|w| *w == b"D\r\n")
                            .count();
                        // Keep the last 2 bytes so a marker split across
                        // reads is still seen by the next scan (counting
                        // it twice is impossible: a window is counted
                        // only once the full 3 bytes are present).
                        carry = avail.min(2);
                        let keep = avail - carry;
                        scratch.copy_within(keep..avail, 0);
                    }
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                lat_all.lock().append(&mut lat);
                c.quit().expect("quit");
            });
        }
        barrier.wait();
        *start_cell.lock() = Some(Instant::now());
    });
    let elapsed = start_cell.lock().unwrap().elapsed();
    let after = store.pool_stats_merged().unwrap_or_default();
    handle.shutdown();

    let ops = per_thread * k.clients as u64;
    let mut lats = std::mem::take(&mut *lat_all.lock());
    lats.sort_unstable();
    RunResult {
        tput: ops as f64 / elapsed.as_secs_f64(),
        lats,
        cost: PersistCost::from_snapshots(before, after, ops),
    }
}

fn main() {
    let scale = env_scale() / 10.0;
    let knobs = Knobs {
        records: ((YcsbWorkload::RECORDS as f64 * scale) as u64).max(1_000),
        total_ops: ((YcsbWorkload::OPS as f64 * scale) as u64).max(5_000),
        clients: env_usize("MONTAGE_BENCH_CLIENTS", 8),
        sync_every: env_usize("MONTAGE_BENCH_SYNC_EVERY", 1) as u64,
        sessions: env_usize("MONTAGE_BENCH_SESSIONS", 1) != 0,
        value: vec![b'a'; env_usize("MONTAGE_BENCH_VALUE", 4096)],
        lat_model: if std::env::var("MONTAGE_BENCH_DRAM").is_ok() {
            LatencyModel::DRAM
        } else {
            LatencyModel::OPTANE
        },
    };
    let repeats = env_usize("MONTAGE_BENCH_REPEATS", 3).max(1);

    report::header(
        "fig-shard-scaling",
        &format!(
            "sharded kvserver, YCSB-A over loopback, {} records, {} ops, {} clients, \
             {}B values, sync every {} mutations, sessions={}, median of {repeats} runs",
            knobs.records,
            knobs.total_ops,
            knobs.clients,
            knobs.value.len(),
            knobs.sync_every,
            knobs.sessions
        ),
        &[
            "shards",
            "ops_per_sec",
            "speedup",
            "batch_p50_us",
            "batch_p99_us",
            "batch_p999_us",
            "flushes_per_op",
            "fences_per_op",
        ],
    );

    let mut json = JsonReport::new("fig_shard_scaling");
    json.field("clients", knobs.clients as u64);
    json.field("sync_every", knobs.sync_every);
    json.field("sessions", if knobs.sessions { 1u64 } else { 0 });
    json.field("value_bytes", knobs.value.len() as u64);
    json.headline(&JsonReport::slug(&["shards", "4", "ops_per_sec"]));

    let mut base_tput = None::<f64>;
    for n_shards in [1usize, 2, 4, 8] {
        // Scheduler noise on a shared box swings single runs by ±15%; the
        // median repetition is the stable figure.
        let mut runs: Vec<RunResult> = (0..repeats).map(|_| run_once(n_shards, &knobs)).collect();
        runs.sort_by(|a, b| a.tput.total_cmp(&b.tput));
        let run = runs.swap_remove(runs.len() / 2);

        let speedup = run.tput / *base_tput.get_or_insert(run.tput);
        let p50 = percentile(&run.lats, 0.50);
        let p99 = percentile(&run.lats, 0.99);
        let p999 = percentile(&run.lats, 0.999);
        let [flushes, fences] = run.cost.fields();
        report::row(&[
            n_shards.to_string(),
            report::raw(run.tput),
            format!("{speedup:.2}"),
            p50.to_string(),
            p99.to_string(),
            p999.to_string(),
            flushes.clone(),
            fences.clone(),
        ]);
        json.row(vec![
            ("shards".to_string(), (n_shards as u64).into()),
            ("ops_per_sec".to_string(), run.tput.into()),
            ("speedup".to_string(), speedup.into()),
            ("batch_p50_us".to_string(), p50.into()),
            ("batch_p99_us".to_string(), p99.into()),
            ("batch_p999_us".to_string(), p999.into()),
            ("flushes_per_op".to_string(), run.cost.flushes_per_op.into()),
            ("fences_per_op".to_string(), run.cost.fences_per_op.into()),
        ]);
        let shards = n_shards.to_string();
        json.metric(
            &JsonReport::slug(&["shards", &shards, "ops_per_sec"]),
            run.tput,
        );
        json.metric(
            &JsonReport::slug(&["shards", &shards, "p99_us"]),
            p99 as f64,
        );
        // The p999 panel is the nonblocking-advance story: the tail a
        // single straggling thread used to put on *everyone's* sync.
        json.metric(
            &JsonReport::slug(&["shards", &shards, "p999_us"]),
            p999 as f64,
        );
    }
    match json.write() {
        Ok(path) => println!("# json: {}", path.display()),
        Err(e) => eprintln!("# json write failed: {e}"),
    }
}
