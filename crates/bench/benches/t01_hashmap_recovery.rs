//! **Sec. 6.4 recovery table** — hashmap recovery time vs data-set size and
//! recovery-thread count. The paper initializes 2–64 M 1 KB elements
//! (1–32 GB) and recovers with 1 or 8 threads; we sweep scaled sizes and
//! print the same table rows (size, threads, seconds), expecting the same
//! shape: time roughly linear in data size, with parallel speedup.

use baselines::api::make_key;
use montage::{EpochSys, EsysConfig, ThreadId};
use montage_bench::harness::env_scale;
use montage_bench::report;
use montage_ds::{tags, MontageHashMap};
use pmem::{LatencyModel, PmemConfig, PmemMode, PmemPool};
use std::time::Instant;

fn main() {
    let scale = env_scale();
    // Paper: 2M, 8M, 32M, 64M elements; here scaled down.
    let sizes: Vec<u64> = [2_000_000u64, 4_000_000, 8_000_000]
        .iter()
        .map(|&n| ((n as f64 * scale) as u64).max(10_000))
        .collect();

    report::header(
        "t01",
        "hashmap recovery time, 1 KB elements",
        &["elements", "payload_mb", "recovery_threads", "seconds"],
    );

    for &n in &sizes {
        let pool_bytes = (128 << 20) + n as usize * 1400;
        for k in [1usize, 8] {
            let esys = EpochSys::format(
                PmemPool::new(PmemConfig {
                    size: pool_bytes,
                    mode: PmemMode::Strict,
                    latency: LatencyModel::OPTANE,
                    chaos: Default::default(),
                }),
                EsysConfig::default(),
            );
            let map = MontageHashMap::<[u8; 32]>::new(esys.clone(), tags::HASHMAP, n as usize);
            let tid = esys.register_thread();
            let value = vec![0x5Au8; 1024];
            for i in 0..n {
                map.insert(ThreadId(tid.0), make_key(i), &value);
                // Keep write-back buffers from doing all the flushing at one
                // giant final sync.
                if i % 100_000 == 0 {
                    esys.advance_epoch();
                }
            }
            esys.sync();
            let crashed = esys.pool().crash();
            drop(map);

            let start = Instant::now();
            let rec = montage::recovery::recover(crashed, EsysConfig::default(), k);
            let m2 = MontageHashMap::<[u8; 32]>::recover(
                rec.esys.clone(),
                tags::HASHMAP,
                n as usize,
                &rec,
            );
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(m2.len() as u64, n, "recovery lost elements");
            report::row(&[
                n.to_string(),
                (n / 1024).to_string(),
                k.to_string(),
                format!("{secs:.3}"),
            ]);
        }
    }
}
