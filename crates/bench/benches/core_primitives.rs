//! Criterion micro-benchmarks of the core primitives: allocator fast path,
//! `BEGIN_OP`/`END_OP`, `PNEW`, in-place `set`, `CAS_verify`, epoch advance,
//! and the pmem flush path. These quantify the constants behind the figure
//! harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use montage::{EpochSys, EsysConfig, VerifyCell};
use pmem::{PmemConfig, PmemPool, POff};
use ralloc::Ralloc;
use std::time::Duration;

fn bench_ralloc(c: &mut Criterion) {
    let r = Ralloc::format(PmemPool::new(PmemConfig {
        size: 256 << 20,
        ..Default::default()
    }));
    c.bench_function("ralloc_alloc_dealloc_64B", |b| {
        b.iter(|| {
            let off = r.alloc(64);
            r.dealloc(off);
            off
        })
    });
}

fn bench_pmem(c: &mut Criterion) {
    let pool = PmemPool::new(PmemConfig::default());
    c.bench_function("pmem_clwb_fence_1line", |b| {
        b.iter(|| {
            pool.clwb(POff::new(4096));
            pool.sfence();
        })
    });
}

fn bench_esys(c: &mut Criterion) {
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig {
            size: 512 << 20,
            ..Default::default()
        }),
        EsysConfig::default(),
    );
    let tid = esys.register_thread();

    c.bench_function("begin_end_op", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            drop(g);
        })
    });

    c.bench_function("pnew_pdelete_64B", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            let h = esys.pnew(&g, 0, &[0u8; 64]);
            esys.pdelete(&g, h).unwrap();
        })
    });

    let g = esys.begin_op(tid);
    let h = esys.pnew(&g, 0, &0u64);
    drop(g);
    c.bench_function("set_in_place_u64", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            let _ = esys.set(&g, h, |v| *v = v.wrapping_add(1)).unwrap();
        })
    });

    let cell = VerifyCell::new(0);
    c.bench_function("cas_verify", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            let cur = cell.load(&esys);
            let _ = cell.cas_verify(&esys, &g, cur, cur + 1);
        })
    });

    c.bench_function("advance_epoch", |b| b.iter(|| esys.advance_epoch()));

    c.bench_function("sync", |b| b.iter(|| esys.sync()));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    targets = bench_ralloc, bench_pmem, bench_esys
}
criterion_main!(benches);
