//! Criterion micro-benchmarks of the core primitives: allocator fast path,
//! `BEGIN_OP`/`END_OP`, `PNEW`, in-place `set`, `CAS_verify`, epoch advance,
//! and the pmem flush path. These quantify the constants behind the figure
//! harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use montage::{EpochSys, EsysConfig, VerifyCell};
use montage_bench::report::JsonReport;
use montage_ds::{tags, MontageHashMap};
use pmem::{ChaosConfig, POff, PmemConfig, PmemPool};
use ralloc::Ralloc;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench_ralloc(c: &mut Criterion) {
    let r = Ralloc::format(PmemPool::new(PmemConfig {
        size: 256 << 20,
        ..Default::default()
    }));
    c.bench_function("ralloc_alloc_dealloc_64B", |b| {
        b.iter(|| {
            let off = r.alloc(64);
            r.dealloc(off);
            off
        })
    });
}

fn bench_pmem(c: &mut Criterion) {
    let pool = PmemPool::new(PmemConfig::default());
    c.bench_function("pmem_clwb_fence_1line", |b| {
        b.iter(|| {
            pool.clwb(POff::new(4096));
            pool.sfence();
        })
    });
}

fn bench_esys(c: &mut Criterion) {
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig {
            size: 512 << 20,
            ..Default::default()
        }),
        EsysConfig::default(),
    );
    let tid = esys.register_thread();

    c.bench_function("begin_end_op", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            drop(g);
        })
    });

    c.bench_function("pnew_pdelete_64B", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            let h = esys.pnew(&g, 0, &[0u8; 64]);
            esys.pdelete(&g, h).unwrap();
        })
    });

    let g = esys.begin_op(tid);
    let h = esys.pnew(&g, 0, &0u64);
    drop(g);
    c.bench_function("set_in_place_u64", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            let _ = esys.set(&g, h, |v| *v = v.wrapping_add(1)).unwrap();
        })
    });

    let cell = VerifyCell::new(0);
    c.bench_function("cas_verify", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            let cur = cell.load(&esys);
            let _ = cell.cas_verify(&esys, &g, cur, cur + 1);
        })
    });

    c.bench_function("advance_epoch", |b| b.iter(|| esys.advance_epoch()));

    c.bench_function("sync", |b| b.iter(|| esys.sync()));
}

fn bench_coalescing(c: &mut Criterion) {
    use std::sync::atomic::Ordering;

    let esys = EpochSys::format(
        PmemPool::new(PmemConfig {
            size: 512 << 20,
            ..Default::default()
        }),
        EsysConfig::buffered(64),
    );
    let tid = esys.register_thread();
    let h = {
        let g = esys.begin_op(tid);
        esys.pnew(&g, 0, &0u64)
    };

    // Timed: repeated in-place sets of one hot payload inside an op. After
    // the first set of the epoch, every push hits the coalescing table and
    // skips the ring entirely.
    c.bench_function("set_hot_payload_coalesced_u64", |b| {
        let g = esys.begin_op(tid);
        let mut hh = h;
        b.iter(|| {
            hh = esys.set(&g, hh, |v| *v = v.wrapping_add(1)).unwrap();
        });
    });

    // Counted (not timed): 8 sets of one payload per epoch, 100 epochs.
    // `flushes_coalesced` is exact, so `clwbs + saved` is precisely what the
    // uncoalesced implementation would have issued.
    let stats0 = esys.pool().stats().snapshot();
    let saved0 = esys.stats().flushes_coalesced.load(Ordering::Relaxed);
    let mut hh = h;
    for _ in 0..100 {
        {
            let g = esys.begin_op(tid);
            for _ in 0..8 {
                hh = esys.set(&g, hh, |v| *v = v.wrapping_add(1)).unwrap();
            }
        }
        esys.advance_epoch();
    }
    esys.sync();
    let stats1 = esys.pool().stats().snapshot();
    let saved = esys.stats().flushes_coalesced.load(Ordering::Relaxed) - saved0;
    let clwbs = stats1.clwbs - stats0.clwbs;
    println!(
        "flush_coalescing_8x_sets_100_epochs      clwbs: {clwbs} \
         (uncoalesced: {}, saved: {saved}, fences: {})",
        clwbs + saved,
        stats1.sfences - stats0.sfences
    );
    COALESCING.with(|cell| *cell.borrow_mut() = Some((clwbs, saved)));
}

thread_local! {
    /// Counted coalescing result handed from `bench_coalescing` to the
    /// report writer (criterion shim targets run in order on one thread).
    static COALESCING: std::cell::RefCell<Option<(u64, u64)>> =
        const { std::cell::RefCell::new(None) };
}

/// Mirrors `MontageHashMap::index` so peer keys steer clear of the parked
/// victim's locked bucket.
fn bucket_of(key: &[u8; 32], nbuckets: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % nbuckets
}

/// Sync latencies (µs) from one thread while a victim stays parked mid-put
/// on the same map: the stall-injection figure. `grace` is the advance's
/// per-slot grace window — 64 is the helping path; a multi-million spin
/// window emulates the old blocking advancer (it waits the full window out
/// on the victim's slot at *every* epoch boundary).
fn stalled_sync_lats(grace: usize, syncs: usize) -> Vec<u64> {
    const NBUCKETS: usize = 64;
    let mut vk = [0u8; 32];
    vk[0] = 0xAA;
    let setup = |chaos: ChaosConfig| {
        let mut cfg = PmemConfig::strict_for_test(64 << 20);
        cfg.chaos = chaos;
        let s = EpochSys::format(
            PmemPool::new(cfg),
            EsysConfig {
                advance_grace_spins: grace,
                ..Default::default()
            },
        );
        let map = Arc::new(MontageHashMap::<[u8; 32]>::new(
            s.clone(),
            tags::HASHMAP,
            NBUCKETS,
        ));
        (s, map)
    };

    // Counting pass: measure the victim put's persistence-event span so the
    // live pass can park it mid-operation.
    let (e_setup, e_put) = {
        let (s, map) = setup(ChaosConfig {
            crash_at_event: Some(u64::MAX),
            ..Default::default()
        });
        let tid = s.register_thread();
        let e_setup = s.pool().persistence_events();
        map.put(tid, vk, b"victim-value");
        (e_setup, s.pool().persistence_events())
    };
    assert!(e_put > e_setup, "a put must charge persistence events");
    let stall_at = e_setup + (e_put - e_setup).div_ceil(2);

    let (s, map) = setup(ChaosConfig {
        stall_at_event: Some(stall_at),
        ..Default::default()
    });
    let victim = {
        let (s, map) = (s.clone(), map.clone());
        std::thread::spawn(move || {
            let tid = s.register_thread();
            map.put(tid, vk, b"victim-value");
        })
    };
    assert!(
        s.pool().await_stalled(Duration::from_secs(30)),
        "victim never parked"
    );

    let tid = s.register_thread();
    let vb = bucket_of(&vk, NBUCKETS);
    let mut lats = Vec::with_capacity(syncs);
    for i in 0..syncs {
        let mut k = [0u8; 32];
        k[0] = 1;
        k[1] = (i & 0xff) as u8;
        k[2] = (i >> 8) as u8;
        while bucket_of(&k, NBUCKETS) == vb {
            k[3] += 1;
        }
        map.put(tid, k, b"peer-value");
        let t0 = Instant::now();
        s.sync();
        lats.push(t0.elapsed().as_micros() as u64);
    }
    s.pool().release_stalled();
    victim.join().unwrap();
    lats.sort_unstable();
    lats
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Emits `BENCH_core_primitives.json`: the coalescing counts (PR 1's flush
/// elimination, gated via the bench-diff manifest) plus the stall-injection
/// sync tail — p50/p99 of `sync` while one thread is parked mid-op, under
/// the helping advance vs. a blocking-advancer emulation.
fn report_core_primitives(_c: &mut Criterion) {
    let helping = stalled_sync_lats(64, 300);
    let blocking = stalled_sync_lats(2_000_000, 40);
    let (h_p50, h_p99) = (percentile(&helping, 0.50), percentile(&helping, 0.99));
    let (b_p50, b_p99) = (percentile(&blocking, 0.50), percentile(&blocking, 0.99));
    println!(
        "stalled_sync helping   p50: {h_p50}us  p99: {h_p99}us   ({} syncs, victim parked)",
        helping.len()
    );
    println!(
        "stalled_sync blocking  p50: {b_p50}us  p99: {b_p99}us   ({} syncs, victim parked)",
        blocking.len()
    );

    let mut json = JsonReport::new("core_primitives");
    json.headline("coalescing_clwbs_per_100_epochs");
    if let Some((clwbs, saved)) = COALESCING.with(|cell| *cell.borrow()) {
        json.metric("coalescing_clwbs_per_100_epochs", clwbs as f64);
        json.metric(
            "coalescing_elimination_pct",
            100.0 * saved as f64 / (clwbs + saved).max(1) as f64,
        );
    }
    json.metric("stalled_sync_helping_p50_us", h_p50 as f64);
    json.metric("stalled_sync_helping_p99_us", h_p99 as f64);
    json.metric("stalled_sync_blocking_p50_us", b_p50 as f64);
    json.metric("stalled_sync_blocking_p99_us", b_p99 as f64);
    match json.write() {
        Ok(path) => println!("# json: {}", path.display()),
        Err(e) => eprintln!("# json write failed: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    targets = bench_ralloc, bench_pmem, bench_esys, bench_coalescing, report_core_primitives
}
criterion_main!(benches);
