//! Criterion micro-benchmarks of the core primitives: allocator fast path,
//! `BEGIN_OP`/`END_OP`, `PNEW`, in-place `set`, `CAS_verify`, epoch advance,
//! and the pmem flush path. These quantify the constants behind the figure
//! harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use montage::{EpochSys, EsysConfig, VerifyCell};
use pmem::{POff, PmemConfig, PmemPool};
use ralloc::Ralloc;
use std::time::Duration;

fn bench_ralloc(c: &mut Criterion) {
    let r = Ralloc::format(PmemPool::new(PmemConfig {
        size: 256 << 20,
        ..Default::default()
    }));
    c.bench_function("ralloc_alloc_dealloc_64B", |b| {
        b.iter(|| {
            let off = r.alloc(64);
            r.dealloc(off);
            off
        })
    });
}

fn bench_pmem(c: &mut Criterion) {
    let pool = PmemPool::new(PmemConfig::default());
    c.bench_function("pmem_clwb_fence_1line", |b| {
        b.iter(|| {
            pool.clwb(POff::new(4096));
            pool.sfence();
        })
    });
}

fn bench_esys(c: &mut Criterion) {
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig {
            size: 512 << 20,
            ..Default::default()
        }),
        EsysConfig::default(),
    );
    let tid = esys.register_thread();

    c.bench_function("begin_end_op", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            drop(g);
        })
    });

    c.bench_function("pnew_pdelete_64B", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            let h = esys.pnew(&g, 0, &[0u8; 64]);
            esys.pdelete(&g, h).unwrap();
        })
    });

    let g = esys.begin_op(tid);
    let h = esys.pnew(&g, 0, &0u64);
    drop(g);
    c.bench_function("set_in_place_u64", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            let _ = esys.set(&g, h, |v| *v = v.wrapping_add(1)).unwrap();
        })
    });

    let cell = VerifyCell::new(0);
    c.bench_function("cas_verify", |b| {
        b.iter(|| {
            let g = esys.begin_op(tid);
            let cur = cell.load(&esys);
            let _ = cell.cas_verify(&esys, &g, cur, cur + 1);
        })
    });

    c.bench_function("advance_epoch", |b| b.iter(|| esys.advance_epoch()));

    c.bench_function("sync", |b| b.iter(|| esys.sync()));
}

fn bench_coalescing(c: &mut Criterion) {
    use std::sync::atomic::Ordering;

    let esys = EpochSys::format(
        PmemPool::new(PmemConfig {
            size: 512 << 20,
            ..Default::default()
        }),
        EsysConfig::buffered(64),
    );
    let tid = esys.register_thread();
    let h = {
        let g = esys.begin_op(tid);
        esys.pnew(&g, 0, &0u64)
    };

    // Timed: repeated in-place sets of one hot payload inside an op. After
    // the first set of the epoch, every push hits the coalescing table and
    // skips the ring entirely.
    c.bench_function("set_hot_payload_coalesced_u64", |b| {
        let g = esys.begin_op(tid);
        let mut hh = h;
        b.iter(|| {
            hh = esys.set(&g, hh, |v| *v = v.wrapping_add(1)).unwrap();
        });
    });

    // Counted (not timed): 8 sets of one payload per epoch, 100 epochs.
    // `flushes_coalesced` is exact, so `clwbs + saved` is precisely what the
    // uncoalesced implementation would have issued.
    let stats0 = esys.pool().stats().snapshot();
    let saved0 = esys.stats().flushes_coalesced.load(Ordering::Relaxed);
    let mut hh = h;
    for _ in 0..100 {
        {
            let g = esys.begin_op(tid);
            for _ in 0..8 {
                hh = esys.set(&g, hh, |v| *v = v.wrapping_add(1)).unwrap();
            }
        }
        esys.advance_epoch();
    }
    esys.sync();
    let stats1 = esys.pool().stats().snapshot();
    let saved = esys.stats().flushes_coalesced.load(Ordering::Relaxed) - saved0;
    let clwbs = stats1.clwbs - stats0.clwbs;
    println!(
        "flush_coalescing_8x_sets_100_epochs      clwbs: {clwbs} \
         (uncoalesced: {}, saved: {saved}, fences: {})",
        clwbs + saved,
        stats1.sfences - stats0.sfences
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    targets = bench_ralloc, bench_pmem, bench_esys, bench_coalescing
}
criterion_main!(benches);
