//! **Figure 10** — memcached-shim throughput on YCSB-A (50% read / 50%
//! update, Zipfian keys) across the thread sweep, for items in DRAM, in NVM
//! (≈ Montage (T)), and fully persistent under Montage — mirroring the
//! paper's validation of the microbenchmark results in a real cache
//! application.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use kvstore::{make_key, KvBackend, KvStore};
use montage::{Advancer, EpochSys, EsysConfig};
use montage_bench::harness::{env_scale, env_threads};
use montage_bench::report;
use pmem::{LatencyModel, PmemConfig, PmemMode, PmemPool};
use ralloc::Ralloc;
use workloads::ycsb::{YcsbAWorkload, YcsbOp};

fn nvm_pool(bytes: usize) -> PmemPool {
    PmemPool::new(PmemConfig {
        size: bytes,
        mode: PmemMode::Fast,
        latency: LatencyModel::OPTANE,
        chaos: Default::default(),
    })
}

fn main() {
    let scale = env_scale();
    let records = ((YcsbAWorkload::RECORDS as f64 * scale) as u64).max(1_000);
    let total_ops = ((YcsbAWorkload::OPS as f64 * scale) as u64).max(10_000);
    let value = vec![0xABu8; 256];
    report::header(
        "fig10",
        &format!("memcached YCSB-A, {records} records, {total_ops} ops, value 256B"),
        &["backend", "threads", "ops_per_sec"],
    );

    for &threads in &env_threads() {
        let pool_bytes = (64 << 20) + records as usize * 1024 * 2;

        for backend_name in ["DRAM (T)", "NVM (T)", "Montage"] {
            let (kv, _hold): (Arc<KvStore>, Option<Advancer>) = match backend_name {
                "DRAM (T)" => (
                    Arc::new(KvStore::new(KvBackend::Dram, 64, usize::MAX / 2)),
                    None,
                ),
                "NVM (T)" => {
                    let r = Ralloc::format(nvm_pool(pool_bytes));
                    (
                        Arc::new(KvStore::new(KvBackend::Nvm(r), 64, usize::MAX / 2)),
                        None,
                    )
                }
                _ => {
                    let esys = EpochSys::format(
                        nvm_pool(pool_bytes),
                        EsysConfig {
                            max_threads: threads + 2,
                            ..Default::default()
                        },
                    );
                    let adv = Advancer::start(esys.clone());
                    (
                        Arc::new(KvStore::new(KvBackend::Montage(esys), 64, usize::MAX / 2)),
                        Some(adv),
                    )
                }
            };

            // Preload outside the timed section.
            let tid0 = kv.register_thread();
            for i in 1..=records {
                kv.set(tid0, make_key(i), &value);
            }

            let per_thread = total_ops / threads as u64;
            let barrier = Barrier::new(threads + 1);
            let start_cell = parking_lot::Mutex::new(None::<Instant>);
            std::thread::scope(|s| {
                for t in 0..threads {
                    let kv = kv.clone();
                    let barrier = &barrier;
                    let value = &value;
                    s.spawn(move || {
                        let tid = kv.register_thread();
                        let work = YcsbAWorkload::new(records, per_thread, 0xA11CE + t as u64);
                        barrier.wait();
                        for op in work {
                            match op {
                                YcsbOp::Read(k) => {
                                    kv.get(tid, &make_key(k), |v| v.len());
                                }
                                YcsbOp::Update(k) => kv.set(tid, make_key(k), value),
                            }
                        }
                    });
                }
                barrier.wait();
                *start_cell.lock() = Some(Instant::now());
            });
            let elapsed = start_cell.lock().unwrap().elapsed();
            let tput = (per_thread * threads as u64) as f64 / elapsed.as_secs_f64();
            report::row(&[backend_name.into(), threads.to_string(), report::raw(tput)]);
        }
    }
}
