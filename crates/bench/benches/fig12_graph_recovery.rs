//! **Figure 12** — time to rebuild the Orkut(-substitute) graph: parallel
//! construction from partitioned binary adjacency files (DRAM (T),
//! Montage (T), Montage) versus **Montage recovery** of the same graph from
//! its payloads, across the thread sweep.
//!
//! The paper's shape: Montage recovery beats DRAM construction at low
//! thread counts and tracks NVM construction beyond ~16 threads, while
//! supporting incremental mutation without file I/O.

use std::sync::Arc;
use std::time::Instant;

use baselines::transient::Arena;
use baselines::TransientGraph;
use montage::{Advancer, EpochSys, EsysConfig, ThreadId};
use montage_bench::harness::{env_scale, env_threads};
use montage_bench::report;
use montage_ds::{tags, MontageGraph};
use pmem::{LatencyModel, PmemConfig, PmemMode, PmemPool};
use ralloc::Ralloc;
use workloads::graphgen::{GraphDataset, GraphGenConfig};

fn nvm_pool(bytes: usize) -> PmemPool {
    PmemPool::new(PmemConfig {
        size: bytes,
        mode: PmemMode::Strict, // recovery timing needs a crashable pool
        latency: LatencyModel::OPTANE,
        chaos: Default::default(),
    })
}

fn construct_transient(ds: &GraphDataset, arena: Arena, threads: usize) -> f64 {
    let g = Arc::new(TransientGraph::new(arena, ds.vertices as usize));
    let start = Instant::now();
    // Vertices in parallel ranges, then edges in parallel partitions.
    std::thread::scope(|s| {
        for t in 0..threads {
            let g = g.clone();
            let n = ds.vertices;
            s.spawn(move || {
                let mut v = t as u64;
                while v < n {
                    g.add_vertex(v, &[1u8; 64]);
                    v += threads as u64;
                }
            });
        }
    });
    std::thread::scope(|s| {
        for part in 0..ds.partitions.len() {
            let g = g.clone();
            let edges = &ds.partitions[part];
            s.spawn(move || {
                for &(a, b) in edges {
                    g.add_edge(a as u64, b as u64, &[2u8; 16]);
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

fn montage_graph(esys: Arc<EpochSys>, ds: &GraphDataset) -> MontageGraph {
    MontageGraph::new(
        esys,
        tags::GRAPH_VERTEX,
        tags::GRAPH_EDGE,
        ds.vertices as usize,
    )
}

fn construct_montage(
    ds: &GraphDataset,
    esys: Arc<EpochSys>,
    threads: usize,
) -> (MontageGraph, f64) {
    for _ in 0..threads.max(ds.partitions.len()) {
        esys.register_thread();
    }
    let g = Arc::new(montage_graph(esys, ds));
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let g = g.clone();
            let n = ds.vertices;
            s.spawn(move || {
                let mut v = t as u64;
                while v < n {
                    g.add_vertex(ThreadId(t), v, &[1u8; 64]);
                    v += threads as u64;
                }
            });
        }
    });
    std::thread::scope(|s| {
        for part in 0..ds.partitions.len() {
            let g = g.clone();
            let edges = &ds.partitions[part];
            let tid = part % threads.max(1);
            s.spawn(move || {
                for &(a, b) in edges {
                    g.add_edge(ThreadId(tid), a as u64, b as u64, &[2u8; 16]);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (Arc::into_inner(g).unwrap(), secs)
}

fn main() {
    let scale = env_scale();
    let cfg = GraphGenConfig {
        vertices: ((500_000f64 * scale) as u64).max(5_000),
        edges_per_vertex: 16,
        seed: 0x0050_4B47,
        partitions: 8,
    };
    let ds = GraphDataset::generate(cfg);
    let pool_bytes = (128 << 20) + ds.edge_count() * 256 + ds.vertices as usize * 256;

    report::header(
        "fig12",
        &format!(
            "graph rebuild: {} vertices, {} edges (Orkut substitute)",
            ds.vertices,
            ds.edge_count()
        ),
        &["series", "threads", "seconds"],
    );

    for &threads in &env_threads() {
        let t_dram = construct_transient(&ds, Arena::Dram, threads);
        report::row(&[
            "DRAM (T) construct".into(),
            threads.to_string(),
            format!("{t_dram:.3}"),
        ]);

        let r = Ralloc::format(PmemPool::new(PmemConfig {
            size: pool_bytes,
            mode: PmemMode::Fast,
            latency: LatencyModel::OPTANE,
            chaos: Default::default(),
        }));
        let t_nvm = construct_transient(&ds, Arena::Nvm(r), threads);
        report::row(&[
            "Montage (T) construct".into(),
            threads.to_string(),
            format!("{t_nvm:.3}"),
        ]);

        // Montage construction, then sync + crash + recovery timing.
        let esys = EpochSys::format(
            nvm_pool(pool_bytes),
            EsysConfig {
                max_threads: threads.max(8) + 4,
                ..Default::default()
            },
        );
        let adv = Advancer::start(esys.clone());
        let (g, t_montage) = construct_montage(&ds, esys.clone(), threads);
        report::row(&[
            "Montage construct".into(),
            threads.to_string(),
            format!("{t_montage:.3}"),
        ]);

        esys.sync();
        drop(adv);
        let crashed = esys.pool().crash();
        drop(g);

        let start = Instant::now();
        let rec = montage::recovery::recover(crashed, EsysConfig::default(), threads);
        let g2 = MontageGraph::recover(
            rec.esys.clone(),
            tags::GRAPH_VERTEX,
            tags::GRAPH_EDGE,
            ds.vertices as usize,
            &rec,
        );
        let t_rec = start.elapsed().as_secs_f64();
        report::row(&[
            "Montage recover".into(),
            threads.to_string(),
            format!("{t_rec:.3}"),
        ]);
        assert_eq!(
            g2.vertex_count() as u64,
            ds.vertices,
            "recovery lost vertices"
        );
    }
}
