//! **Figure 7** — throughput of concurrent hashmaps across the thread
//! sweep: (a) write-dominant 0:1:1 and (b) read-dominant 18:1:1
//! get:insert:remove, 1 KB values, 0.5 load factor, for every system in the
//! paper's legend.

use montage_bench::harness::{env_seconds, env_threads, run_map_bench, BenchParams};
use montage_bench::report;
use montage_bench::systems::{build_map, MapSystem};
use workloads::mix::MapMix;

fn main() {
    for (panel, mix) in [
        ("7a write-dominant 0:1:1", MapMix::WRITE_DOMINANT),
        ("7b read-dominant 18:1:1", MapMix::READ_DOMINANT),
    ] {
        report::header(
            "fig07",
            &format!(
                "hashmap throughput, {panel}, value 1KB, {}s/point",
                env_seconds()
            ),
            &["system", "threads", "ops_per_sec"],
        );
        for sys in MapSystem::FIG7 {
            for &threads in &env_threads() {
                let p = BenchParams::paper_scaled(threads, 1024);
                let (m, _hold) = build_map(sys, &p);
                let t = run_map_bench(m.as_ref(), mix, p);
                report::row(&[sys.label().into(), threads.to_string(), report::raw(t)]);
            }
        }
    }
}
