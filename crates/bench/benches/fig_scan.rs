//! **Range-scan throughput** — pipelined `scan` over loopback TCP against
//! the sharded Montage server, sweeping the scanned span while a write
//! fraction mutates the same key space. There is no counterpart figure in
//! the paper (Montage's mapped structures are point-read); this measures
//! the scan verb the sorted-list/ordered-mirror work added: per-stripe
//! consistent snapshots merged across shards, served concurrently with
//! epoch-buffered mutations.
//!
//! The span sweep factors the cost: span 1 is point-lookup-shaped (framing
//! and routing dominate), span 100 is the working-set headline, span 1000
//! amortizes everything but the merge and the wire bytes.
//!
//! Alongside the CSV, the run writes `BENCH_fig_scan.json` (or
//! `$BENCH_JSON_PATH`) for `xtask bench-diff`; the manifest gates the
//! span-100 scan throughput and its p99.
//!
//! Knobs: `MONTAGE_BENCH_CLIENTS` (default 8), `MONTAGE_BENCH_VALUE`
//! (default 64 — a scan reply carries `span` values, so values are kept
//! small enough that the merge, not the wire, is under test),
//! `MONTAGE_BENCH_WRITE_PCT` (default 10 — percent of pipelined ops that
//! are `set`s, so scans always run against live mutation),
//! `MONTAGE_BENCH_REPEATS` (default 3), and `MONTAGE_BENCH_SCALE` as
//! everywhere else.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use kvserver::{KvServer, ServerConfig, WireClient};
use kvstore::ShardedKvStore;
use montage::{Advancer, EsysConfig};
use montage_bench::harness::env_scale;
use montage_bench::report::{self, JsonReport};
use pmem::{LatencyModel, PmemConfig, PmemMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 4;
const PIPELINE: usize = 16;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Knobs {
    records: u64,
    total_ops: u64,
    clients: usize,
    write_pct: u64,
    value: Vec<u8>,
}

struct RunResult {
    tput: f64,
    lats: Vec<u64>,
}

/// One full measurement at `span`: fresh 4-shard store, wire preload of
/// `records` zero-padded keys, then timed pipelined scan/set mixes from
/// `clients` connections.
fn run_once(span: u64, k: &Knobs) -> RunResult {
    let total_bytes = (96 << 20) + k.records as usize * (k.value.len() + 256) * 4;
    let pool_cfg = PmemConfig {
        size: total_bytes / SHARDS,
        mode: PmemMode::Fast,
        latency: LatencyModel::OPTANE,
        chaos: Default::default(),
    };
    let store = ShardedKvStore::format(
        SHARDS,
        pool_cfg,
        EsysConfig {
            max_threads: k.clients + 4,
            ..Default::default()
        },
        64,
        usize::MAX / 2,
    );
    let _adv = Advancer::start_group(
        (0..SHARDS)
            .map(|s| store.shard(s).esys().expect("montage shard").clone())
            .collect(),
    );
    let handle = KvServer::start_sharded(
        ServerConfig {
            max_conns: k.clients + 2,
            sync_every: Some(1),
            ..Default::default()
        },
        Arc::clone(&store),
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Preload outside the timed section. Keys are zero-padded so the byte
    // order the scan contract promises matches numeric order.
    {
        let mut c = WireClient::connect(addr).expect("connect");
        for i in 0..k.records {
            c.set_noreply(&format!("s{i:08}"), 0, &k.value)
                .expect("preload");
        }
        let _ = c.get("s00000000").expect("preload barrier");
        c.quit().expect("quit");
    }

    let per_thread = k.total_ops / k.clients as u64;
    let barrier = Barrier::new(k.clients + 1);
    let lat_all = parking_lot::Mutex::new(Vec::<u64>::new());
    let start_cell = parking_lot::Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..k.clients {
            let barrier = &barrier;
            let lat_all = &lat_all;
            let k = &k;
            s.spawn(move || {
                let mut c = WireClient::connect(addr).expect("connect");
                let mut rng = SmallRng::seed_from_u64(0x5CA2 + t as u64);
                // Pre-serialize every batch (wrk-style): the timed loop is
                // pure send + reply-drain. Replies are drained by counting
                // "D\r\n" terminators — scans end in "END\r\n", sets answer
                // "STORED\r\n", and neither marker can occur earlier in a
                // reply (keys are "s<digits>", values all 'a's).
                let batches: Vec<Vec<u8>> = (0..per_thread / PIPELINE as u64)
                    .map(|_| {
                        let mut packet = Vec::with_capacity(PIPELINE * 48);
                        for _ in 0..PIPELINE {
                            if rng.gen_range(0..100) < k.write_pct {
                                let i = rng.gen_range(0..k.records);
                                packet.extend_from_slice(
                                    format!("set s{i:08} 0 0 {}\r\n", k.value.len()).as_bytes(),
                                );
                                packet.extend_from_slice(&k.value);
                                packet.extend_from_slice(b"\r\n");
                            } else {
                                let lo = rng.gen_range(0..k.records.saturating_sub(span).max(1));
                                let hi = lo + span - 1;
                                packet.extend_from_slice(
                                    format!("scan s{lo:08} s{hi:08} 4096\r\n").as_bytes(),
                                );
                            }
                        }
                        packet
                    })
                    .collect();
                let mut lat = Vec::with_capacity(batches.len());
                let mut scratch = vec![0u8; 256 << 10];
                barrier.wait();
                for packet in &batches {
                    let t0 = Instant::now();
                    c.send_raw(packet).expect("send batch");
                    let mut seen = 0usize;
                    let mut carry = 0usize;
                    while seen < PIPELINE {
                        let n = c.read_some(&mut scratch[carry..]).expect("drain replies");
                        assert!(n > 0, "server hung up mid-batch");
                        let avail = carry + n;
                        seen += scratch[..avail]
                            .windows(3)
                            .filter(|w| *w == b"D\r\n")
                            .count();
                        carry = avail.min(2);
                        let keep = avail - carry;
                        scratch.copy_within(keep..avail, 0);
                    }
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                lat_all.lock().append(&mut lat);
                c.quit().expect("quit");
            });
        }
        barrier.wait();
        *start_cell.lock() = Some(Instant::now());
    });
    let elapsed = start_cell.lock().unwrap().elapsed();
    handle.shutdown();

    let ops = (per_thread / PIPELINE as u64) * PIPELINE as u64 * k.clients as u64;
    let mut lats = std::mem::take(&mut *lat_all.lock());
    lats.sort_unstable();
    RunResult {
        tput: ops as f64 / elapsed.as_secs_f64(),
        lats,
    }
}

fn main() {
    let scale = env_scale() / 10.0;
    let knobs = Knobs {
        records: ((50_000.0 * scale) as u64).max(4_000),
        total_ops: ((40_000.0 * scale) as u64).max(4_000),
        clients: env_usize("MONTAGE_BENCH_CLIENTS", 8),
        write_pct: env_usize("MONTAGE_BENCH_WRITE_PCT", 10) as u64,
        value: vec![b'a'; env_usize("MONTAGE_BENCH_VALUE", 64)],
    };
    let repeats = env_usize("MONTAGE_BENCH_REPEATS", 3).max(1);

    report::header(
        "fig-scan",
        &format!(
            "sharded kvserver, pipelined scan/set mix over loopback, {} records, \
             {} ops, {} clients, {}B values, {}% writes, median of {repeats} runs",
            knobs.records,
            knobs.total_ops,
            knobs.clients,
            knobs.value.len(),
            knobs.write_pct,
        ),
        &["span", "ops_per_sec", "batch_p50_us", "batch_p99_us"],
    );

    let mut json = JsonReport::new("fig_scan");
    json.field("clients", knobs.clients as u64);
    json.field("write_pct", knobs.write_pct);
    json.field("value_bytes", knobs.value.len() as u64);
    json.field("records", knobs.records);
    json.headline(&JsonReport::slug(&["span", "100", "ops_per_sec"]));

    for span in [1u64, 100, 1000] {
        let mut runs: Vec<RunResult> = (0..repeats).map(|_| run_once(span, &knobs)).collect();
        runs.sort_by(|a, b| a.tput.total_cmp(&b.tput));
        let run = runs.swap_remove(runs.len() / 2);

        let p50 = percentile(&run.lats, 0.50);
        let p99 = percentile(&run.lats, 0.99);
        report::row(&[
            span.to_string(),
            report::raw(run.tput),
            p50.to_string(),
            p99.to_string(),
        ]);
        json.row(vec![
            ("span".to_string(), span.into()),
            ("ops_per_sec".to_string(), run.tput.into()),
            ("batch_p50_us".to_string(), p50.into()),
            ("batch_p99_us".to_string(), p99.into()),
        ]);
        let sp = span.to_string();
        json.metric(&JsonReport::slug(&["span", &sp, "ops_per_sec"]), run.tput);
        json.metric(&JsonReport::slug(&["span", &sp, "p99_us"]), p99 as f64);
    }
    match json.write() {
        Ok(path) => println!("# json: {}", path.display()),
        Err(e) => eprintln!("# json write failed: {e}"),
    }
}
