//! Timed multi-thread workload drivers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use baselines::api::{make_key, BenchMap, BenchQueue};
use workloads::mix::{value_of, MapMix, MapOp, MapOpGen, QueueOpGen};
use workloads::zipfian::KeyDist;

/// Per-point parameters (already scaled).
#[derive(Clone, Copy, Debug)]
pub struct BenchParams {
    pub threads: usize,
    pub duration: Duration,
    pub value_size: usize,
    pub key_range: u64,
    pub preload: u64,
}

impl BenchParams {
    /// The paper's microbenchmark geometry at the env scale.
    pub fn paper_scaled(threads: usize, value_size: usize) -> BenchParams {
        let scale = env_scale();
        BenchParams {
            threads,
            duration: Duration::from_secs_f64(env_seconds()),
            value_size,
            key_range: ((1_000_000f64 * scale) as u64).max(1000),
            preload: ((500_000f64 * scale) as u64).max(500),
        }
    }

    /// Buckets for the paper's 0.5 load factor.
    pub fn nbuckets(&self) -> usize {
        (self.key_range as usize).max(16)
    }
}

/// Seconds per data point (`MONTAGE_BENCH_SECONDS`, default 0.25).
pub fn env_seconds() -> f64 {
    std::env::var("MONTAGE_BENCH_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}

/// Thread sweep (`MONTAGE_BENCH_THREADS`, default `1,2,4`).
pub fn env_threads() -> Vec<usize> {
    std::env::var("MONTAGE_BENCH_THREADS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

/// Workload-size multiplier (`MONTAGE_BENCH_SCALE`, default 0.04).
pub fn env_scale() -> f64 {
    std::env::var("MONTAGE_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.04)
}

/// Runs the paper's 1:1 enqueue:dequeue workload; returns ops/s.
pub fn run_queue_bench(q: &(impl BenchQueue + ?Sized), p: BenchParams) -> f64 {
    run_queue_with_sync(q, p, u64::MAX, || {})
}

/// Queue workload with a `sync` closure invoked every `ops_per_sync` ops.
pub fn run_queue_with_sync(
    q: &(impl BenchQueue + ?Sized),
    p: BenchParams,
    ops_per_sync: u64,
    sync: impl Fn() + Sync,
) -> f64 {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let barrier = Barrier::new(p.threads + 1);
    std::thread::scope(|s| {
        for t in 0..p.threads {
            let stop = &stop;
            let total = &total;
            let barrier = &barrier;
            let q = &q;
            let sync = &sync;
            s.spawn(move || {
                let value = value_of(p.value_size, t as u64);
                let mut gen = QueueOpGen::new(t % 2 == 0);
                let mut ops = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    match gen.next() {
                        workloads::mix::QueueOp::Enqueue => q.enqueue(t, &value),
                        workloads::mix::QueueOp::Dequeue => {
                            q.dequeue(t);
                        }
                    }
                    ops += 1;
                    if ops.is_multiple_of(ops_per_sync) {
                        sync();
                    }
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        std::thread::sleep(p.duration);
        stop.store(true, Ordering::Relaxed);
        // Scope joins all workers here.
    });
    total.load(Ordering::Relaxed) as f64 / p.duration.as_secs_f64()
}

/// Preloads `p.preload` keys, then runs the map `mix`; returns ops/s.
pub fn run_map_bench(m: &(impl BenchMap + ?Sized), mix: MapMix, p: BenchParams) -> f64 {
    run_map_with_sync(m, mix, p, u64::MAX, || {})
}

/// Map workload with a `sync` closure invoked every `ops_per_sync` ops.
pub fn run_map_with_sync(
    m: &(impl BenchMap + ?Sized),
    mix: MapMix,
    p: BenchParams,
    ops_per_sync: u64,
    sync: impl Fn() + Sync,
) -> f64 {
    preload_map(m, p);
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let barrier = Barrier::new(p.threads + 1);
    std::thread::scope(|s| {
        for t in 0..p.threads {
            let stop = &stop;
            let total = &total;
            let barrier = &barrier;
            let m = &m;
            let sync = &sync;
            s.spawn(move || {
                let value = value_of(p.value_size, t as u64);
                let mut gen = MapOpGen::new(mix, KeyDist::Uniform, p.key_range, 0xBEEF + t as u64);
                let mut ops = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    match gen.next() {
                        MapOp::Get(k) => {
                            m.get(t, &make_key(k));
                        }
                        MapOp::Insert(k) => {
                            m.insert(t, make_key(k), &value);
                        }
                        MapOp::Remove(k) => {
                            m.remove(t, &make_key(k));
                        }
                    }
                    ops += 1;
                    if ops.is_multiple_of(ops_per_sync) {
                        sync();
                    }
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        std::thread::sleep(p.duration);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / p.duration.as_secs_f64()
}

/// Inserts `p.preload` evenly spaced keys (the paper preloads 0.5 M of the
/// 1 M key range).
pub fn preload_map(m: &(impl BenchMap + ?Sized), p: BenchParams) {
    let value = value_of(p.value_size, 0);
    let step = (p.key_range / p.preload).max(1);
    let mut k = 1;
    for _ in 0..p.preload {
        m.insert(0, make_key(k), &value);
        k += step;
        if k > p.key_range {
            k = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::transient::{Arena, TransientHashMap, TransientQueue};

    fn tiny() -> BenchParams {
        BenchParams {
            threads: 2,
            duration: Duration::from_millis(50),
            value_size: 64,
            key_range: 1000,
            preload: 500,
        }
    }

    #[test]
    fn queue_harness_reports_positive_throughput() {
        let q = TransientQueue::new(Arena::Dram);
        let tput = run_queue_bench(&q, tiny());
        assert!(tput > 1000.0, "throughput {tput} implausibly low");
    }

    #[test]
    fn map_harness_preloads_and_runs() {
        let m = TransientHashMap::new(Arena::Dram, 1024);
        let tput = run_map_bench(&m, MapMix::READ_DOMINANT, tiny());
        assert!(tput > 1000.0);
        // ~half the key range preloaded; churn keeps it in that ballpark.
        assert!(m.len() > 100);
    }

    #[test]
    fn sync_closure_is_invoked() {
        let q = TransientQueue::new(Arena::Dram);
        let syncs = AtomicU64::new(0);
        let p = tiny();
        run_queue_with_sync(&q, p, 100, || {
            syncs.fetch_add(1, Ordering::Relaxed);
        });
        assert!(syncs.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn env_defaults_are_sane() {
        assert!(env_seconds() > 0.0);
        assert!(!env_threads().is_empty());
        assert!(env_scale() > 0.0);
    }
}
