//! Construction of every benchmarked system behind the uniform interfaces.

use std::sync::Arc;
use std::time::Duration;

use baselines::api::{BenchMap, BenchQueue, Key32};
use baselines::dali::DaliHashMap;
use baselines::friedman::FriedmanQueue;
use baselines::mnemosyne::{Mnemosyne, MnemosyneMap, MnemosyneQueue};
use baselines::mod_ds::{ModHashMap, ModQueue};
use baselines::nvtraverse::NvTraverseHashMap;
use baselines::pronto::{Mode as ProntoMode, ProntoMap, ProntoQueue};
use baselines::soft::SoftHashMap;
use baselines::transient::{Arena, TransientHashMap, TransientQueue};
use montage::{Advancer, EpochSys, EsysConfig, ThreadId};
use montage_ds::{tags, MontageHashMap, MontageQueue};
use pmem::{LatencyModel, PmemConfig, PmemMode, PmemPool};
use ralloc::Ralloc;

use crate::harness::BenchParams;

/// Keeps background machinery (advancers, flushers, epoch systems) alive for
/// the duration of a data point.
#[derive(Default)]
pub struct SystemHold {
    items: Vec<Box<dyn std::any::Any + Send>>,
    /// Montage sync hook (None for other systems).
    pub sync: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl SystemHold {
    fn keep<T: Send + 'static>(&mut self, v: T) -> &mut Self {
        self.items.push(Box::new(v));
        self
    }
}

fn nvm_pool(bytes: usize) -> PmemPool {
    PmemPool::new(PmemConfig {
        size: bytes.next_multiple_of(64),
        mode: PmemMode::Fast,
        latency: LatencyModel::OPTANE,
        chaos: Default::default(),
    })
}

fn map_pool_bytes(p: &BenchParams) -> usize {
    // Preload + churn headroom + allocator slack; generous but bounded.
    (64 << 20) + p.preload as usize * (p.value_size + 256) * 4
}

fn queue_pool_bytes(p: &BenchParams) -> usize {
    (64 << 20) + p.value_size * 64 * 1024
}

fn montage_sys(p: &BenchParams, cfg: EsysConfig, pool_bytes: usize) -> (Arc<EpochSys>, SystemHold) {
    let cfg = EsysConfig {
        max_threads: (p.threads + 2).max(cfg.max_threads.min(p.threads + 2)),
        ..cfg
    };
    let esys = EpochSys::format(nvm_pool(pool_bytes), cfg);
    // Pre-register worker tids 0..threads so harness tids map directly.
    for _ in 0..p.threads {
        esys.register_thread();
    }
    let mut hold = SystemHold::default();
    if cfg.persist != montage::PersistStrategy::None {
        hold.keep(Advancer::start(esys.clone()));
    }
    let e2 = esys.clone();
    hold.sync = Some(Arc::new(move || e2.sync()));
    (esys, hold)
}

/// Builds a Montage hashmap under an explicit [`EsysConfig`] — the Fig. 4
/// design-space axis (buffer size × epoch length × free strategy).
pub fn montage_map_with(cfg: EsysConfig, p: &BenchParams) -> (Arc<dyn BenchMap>, SystemHold) {
    let (esys, hold) = montage_sys(p, cfg, map_pool_bytes(p));
    (
        Arc::new(MontageMapAdapter(MontageHashMap::new(
            esys,
            tags::HASHMAP,
            p.nbuckets(),
        ))),
        hold,
    )
}

/// Builds a Montage queue under an explicit [`EsysConfig`] (Fig. 5).
pub fn montage_queue_with(cfg: EsysConfig, p: &BenchParams) -> (Arc<dyn BenchQueue>, SystemHold) {
    let (esys, hold) = montage_sys(p, cfg, queue_pool_bytes(p));
    (
        Arc::new(MontageQueueAdapter(MontageQueue::new(esys, tags::QUEUE))),
        hold,
    )
}

// ---------------------------------------------------------------------------
// Queue systems (paper Fig. 5/6/8a)
// ---------------------------------------------------------------------------

/// Queue systems in the paper's Fig. 6 legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueSystem {
    DramT,
    NvmT,
    MontageT,
    Montage,
    Friedman,
    Mod,
    ProntoFull,
    ProntoSync,
    Mnemosyne,
}

impl QueueSystem {
    pub const ALL: [QueueSystem; 9] = [
        QueueSystem::DramT,
        QueueSystem::NvmT,
        QueueSystem::MontageT,
        QueueSystem::Montage,
        QueueSystem::Friedman,
        QueueSystem::Mod,
        QueueSystem::ProntoFull,
        QueueSystem::ProntoSync,
        QueueSystem::Mnemosyne,
    ];

    pub fn label(self) -> &'static str {
        match self {
            QueueSystem::DramT => "DRAM (T)",
            QueueSystem::NvmT => "NVM (T)",
            QueueSystem::MontageT => "Montage (T)",
            QueueSystem::Montage => "Montage",
            QueueSystem::Friedman => "Friedman",
            QueueSystem::Mod => "MOD",
            QueueSystem::ProntoFull => "Pronto-Full",
            QueueSystem::ProntoSync => "Pronto-Sync",
            QueueSystem::Mnemosyne => "Mnemosyne",
        }
    }
}

struct MontageQueueAdapter(MontageQueue);

impl BenchQueue for MontageQueueAdapter {
    fn enqueue(&self, tid: usize, value: &[u8]) {
        self.0.enqueue(ThreadId(tid), value);
    }
    fn dequeue(&self, tid: usize) -> bool {
        self.0.dequeue_with(ThreadId(tid), |_| ()).is_some()
    }
}

/// Builds a queue system sized for `p`.
pub fn build_queue(sys: QueueSystem, p: &BenchParams) -> (Arc<dyn BenchQueue>, SystemHold) {
    let bytes = queue_pool_bytes(p);
    match sys {
        QueueSystem::DramT => (
            Arc::new(TransientQueue::new(Arena::Dram)),
            SystemHold::default(),
        ),
        QueueSystem::NvmT => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(TransientQueue::new(Arena::Nvm(r))),
                SystemHold::default(),
            )
        }
        QueueSystem::MontageT => {
            let (esys, hold) = montage_sys(p, EsysConfig::transient(), bytes);
            (
                Arc::new(MontageQueueAdapter(MontageQueue::new(esys, tags::QUEUE))),
                hold,
            )
        }
        QueueSystem::Montage => {
            let (esys, hold) = montage_sys(p, EsysConfig::default(), bytes);
            (
                Arc::new(MontageQueueAdapter(MontageQueue::new(esys, tags::QUEUE))),
                hold,
            )
        }
        QueueSystem::Friedman => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(FriedmanQueue::new(r, p.threads.max(1))),
                SystemHold::default(),
            )
        }
        QueueSystem::Mod => {
            let r = Ralloc::format(nvm_pool(bytes));
            (Arc::new(ModQueue::new(r)), SystemHold::default())
        }
        QueueSystem::ProntoFull => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(ProntoQueue::new(&r, ProntoMode::Full, p.threads.max(1))),
                SystemHold::default(),
            )
        }
        QueueSystem::ProntoSync => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(ProntoQueue::new(&r, ProntoMode::Sync, p.threads.max(1))),
                SystemHold::default(),
            )
        }
        QueueSystem::Mnemosyne => {
            let r = Ralloc::format(nvm_pool(bytes));
            let sys = Mnemosyne::new(r, p.threads.max(1));
            (Arc::new(MnemosyneQueue::new(sys)), SystemHold::default())
        }
    }
}

// ---------------------------------------------------------------------------
// Map systems (paper Fig. 4/7/8b/9)
// ---------------------------------------------------------------------------

/// Map systems in the paper's Fig. 7 legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapSystem {
    DramT,
    NvmT,
    MontageT,
    Montage,
    /// Montage with per-op write-back ("Montage (dw)" in Fig. 9).
    MontageDw,
    Dali,
    Soft,
    NvTraverse,
    Mod,
    ProntoFull,
    ProntoSync,
    Mnemosyne,
}

impl MapSystem {
    /// The Fig. 7 line-up (excludes the Fig. 9-only `MontageDw`).
    pub const FIG7: [MapSystem; 11] = [
        MapSystem::DramT,
        MapSystem::NvmT,
        MapSystem::MontageT,
        MapSystem::Montage,
        MapSystem::Dali,
        MapSystem::Soft,
        MapSystem::NvTraverse,
        MapSystem::Mod,
        MapSystem::ProntoFull,
        MapSystem::ProntoSync,
        MapSystem::Mnemosyne,
    ];

    pub fn label(self) -> &'static str {
        match self {
            MapSystem::DramT => "DRAM (T)",
            MapSystem::NvmT => "NVM (T)",
            MapSystem::MontageT => "Montage (T)",
            MapSystem::Montage => "Montage",
            MapSystem::MontageDw => "Montage (dw)",
            MapSystem::Dali => "Dali",
            MapSystem::Soft => "SOFT",
            MapSystem::NvTraverse => "NVTraverse",
            MapSystem::Mod => "MOD",
            MapSystem::ProntoFull => "Pronto-Full",
            MapSystem::ProntoSync => "Pronto-Sync",
            MapSystem::Mnemosyne => "Mnemosyne",
        }
    }
}

struct MontageMapAdapter(MontageHashMap<Key32>);

impl BenchMap for MontageMapAdapter {
    fn get(&self, tid: usize, key: &Key32) -> bool {
        self.0.get(ThreadId(tid), key, |_| ()).is_some()
    }
    fn insert(&self, tid: usize, key: Key32, value: &[u8]) -> bool {
        self.0.insert(ThreadId(tid), key, value)
    }
    fn remove(&self, tid: usize, key: &Key32) -> bool {
        self.0.remove(ThreadId(tid), key)
    }
}

/// Builds a map system sized for `p`. `nbuckets` follows the paper's 0.5
/// load factor.
pub fn build_map(sys: MapSystem, p: &BenchParams) -> (Arc<dyn BenchMap>, SystemHold) {
    let bytes = map_pool_bytes(p);
    let nbuckets = p.nbuckets();
    match sys {
        MapSystem::DramT => (
            Arc::new(TransientHashMap::new(Arena::Dram, nbuckets)),
            SystemHold::default(),
        ),
        MapSystem::NvmT => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(TransientHashMap::new(Arena::Nvm(r), nbuckets)),
                SystemHold::default(),
            )
        }
        MapSystem::MontageT => {
            let (esys, hold) = montage_sys(p, EsysConfig::transient(), bytes);
            (
                Arc::new(MontageMapAdapter(MontageHashMap::new(
                    esys,
                    tags::HASHMAP,
                    nbuckets,
                ))),
                hold,
            )
        }
        MapSystem::Montage => {
            let (esys, hold) = montage_sys(p, EsysConfig::default(), bytes);
            (
                Arc::new(MontageMapAdapter(MontageHashMap::new(
                    esys,
                    tags::HASHMAP,
                    nbuckets,
                ))),
                hold,
            )
        }
        MapSystem::MontageDw => {
            let cfg = EsysConfig {
                persist: montage::PersistStrategy::DirWB,
                ..Default::default()
            };
            let (esys, hold) = montage_sys(p, cfg, bytes);
            (
                Arc::new(MontageMapAdapter(MontageHashMap::new(
                    esys,
                    tags::HASHMAP,
                    nbuckets,
                ))),
                hold,
            )
        }
        MapSystem::Dali => {
            let r = Ralloc::format(nvm_pool(bytes));
            let m = Arc::new(DaliHashMap::new(r, nbuckets));
            let mut hold = SystemHold::default();
            hold.keep(m.start_flusher(Duration::from_millis(10)));
            (m, hold)
        }
        MapSystem::Soft => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(SoftHashMap::new(r, nbuckets)),
                SystemHold::default(),
            )
        }
        MapSystem::NvTraverse => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(NvTraverseHashMap::new(r, nbuckets)),
                SystemHold::default(),
            )
        }
        MapSystem::Mod => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(ModHashMap::new(r, nbuckets)),
                SystemHold::default(),
            )
        }
        MapSystem::ProntoFull => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(ProntoMap::new(
                    &r,
                    ProntoMode::Full,
                    p.threads.max(1),
                    nbuckets,
                )),
                SystemHold::default(),
            )
        }
        MapSystem::ProntoSync => {
            let r = Ralloc::format(nvm_pool(bytes));
            (
                Arc::new(ProntoMap::new(
                    &r,
                    ProntoMode::Sync,
                    p.threads.max(1),
                    nbuckets,
                )),
                SystemHold::default(),
            )
        }
        MapSystem::Mnemosyne => {
            let r = Ralloc::format(nvm_pool(bytes));
            let sys = Mnemosyne::new(r, p.threads.max(1));
            (
                Arc::new(MnemosyneMap::new(sys, nbuckets)),
                SystemHold::default(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_map_bench, run_queue_bench};
    use std::time::Duration;
    use workloads::mix::MapMix;

    fn tiny() -> BenchParams {
        BenchParams {
            threads: 1,
            duration: Duration::from_millis(20),
            value_size: 64,
            key_range: 500,
            preload: 200,
        }
    }

    #[test]
    fn every_queue_system_runs() {
        for sys in QueueSystem::ALL {
            let (q, _hold) = build_queue(sys, &tiny());
            let tput = run_queue_bench(q.as_ref(), tiny());
            assert!(tput > 0.0, "{} produced no ops", sys.label());
        }
    }

    #[test]
    fn every_map_system_runs() {
        for sys in MapSystem::FIG7 {
            let (m, _hold) = build_map(sys, &tiny());
            let tput = run_map_bench(m.as_ref(), MapMix::MIXED, tiny());
            assert!(tput > 0.0, "{} produced no ops", sys.label());
        }
    }

    #[test]
    fn montage_hold_provides_sync() {
        let (_m, hold) = build_map(MapSystem::Montage, &tiny());
        (hold.sync.as_ref().expect("montage must expose sync"))();
    }
}
