//! # montage-bench — harnesses reproducing the paper's evaluation
//!
//! One custom-harness bench target per figure/table (see `benches/`); this
//! library holds the shared machinery:
//!
//! * [`harness`] — timed multi-thread drivers for queue and map workloads,
//!   plus env-var knobs so CI runs in seconds while full runs match the
//!   paper's 30 s × 3-trial protocol.
//! * [`systems`] — constructors and adapters putting **every** system
//!   (Montage and all baselines) behind the uniform
//!   [`baselines::BenchQueue`]/[`baselines::BenchMap`] interfaces.
//! * [`report`] — CSV-style row printing in the shape of the paper's
//!   figures.
//!
//! ## Env knobs
//!
//! | var | meaning | default |
//! |-----|---------|---------|
//! | `MONTAGE_BENCH_SECONDS` | seconds per data point | `0.25` |
//! | `MONTAGE_BENCH_THREADS` | comma-separated thread sweep | `1,2,4` |
//! | `MONTAGE_BENCH_SCALE`   | workload-size multiplier (keys, preload, graph) | `0.04` |
//!
//! The paper's full protocol corresponds to `MONTAGE_BENCH_SECONDS=30`,
//! `MONTAGE_BENCH_THREADS=1,2,4,8,16,24,32,40,50,60,70,80,90`,
//! `MONTAGE_BENCH_SCALE=1`.

pub mod harness;
pub mod report;
pub mod systems;

pub use harness::{
    env_scale, env_seconds, env_threads, run_map_bench, run_queue_bench, BenchParams,
};
pub use systems::{build_map, build_queue, MapSystem, QueueSystem, SystemHold};
