//! CSV-style reporting in the shape of the paper's figures.

/// Prints a figure header (once per bench target).
pub fn header(figure: &str, title: &str, columns: &[&str]) {
    println!("# {figure}: {title}");
    println!("{}", columns.join(","));
}

/// Prints one data row.
pub fn row(fields: &[String]) {
    println!("{}", fields.join(","));
}

/// Formats throughput in ops/s with three significant digits.
pub fn tput(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Raw ops/s for machine consumption.
pub fn raw(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tput_scales_units() {
        assert_eq!(tput(12_345_678.0), "12.346M");
        assert_eq!(tput(12_345.0), "12.3K");
        assert_eq!(tput(123.0), "123");
    }
}
