//! CSV-style reporting in the shape of the paper's figures.

/// Prints a figure header (once per bench target).
pub fn header(figure: &str, title: &str, columns: &[&str]) {
    println!("# {figure}: {title}");
    println!("{}", columns.join(","));
}

/// Prints one data row.
pub fn row(fields: &[String]) {
    println!("{}", fields.join(","));
}

/// Formats throughput in ops/s with three significant digits.
pub fn tput(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Raw ops/s for machine consumption.
pub fn raw(v: f64) -> String {
    format!("{v:.0}")
}

/// Persistence cost of a measured interval, normalised per operation —
/// the quantity Montage's write-back buffering is designed to shrink.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PersistCost {
    pub flushes_per_op: f64,
    pub fences_per_op: f64,
}

impl PersistCost {
    /// From two [`pmem::StatsSnapshot`]s bracketing `ops` operations.
    pub fn from_snapshots(
        before: pmem::StatsSnapshot,
        after: pmem::StatsSnapshot,
        ops: u64,
    ) -> PersistCost {
        let ops = ops.max(1) as f64;
        PersistCost {
            flushes_per_op: after.clwbs.saturating_sub(before.clwbs) as f64 / ops,
            fences_per_op: after.sfences.saturating_sub(before.sfences) as f64 / ops,
        }
    }

    /// Two CSV fields: flushes/op, fences/op.
    pub fn fields(&self) -> [String; 2] {
        [
            format!("{:.3}", self.flushes_per_op),
            format!("{:.3}", self.fences_per_op),
        ]
    }
}

/// One cell of a machine-readable report row.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonField {
    Num(f64),
    Str(String),
}

impl From<f64> for JsonField {
    fn from(v: f64) -> Self {
        JsonField::Num(v)
    }
}

impl From<u64> for JsonField {
    fn from(v: u64) -> Self {
        JsonField::Num(v as f64)
    }
}

impl From<&str> for JsonField {
    fn from(v: &str) -> Self {
        JsonField::Str(v.to_string())
    }
}

/// Machine-readable companion to the CSV rows: collects a figure's rows and
/// named scalar metrics, and writes them as `BENCH_<figure>.json` for the
/// `cargo run -p xtask -- bench-diff` regression gate. Hand-rolled writer —
/// the workspace carries no serde.
pub struct JsonReport {
    figure: String,
    fields: Vec<(String, JsonField)>,
    headline: Option<String>,
    rows: Vec<Vec<(String, JsonField)>>,
    metrics: Vec<(String, f64)>,
}

impl JsonReport {
    pub fn new(figure: &str) -> JsonReport {
        JsonReport {
            figure: figure.to_string(),
            fields: Vec::new(),
            headline: None,
            rows: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Adds a top-level annotation (e.g. `server: "event"`).
    pub fn field(&mut self, key: &str, value: impl Into<JsonField>) {
        self.fields.push((key.to_string(), value.into()));
    }

    /// Names the metric `bench-diff` gates on. Must also be in `metrics`.
    pub fn headline(&mut self, metric: &str) {
        self.headline = Some(metric.to_string());
    }

    pub fn row(&mut self, cells: Vec<(String, JsonField)>) {
        self.rows.push(cells);
    }

    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Canonical metric-name slug: lowercase alphanumerics joined by `_`
    /// (so "YCSB-A"/"Montage sync=1" become stable JSON keys).
    pub fn slug(parts: &[&str]) -> String {
        let mut out = String::new();
        for part in parts {
            for ch in part.chars() {
                if ch.is_ascii_alphanumeric() {
                    out.push(ch.to_ascii_lowercase());
                } else if !out.ends_with('_') && !out.is_empty() {
                    out.push('_');
                }
            }
            if !out.ends_with('_') {
                out.push('_');
            }
        }
        out.trim_matches('_').to_string()
    }

    pub fn render(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"figure\": {},\n", json_str(&self.figure)));
        for (k, v) in &self.fields {
            s.push_str(&format!("  {}: {},\n", json_str(k), json_field(v)));
        }
        if let Some(h) = &self.headline {
            s.push_str(&format!("  \"headline\": {},\n", json_str(h)));
        }
        s.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .map(|(k, v)| format!("{}: {}", json_str(k), json_field(v)))
                .collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            s.push_str(&format!("    {{{}}}{}\n", cells.join(", "), comma));
        }
        s.push_str("  ],\n");
        s.push_str("  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            s.push_str(&format!("    {}: {}{}\n", json_str(k), json_num(*v), comma));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Writes the report to `$BENCH_JSON_PATH` if set, else
    /// `BENCH_<figure>.json` in the current directory. Returns the path.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let path = match std::env::var_os("BENCH_JSON_PATH") {
            Some(p) => std::path::PathBuf::from(p),
            None => std::path::PathBuf::from(format!("BENCH_{}.json", self.figure)),
        };
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

fn json_field(f: &JsonField) -> String {
    match f {
        JsonField::Num(v) => json_num(*v),
        JsonField::Str(s) => json_str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tput_scales_units() {
        assert_eq!(tput(12_345_678.0), "12.346M");
        assert_eq!(tput(12_345.0), "12.3K");
        assert_eq!(tput(123.0), "123");
    }

    fn snap(clwbs: u64, sfences: u64, lines_drained: u64) -> pmem::StatsSnapshot {
        pmem::StatsSnapshot {
            clwbs,
            sfences,
            lines_drained,
            ..Default::default()
        }
    }

    #[test]
    fn persist_cost_normalises_per_op() {
        let c = PersistCost::from_snapshots(snap(100, 10, 100), snap(1100, 30, 1100), 500);
        assert_eq!(c.flushes_per_op, 2.0);
        assert_eq!(c.fences_per_op, 0.04);
        assert_eq!(c.fields(), ["2.000".to_string(), "0.040".to_string()]);
    }

    #[test]
    fn persist_cost_survives_zero_ops() {
        let c = PersistCost::from_snapshots(snap(0, 0, 0), snap(5, 1, 5), 0);
        assert_eq!(c.flushes_per_op, 5.0);
    }

    #[test]
    fn slug_is_stable_for_figure_labels() {
        assert_eq!(
            JsonReport::slug(&["YCSB-A", "Montage sync=1", "t4", "ops_per_sec"]),
            "ycsb_a_montage_sync_1_t4_ops_per_sec"
        );
        assert_eq!(JsonReport::slug(&["DRAM (T)"]), "dram_t");
    }

    #[test]
    fn json_report_renders_rows_and_metrics() {
        let mut r = JsonReport::new("figtest");
        r.field("server", "event");
        r.headline("a_ops");
        r.row(vec![
            ("workload".to_string(), "YCSB-A".into()),
            ("ops_per_sec".to_string(), JsonField::Num(1234.5)),
            ("threads".to_string(), 4u64.into()),
        ]);
        r.metric("a_ops", 1234.5);
        r.metric("a_p99", 17.0);
        let s = r.render();
        assert!(s.contains("\"figure\": \"figtest\""));
        assert!(s.contains("\"server\": \"event\""));
        assert!(s.contains("\"headline\": \"a_ops\""));
        assert!(s.contains("\"ops_per_sec\": 1234.500"));
        assert!(s.contains("\"threads\": 4"));
        assert!(s.contains("\"a_p99\": 17"));
        // Trailing commas would choke any strict parser.
        assert!(!s.contains(",\n  ]"));
        assert!(!s.contains(",\n  }"));
    }

    #[test]
    fn json_num_guards_non_finite() {
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(2.5), "2.500");
        assert_eq!(json_num(3.0), "3");
    }
}
