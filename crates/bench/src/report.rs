//! CSV-style reporting in the shape of the paper's figures.

/// Prints a figure header (once per bench target).
pub fn header(figure: &str, title: &str, columns: &[&str]) {
    println!("# {figure}: {title}");
    println!("{}", columns.join(","));
}

/// Prints one data row.
pub fn row(fields: &[String]) {
    println!("{}", fields.join(","));
}

/// Formats throughput in ops/s with three significant digits.
pub fn tput(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Raw ops/s for machine consumption.
pub fn raw(v: f64) -> String {
    format!("{v:.0}")
}

/// Persistence cost of a measured interval, normalised per operation —
/// the quantity Montage's write-back buffering is designed to shrink.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PersistCost {
    pub flushes_per_op: f64,
    pub fences_per_op: f64,
}

impl PersistCost {
    /// From two [`pmem::StatsSnapshot`]s bracketing `ops` operations.
    pub fn from_snapshots(
        before: pmem::StatsSnapshot,
        after: pmem::StatsSnapshot,
        ops: u64,
    ) -> PersistCost {
        let ops = ops.max(1) as f64;
        PersistCost {
            flushes_per_op: after.clwbs.saturating_sub(before.clwbs) as f64 / ops,
            fences_per_op: after.sfences.saturating_sub(before.sfences) as f64 / ops,
        }
    }

    /// Two CSV fields: flushes/op, fences/op.
    pub fn fields(&self) -> [String; 2] {
        [
            format!("{:.3}", self.flushes_per_op),
            format!("{:.3}", self.fences_per_op),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tput_scales_units() {
        assert_eq!(tput(12_345_678.0), "12.346M");
        assert_eq!(tput(12_345.0), "12.3K");
        assert_eq!(tput(123.0), "123");
    }

    fn snap(clwbs: u64, sfences: u64, lines_drained: u64) -> pmem::StatsSnapshot {
        pmem::StatsSnapshot {
            clwbs,
            sfences,
            lines_drained,
            ..Default::default()
        }
    }

    #[test]
    fn persist_cost_normalises_per_op() {
        let c = PersistCost::from_snapshots(snap(100, 10, 100), snap(1100, 30, 1100), 500);
        assert_eq!(c.flushes_per_op, 2.0);
        assert_eq!(c.fences_per_op, 0.04);
        assert_eq!(c.fields(), ["2.000".to_string(), "0.040".to_string()]);
    }

    #[test]
    fn persist_cost_survives_zero_ops() {
        let c = PersistCost::from_snapshots(snap(0, 0, 0), snap(5, 1, 5), 0);
        assert_eq!(c.flushes_per_op, 5.0);
    }
}
