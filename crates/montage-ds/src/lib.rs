//! # montage-ds — data structures built on Montage
//!
//! The structures evaluated in the paper, written against the public
//! [`montage`] API exactly as a downstream user would:
//!
//! * [`MontageHashMap`] — the lock-per-bucket hashmap of paper Fig. 2: the
//!   lookup structure (buckets, chains, locks) is entirely transient; only
//!   key/value payloads live in NVM.
//! * [`MontageQueue`] — the single-lock queue: payloads carry consecutive
//!   sequence numbers (the "items and their order" the abstraction needs),
//!   and the linked structure is transient.
//! * [`MontageNbQueue`] — a nonblocking Michael–Scott queue that linearizes
//!   through [`montage::VerifyCell::cas_verify`], demonstrating the paper's
//!   Sec. 3.3 recipe for lock-free structures.
//! * [`MontageGraph`] — the general graph of Sec. 6.3: a payload per vertex
//!   and per edge (edges name their endpoints; vertices do **not** point to
//!   edges, avoiding long persistent pointer chains), with transient
//!   adjacency and per-vertex locks.
//!
//! Every structure has a `recover` constructor that rebuilds its transient
//! state from a [`montage::RecoveredState`], optionally in parallel.

pub mod graph;
pub mod hashmap;
pub mod nbmap;
pub mod nbqueue;
pub mod nbstack;
pub mod queue;
pub mod skiplist;
pub mod sortedlist;

pub use graph::MontageGraph;
pub use hashmap::MontageHashMap;
pub use nbmap::MontageNbMap;
pub use nbqueue::MontageNbQueue;
pub use nbstack::MontageStack;
pub use queue::MontageQueue;
pub use skiplist::MontageSkipListMap;
pub use sortedlist::MontageSortedList;

/// Payload type tags used by the bundled structures (pass your own when
/// instantiating several structures of the same kind in one pool).
pub mod tags {
    pub const HASHMAP: u16 = 1;
    pub const QUEUE: u16 = 2;
    pub const NBQUEUE: u16 = 3;
    pub const NBMAP: u16 = 7;
    pub const SKIPLIST: u16 = 8;
    pub const STACK: u16 = 9;
    pub const GRAPH_VERTEX: u16 = 4;
    pub const GRAPH_EDGE: u16 = 5;
    pub const KVSTORE: u16 = 6;
    pub const SORTED_LIST: u16 = 10;
}
