//! A nonblocking (Michael–Scott) queue on Montage, following the paper's
//! Sec. 3.3 recipe: every operation linearizes on a `CAS_verify` — a
//! double-compare-single-swap that verifies the epoch clock — so an
//! operation linearizes in the same epoch that labels its payloads. A failed
//! epoch verification restarts the operation in the new epoch, preserving
//! lock freedom (the epoch advanced, so the system made progress).
//!
//! Transient nodes (reclaimed via crossbeam's epoch GC) carry the payload
//! handles and sequence numbers; the persistent state is identical to
//! [`crate::MontageQueue`]'s, so recovery is shared logic: sort payloads by
//! sequence number.

use std::sync::Arc;

use crossbeam::epoch::{self, Guard};
use montage::dcss::CasVerifyError;
use montage::{EpochSys, PHandle, RecoveredState, ThreadId, VerifyCell};

const SEQ_BYTES: usize = 8;

struct Node {
    /// Null for the dummy node.
    payload: PHandle<[u8]>,
    seq: u64,
    next: VerifyCell,
}

/// A lock-free buffered-persistent FIFO queue.
pub struct MontageNbQueue {
    esys: Arc<EpochSys>,
    tag: u16,
    head: VerifyCell,
    tail: VerifyCell,
}

// SAFETY: raw node pointers are managed through crossbeam-epoch.
unsafe impl Send for MontageNbQueue {}
unsafe impl Sync for MontageNbQueue {}

fn node_ptr(n: *const Node) -> u64 {
    n as u64
}

/// # Safety
/// `ptr` must hold a pointer obtained from `node_ptr` on a node that has not
/// yet been reclaimed; the guard pins the epoch for the reference's lifetime.
unsafe fn node_ref(ptr: u64, _g: &Guard) -> &Node {
    &*(ptr as *const Node)
}

impl MontageNbQueue {
    pub fn new(esys: Arc<EpochSys>, tag: u16) -> Self {
        Self::with_items(esys, tag, Vec::new())
    }

    /// Rebuilds from recovered payloads (sorted by sequence number).
    pub fn recover(esys: Arc<EpochSys>, tag: u16, rec: &RecoveredState) -> Self {
        let mut items: Vec<(u64, PHandle<[u8]>)> = rec
            .shards
            .iter()
            .flatten()
            .filter(|it| it.tag == tag)
            .map(|it| {
                let seq = rec.with_bytes(it, |b| {
                    u64::from_le_bytes(b[..SEQ_BYTES].try_into().unwrap())
                });
                (seq, it.handle())
            })
            .collect();
        items.sort_unstable_by_key(|&(s, _)| s);
        Self::with_items(esys, tag, items)
    }

    fn with_items(esys: Arc<EpochSys>, tag: u16, items: Vec<(u64, PHandle<[u8]>)>) -> Self {
        let dummy_seq = items.first().map_or(0, |&(s, _)| s.wrapping_sub(1));
        let dummy = Box::into_raw(Box::new(Node {
            payload: PHandle::null(),
            seq: dummy_seq,
            next: VerifyCell::new(0),
        }));
        let q = MontageNbQueue {
            esys,
            tag,
            head: VerifyCell::new(node_ptr(dummy)),
            tail: VerifyCell::new(node_ptr(dummy)),
        };
        // Chain the recovered items (single-threaded construction).
        let mut tail = dummy;
        for (seq, payload) in items {
            let n = Box::into_raw(Box::new(Node {
                payload,
                seq,
                next: VerifyCell::new(0),
            }));
            // SAFETY: single-threaded construction; every pointer in the
            // chain was just produced by Box::into_raw above.
            unsafe { (*tail).next.store_unsync(node_ptr(n)) };
            tail = n;
        }
        q.tail.store_unsync(node_ptr(tail));
        q
    }

    pub fn esys(&self) -> &Arc<EpochSys> {
        &self.esys
    }

    /// Appends `value` (lock-free).
    pub fn enqueue(&self, tid: ThreadId, value: &[u8]) {
        loop {
            let g = self.esys.begin_op(tid);
            let eg = epoch::pin();
            let tail_ptr = self.tail.load(&self.esys);
            // SAFETY: loaded from the live queue under the pinned guard.
            let tail = unsafe { node_ref(tail_ptr, &eg) };
            let next = tail.next.load(&self.esys);
            if next != 0 {
                // Stale tail: help swing it, then retry.
                self.tail.cas_plain(&self.esys, tail_ptr, next);
                continue;
            }
            let seq = tail.seq.wrapping_add(1);
            let mut buf = Vec::with_capacity(SEQ_BYTES + value.len());
            buf.extend_from_slice(&seq.to_le_bytes());
            buf.extend_from_slice(value);
            let payload = self.esys.pnew_bytes(&g, self.tag, &buf);
            let node = Box::into_raw(Box::new(Node {
                payload,
                seq,
                next: VerifyCell::new(0),
            }));
            match tail.next.cas_verify(&self.esys, &g, 0, node_ptr(node)) {
                Ok(()) => {
                    self.tail.cas_plain(&self.esys, tail_ptr, node_ptr(node));
                    return;
                }
                Err(CasVerifyError::Conflict(_)) | Err(CasVerifyError::Epoch(_)) => {
                    // Roll back: the payload was created this epoch and never
                    // linked, so PDELETE discards it immediately.
                    let _ = self.esys.pdelete(&g, payload);
                    // SAFETY: the CAS failed, so `node` was never published;
                    // this thread still owns it exclusively.
                    drop(unsafe { Box::from_raw(node) });
                }
            }
        }
    }

    /// Removes the oldest value (lock-free).
    pub fn dequeue(&self, tid: ThreadId) -> Option<Vec<u8>> {
        loop {
            let g = self.esys.begin_op(tid);
            let eg = epoch::pin();
            let head_ptr = self.head.load(&self.esys);
            // SAFETY: loaded from the live queue under the pinned guard.
            let head = unsafe { node_ref(head_ptr, &eg) };
            let next = head.next.load(&self.esys);
            if next == 0 {
                return None;
            }
            let tail_ptr = self.tail.load(&self.esys);
            if head_ptr == tail_ptr {
                self.tail.cas_plain(&self.esys, tail_ptr, next);
                continue;
            }
            // SAFETY: `next` was read under the pinned guard, so the node
            // cannot be reclaimed before `eg` drops.
            let next_node = unsafe { node_ref(next, &eg) };
            // Copy the value out before linearizing; if our CAS loses, the
            // copy is discarded (the bytes may then be a competitor's
            // garbage, which is fine — we never return them).
            let value = self
                .esys
                .peek_bytes_unsafe(next_node.payload, |b| b[SEQ_BYTES.min(b.len())..].to_vec());
            match self.head.cas_verify(&self.esys, &g, head_ptr, next) {
                Ok(()) => {
                    let _ = self.esys.pdelete(&g, next_node.payload);
                    // SAFETY: the CAS unlinked the old dummy, so no new
                    // reader can reach it; the deferred drop runs after every
                    // pinned guard that might still hold it has unpinned.
                    unsafe {
                        eg.defer_unchecked(move || drop(Box::from_raw(head_ptr as *mut Node)));
                    }
                    return Some(value);
                }
                Err(_) => continue,
            }
        }
    }

    /// Approximate length (racy, O(n); for tests).
    pub fn len_approx(&self) -> usize {
        let eg = epoch::pin();
        let mut n = 0;
        let mut cur = self.head.load(&self.esys);
        loop {
            // SAFETY: walked from head under the pinned guard.
            let node = unsafe { node_ref(cur, &eg) };
            let next = node.next.load(&self.esys);
            if next == 0 {
                return n;
            }
            n += 1;
            cur = next;
        }
    }
}

impl Drop for MontageNbQueue {
    fn drop(&mut self) {
        // Single-threaded at drop: free the node chain.
        let eg = epoch::pin();
        let mut cur = self.head.load(&self.esys);
        while cur != 0 {
            // SAFETY: `&mut self` in Drop means no other thread holds the
            // queue; every chained node is exclusively ours to read and free.
            let next = unsafe { node_ref(cur, &eg) }.next.load(&self.esys);
            // SAFETY: see above.
            drop(unsafe { Box::from_raw(cur as *mut Node) });
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn fifo_single_thread() {
        let s = sys();
        let q = MontageNbQueue::new(s.clone(), 3);
        let tid = s.register_thread();
        for i in 0..20u32 {
            q.enqueue(tid, &i.to_le_bytes());
        }
        assert_eq!(q.len_approx(), 20);
        for i in 0..20u32 {
            assert_eq!(q.dequeue(tid).unwrap(), i.to_le_bytes());
        }
        assert!(q.dequeue(tid).is_none());
    }

    #[test]
    fn survives_epoch_advances_mid_stream() {
        let s = sys();
        let q = MontageNbQueue::new(s.clone(), 3);
        let tid = s.register_thread();
        for i in 0..50u32 {
            q.enqueue(tid, &i.to_le_bytes());
            if i % 7 == 0 {
                s.advance_epoch();
            }
        }
        for i in 0..50u32 {
            if i % 5 == 0 {
                s.advance_epoch();
            }
            assert_eq!(q.dequeue(tid).unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let s = sys();
        let q = Arc::new(MontageNbQueue::new(s.clone(), 3));
        let mut handles = vec![];
        const PER: u32 = 400;
        for t in 0..2u32 {
            let q = q.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                for i in 0..PER {
                    q.enqueue(tid, &(t * 100_000 + i).to_le_bytes());
                }
                Vec::new()
            }));
        }
        for _ in 0..2 {
            let q = q.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut got = vec![];
                while got.len() < (PER / 2) as usize {
                    if let Some(v) = q.dequeue(tid) {
                        got.push(u32::from_le_bytes(v.try_into().unwrap()));
                    }
                }
                got
            }));
        }
        // Stir the epochs while they run.
        for _ in 0..20 {
            s.advance_epoch();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let tid = s.register_thread();
        while let Some(v) = q.dequeue(tid) {
            all.push(u32::from_le_bytes(v.try_into().unwrap()));
        }
        all.sort_unstable();
        let mut expect: Vec<u32> = (0..2)
            .flat_map(|t| (0..PER).map(move |i| t * 100_000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn per_producer_order_is_preserved() {
        let s = sys();
        let q = Arc::new(MontageNbQueue::new(s.clone(), 3));
        let s2 = s.clone();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            let tid = s2.register_thread();
            for i in 0..500u32 {
                q2.enqueue(tid, &i.to_le_bytes());
            }
        });
        let tid = s.register_thread();
        let mut last = None;
        let mut seen = 0;
        while seen < 500 {
            if let Some(v) = q.dequeue(tid) {
                let v = u32::from_le_bytes(v.try_into().unwrap());
                if let Some(l) = last {
                    assert!(v > l, "FIFO violated: {v} after {l}");
                }
                last = Some(v);
                seen += 1;
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn recovery_restores_contiguous_prefix() {
        let s = sys();
        let q = MontageNbQueue::new(s.clone(), 3);
        let tid = s.register_thread();
        for i in 0..15u32 {
            q.enqueue(tid, &i.to_le_bytes());
        }
        for _ in 0..4 {
            q.dequeue(tid);
        }
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let q2 = MontageNbQueue::recover(rec.esys.clone(), 3, &rec);
        let tid2 = rec.esys.register_thread();
        for i in 4..15u32 {
            assert_eq!(q2.dequeue(tid2).unwrap(), i.to_le_bytes());
        }
        assert!(q2.dequeue(tid2).is_none());
    }
}
