//! The Montage queue: a single-lock FIFO queue whose persistent state is
//! just the set of item payloads, each labelled with a consecutive sequence
//! number (paper Sec. 3: "a queue needs to keep its items and their order:
//! it might label payloads with consecutive integers from i (the head) to j
//! (the tail)").
//!
//! The transient state — the lock and a deque of `(seq, handle)` pairs — is
//! rebuilt after a crash by sorting recovered payloads by sequence number.

use std::collections::VecDeque;
use std::sync::Arc;

use montage::sync::Mutex;
use montage::{EpochSys, PHandle, RecoveredState, ThreadId};
use pmem::PmemFault;

/// Persistent layout of one item: `seq: u64` then the value bytes.
const SEQ_BYTES: usize = 8;

struct Inner {
    items: VecDeque<(u64, PHandle<[u8]>)>,
    /// Sequence number for the next enqueue.
    next_seq: u64,
}

/// A buffered-persistent FIFO queue (single global lock, as benchmarked in
/// the paper's Fig. 5/6/8).
///
/// ```
/// use montage::{EpochSys, EsysConfig};
/// use montage_ds::{tags, MontageQueue};
/// use pmem::{PmemConfig, PmemPool};
///
/// let esys = EpochSys::format(
///     PmemPool::new(PmemConfig::strict_for_test(16 << 20)),
///     EsysConfig::default(),
/// );
/// let tid = esys.register_thread();
/// let q = MontageQueue::new(esys.clone(), tags::QUEUE);
/// q.enqueue(tid, b"first");
/// q.enqueue(tid, b"second");
/// assert_eq!(q.dequeue(tid).unwrap(), b"first");
/// ```
pub struct MontageQueue {
    esys: Arc<EpochSys>,
    tag: u16,
    inner: Mutex<Inner>,
}

impl MontageQueue {
    /// Creates an empty queue whose payloads carry `tag`.
    pub fn new(esys: Arc<EpochSys>, tag: u16) -> Self {
        MontageQueue {
            esys,
            tag,
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                next_seq: 0,
            }),
        }
    }

    /// Rebuilds a queue from recovered payloads with this queue's tag.
    ///
    /// Matching the paper's recovery sketch, this is ordinary application
    /// code: filter by tag, decode the sequence number, sort.
    pub fn recover(esys: Arc<EpochSys>, tag: u16, rec: &RecoveredState) -> Self {
        let mut items: Vec<(u64, PHandle<[u8]>)> = rec
            .shards
            .iter()
            .flatten()
            .filter(|it| it.tag == tag)
            .map(|it| {
                let seq = rec.with_bytes(it, |b| {
                    u64::from_le_bytes(b[..SEQ_BYTES].try_into().unwrap())
                });
                (seq, it.handle())
            })
            .collect();
        items.sort_unstable_by_key(|&(seq, _)| seq);
        debug_assert!(
            items.windows(2).all(|w| w[0].0 + 1 == w[1].0),
            "recovered sequence numbers must be contiguous"
        );
        let next_seq = items.last().map_or(0, |&(s, _)| s + 1);
        MontageQueue {
            esys,
            tag,
            inner: Mutex::new(Inner {
                items: items.into(),
                next_seq,
            }),
        }
    }

    pub fn esys(&self) -> &Arc<EpochSys> {
        &self.esys
    }

    /// Appends `value`.
    pub fn enqueue(&self, tid: ThreadId, value: &[u8]) {
        let mut inner = self.inner.lock();
        let g = self.esys.begin_op(tid);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let mut buf = Vec::with_capacity(SEQ_BYTES + value.len());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(value);
        let h = self.esys.pnew_bytes(&g, self.tag, &buf);
        inner.items.push_back((seq, h));
    }

    /// Removes and returns the oldest value, if any.
    pub fn dequeue(&self, tid: ThreadId) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        let g = self.esys.begin_op(tid);
        let (_seq, h) = inner.items.pop_front()?;
        let value = self
            .esys
            .peek_bytes(&g, h, |b| b[SEQ_BYTES..].to_vec())
            .expect("queue payloads cannot be newer than the op under the lock");
        self.esys
            .pdelete(&g, h)
            .expect("queue payloads cannot be newer than the op under the lock");
        Some(value)
    }

    /// Checked [`MontageQueue::enqueue`] for fault-injection runs: refuses
    /// to start on a crashed pool and reports a fault plan tripping
    /// mid-operation, so sweep workloads unwind instead of panicking.
    pub fn try_enqueue(&self, tid: ThreadId, value: &[u8]) -> Result<(), PmemFault> {
        let mut inner = self.inner.lock();
        let g = self.esys.try_begin_op(tid)?;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let mut buf = Vec::with_capacity(SEQ_BYTES + value.len());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(value);
        let h = self.esys.pnew_bytes(&g, self.tag, &buf);
        inner.items.push_back((seq, h));
        drop(g);
        self.esys.pool().check_fault()
    }

    /// Checked [`MontageQueue::dequeue`]; see [`MontageQueue::try_enqueue`].
    pub fn try_dequeue(&self, tid: ThreadId) -> Result<Option<Vec<u8>>, PmemFault> {
        let mut inner = self.inner.lock();
        let g = self.esys.try_begin_op(tid)?;
        let Some((_seq, h)) = inner.items.pop_front() else {
            return Ok(None);
        };
        let value = self
            .esys
            .peek_bytes(&g, h, |b| b[SEQ_BYTES..].to_vec())
            .expect("queue payloads cannot be newer than the op under the lock");
        self.esys
            .pdelete(&g, h)
            .expect("queue payloads cannot be newer than the op under the lock");
        drop(g);
        self.esys.pool().check_fault()?;
        Ok(Some(value))
    }

    /// Like [`MontageQueue::dequeue`] but avoids copying the value out —
    /// used by throughput benchmarks.
    pub fn dequeue_with<R>(&self, tid: ThreadId, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let mut inner = self.inner.lock();
        let g = self.esys.begin_op(tid);
        let (_seq, h) = inner.items.pop_front()?;
        let r = self.esys.peek_bytes(&g, h, |b| f(&b[SEQ_BYTES..])).unwrap();
        self.esys.pdelete(&g, h).unwrap();
        Some(r)
    }

    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (head, next) sequence numbers — `head..next` are the live items.
    pub fn seq_bounds(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        let head = inner.items.front().map_or(inner.next_seq, |&(s, _)| s);
        (head, inner.next_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(32 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn fifo_order() {
        let s = sys();
        let q = MontageQueue::new(s.clone(), 2);
        let tid = s.register_thread();
        for i in 0..10u32 {
            q.enqueue(tid, &i.to_le_bytes());
        }
        for i in 0..10u32 {
            assert_eq!(q.dequeue(tid).unwrap(), i.to_le_bytes());
        }
        assert!(q.dequeue(tid).is_none());
    }

    #[test]
    fn len_tracks_operations() {
        let s = sys();
        let q = MontageQueue::new(s.clone(), 2);
        let tid = s.register_thread();
        assert!(q.is_empty());
        q.enqueue(tid, b"a");
        q.enqueue(tid, b"b");
        assert_eq!(q.len(), 2);
        q.dequeue(tid);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn concurrent_enqueue_dequeue_conserves_items() {
        let s = sys();
        let q = Arc::new(MontageQueue::new(s.clone(), 2));
        let mut handles = vec![];
        for t in 0..4u32 {
            let q = q.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut popped = vec![];
                for i in 0..500u32 {
                    q.enqueue(tid, &(t * 1000 + i).to_le_bytes());
                    if i % 2 == 0 {
                        if let Some(v) = q.dequeue(tid) {
                            popped.push(u32::from_le_bytes(v.try_into().unwrap()));
                        }
                    }
                }
                popped
            }));
        }
        let mut seen: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let tid = s.register_thread();
        while let Some(v) = q.dequeue(tid) {
            seen.push(u32::from_le_bytes(v.try_into().unwrap()));
        }
        seen.sort_unstable();
        let mut expect: Vec<u32> = (0..4)
            .flat_map(|t| (0..500).map(move |i| t * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn recovery_restores_fifo_prefix() {
        let s = sys();
        let q = MontageQueue::new(s.clone(), 2);
        let tid = s.register_thread();
        for i in 0..20u32 {
            q.enqueue(tid, &i.to_le_bytes());
        }
        for _ in 0..5 {
            q.dequeue(tid);
        }
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 2);
        let q2 = MontageQueue::recover(rec.esys.clone(), 2, &rec);
        assert_eq!(q2.len(), 15);
        assert_eq!(q2.seq_bounds(), (5, 20));
        let tid2 = rec.esys.register_thread();
        for i in 5..20u32 {
            assert_eq!(q2.dequeue(tid2).unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn unsynced_tail_is_lost_but_prefix_consistent() {
        let s = sys();
        let q = MontageQueue::new(s.clone(), 2);
        let tid = s.register_thread();
        for i in 0..10u32 {
            q.enqueue(tid, &i.to_le_bytes());
        }
        s.sync();
        for i in 10..20u32 {
            q.enqueue(tid, &i.to_le_bytes()); // never synced
        }
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let q2 = MontageQueue::recover(rec.esys.clone(), 2, &rec);
        // Everything synced must be there; the unsynced tail must be a
        // (possibly empty) contiguous extension — never a gap.
        let (head, next) = q2.seq_bounds();
        assert_eq!(head, 0);
        assert!(
            (10..=20).contains(&next),
            "prefix property violated: next={next}"
        );
    }

    #[test]
    fn queue_after_recovery_continues_sequence() {
        let s = sys();
        let q = MontageQueue::new(s.clone(), 2);
        let tid = s.register_thread();
        q.enqueue(tid, b"x");
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let q2 = MontageQueue::recover(rec.esys.clone(), 2, &rec);
        let tid2 = rec.esys.register_thread();
        q2.enqueue(tid2, b"y");
        assert_eq!(q2.seq_bounds(), (0, 2));
        assert_eq!(q2.dequeue(tid2).unwrap(), b"x");
        assert_eq!(q2.dequeue(tid2).unwrap(), b"y");
    }
}
