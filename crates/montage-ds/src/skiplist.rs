//! An ordered map on Montage: a lazy skip list (Herlihy–Shavit style, with
//! per-node locks and wait-free lookups) — one of the "various tree-based
//! maps" the paper reports developing. The entire skip-list index (towers,
//! locks, marks) is transient; the persistent state is the familiar bag of
//! key/value payloads, plus ordered iteration falls out of recovery by
//! sorting. Demonstrates that Montage's payload discipline is independent
//! of the lookup structure's shape.
//!
//! Synchronization follows the lazy-list recipe: inserts lock the
//! predecessor at every level and validate; removes mark the victim
//! (logical delete = the linearization point, performed inside the Montage
//! operation together with `PDELETE`) before unlinking; lookups are
//! lock-free over the transient towers.

use montage::sync::{spin_loop, uninstrumented as raw, AtomicBool, Mutex, Ordering};
use std::sync::Arc;

use montage::{EpochSys, PHandle, RecoveredState, ThreadId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const MAX_LEVEL: usize = 16;

struct Node<K> {
    key: Option<K>, // None for the head sentinel
    payload: Mutex<PHandle<[u8]>>,
    /// next[level] — raw pointers, managed by crossbeam-epoch.
    next: Vec<crossbeam::epoch::Atomic<Node<K>>>,
    marked: AtomicBool,
    fully_linked: AtomicBool,
    lock: Mutex<()>,
}

impl<K> Node<K> {
    fn new(key: Option<K>, payload: PHandle<[u8]>, height: usize) -> Self {
        Node {
            key,
            payload: Mutex::new(payload),
            next: (0..height)
                .map(|_| crossbeam::epoch::Atomic::null())
                .collect(),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(false),
            lock: Mutex::new(()),
        }
    }

    fn height(&self) -> usize {
        self.next.len()
    }
}

/// A buffered-persistent ordered map (lazy skip list).
pub struct MontageSkipListMap<K> {
    esys: Arc<EpochSys>,
    tag: u16,
    head: crossbeam::epoch::Atomic<Node<K>>,
    len: raw::AtomicUsize,
}

// SAFETY: the tower is only touched under crossbeam-epoch guards and all
// interior mutability goes through atomics or per-node locks, so with
// `K: Send + Sync` the map as a whole is safe to share across threads.
unsafe impl<K: Send + Sync> Send for MontageSkipListMap<K> {}
unsafe impl<K: Send + Sync> Sync for MontageSkipListMap<K> {}

impl<K: Copy + Ord + Send + Sync + 'static> MontageSkipListMap<K> {
    pub fn new(esys: Arc<EpochSys>, tag: u16) -> Self {
        let head = crossbeam::epoch::Atomic::new(Node::new(None, PHandle::null(), MAX_LEVEL));
        MontageSkipListMap {
            esys,
            tag,
            head,
            len: raw::AtomicUsize::new(0),
        }
    }

    /// Rebuilds from recovered payloads (keys extracted from payload bytes).
    pub fn recover(esys: Arc<EpochSys>, tag: u16, rec: &RecoveredState) -> Self {
        let map = Self::new(esys, tag);
        let tid = map.esys.register_thread();
        for item in rec.shards.iter().flatten().filter(|it| it.tag == tag) {
            let key = rec.with_bytes(item, |b| {
                let mut k = std::mem::MaybeUninit::<K>::uninit();
                // SAFETY: `encode` laid the key image out as the first
                // size_of::<K>() payload bytes, so this round-trips a value
                // that was valid when written.
                unsafe {
                    // lint: allow(raw-write): copies pool bytes into a transient stack value, not into the pool
                    std::ptr::copy_nonoverlapping(
                        b.as_ptr(),
                        k.as_mut_ptr() as *mut u8,
                        std::mem::size_of::<K>(),
                    );
                    k.assume_init()
                }
            });
            map.insert_handle(tid, key, item.handle());
        }
        map
    }

    fn random_height(&self) -> usize {
        // Geometric(1/2), capped.
        let mut rng = SmallRng::from_entropy();
        let mut h = 1;
        while h < MAX_LEVEL && rng.gen::<bool>() {
            h += 1;
        }
        h
    }

    /// Finds predecessors/successors at every level. Returns the level at
    /// which an unmarked `key` node was found (or None).
    #[allow(clippy::type_complexity, clippy::while_let_loop)]
    fn find<'g>(
        &self,
        key: &K,
        guard: &'g crossbeam::epoch::Guard,
    ) -> (
        Vec<crossbeam::epoch::Shared<'g, Node<K>>>,
        Vec<crossbeam::epoch::Shared<'g, Node<K>>>,
        Option<usize>,
    ) {
        // ord(acquire): traversals must see the node fields published by the
        // linking store/CAS.
        let head = self.head.load(Ordering::Acquire, guard);
        let mut preds = vec![head; MAX_LEVEL];
        let mut succs = vec![crossbeam::epoch::Shared::null(); MAX_LEVEL];
        let mut found = None;
        let mut pred = head;
        for level in (0..MAX_LEVEL).rev() {
            // SAFETY: every node reachable from `head` is retired only via
            // `defer_destroy` under this same epoch `guard`, so the Shared
            // pointers we traverse stay valid for the whole call.
            // ord(acquire): traversals must see the node fields published by the
            // linking store/CAS.
            let mut curr = unsafe { pred.deref() }.next[level].load(Ordering::Acquire, guard);
            loop {
                // SAFETY: same reachability argument as the `deref` above.
                let Some(curr_ref) = (unsafe { curr.as_ref() }) else {
                    break;
                };
                match curr_ref.key.as_ref().unwrap().cmp(key) {
                    std::cmp::Ordering::Less => {
                        pred = curr;
                        // ord(acquire): traversals must see the node fields published by the
                        // linking store/CAS.
                        curr = curr_ref.next[level].load(Ordering::Acquire, guard);
                    }
                    std::cmp::Ordering::Equal => {
                        if found.is_none() && !curr_ref.marked.load(Ordering::Acquire) {
                            found = Some(level);
                        }
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            preds[level] = pred;
            succs[level] = curr;
        }
        (preds, succs, found)
    }

    fn encode(&self, key: &K, value: &[u8]) -> Vec<u8> {
        let ksize = std::mem::size_of::<K>();
        let mut buf = vec![0u8; ksize + value.len()];
        // SAFETY: `buf` holds at least `ksize` bytes and `key` is a live
        // borrow, so reading K's bytes into the Vec is in bounds.
        unsafe {
            // lint: allow(raw-write): serializes the key into a transient Vec; the pool copy goes through pnew_bytes
            std::ptr::copy_nonoverlapping(key as *const K as *const u8, buf.as_mut_ptr(), ksize);
        }
        buf[ksize..].copy_from_slice(value);
        buf
    }

    /// Inserts if absent; returns `false` if the key exists.
    pub fn insert(&self, tid: ThreadId, key: K, value: &[u8]) -> bool {
        let bytes = self.encode(&key, value);
        self.insert_with(tid, key, |esys, g, tag| esys.pnew_bytes(g, tag, &bytes))
    }

    fn insert_handle(&self, tid: ThreadId, key: K, h: PHandle<[u8]>) -> bool {
        self.insert_with(tid, key, |_esys, _g, _tag| h)
    }

    fn insert_with(
        &self,
        tid: ThreadId,
        key: K,
        mk_payload: impl Fn(&EpochSys, &montage::OpGuard<'_>, u16) -> PHandle<[u8]>,
    ) -> bool {
        let height = self.random_height();
        loop {
            let guard = crossbeam::epoch::pin();
            let (preds, succs, found) = self.find(&key, &guard);
            if let Some(lf) = found {
                // SAFETY: `found` nodes are protected by the pinned `guard`.
                let node = unsafe { succs[lf].deref() };
                // Wait until it is fully linked or marked, then report.
                // ord(acquire): pairs with the corresponding Release publish.
                while !node.fully_linked.load(Ordering::Acquire)
                    && !node.marked.load(Ordering::Acquire)
                {
                    spin_loop();
                }
                if !node.marked.load(Ordering::Acquire) {
                    return false;
                }
                continue; // being removed: retry
            }

            // Lock predecessors bottom-up and validate.
            let mut locks = Vec::with_capacity(height);
            let mut valid = true;
            let mut locked_ptrs: Vec<*const Node<K>> = Vec::with_capacity(height);
            for (level, item) in preds.iter().enumerate().take(height) {
                // SAFETY: predecessors from `find` are guard-protected.
                let pred = unsafe { item.deref() };
                // Avoid double-locking the same predecessor node.
                if !locked_ptrs.contains(&(pred as *const _)) {
                    locks.push(pred.lock.lock());
                    locked_ptrs.push(pred as *const _);
                }
                // ord(acquire): traversals must see the node fields published by the
                // linking store/CAS.
                let succ = pred.next[level].load(Ordering::Acquire, &guard);
                if pred.marked.load(Ordering::Acquire) || succ != succs[level] {
                    valid = false;
                    break;
                }
            }
            if !valid {
                drop(locks);
                continue;
            }

            // Montage operation: create the payload, then link.
            let g = self.esys.begin_op(tid);
            let payload = mk_payload(&self.esys, &g, self.tag);
            let node = crossbeam::epoch::Owned::new(Node::new(Some(key), payload, height));
            for (level, succ) in succs.iter().enumerate().take(height) {
                // ord(relaxed): pre-publication or single-threaded write; the
                // publishing store/CAS provides the ordering.
                node.next[level].store(succ.with_tag(0), Ordering::Relaxed);
            }
            let node = node.into_shared(&guard);
            for (level, item) in preds.iter().enumerate().take(height) {
                // SAFETY: predecessors are guard-protected and locked above.
                // ord(publish): makes the node's prior initialization visible to
                // traversals that follow this link.
                unsafe { item.deref() }.next[level].store(node, Ordering::Release);
            }
            // SAFETY: `node` was allocated above and is still alive; it can
            // only be retired after `fully_linked` lets removers see it.
            unsafe { node.deref() }
                .fully_linked
                // ord(publish): makes the node's prior initialization visible to
                // traversals that follow this link.
                .store(true, Ordering::Release);
            self.len.fetch_add(1, Ordering::Relaxed);
            return true;
        }
    }

    /// Lock-free lookup.
    pub fn get<R>(&self, _tid: ThreadId, key: &K, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let guard = crossbeam::epoch::pin();
        let ksize = std::mem::size_of::<K>();
        let (_, succs, found) = self.find(key, &guard);
        let lf = found?;
        // SAFETY: the pinned `guard` keeps the found node alive.
        let node = unsafe { succs[lf].deref() };
        // ord(acquire): pairs with the corresponding Release publish.
        if !node.fully_linked.load(Ordering::Acquire) || node.marked.load(Ordering::Acquire) {
            return None;
        }
        let h = *node.payload.lock();
        Some(self.esys.peek_bytes_unsafe(h, |b| f(&b[ksize..])))
    }

    /// Updates the value for an existing key in place (Montage `set`);
    /// returns `false` if absent. Values must keep their size.
    pub fn update(&self, tid: ThreadId, key: &K, value: &[u8]) -> bool {
        let ksize = std::mem::size_of::<K>();
        let guard = crossbeam::epoch::pin();
        let (_, succs, found) = self.find(key, &guard);
        let Some(lf) = found else {
            return false;
        };
        // SAFETY: the pinned `guard` keeps the found node alive.
        let node = unsafe { succs[lf].deref() };
        let _l = node.lock.lock();
        // ord(acquire): pairs with the corresponding Release publish.
        if node.marked.load(Ordering::Acquire) || !node.fully_linked.load(Ordering::Acquire) {
            return false;
        }
        let g = self.esys.begin_op(tid);
        let mut h = node.payload.lock();
        let same_len = self
            .esys
            .peek_bytes_unsafe(*h, |b| b.len() == ksize + value.len());
        if same_len {
            *h = self
                .esys
                .set_bytes(&g, *h, |b| b[ksize..].copy_from_slice(value))
                .expect("node lock orders epochs");
        } else {
            let nh = self.esys.pnew_bytes(&g, self.tag, &self.encode(key, value));
            let _ = self.esys.pdelete(&g, *h);
            *h = nh;
        }
        true
    }

    /// Removes `key`; returns `false` if absent.
    pub fn remove(&self, tid: ThreadId, key: &K) -> bool {
        let mut victim_height = 0;
        loop {
            let guard = crossbeam::epoch::pin();
            let (preds, succs, found) = self.find(key, &guard);
            let Some(lf) = found else {
                return false;
            };
            let victim_sh = succs[lf];
            // SAFETY: the pinned `guard` keeps the victim alive until the
            // deferred destruction below runs.
            let victim = unsafe { victim_sh.deref() };
            if victim_height == 0 {
                // ord(acquire): pairs with the corresponding Release publish.
                if !victim.fully_linked.load(Ordering::Acquire)
                    || victim.marked.load(Ordering::Acquire)
                    || lf + 1 != victim.height()
                {
                    if victim.marked.load(Ordering::Acquire) {
                        return false;
                    }
                    continue;
                }
                victim_height = victim.height();
            }

            // Lock the victim and mark it (logical delete + PDELETE = the
            // failure-atomic linearization).
            let _vl = victim.lock.lock();
            // ord(acquire): pairs with the corresponding Release publish.
            if victim.marked.load(Ordering::Acquire) {
                return false;
            }

            // Lock and validate predecessors.
            let mut locks = Vec::new();
            let mut locked_ptrs: Vec<*const Node<K>> = Vec::new();
            let mut valid = true;
            for (level, item) in preds.iter().enumerate().take(victim_height) {
                // SAFETY: predecessors from `find` are guard-protected.
                let pred = unsafe { item.deref() };
                if !locked_ptrs.contains(&(pred as *const _)) {
                    locks.push(pred.lock.lock());
                    locked_ptrs.push(pred as *const _);
                }
                // ord(acquire): traversals must see the node fields published by the
                // linking store/CAS.
                let succ = pred.next[level].load(Ordering::Acquire, &guard);
                if pred.marked.load(Ordering::Acquire) || succ != victim_sh {
                    valid = false;
                    break;
                }
            }
            if !valid {
                drop(locks);
                continue;
            }

            let g = self.esys.begin_op(tid);
            // ord(publish): makes the node's prior initialization visible to
            // traversals that follow this link.
            victim.marked.store(true, Ordering::Release);
            let h = *victim.payload.lock();
            let _ = self.esys.pdelete(&g, h);
            for level in (0..victim_height).rev() {
                let succ = victim.next[level].load(Ordering::Acquire, &guard);
                // SAFETY: predecessors are guard-protected and locked above.
                // ord(publish): makes the node's prior initialization visible to
                // traversals that follow this link.
                unsafe { preds[level].deref() }.next[level].store(succ, Ordering::Release);
            }
            self.len.fetch_sub(1, Ordering::Relaxed);
            // SAFETY: the victim is marked and unlinked from every level under
            // the locks, so no new references form; destruction is deferred
            // past all current guards.
            unsafe {
                guard.defer_destroy(victim_sh);
            }
            return true;
        }
    }

    /// Ascending iteration over keys (racy snapshot; for tests/examples).
    pub fn keys(&self) -> Vec<K> {
        let guard = crossbeam::epoch::pin();
        let mut out = Vec::new();
        // ord(acquire): traversals must see the node fields published by the
        // linking store/CAS.
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: head and every reachable node are guard-protected.
        let mut cur = unsafe { head.deref() }.next[0].load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { cur.as_ref() } {
            if !node.marked.load(Ordering::Acquire) {
                out.push(*node.key.as_ref().unwrap());
            }
            // ord(acquire): traversals must see the node fields published by the
            // linking store/CAS.
            cur = node.next[0].load(Ordering::Acquire, &guard);
        }
        out
    }

    pub fn len(&self) -> usize {
        // ord(counter): size estimate only.
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K> Drop for MontageSkipListMap<K> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no other thread holds a guard into this
        // map, so the unprotected guard, the derefs, and reclaiming each node
        // exactly once via `into_owned` are all sound.
        let guard = unsafe { crossbeam::epoch::unprotected() };
        // ord(relaxed): `&mut self` — single-threaded teardown, nothing races.
        let mut cur = self.head.load(Ordering::Relaxed, guard);
        while !cur.is_null() {
            // SAFETY: see above — exclusive access during drop.
            // ord(relaxed): same exclusive-teardown argument as the head load.
            let next = unsafe { cur.deref() }.next[0].load(Ordering::Relaxed, guard);
            drop(unsafe { cur.into_owned() });
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn insert_get_remove_update() {
        let s = sys();
        let m = MontageSkipListMap::<u64>::new(s.clone(), 11);
        let tid = s.register_thread();
        assert!(m.insert(tid, 10, b"ten"));
        assert!(!m.insert(tid, 10, b"dup"));
        assert_eq!(m.get(tid, &10, |v| v.to_vec()).unwrap(), b"ten");
        assert!(m.update(tid, &10, b"TEN"));
        assert_eq!(m.get(tid, &10, |v| v.to_vec()).unwrap(), b"TEN");
        assert!(m.update(tid, &10, b"a longer replacement value"));
        assert_eq!(
            m.get(tid, &10, |v| v.to_vec()).unwrap(),
            b"a longer replacement value"
        );
        assert!(m.remove(tid, &10));
        assert!(!m.remove(tid, &10));
        assert!(m.get(tid, &10, |_| ()).is_none());
        assert!(!m.update(tid, &10, b"gone"));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = sys();
        let m = MontageSkipListMap::<u64>::new(s.clone(), 11);
        let tid = s.register_thread();
        for k in [50u64, 10, 90, 30, 70, 20, 80, 40, 60, 100] {
            m.insert(tid, k, &k.to_le_bytes());
        }
        m.remove(tid, &50);
        assert_eq!(m.keys(), vec![10, 20, 30, 40, 60, 70, 80, 90, 100]);
    }

    #[test]
    fn epoch_churn_during_mutation() {
        let s = sys();
        let m = MontageSkipListMap::<u64>::new(s.clone(), 11);
        let tid = s.register_thread();
        for i in 0..300u64 {
            m.insert(tid, i, &i.to_le_bytes());
            if i % 11 == 0 {
                s.advance_epoch();
            }
            if i % 3 == 0 {
                m.update(tid, &i, &(i * 2).to_le_bytes());
            }
            if i % 5 == 0 {
                m.remove(tid, &i);
            }
        }
        for i in 0..300u64 {
            let expect = i % 5 != 0;
            assert_eq!(m.get(tid, &i, |_| ()).is_some(), expect, "key {i}");
        }
    }

    #[test]
    fn concurrent_mixed_workload() {
        let s = sys();
        let m = Arc::new(MontageSkipListMap::<u64>::new(s.clone(), 11));
        let mut handles = vec![];
        for t in 0..4u64 {
            let m = m.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                for i in 0..400u64 {
                    let k = t * 100_000 + i;
                    assert!(m.insert(tid, k, &k.to_le_bytes()));
                    if i % 2 == 0 {
                        assert!(m.remove(tid, &k));
                    }
                }
            }));
        }
        for _ in 0..10 {
            s.advance_epoch();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 4 * 200);
        let keys = m.keys();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "sorted, no duplicates"
        );
        assert_eq!(keys.len(), 800);
    }

    #[test]
    fn contended_same_keys() {
        let s = sys();
        let m = Arc::new(MontageSkipListMap::<u64>::new(s.clone(), 11));
        let mut handles = vec![];
        for _ in 0..4 {
            let m = m.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut wins = 0;
                for k in 0..150u64 {
                    if m.insert(tid, k, b"x") {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(wins, 150);
        assert_eq!(m.len(), 150);
    }

    #[test]
    fn recovery_restores_sorted_map() {
        let s = sys();
        let m = MontageSkipListMap::<u64>::new(s.clone(), 11);
        let tid = s.register_thread();
        for i in 0..100u64 {
            m.insert(tid, i, &i.to_le_bytes());
        }
        for i in (0..100u64).step_by(4) {
            m.remove(tid, &i);
        }
        m.update(tid, &1, &999u64.to_le_bytes());
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 2);
        let m2 = MontageSkipListMap::<u64>::recover(rec.esys.clone(), 11, &rec);
        let tid2 = rec.esys.register_thread();
        assert_eq!(m2.len(), 75);
        assert_eq!(
            m2.get(tid2, &1, |v| v.to_vec()).unwrap(),
            999u64.to_le_bytes()
        );
        assert!(m2.get(tid2, &4, |_| ()).is_none());
        let keys = m2.keys();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys.len(), 75);
    }
}
