//! A nonblocking hashmap on Montage — the paper mentions ("in work not
//! reported here, we have developed nonblocking linked lists, queues, and
//! maps") without details; this is the natural construction from the
//! Sec. 3.3 recipe: each bucket is a Harris-style lock-free ordered list of
//! **transient** nodes, and every mutating operation linearizes through a
//! [`montage::VerifyCell::cas_verify`], so it linearizes in the same epoch
//! that labels its payloads.
//!
//! * Insert: create the payload, then DCSS the new node into the list; on
//!   epoch failure, roll back (same-epoch `PDELETE` frees the payload
//!   immediately) and restart in the new epoch — the paper's
//!   `OldSeeNewException` discipline, which keeps the structure lock-free
//!   rather than wait-free.
//! * Remove: the linearization point is a DCSS that *marks* the victim
//!   node's next pointer; the payload's anti-payload is created in the same
//!   operation; unlinking is physical cleanup.
//! * Lookup: `load_verify`-style reads only (no stores unless helping an
//!   in-flight DCSS).
//!
//! Transient nodes are reclaimed with crossbeam's epoch GC; persistent state
//! and recovery are identical to [`crate::MontageHashMap`]'s.

use montage::sync::uninstrumented::{AtomicUsize, Ordering};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crossbeam::epoch::{self, Guard};
use montage::dcss::CasVerifyError;
use montage::{EpochSys, PHandle, RecoveredState, ThreadId, VerifyCell};

/// Mark bit on the *value* stored in a node's next cell (pointers are
/// 8-aligned, so bit 0 is free even after the cell's own shift).
const MARK: u64 = 1;

struct Node<K> {
    key: K,
    payload: PHandle<[u8]>,
    next: VerifyCell,
}

fn ptr_of<K>(n: *const Node<K>) -> u64 {
    n as u64
}

/// # Safety
///
/// `v` must hold a pointer obtained from `ptr_of` on a node that has not yet
/// been reclaimed; the guard witnesses an epoch pin that delays reclamation.
unsafe fn node_ref<K>(v: u64, _g: &Guard) -> &Node<K> {
    &*((v & !MARK) as *const Node<K>)
}

#[inline]
fn is_marked(v: u64) -> bool {
    v & MARK == 1
}

/// A lock-free buffered-persistent hashmap.
pub struct MontageNbMap<K> {
    esys: Arc<EpochSys>,
    tag: u16,
    /// Bucket heads (sentinel-free: head cell stores the first node or 0).
    heads: Box<[VerifyCell]>,
    len: AtomicUsize,
    _k: std::marker::PhantomData<K>,
}

// SAFETY: raw node pointers are managed through crossbeam-epoch.
unsafe impl<K: Send + Sync> Send for MontageNbMap<K> {}
unsafe impl<K: Send + Sync> Sync for MontageNbMap<K> {}

impl<K: Copy + Ord + Hash + Send + Sync> MontageNbMap<K> {
    pub fn new(esys: Arc<EpochSys>, tag: u16, nbuckets: usize) -> Self {
        MontageNbMap {
            esys,
            tag,
            heads: (0..nbuckets).map(|_| VerifyCell::new(0)).collect(),
            len: AtomicUsize::new(0),
            _k: std::marker::PhantomData,
        }
    }

    /// Rebuilds from recovered payloads (single-threaded; parallelize by
    /// sharding buckets if needed — recovery-time contention is nil).
    pub fn recover(esys: Arc<EpochSys>, tag: u16, nbuckets: usize, rec: &RecoveredState) -> Self {
        let map = Self::new(esys, tag, nbuckets);
        let tid = map.esys.register_thread();
        for item in rec.shards.iter().flatten().filter(|it| it.tag == tag) {
            let key = rec.with_bytes(item, |b| {
                let mut k = std::mem::MaybeUninit::<K>::uninit();
                // SAFETY: `insert` laid the key image out as the first
                // size_of::<K>() payload bytes, so this round-trips a value
                // that was valid when written.
                unsafe {
                    // lint: allow(raw-write): copies pool bytes into a transient stack value, not into the pool
                    std::ptr::copy_nonoverlapping(
                        b.as_ptr(),
                        k.as_mut_ptr() as *mut u8,
                        std::mem::size_of::<K>(),
                    );
                    k.assume_init()
                }
            });
            // Reuse the insert path but attach the existing handle.
            map.insert_handle(tid, key, item.handle());
        }
        map
    }

    fn index(&self, key: &K) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.heads.len()
    }

    /// Finds (pred_cell, curr) such that `curr` is the first unmarked node
    /// with key >= `key` (or 0). Physically unlinks marked nodes on the way
    /// (Harris helping).
    fn seek<'g>(&'g self, head: &'g VerifyCell, key: &K, eg: &'g Guard) -> (&'g VerifyCell, u64) {
        'retry: loop {
            let mut pred_cell: &VerifyCell = head;
            let mut curr = pred_cell.load(&self.esys);
            loop {
                if curr == 0 {
                    return (pred_cell, 0);
                }
                debug_assert!(!is_marked(curr), "pred cell holds a marked pointer");
                // SAFETY: `curr` came from a live cell under the epoch pin.
                let curr_node = unsafe { node_ref::<K>(curr, eg) };
                let succ = curr_node.next.load(&self.esys);
                if is_marked(succ) {
                    // Help unlink the marked node (plain CAS — cleanup is
                    // not a linearization point).
                    if !pred_cell.cas_plain(&self.esys, curr, succ & !MARK) {
                        continue 'retry;
                    }
                    let garbage = curr;
                    // SAFETY: the CAS above unlinked `garbage`, and marked
                    // nodes are never re-linked, so this Box::from_raw runs
                    // exactly once, after all current pins drop.
                    unsafe {
                        eg.defer_unchecked(move || drop(Box::from_raw(garbage as *mut Node<K>)));
                    }
                    curr = succ & !MARK;
                    continue;
                }
                if curr_node.key >= *key {
                    return (pred_cell, curr);
                }
                pred_cell = &curr_node.next;
                curr = succ;
            }
        }
    }

    /// True iff `key` is present (read-only; helps in-flight DCSS only).
    pub fn get<R>(&self, _tid: ThreadId, key: &K, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let eg = epoch::pin();
        let ksize = std::mem::size_of::<K>();
        let head = &self.heads[self.index(key)];
        let mut curr = head.load(&self.esys);
        while curr != 0 {
            // SAFETY: `curr` came from a live cell under the epoch pin.
            let node = unsafe { node_ref::<K>(curr, &eg) };
            let succ = node.next.load(&self.esys);
            if node.key == *key {
                if is_marked(succ) {
                    return None; // logically deleted
                }
                return Some(
                    self.esys
                        .peek_bytes_unsafe(node.payload, |b| f(&b[ksize..])),
                );
            }
            if node.key > *key {
                return None;
            }
            curr = succ & !MARK;
        }
        None
    }

    /// Inserts if absent (lock-free); returns `false` if present.
    pub fn insert(&self, tid: ThreadId, key: K, value: &[u8]) -> bool {
        let ksize = std::mem::size_of::<K>();
        let mut bytes = vec![0u8; ksize + value.len()];
        // SAFETY: `bytes` holds at least `ksize` bytes, and `key` is a live
        // borrow, so reading K's bytes into the Vec is in bounds.
        unsafe {
            // lint: allow(raw-write): serializes the key into a transient Vec; the pool copy goes through pnew_bytes
            std::ptr::copy_nonoverlapping(&key as *const K as *const u8, bytes.as_mut_ptr(), ksize);
        }
        bytes[ksize..].copy_from_slice(value);

        loop {
            let eg = epoch::pin();
            let head = &self.heads[self.index(&key)];
            let g = self.esys.begin_op(tid);
            let (pred_cell, curr) = self.seek(head, &key, &eg);
            // SAFETY: `curr` came from `seek` under the epoch pin.
            if curr != 0 && unsafe { node_ref::<K>(curr, &eg) }.key == key {
                return false;
            }
            let payload = self.esys.pnew_bytes(&g, self.tag, &bytes);
            let node = Box::into_raw(Box::new(Node {
                key,
                payload,
                next: VerifyCell::new(curr),
            }));
            match pred_cell.cas_verify(&self.esys, &g, curr, ptr_of(node)) {
                Ok(()) => {
                    // ord(counter): size estimate only.
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(CasVerifyError::Conflict(_)) | Err(CasVerifyError::Epoch(_)) => {
                    // Roll back and restart (possibly in a new epoch).
                    let _ = self.esys.pdelete(&g, payload);
                    // SAFETY: the CAS failed, so `node` was never published;
                    // this thread still owns the allocation.
                    drop(unsafe { Box::from_raw(node) });
                }
            }
        }
    }

    /// Pre-built-handle insert used by recovery (no new payload creation).
    fn insert_handle(&self, tid: ThreadId, key: K, payload: PHandle<[u8]>) -> bool {
        loop {
            let eg = epoch::pin();
            let head = &self.heads[self.index(&key)];
            let g = self.esys.begin_op(tid);
            let (pred_cell, curr) = self.seek(head, &key, &eg);
            // SAFETY: `curr` came from `seek` under the epoch pin.
            if curr != 0 && unsafe { node_ref::<K>(curr, &eg) }.key == key {
                return false;
            }
            let node = Box::into_raw(Box::new(Node {
                key,
                payload,
                next: VerifyCell::new(curr),
            }));
            match pred_cell.cas_verify(&self.esys, &g, curr, ptr_of(node)) {
                Ok(()) => {
                    // ord(counter): size estimate only.
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                // SAFETY: the CAS failed, so `node` was never published.
                Err(_) => drop(unsafe { Box::from_raw(node) }),
            }
        }
    }

    /// Removes `key` (lock-free); returns `false` if absent.
    pub fn remove(&self, tid: ThreadId, key: &K) -> bool {
        loop {
            let eg = epoch::pin();
            let head = &self.heads[self.index(key)];
            let g = self.esys.begin_op(tid);
            let (_pred, curr) = self.seek(head, key, &eg);
            if curr == 0 {
                return false;
            }
            // SAFETY: `curr` came from `seek` under the epoch pin.
            let node = unsafe { node_ref::<K>(curr, &eg) };
            if node.key != *key {
                return false;
            }
            let succ = node.next.load(&self.esys);
            if is_marked(succ) {
                continue; // another remover won; re-seek (helps unlink)
            }
            // Linearization point: epoch-verified marking of the node.
            match node.next.cas_verify(&self.esys, &g, succ, succ | MARK) {
                Ok(()) => {
                    // Same operation: persistently delete the payload.
                    let _ = self.esys.pdelete(&g, node.payload);
                    // ord(counter): size estimate only.
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    // Physical unlink is opportunistic; seek() helps later.
                    drop(g);
                    let _ = self.seek(head, key, &eg);
                    return true;
                }
                Err(_) => continue,
            }
        }
    }

    pub fn len(&self) -> usize {
        // ord(counter): size estimate only.
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K> Drop for MontageNbMap<K> {
    fn drop(&mut self) {
        for head in self.heads.iter() {
            let mut cur = head.load(&self.esys) & !MARK;
            while cur != 0 {
                // SAFETY: `&mut self` proves no concurrent access; each node
                // is reachable from exactly one cell, so it is freed once.
                let node = unsafe { Box::from_raw(cur as *mut Node<K>) };
                cur = node.next.load(&self.esys) & !MARK;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let s = sys();
        let m = MontageNbMap::<u64>::new(s.clone(), 9, 16);
        let tid = s.register_thread();
        assert!(m.insert(tid, 5, b"five"));
        assert!(!m.insert(tid, 5, b"dup"));
        assert_eq!(m.get(tid, &5, |v| v.to_vec()).unwrap(), b"five");
        assert!(m.get(tid, &6, |_| ()).is_none());
        assert!(m.remove(tid, &5));
        assert!(!m.remove(tid, &5));
        assert!(m.get(tid, &5, |_| ()).is_none());
        assert!(m.insert(tid, 5, b"again"), "reinsert after remove");
    }

    #[test]
    fn ordered_chains_handle_collisions() {
        let s = sys();
        let m = MontageNbMap::<u64>::new(s.clone(), 9, 1); // all keys collide
        let tid = s.register_thread();
        for k in [7u64, 3, 9, 1, 5] {
            assert!(m.insert(tid, k, &k.to_le_bytes()));
        }
        for k in [1u64, 3, 5, 7, 9] {
            assert_eq!(m.get(tid, &k, |v| v.to_vec()).unwrap(), k.to_le_bytes());
        }
        assert!(m.remove(tid, &5));
        for k in [1u64, 3, 7, 9] {
            assert!(m.get(tid, &k, |_| ()).is_some());
        }
        assert!(m.get(tid, &5, |_| ()).is_none());
    }

    #[test]
    fn survives_epoch_churn() {
        let s = sys();
        let m = MontageNbMap::<u64>::new(s.clone(), 9, 8);
        let tid = s.register_thread();
        for i in 0..200u64 {
            assert!(m.insert(tid, i, &i.to_le_bytes()));
            if i % 13 == 0 {
                s.advance_epoch();
            }
            if i % 3 == 0 {
                assert!(m.remove(tid, &i));
            }
        }
        for i in 0..200u64 {
            assert_eq!(m.get(tid, &i, |_| ()).is_some(), i % 3 != 0);
        }
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let s = sys();
        let m = Arc::new(MontageNbMap::<u64>::new(s.clone(), 9, 64));
        let mut handles = vec![];
        for t in 0..4u64 {
            let m = m.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                for i in 0..400 {
                    assert!(m.insert(tid, t * 10_000 + i, &t.to_le_bytes()));
                }
            }));
        }
        for _ in 0..10 {
            s.advance_epoch();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 1600);
        let tid = s.register_thread();
        for t in 0..4u64 {
            for i in 0..400 {
                assert!(m.get(tid, &(t * 10_000 + i), |_| ()).is_some());
            }
        }
    }

    #[test]
    fn concurrent_contended_key_exactly_one_winner() {
        let s = sys();
        let m = Arc::new(MontageNbMap::<u64>::new(s.clone(), 9, 4));
        let mut handles = vec![];
        for _ in 0..4 {
            let m = m.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut wins = 0;
                for k in 0..200u64 {
                    if m.insert(tid, k, b"w") {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(wins, 200, "each key inserted exactly once across threads");
    }

    #[test]
    fn recovery_restores_contents() {
        let s = sys();
        let m = MontageNbMap::<u64>::new(s.clone(), 9, 8);
        let tid = s.register_thread();
        for i in 0..60u64 {
            m.insert(tid, i, &i.to_le_bytes());
        }
        for i in 0..20u64 {
            m.remove(tid, &i);
        }
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 2);
        let m2 = MontageNbMap::<u64>::recover(rec.esys.clone(), 9, 8, &rec);
        let tid2 = rec.esys.register_thread();
        assert_eq!(m2.len(), 40);
        for i in 0..60u64 {
            assert_eq!(m2.get(tid2, &i, |_| ()).is_some(), i >= 20, "key {i}");
        }
    }
}
