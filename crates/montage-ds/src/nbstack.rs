//! A lock-free LIFO stack on Montage (Treiber stack linearized with
//! `CAS_verify`). Rounds out the item-structure family — the paper's design
//! covers "anything that can be represented as a graph", and related work
//! (MOD, Mahapatra et al.) benchmarks stacks; persistent state is the bag
//! of payloads labelled with push sequence numbers, whose sorted order
//! reconstructs bottom-to-top.

use montage::sync::uninstrumented::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::epoch::{self, Guard};
use montage::dcss::CasVerifyError;
use montage::{EpochSys, PHandle, RecoveredState, ThreadId, VerifyCell};

const SEQ_BYTES: usize = 8;

struct Node {
    payload: PHandle<[u8]>,
    next: u64,
}

/// # Safety
/// `ptr` must hold a pointer to a live `Node` that has not yet been
/// reclaimed; the guard pins the epoch for the reference's lifetime.
unsafe fn node_ref(ptr: u64, _g: &Guard) -> &Node {
    &*(ptr as *const Node)
}

/// A buffered-persistent lock-free stack.
pub struct MontageStack {
    esys: Arc<EpochSys>,
    tag: u16,
    top: VerifyCell,
    next_seq: AtomicU64,
}

// SAFETY: node pointers are managed through crossbeam-epoch.
unsafe impl Send for MontageStack {}
unsafe impl Sync for MontageStack {}

impl MontageStack {
    pub fn new(esys: Arc<EpochSys>, tag: u16) -> Self {
        MontageStack {
            esys,
            tag,
            top: VerifyCell::new(0),
            next_seq: AtomicU64::new(1),
        }
    }

    /// Rebuilds from recovered payloads: ascending push sequence = bottom to
    /// top.
    pub fn recover(esys: Arc<EpochSys>, tag: u16, rec: &RecoveredState) -> Self {
        let mut items: Vec<(u64, PHandle<[u8]>)> = rec
            .shards
            .iter()
            .flatten()
            .filter(|it| it.tag == tag)
            .map(|it| {
                let seq = rec.with_bytes(it, |b| {
                    u64::from_le_bytes(b[..SEQ_BYTES].try_into().unwrap())
                });
                (seq, it.handle())
            })
            .collect();
        items.sort_unstable_by_key(|&(s, _)| s);
        let s = Self::new(esys, tag);
        let mut top = 0u64;
        for &(_, payload) in &items {
            top = Box::into_raw(Box::new(Node { payload, next: top })) as u64;
        }
        s.top.store_unsync(top);
        s.next_seq
            // ord(relaxed): pre-publication or single-threaded write; the
            // publishing store/CAS provides the ordering.
            .store(items.last().map_or(1, |&(q, _)| q + 1), Ordering::Relaxed);
        s
    }

    pub fn esys(&self) -> &Arc<EpochSys> {
        &self.esys
    }

    /// Pushes `value` (lock-free).
    pub fn push(&self, tid: ThreadId, value: &[u8]) {
        loop {
            let g = self.esys.begin_op(tid);
            let _eg = epoch::pin();
            // ord(acqrel): sequence handout must not reorder with the payload
            // writes it stamps.
            let seq = self.next_seq.fetch_add(1, Ordering::AcqRel);
            let mut buf = Vec::with_capacity(SEQ_BYTES + value.len());
            buf.extend_from_slice(&seq.to_le_bytes());
            buf.extend_from_slice(value);
            let payload = self.esys.pnew_bytes(&g, self.tag, &buf);
            let old_top = self.top.load(&self.esys);
            let node = Box::into_raw(Box::new(Node {
                payload,
                next: old_top,
            })) as u64;
            match self.top.cas_verify(&self.esys, &g, old_top, node) {
                Ok(()) => return,
                Err(CasVerifyError::Conflict(_)) | Err(CasVerifyError::Epoch(_)) => {
                    let _ = self.esys.pdelete(&g, payload);
                    // SAFETY: the CAS failed, so `node` was never published;
                    // this thread still owns it exclusively.
                    drop(unsafe { Box::from_raw(node as *mut Node) });
                }
            }
        }
    }

    /// Pops the top value (lock-free).
    pub fn pop(&self, tid: ThreadId) -> Option<Vec<u8>> {
        loop {
            let g = self.esys.begin_op(tid);
            let eg = epoch::pin();
            let top = self.top.load(&self.esys);
            if top == 0 {
                return None;
            }
            // SAFETY: loaded from the live stack under the pinned guard.
            let node = unsafe { node_ref(top, &eg) };
            let value = self
                .esys
                .peek_bytes_unsafe(node.payload, |b| b[SEQ_BYTES.min(b.len())..].to_vec());
            match self.top.cas_verify(&self.esys, &g, top, node.next) {
                Ok(()) => {
                    let _ = self.esys.pdelete(&g, node.payload);
                    // SAFETY: the CAS unlinked `top`, so no new reader can
                    // reach it; the deferred drop runs after every pinned
                    // guard that might still hold it has unpinned.
                    unsafe {
                        eg.defer_unchecked(move || drop(Box::from_raw(top as *mut Node)));
                    }
                    return Some(value);
                }
                Err(_) => continue,
            }
        }
    }

    /// Approximate depth (racy walk; for tests).
    pub fn len_approx(&self) -> usize {
        let eg = epoch::pin();
        let mut n = 0;
        let mut cur = self.top.load(&self.esys);
        while cur != 0 {
            n += 1;
            // SAFETY: walked from top under the pinned guard.
            cur = unsafe { node_ref(cur, &eg) }.next;
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.top.load(&self.esys) == 0
    }
}

impl Drop for MontageStack {
    fn drop(&mut self) {
        let eg = epoch::pin();
        let mut cur = self.top.load(&self.esys);
        while cur != 0 {
            // SAFETY: `&mut self` in Drop means no other thread holds the
            // stack; every chained node is exclusively ours to read and free.
            let next = unsafe { node_ref(cur, &eg) }.next;
            // SAFETY: see above.
            drop(unsafe { Box::from_raw(cur as *mut Node) });
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(32 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn lifo_order() {
        let s = sys();
        let st = MontageStack::new(s.clone(), 12);
        let tid = s.register_thread();
        for i in 0..20u32 {
            st.push(tid, &i.to_le_bytes());
        }
        assert_eq!(st.len_approx(), 20);
        for i in (0..20u32).rev() {
            assert_eq!(st.pop(tid).unwrap(), i.to_le_bytes());
        }
        assert!(st.pop(tid).is_none());
        assert!(st.is_empty());
    }

    #[test]
    fn survives_epoch_churn() {
        let s = sys();
        let st = MontageStack::new(s.clone(), 12);
        let tid = s.register_thread();
        for i in 0..100u32 {
            st.push(tid, &i.to_le_bytes());
            if i % 9 == 0 {
                s.advance_epoch();
            }
            if i % 3 == 0 {
                st.pop(tid);
            }
        }
        let mut n = 0;
        while st.pop(tid).is_some() {
            n += 1;
        }
        assert_eq!(n, 100 - 34);
    }

    #[test]
    fn concurrent_push_pop_conserves() {
        let s = sys();
        let st = Arc::new(MontageStack::new(s.clone(), 12));
        let mut handles = vec![];
        for t in 0..4u32 {
            let st = st.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut popped = 0usize;
                for i in 0..400u32 {
                    st.push(tid, &(t * 1000 + i).to_le_bytes());
                    if i % 2 == 0 && st.pop(tid).is_some() {
                        popped += 1;
                    }
                }
                popped
            }));
        }
        for _ in 0..10 {
            s.advance_epoch();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let popped: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(popped + st.len_approx(), 1600);
    }

    #[test]
    fn recovery_restores_lifo_order() {
        let s = sys();
        let st = MontageStack::new(s.clone(), 12);
        let tid = s.register_thread();
        for i in 0..15u32 {
            st.push(tid, &i.to_le_bytes());
        }
        for _ in 0..5 {
            st.pop(tid); // pops 14..10
        }
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let st2 = MontageStack::recover(rec.esys.clone(), 12, &rec);
        let tid2 = rec.esys.register_thread();
        assert_eq!(st2.len_approx(), 10);
        for i in (0..10u32).rev() {
            assert_eq!(st2.pop(tid2).unwrap(), i.to_le_bytes());
        }
        // Push sequence continues past the recovered maximum.
        st2.push(tid2, b"post-recovery");
        assert_eq!(st2.pop(tid2).unwrap(), b"post-recovery");
    }
}
