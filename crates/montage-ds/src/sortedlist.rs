//! A buffered-persistent **sorted linked list** with consistent
//! `range(lo, hi)` scans — the range-queryable structure behind the wire
//! `scan` verb.
//!
//! The index is a Harris-style lock-free singly linked list: removal first
//! *marks* the victim by setting the low tag bit on its `next` pointer (the
//! linearization point), then unlinks it with a CAS on the predecessor;
//! traversals help unlink any marked node they pass. The whole list —
//! nodes, marks, pointers — is transient; the persistent state is the same
//! bag of key/value payloads as every Montage structure, so recovery is
//! "collect, sort, relink".
//!
//! ## Consistent scans
//!
//! A linearizable range scan must return a *cut* of the concurrent
//! history: some moment at which every reported key was present with the
//! reported value and no unreported in-range key existed. A plain traversal
//! can't promise that (it can see an insert at the tail but miss a
//! concurrent insert behind the cursor). Instead the list keeps two global
//! counters, `started`/`completed`, bumped around every mutation:
//!
//! 1. **Optimistic pass** — read `completed` then `started`; equality means
//!    no mutation was in flight at the moment `started` was read (the
//!    counters only grow and `completed ≤ started`). Collect the range,
//!    then re-read `started`: unchanged ⇒ the list was untouched for the
//!    whole collection, which is therefore a true snapshot.
//! 2. **Bounded retries, then a gate** — under sustained writes the scan
//!    raises `scan_block`; mutators that see the gate park *before*
//!    announcing `started` (one that already announced finishes first — the
//!    scan waits for `started == completed`). The scan then collects over a
//!    quiescent list and drops the gate.
//!
//! Writers therefore never block each other and never block on reads; only
//! a scan that repeatedly loses the race pauses writers, briefly. This is
//! the same spirit as Montage's environment-descriptor scans (paper
//! Sec. 4.3: rare heavyweight readers, invisible fast paths).
//!
//! Payload layout matches the hashmap: key bytes (fixed-size `K: Copy`)
//! followed by the value bytes.

use montage::sync::{spin_loop, uninstrumented as raw, AtomicU64, AtomicUsize, Mutex, Ordering};
use std::sync::Arc;

use crossbeam::epoch::{self, Atomic, Owned, Shared};
use montage::{EpochSys, PHandle, RecoveredState, ThreadId};

/// Deleted-mark on a node's `next` pointer (Harris 2001).
const MARK: usize = 1;

/// Optimistic scan attempts before raising the write gate.
const SCAN_FAST_RETRIES: usize = 64;

struct Node<K> {
    key: K,
    /// Indirection to the current payload version. The lock serializes
    /// value updates against `PDELETE` (an unmarked node's payload is
    /// always live while this lock is held).
    payload: Mutex<PHandle<[u8]>>,
    next: Atomic<Node<K>>,
}

/// A buffered-persistent sorted map (Harris linked list + consistent range
/// scans). Keys are fixed-size `Copy` values ordered by `Ord`; for byte
/// keys (`[u8; 32]`) that is lexicographic order, matching the kvstore.
pub struct MontageSortedList<K> {
    esys: Arc<EpochSys>,
    tag: u16,
    head: Atomic<Node<K>>,
    len: raw::AtomicUsize,
    /// Mutations announced (monotone).
    started: AtomicU64,
    /// Mutations finished (monotone, `completed ≤ started`).
    completed: AtomicU64,
    /// Non-zero while a scan needs a quiescent list; mutators park before
    /// announcing themselves.
    scan_block: AtomicUsize,
}

// SAFETY: the list is only touched under crossbeam-epoch guards and all
// interior mutability goes through atomics or per-node locks, so with
// `K: Send + Sync` the list as a whole is safe to share across threads.
unsafe impl<K: Send + Sync> Send for MontageSortedList<K> {}
unsafe impl<K: Send + Sync> Sync for MontageSortedList<K> {}

impl<K> Drop for MontageSortedList<K> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` — no concurrent guards; the chain is ours.
        unsafe {
            let g = epoch::unprotected();
            // ord(acquire): traversals must see the node fields published by the
            // linking store/CAS.
            let mut curr = self.head.load(Ordering::Acquire, g);
            // Detach so Atomic::drop doesn't double-free the first node.
            self.head.store(Shared::null(), Ordering::Relaxed);
            while !curr.is_null() {
                let owned = curr.into_owned();
                // ord(acquire): traversals must see the node fields published by the
                // linking store/CAS.
                let next = owned.next.load(Ordering::Acquire, g);
                owned.next.store(Shared::null(), Ordering::Relaxed);
                curr = next;
                drop(owned);
            }
        }
    }
}

impl<K: Copy + Ord + Send + Sync> MontageSortedList<K> {
    pub fn new(esys: Arc<EpochSys>, tag: u16) -> Self {
        MontageSortedList {
            esys,
            tag,
            head: Atomic::null(),
            len: raw::AtomicUsize::new(0),
            started: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            scan_block: AtomicUsize::new(0),
        }
    }

    /// Rebuilds from recovered payloads: collect `(key, handle)` pairs,
    /// sort, relink. Single-threaded — a sorted build is one pass and list
    /// recovery is dominated by the sort anyway.
    pub fn recover(esys: Arc<EpochSys>, tag: u16, rec: &RecoveredState) -> Self {
        let list = Self::new(esys, tag);
        let mut items: Vec<(K, PHandle<[u8]>)> = rec
            .shards
            .iter()
            .flatten()
            .filter(|it| it.tag == tag)
            .map(|item| {
                let key = rec.with_bytes(item, |b| {
                    let mut k = std::mem::MaybeUninit::<K>::uninit();
                    // SAFETY: `encode` laid the key image out as the first
                    // size_of::<K>() payload bytes.
                    // lint: allow(raw-write): copies pool bytes into a transient stack value, not into the pool
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            b.as_ptr(),
                            k.as_mut_ptr() as *mut u8,
                            std::mem::size_of::<K>(),
                        );
                        k.assume_init()
                    }
                });
                (key, item.handle())
            })
            .collect();
        items.sort_by_key(|it| it.0);
        debug_assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate key in recovered payload set"
        );
        // ord(relaxed): pre-publication or single-threaded write; the
        // publishing store/CAS provides the ordering.
        list.len.store(items.len(), Ordering::Relaxed);
        // SAFETY: the list is not yet shared; building back-to-front with
        // the unprotected guard touches only nodes we just allocated.
        unsafe {
            let g = epoch::unprotected();
            let mut next = Shared::null();
            for (key, handle) in items.into_iter().rev() {
                let node = Owned::new(Node {
                    key,
                    payload: Mutex::new(handle),
                    next: Atomic::null(),
                });
                // ord(relaxed): pre-publication or single-threaded write; the
                // publishing store/CAS provides the ordering.
                node.next.store(next, Ordering::Relaxed);
                next = node.into_shared(g);
            }
            list.head.store(next, Ordering::Relaxed);
        }
        list
    }

    pub fn esys(&self) -> &Arc<EpochSys> {
        &self.esys
    }

    fn encode(&self, key: &K, value: &[u8]) -> Vec<u8> {
        let ksize = std::mem::size_of::<K>();
        let mut buf = vec![0u8; ksize + value.len()];
        // SAFETY: `buf` holds at least `ksize` bytes and K is plain data.
        // lint: allow(raw-write): serializes the key into a transient Vec; the pool copy goes through pnew_bytes
        unsafe {
            std::ptr::copy_nonoverlapping(key as *const K as *const u8, buf.as_mut_ptr(), ksize);
        }
        buf[ksize..].copy_from_slice(value);
        buf
    }

    // ---- scan coordination ----------------------------------------------

    /// Announce a mutation; parks while a scan holds the gate. A mutator
    /// that slipped past the gate check un-announces itself and re-parks,
    /// so a gated scan's `started == completed` wait always terminates.
    fn enter_mutation(&self) {
        loop {
            while self.scan_block.load(Ordering::SeqCst) > 0 {
                spin_loop();
            }
            self.started.fetch_add(1, Ordering::SeqCst);
            if self.scan_block.load(Ordering::SeqCst) == 0 {
                return;
            }
            self.completed.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn exit_mutation(&self) {
        self.completed.fetch_add(1, Ordering::SeqCst);
    }

    // ---- traversal -------------------------------------------------------

    /// Harris find: returns the link holding the first node with
    /// `node.key >= key` (or the tail link), that node, and whether it
    /// matched. Helps unlink marked nodes along the way.
    fn find<'g>(
        &'g self,
        key: &K,
        guard: &'g epoch::Guard,
    ) -> (&'g Atomic<Node<K>>, Shared<'g, Node<K>>, bool) {
        'retry: loop {
            let mut prev: &'g Atomic<Node<K>> = &self.head;
            // ord(acquire): traversals must see the node fields published by the
            // linking store/CAS.
            let mut curr = prev.load(Ordering::Acquire, guard);
            loop {
                // SAFETY: nodes are retired only via defer_destroy under
                // epoch guards; `guard` keeps everything reachable alive.
                let Some(curr_ref) = (unsafe { curr.as_ref() }) else {
                    return (prev, Shared::null(), false);
                };
                // ord(acquire): traversals must see the node fields published by the
                // linking store/CAS.
                let succ = curr_ref.next.load(Ordering::Acquire, guard);
                if succ.tag() == MARK {
                    // `curr` is logically deleted: help unlink it.
                    match prev.compare_exchange(
                        curr.with_tag(0),
                        succ.with_tag(0),
                        // ord(acqrel): the CAS publishes the new link and orders it after the
                        // snapshot it was validated against.
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(_) => {
                            // SAFETY: `curr` is now unreachable from the list.
                            unsafe { guard.defer_destroy(curr) };
                            curr = succ.with_tag(0);
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                match curr_ref.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        prev = &curr_ref.next;
                        curr = succ;
                    }
                    std::cmp::Ordering::Equal => return (prev, curr, true),
                    std::cmp::Ordering::Greater => return (prev, curr, false),
                }
            }
        }
    }

    // ---- operations ------------------------------------------------------

    /// Inserts or updates; returns `true` if the key already existed.
    pub fn put(&self, tid: ThreadId, key: K, value: &[u8]) -> bool {
        self.enter_mutation();
        let existed = self.put_inner(tid, key, value);
        self.exit_mutation();
        existed
    }

    fn put_inner(&self, tid: ThreadId, key: K, value: &[u8]) -> bool {
        let ksize = std::mem::size_of::<K>();
        loop {
            let guard = epoch::pin();
            let (prev, curr, found) = self.find(&key, &guard);
            if found {
                // SAFETY: `curr` is guard-protected (see `find`).
                let node = unsafe { curr.deref() };
                let mut payload = node.payload.lock();
                // ord(acquire): traversals must see the node fields published by the
                // linking store/CAS.
                if node.next.load(Ordering::Acquire, &guard).tag() == MARK {
                    continue; // removed while we waited for the value lock
                }
                // Unmarked under the payload lock ⇒ the handle is live and
                // a concurrent remove cannot PDELETE it until we unlock.
                let g = self.esys.begin_op(tid);
                let same_len = self
                    .esys
                    .peek_bytes_unsafe(*payload, |b| b.len() == ksize + value.len());
                *payload = if same_len {
                    self.esys
                        .set_bytes(&g, *payload, |b| b[ksize..].copy_from_slice(value))
                        .expect("payload lock orders epochs")
                } else {
                    self.esys
                        .replace_bytes(&g, *payload, &self.encode(&key, value))
                        .expect("payload lock orders epochs")
                };
                return true;
            }
            // Absent: link a fresh node in front of `curr`.
            let g = self.esys.begin_op(tid);
            let h = self
                .esys
                .pnew_bytes(&g, self.tag, &self.encode(&key, value));
            let node = Owned::new(Node {
                key,
                payload: Mutex::new(h),
                next: Atomic::null(),
            });
            // ord(relaxed): pre-publication or single-threaded write; the
            // publishing store/CAS provides the ordering.
            node.next.store(curr.with_tag(0), Ordering::Relaxed);
            let node = node.into_shared(&guard);
            match prev.compare_exchange(
                curr.with_tag(0),
                node,
                // ord(acqrel): the CAS publishes the new link and orders it after the
                // snapshot it was validated against.
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    // ord(counter): size estimate only.
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                Err(_) => {
                    // Lost the race: revoke the payload in the same epoch
                    // window (net no-op for recovery) and retry.
                    self.esys.pdelete(&g, h).expect("fresh payload, same op");
                    // SAFETY: the losing node was never published.
                    unsafe { drop(node.into_owned()) };
                }
            }
        }
    }

    /// Inserts only if absent; returns `false` if the key existed.
    pub fn insert(&self, tid: ThreadId, key: K, value: &[u8]) -> bool {
        self.enter_mutation();
        let inserted = loop {
            let guard = epoch::pin();
            let (prev, curr, found) = self.find(&key, &guard);
            if found {
                break false;
            }
            let g = self.esys.begin_op(tid);
            let h = self
                .esys
                .pnew_bytes(&g, self.tag, &self.encode(&key, value));
            let node = Owned::new(Node {
                key,
                payload: Mutex::new(h),
                next: Atomic::null(),
            });
            // ord(relaxed): pre-publication or single-threaded write; the
            // publishing store/CAS provides the ordering.
            node.next.store(curr.with_tag(0), Ordering::Relaxed);
            let node = node.into_shared(&guard);
            match prev.compare_exchange(
                curr.with_tag(0),
                node,
                // ord(acqrel): the CAS publishes the new link and orders it after the
                // snapshot it was validated against.
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    // ord(counter): size estimate only.
                    self.len.fetch_add(1, Ordering::Relaxed);
                    break true;
                }
                Err(_) => {
                    self.esys.pdelete(&g, h).expect("fresh payload, same op");
                    // SAFETY: the losing node was never published.
                    unsafe { drop(node.into_owned()) };
                }
            }
        };
        self.exit_mutation();
        inserted
    }

    /// Removes `key`; returns `true` if it existed. Logical delete (the
    /// mark CAS) and `PDELETE` happen in one Montage operation, so a crash
    /// cut either retains the key's payload or loses the whole removal.
    pub fn remove(&self, tid: ThreadId, key: &K) -> bool {
        self.enter_mutation();
        let removed = loop {
            let guard = epoch::pin();
            let (prev, curr, found) = self.find(key, &guard);
            if !found {
                break false;
            }
            // SAFETY: `curr` is guard-protected (see `find`).
            let node = unsafe { curr.deref() };
            // ord(acquire): traversals must see the node fields published by the
            // linking store/CAS.
            let succ = node.next.load(Ordering::Acquire, &guard);
            if succ.tag() == MARK {
                continue; // someone else is removing it; re-find
            }
            let g = self.esys.begin_op(tid);
            if node
                .next
                .compare_exchange(
                    succ,
                    succ.with_tag(MARK),
                    // ord(acqrel): the CAS publishes the new link and orders it after the
                    // snapshot it was validated against.
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                )
                .is_err()
            {
                continue; // next changed (insert after us, or lost the mark)
            }
            // Marked by us: revoke the payload under the value lock so a
            // concurrent `put` update can't write into a deleted handle.
            {
                let payload = node.payload.lock();
                self.esys
                    .pdelete(&g, *payload)
                    .expect("mark won ⇒ sole deleter");
            }
            // ord(counter): size estimate only.
            self.len.fetch_sub(1, Ordering::Relaxed);
            // Best-effort physical unlink; `find` helps if this loses.
            if prev
                .compare_exchange(
                    curr.with_tag(0),
                    succ.with_tag(0),
                    // ord(acqrel): the CAS publishes the new link and orders it after the
                    // snapshot it was validated against.
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                )
                .is_ok()
            {
                // SAFETY: `curr` is now unreachable from the list.
                unsafe { guard.defer_destroy(curr) };
            }
            break true;
        };
        self.exit_mutation();
        removed
    }

    /// Lock-free lookup (no `BEGIN_OP`: reads are invisible to recovery).
    pub fn get<R>(&self, _tid: ThreadId, key: &K, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let ksize = std::mem::size_of::<K>();
        let guard = epoch::pin();
        let (_, curr, found) = self.find(key, &guard);
        if !found {
            return None;
        }
        // SAFETY: `curr` is guard-protected (see `find`).
        let node = unsafe { curr.deref() };
        let payload = node.payload.lock();
        // ord(acquire): traversals must see the node fields published by the
        // linking store/CAS.
        if node.next.load(Ordering::Acquire, &guard).tag() == MARK {
            return None; // removed between find and the value lock
        }
        Some(self.esys.peek_bytes_unsafe(*payload, |b| f(&b[ksize..])))
    }

    /// Owned-value lookup.
    pub fn get_owned(&self, tid: ThreadId, key: &K) -> Option<Vec<u8>> {
        self.get(tid, key, |b| b.to_vec())
    }

    /// A **consistent** inclusive range scan: the returned vector is a cut
    /// of the concurrent history — every reported pair was simultaneously
    /// present, in key order, at one linearization instant (see the module
    /// docs for the optimistic/gated two-phase protocol).
    pub fn range(&self, _tid: ThreadId, lo: &K, hi: &K) -> Vec<(K, Vec<u8>)> {
        if lo > hi {
            return Vec::new();
        }
        for _ in 0..SCAN_FAST_RETRIES {
            let c1 = self.completed.load(Ordering::SeqCst);
            let s1 = self.started.load(Ordering::SeqCst);
            if s1 != c1 {
                spin_loop();
                continue; // a mutation is in flight right now
            }
            let snap = self.collect(lo, hi);
            if self.started.load(Ordering::SeqCst) == s1 {
                // Quiescent at the start and nothing started since: the
                // list was untouched for the whole traversal.
                return snap;
            }
        }
        // Contended: gate new mutations, wait out announced ones.
        self.scan_block.fetch_add(1, Ordering::SeqCst);
        while self.started.load(Ordering::SeqCst) != self.completed.load(Ordering::SeqCst) {
            spin_loop();
        }
        let snap = self.collect(lo, hi);
        self.scan_block.fetch_sub(1, Ordering::SeqCst);
        snap
    }

    /// One traversal of `[lo, hi]`, skipping marked nodes. Only sound as a
    /// snapshot when `range`'s counter protocol proves the list static.
    fn collect(&self, lo: &K, hi: &K) -> Vec<(K, Vec<u8>)> {
        let ksize = std::mem::size_of::<K>();
        let mut out = Vec::new();
        let guard = epoch::pin();
        // ord(acquire): traversals must see the node fields published by the
        // linking store/CAS.
        let mut curr = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: guard-protected traversal (both derefs below), as in `find`.
        while let Some(node) = unsafe { curr.as_ref() } {
            if node.key > *hi {
                break;
            }
            // ord(acquire): traversals must see the node fields published by the
            // linking store/CAS.
            let succ = node.next.load(Ordering::Acquire, &guard);
            if succ.tag() != MARK && node.key >= *lo {
                let payload = node.payload.lock();
                out.push((
                    node.key,
                    self.esys
                        .peek_bytes_unsafe(*payload, |b| b[ksize..].to_vec()),
                ));
            }
            curr = succ.with_tag(0);
        }
        out
    }

    pub fn len(&self) -> usize {
        // ord(counter): size estimate only.
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let s = sys();
        let l = MontageSortedList::<u64>::new(s.clone(), 10);
        let tid = s.register_thread();
        assert!(!l.put(tid, 5, b"five"));
        assert!(l.put(tid, 5, b"FIVE"));
        assert_eq!(l.get_owned(tid, &5).unwrap(), b"FIVE");
        assert!(l.remove(tid, &5));
        assert!(l.get_owned(tid, &5).is_none());
        assert!(!l.remove(tid, &5));
    }

    #[test]
    fn range_is_sorted_and_inclusive() {
        let s = sys();
        let l = MontageSortedList::<u64>::new(s.clone(), 10);
        let tid = s.register_thread();
        for i in [9u64, 3, 7, 1, 5] {
            l.insert(tid, i, format!("v{i}").as_bytes());
        }
        let r = l.range(tid, &3, &7);
        assert_eq!(
            r.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![3, 5, 7],
            "inclusive, sorted"
        );
        assert_eq!(r[1].1, b"v5");
        assert!(l.range(tid, &10, &20).is_empty());
        assert!(l.range(tid, &7, &3).is_empty(), "inverted range is empty");
        assert_eq!(l.range(tid, &0, &u64::MAX).len(), 5);
    }

    #[test]
    fn update_with_different_size_value() {
        let s = sys();
        let l = MontageSortedList::<u64>::new(s.clone(), 10);
        let tid = s.register_thread();
        l.put(tid, 1, b"short");
        l.put(tid, 1, b"a much longer value than before");
        assert_eq!(
            l.get_owned(tid, &1).unwrap(),
            b"a much longer value than before"
        );
    }

    #[test]
    fn concurrent_writers_disjoint_keys() {
        let s = sys();
        let l = Arc::new(MontageSortedList::<u64>::new(s.clone(), 10));
        let mut handles = vec![];
        for t in 0..4u64 {
            let l = l.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                for i in 0..200 {
                    l.put(tid, t * 1000 + i, &t.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.len(), 800);
        let tid = s.register_thread();
        let all = l.range(tid, &0, &u64::MAX);
        assert_eq!(all.len(), 800);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "strictly sorted");
    }

    #[test]
    fn scans_under_concurrent_writes_are_consistent_cuts() {
        // Writers maintain the invariant "keys 2k and 2k+1 are inserted
        // together, removed together" (insert even then odd; remove odd
        // then even, so any prefix of a *completed* op pair is visible
        // atomically only if the scan is a true cut at op granularity...
        // here each op is a single key, so the checkable invariant is:
        // within one scan, for every pair, odd-present implies even-present
        // (insert order) — violated by torn scans that miss behind-cursor
        // inserts).
        let s = sys();
        let l = Arc::new(MontageSortedList::<u64>::new(s.clone(), 10));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut writers = vec![];
        for t in 0..2u64 {
            let l = l.clone();
            let s = s.clone();
            let stop = stop.clone();
            writers.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let base = t * 10_000;
                while !stop.load(Ordering::Relaxed) {
                    for k in 0..40u64 {
                        l.insert(tid, base + 2 * k, b"even");
                        l.insert(tid, base + 2 * k + 1, b"odd");
                    }
                    for k in 0..40u64 {
                        l.remove(tid, &(base + 2 * k + 1));
                        l.remove(tid, &(base + 2 * k));
                    }
                }
            }));
        }
        let tid = s.register_thread();
        for _ in 0..200 {
            let snap = l.range(tid, &0, &u64::MAX);
            assert!(
                snap.windows(2).all(|w| w[0].0 < w[1].0),
                "scan must be sorted and duplicate-free"
            );
            let keys: std::collections::HashSet<u64> = snap.iter().map(|(k, _)| *k).collect();
            for k in &keys {
                if k % 2 == 1 {
                    assert!(
                        keys.contains(&(k - 1)),
                        "cut violation: odd {k} present without its even sibling"
                    );
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn recovery_restores_synced_contents_in_order() {
        let s = sys();
        let l = MontageSortedList::<u64>::new(s.clone(), 10);
        let tid = s.register_thread();
        for i in 0..50u64 {
            l.put(tid, i, format!("v{i}").as_bytes());
        }
        for i in 0..10u64 {
            l.remove(tid, &i);
        }
        l.put(tid, 20, b"updated");
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 2);
        let l2 = MontageSortedList::<u64>::recover(rec.esys.clone(), 10, &rec);
        let tid2 = rec.esys.register_thread();
        assert_eq!(l2.len(), 40);
        let all = l2.range(tid2, &0, &u64::MAX);
        assert_eq!(
            all.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            (10..50).collect::<Vec<_>>()
        );
        assert_eq!(l2.get_owned(tid2, &20).unwrap(), b"updated");
        // Usable after recovery.
        l2.put(tid2, 5, b"back");
        assert_eq!(l2.range(tid2, &0, &9).len(), 1);
    }

    #[test]
    fn unsynced_removal_rolls_back() {
        let s = sys();
        let l = MontageSortedList::<u64>::new(s.clone(), 10);
        let tid = s.register_thread();
        l.put(tid, 1, b"keep");
        s.sync();
        l.remove(tid, &1); // never synced
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let l2 = MontageSortedList::<u64>::recover(rec.esys.clone(), 10, &rec);
        let tid2 = rec.esys.register_thread();
        assert_eq!(l2.get_owned(tid2, &1).unwrap(), b"keep");
    }

    #[test]
    fn byte_array_keys_scan_lexicographically() {
        let s = sys();
        let l = MontageSortedList::<[u8; 32]>::new(s.clone(), 10);
        let tid = s.register_thread();
        let key = |s: &str| {
            let mut k = [0u8; 32];
            k[..s.len()].copy_from_slice(s.as_bytes());
            k
        };
        for name in ["pear", "apple", "mango", "banana"] {
            l.insert(tid, key(name), name.as_bytes());
        }
        let r = l.range(tid, &key("apple"), &key("mango"));
        assert_eq!(
            r.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>(),
            vec![b"apple".to_vec(), b"banana".to_vec(), b"mango".to_vec()]
        );
    }
}
